//! The §4 window-length analysis: why the paper picked a 5-sample window.
//!
//! ```text
//! cargo run --release --example window_tuning
//! ```
//!
//! Generates a Raytrace-like bursty demand trace sampled at the manager's
//! 100 ms period and prints, per window length, the paper's criterion:
//! the average distance between the observed transaction pattern and the
//! moving-window average (the paper keeps it ≤ ~5 % at W = 5), next to
//! the end-to-end improvement each window achieves on the Raytrace set-B
//! workload.

use busbw::metrics::{improvement_pct, MovingWindow};
use busbw::sim::DemandModel;
use busbw::workloads::burst::TwoStateBurst;
use busbw::workloads::paper::PaperApp;
use busbw_experiments::runner::{run_spec, PolicyKind, RunnerConfig};
use busbw_experiments::Fig2Set;

fn main() {
    // Analytic half: the distance criterion on a synthetic bursty trace.
    let mut burst = TwoStateBurst::raytrace(10.65, 0.82, 42);
    let trace: Vec<f64> = (0..600)
        .map(|i| burst.demand_at(0.0, i * 100_000).rate)
        .collect();

    println!("window  distance-to-trace  set-B improvement (Raytrace)");
    println!("------  -----------------  --------------------------");

    let rc = RunnerConfig {
        scale: 0.25,
        ..RunnerConfig::default()
    };
    let spec = Fig2Set::B.spec(PaperApp::Raytrace);
    let linux = run_spec(&spec, PolicyKind::Linux, &rc);

    for w in [1usize, 3, 5, 9, 15] {
        let dist =
            MovingWindow::mean_relative_distance(w, &trace).expect("non-empty trace") * 100.0;
        let r = run_spec(&spec, PolicyKind::WindowN(w), &rc);
        let imp = improvement_pct(linux.mean_turnaround_us, r.mean_turnaround_us);
        let marker = if w == 5 { "  <- paper's choice" } else { "" };
        println!("{w:>6}  {dist:>16.1}%  {imp:>+25.1}%{marker}");
    }

    println!(
        "\nsmall windows track bursts (low distance) but overreact;\n\
         wide windows smooth bursts but lag real phase changes —\n\
         the paper balances the two at 5 samples (2.5 quanta)."
    );
}
