//! Native implementations of the paper's BBMA / nBBMA microbenchmarks —
//! real memory traffic on the host machine, not simulation.
//!
//! ```text
//! cargo run --release --example native_microbench [seconds]
//! ```
//!
//! §3 of the paper:
//!
//! * **BBMA** walks a two-dimensional array twice the size of the L2
//!   cache *column-wise*, writing one element per cache line, so nearly
//!   every access misses and goes to the bus.
//! * **nBBMA** walks an array half the L2 size *row-wise*, so after the
//!   compulsory misses everything hits in cache.
//!
//! Without hardware counter access we report achieved *bytes touched per
//! second* from timing alone: BBMA's rate is bounded by memory bandwidth,
//! nBBMA's by the core. On any real machine the two should differ by an
//! order of magnitude — the same contrast the paper measures as 23.6 vs
//! 0.0037 bus transactions/µs.

use std::hint::black_box;
use std::time::{Duration, Instant};

const CACHE_LINE: usize = 64;
/// Assumed L2 size (the paper's Xeon: 256 KB). Oversizing relative to the
/// real L2 only strengthens the contrast.
const L2_BYTES: usize = 256 * 1024;

/// Column-wise writes over a 2×L2 array: ~0 % hit rate.
fn bbma(duration: Duration) -> (u64, f64) {
    let rows = (2 * L2_BYTES) / CACHE_LINE;
    let cols = CACHE_LINE;
    let mut a = vec![0u8; rows * cols];
    let start = Instant::now();
    let mut touched: u64 = 0;
    while start.elapsed() < duration {
        for col in 0..cols {
            for row in 0..rows {
                // One write per line per pass; row stride = one line.
                a[row * cols + col] = a[row * cols + col].wrapping_add(1);
            }
            touched += rows as u64;
            if start.elapsed() >= duration {
                break;
            }
        }
    }
    black_box(&a);
    // Each touch moves a full line across the bus (fetch on write miss).
    let bytes_per_s = touched as f64 * CACHE_LINE as f64 / start.elapsed().as_secs_f64();
    (touched, bytes_per_s)
}

/// Row-wise walks over a ½×L2 array: ~100 % hit rate.
fn nbbma(duration: Duration) -> (u64, f64) {
    let n = L2_BYTES / 2;
    let mut a = vec![0u8; n];
    let start = Instant::now();
    let mut touched: u64 = 0;
    while start.elapsed() < duration {
        for i in (0..n).step_by(CACHE_LINE) {
            a[i] = a[i].wrapping_add(1);
        }
        touched += (n / CACHE_LINE) as u64;
    }
    black_box(&a);
    // Cache-resident: per-touch bus traffic is ~0; report core-side rate.
    let bytes_per_s = touched as f64 * CACHE_LINE as f64 / start.elapsed().as_secs_f64();
    (touched, bytes_per_s)
}

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let d = Duration::from_secs(secs);

    println!("running native BBMA for {secs}s (column-wise, 2xL2 array)...");
    let (t_b, bw_b) = bbma(d);
    println!(
        "  {t_b} line touches, {:.2} GB/s of line traffic (memory-bound)",
        bw_b / 1e9
    );

    println!("running native nBBMA for {secs}s (row-wise, L2/2 array)...");
    let (t_n, bw_n) = nbbma(d);
    println!(
        "  {t_n} line touches, {:.2} GB/s of line-touch rate (cache-resident)",
        bw_n / 1e9
    );

    println!(
        "\ncache-resident / memory-bound touch-rate ratio: {:.1}x",
        bw_n / bw_b
    );
    println!(
        "(the paper's counter-measured contrast is 23.6 vs 0.0037 tx/µs on the bus;\n\
         here the contrast appears as touch throughput because nBBMA never leaves L2)"
    );
}
