//! Quickstart: schedule one multiprogrammed workload three ways and
//! compare turnarounds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's set-C workload for CG (two CG instances, two BBMA
//! bus saturators, two nBBMA cache-resident hogs — 8 threads on 4 cpus),
//! runs it under the Linux-like baseline and under both paper policies,
//! and prints the mean application turnaround per scheduler.

use busbw::core::{latest_quantum, linux_like, quanta_window};
use busbw::metrics::improvement_pct;
use busbw::sim::{Scheduler, StopCondition, XEON_4WAY};
use busbw::workloads::{mix, paper::PaperApp};

fn run_with(label: &str, mut sched: Box<dyn Scheduler>) -> f64 {
    // 1/4-scale work volumes: same shapes, quarter the simulated time.
    let spec = mix::fig2_set_c(PaperApp::Cg).scaled(0.25);
    let built = mix::build_machine(&spec, XEON_4WAY, 42);
    let mut machine = built.machine;
    let out = machine.run(
        &mut *sched,
        StopCondition::AppsFinished(built.measured_ids.clone()),
    );
    assert!(out.condition_met, "workload did not finish");
    let mean_us: f64 = built
        .measured_ids
        .iter()
        .map(|&id| machine.turnaround_us(id).unwrap() as f64)
        .sum::<f64>()
        / built.measured_ids.len() as f64;
    println!(
        "{label:>8}: mean CG turnaround {:.2} s   (bus saturated {:.0}% of the run)",
        mean_us / 1e6,
        out.stats.saturated_fraction() * 100.0
    );
    mean_us
}

fn main() {
    println!("workload: 2x CG + 2x BBMA + 2x nBBMA on a 4-way Xeon-class SMP\n");
    let linux = run_with("Linux", Box::new(linux_like()));
    let latest = run_with("Latest", Box::new(latest_quantum()));
    let window = run_with("Window", Box::new(quanta_window()));
    println!(
        "\nimprovement over Linux:  Latest {:+.1}%   Window {:+.1}%",
        improvement_pct(linux, latest),
        improvement_pct(linux, window),
    );
}
