//! The §3 motivation study: how bus saturation alone — no processor
//! sharing — slows applications down.
//!
//! ```text
//! cargo run --release --example saturation_study [app]
//! ```
//!
//! For the chosen application (default CG), reproduces the four
//! configurations of Figure 1 and prints rates and slowdowns, plus a
//! demand sweep that locates the saturation knee of the simulated bus.

use busbw::core::linux_like;
use busbw::sim::{BusConfig, BusModel, BusRequest, FsbBus, StopCondition, ThreadId, XEON_4WAY};
use busbw::workloads::{mix, paper::PaperApp};

fn run(spec: &busbw::workloads::WorkloadSpec) -> (f64, f64) {
    let built = mix::build_machine(&spec.clone().scaled(0.25), XEON_4WAY, 7);
    let mut machine = built.machine;
    let mut sched = linux_like();
    let out = machine.run(
        &mut sched,
        StopCondition::AppsFinished(built.measured_ids.clone()),
    );
    assert!(out.condition_met);
    let mean_us: f64 = built
        .measured_ids
        .iter()
        .map(|&id| machine.turnaround_us(id).unwrap() as f64)
        .sum::<f64>()
        / built.measured_ids.len() as f64;
    (mean_us, out.stats.mean_bus_rate())
}

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| PaperApp::from_name(&s))
        .unwrap_or(PaperApp::Cg);
    println!("=== §3 configurations for {} ===\n", app.name());

    let (solo_us, solo_rate) = run(&mix::fig1_solo(app));
    println!(
        "1 Appl           : {:6.2} s, workload rate {:5.1} tx/µs",
        solo_us / 1e6,
        solo_rate
    );
    for (label, spec) in [
        ("2 Apps           ", mix::fig1_two_instances(app)),
        ("1 Appl + 2 BBMA  ", mix::fig1_with_bbma(app)),
        ("1 Appl + 2 nBBMA ", mix::fig1_with_nbbma(app)),
    ] {
        let (us, rate) = run(&spec);
        println!(
            "{label}: {:6.2} s, workload rate {:5.1} tx/µs, slowdown {:.2}x",
            us / 1e6,
            rate,
            us / solo_us
        );
    }

    // Where does the simulated front-side bus saturate? Sweep aggregate
    // demand from four identical streamers through the knee.
    println!("\n=== saturation knee (4 identical streamers, µ = 0.9) ===\n");
    let mut bus = FsbBus::new(BusConfig::default());
    println!("demand (tx/µs)  issued (tx/µs)  per-thread speed");
    for total in [8.0, 16.0, 24.0, 26.0, 28.0, 30.0, 34.0, 40.0, 60.0, 80.0] {
        let reqs: Vec<BusRequest> = (0..4)
            .map(|i| BusRequest {
                thread: ThreadId(i),
                rate: total / 4.0,
                mu: 0.9,
                socket: 0,
                remote: 0.0,
            })
            .collect();
        let out = bus.arbitrate(&reqs);
        println!(
            "{total:>14.1}  {:>14.1}  {:>16.2}",
            out.total_issued, out.shares[0].speed
        );
    }
}
