//! Side-by-side policy comparison on one workload family, including the
//! ablation comparators — a compact view of what each selection rule does.
//!
//! ```text
//! cargo run --release --example policy_comparison [app] [a|b|c]
//! ```
//!
//! Default: Raytrace on set B — the configuration where the paper found
//! 'Latest Quantum' oversensitive to bursts while 'Quanta Window' stayed
//! stable.

use busbw::metrics::improvement_pct;
use busbw::workloads::paper::PaperApp;
use busbw_experiments::runner::{run_spec, PolicyKind, RunnerConfig};
use busbw_experiments::Fig2Set;

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args
        .next()
        .and_then(|s| PaperApp::from_name(&s))
        .unwrap_or(PaperApp::Raytrace);
    let set = match args.next().as_deref() {
        Some("a") => Fig2Set::A,
        Some("c") => Fig2Set::C,
        _ => Fig2Set::B,
    };
    let rc = RunnerConfig {
        scale: 0.25,
        ..RunnerConfig::default()
    };
    let spec = set.spec(app);
    println!(
        "workload: {}  ({} threads on 4 cpus)\n",
        spec.name,
        spec.total_threads()
    );

    let linux = run_spec(&spec, PolicyKind::Linux, &rc);
    println!(
        "{:>10}: {:8.2} s   (baseline)",
        "Linux",
        linux.mean_turnaround_us / 1e6
    );
    for p in [
        PolicyKind::LinuxO1,
        PolicyKind::Latest,
        PolicyKind::Window,
        PolicyKind::ModelDriven,
        PolicyKind::RoundRobinGang,
        PolicyKind::RandomGang(42),
        PolicyKind::GreedyPack,
    ] {
        let r = run_spec(&spec, p, &rc);
        println!(
            "{:>10}: {:8.2} s   ({:+.1}% vs Linux, bus saturated {:.0}%)",
            p.label(),
            r.mean_turnaround_us / 1e6,
            improvement_pct(linux.mean_turnaround_us, r.mean_turnaround_us),
            r.saturated_fraction * 100.0
        );
    }
}
