//! Visualize schedules: a text Gantt chart of the same workload under the
//! Linux baseline and the Quanta Window policy.
//!
//! ```text
//! cargo run --release --example timeline [app]
//! ```
//!
//! The contrast to look for (default MG, set C): under Linux the app's
//! threads scatter and interleave with the BBMA streamers; under the
//! bandwidth-aware policy the gangs are intact and the two app instances
//! are kept apart from the saturating background whenever the fitness
//! rule can arrange it.

use busbw::core::{linux_like, quanta_window};
use busbw::sim::{Scheduler, StopCondition, Traced, XEON_4WAY};
use busbw::workloads::{mix, paper::PaperApp};

fn show<S: Scheduler>(label: &str, sched: S, app: PaperApp) {
    let spec = mix::fig2_set_c(app).scaled(0.05);
    let built = mix::build_machine(&spec, XEON_4WAY, 42);
    let mut machine = built.machine;
    let mut traced = Traced::new(sched);
    let out = machine.run(
        &mut traced,
        StopCondition::AppsFinished(built.measured_ids.clone()),
    );
    assert!(out.condition_met);
    println!("=== {label} ===");
    println!("{}", traced.trace().render_gantt(100_000));
    for &id in &built.measured_ids {
        println!(
            "  {} turnaround: {:.2} s (ran in {:.0}% of quanta)",
            machine.view().app(id).unwrap().name,
            machine.turnaround_us(id).unwrap() as f64 / 1e6,
            traced.trace().run_fraction(id) * 100.0
        );
    }
    println!();
}

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| PaperApp::from_name(&s))
        .unwrap_or(PaperApp::Mg);
    println!(
        "workload: 2x{} + 2xBBMA + 2xnBBMA (set C, 1/20 scale)\n",
        app.name()
    );
    show("Linux 2.4-like baseline", linux_like(), app);
    show("Quanta Window policy", quanta_window(), app);
}
