//! The user-level CPU manager driving **real OS threads**.
//!
//! ```text
//! cargo run --release --example cpu_manager_demo
//! ```
//!
//! Reproduces the paper's §4 system end to end, outside the simulator:
//!
//! * a manager thread runs the Quanta Window policy with a 200 ms quantum
//!   over 2 processors' worth of gangs;
//! * three applications connect through the protocol, register worker
//!   threads (the run-time library's thread-creation interception), and
//!   publish bus-transaction rates into their shared arenas twice per
//!   quantum;
//! * workers count "transactions" in software (one per loop iteration of
//!   a memory-touching kernel), hit checkpoints where block signals take
//!   effect, and are steered by the manager's block/unblock gates.
//!
//! Expected output: the heavy streamer pair never runs together with the
//! other heavy streamer; each job's achieved iteration rate reflects the
//! manager's gang decisions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use busbw::core::estimator::QuantaWindowEstimator;
use busbw::core::manager::{AppRuntime, CpuManager, ManagerConfig};

fn main() {
    let cfg = ManagerConfig {
        num_cpus: 2,
        bus_total_tx_per_us: busbw::sim::PAPER_BUS_TX_PER_US,
        quantum_us: 200_000,
        samples_per_quantum: 2,
    };
    let (manager, handle) = CpuManager::new(cfg, Box::new(QuantaWindowEstimator::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let mgr_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || manager.run_realtime(stop))
    };

    // Three single-thread jobs: two "heavy" (publish ~20 tx/µs) and one
    // "light" (~0.1 tx/µs). With 2 cpus the manager should pair
    // heavy+light, rotating the heavies.
    let jobs: Vec<(&str, f64)> = vec![("heavy-A", 20.0), ("heavy-B", 20.0), ("light", 0.1)];
    let started = Instant::now();
    let mut worker_handles = Vec::new();
    let progress: Vec<Arc<AtomicU64>> = jobs.iter().map(|_| Arc::new(AtomicU64::new(0))).collect();

    for (i, (name, rate)) in jobs.iter().enumerate() {
        let mut app = AppRuntime::connect(&handle, *name).expect("manager alive");
        let th = app.register_thread().expect("manager alive");
        let stop = stop.clone();
        let prog = progress[i].clone();
        let rate = *rate;
        worker_handles.push(std::thread::spawn(move || {
            // The worker: touch memory, count transactions, publish the
            // arena at the manager-requested period, obey checkpoints.
            let mut buf = vec![0u8; 256 * 1024];
            let mut last_publish = Instant::now();
            let publish_every = Duration::from_micros(app.update_period_us());
            while !stop.load(Ordering::SeqCst) {
                // ~1 ms of "work"; count transactions proportional to the
                // job's nominal rate so the arena reports it faithfully.
                for b in buf.iter_mut().step_by(64) {
                    *b = b.wrapping_add(1);
                }
                th.count_transactions((rate * 1000.0) as u64);
                prog.fetch_add(1, Ordering::Relaxed);
                if last_publish.elapsed() >= publish_every {
                    let now_us = started.elapsed().as_micros() as u64;
                    app.publish_sample(now_us);
                    last_publish = Instant::now();
                }
                th.checkpoint();
                std::thread::sleep(Duration::from_millis(1));
            }
            app.disconnect();
        }));
    }

    // Observe for 3 seconds, reporting per-second progress.
    let mut last = vec![0u64; jobs.len()];
    for second in 1..=3u32 {
        std::thread::sleep(Duration::from_secs(1));
        print!("t={second}s  ");
        for (i, (name, _)) in jobs.iter().enumerate() {
            let now = progress[i].load(Ordering::Relaxed);
            print!("{name}: {:>4} iters  ", now - last[i]);
            last[i] = now;
        }
        println!();
    }

    stop.store(true, Ordering::SeqCst);
    for w in worker_handles {
        w.join().expect("worker");
    }
    mgr_thread.join().expect("manager");
    println!("\nall jobs steered by block/unblock gates; manager shut down cleanly");
}
