//! # busbw — bus-bandwidth-aware scheduling for SMPs
//!
//! A from-scratch Rust reproduction of
//!
//! > C. D. Antonopoulos, D. S. Nikolopoulos, T. S. Papatheodorou.
//! > *Scheduling Algorithms with Bus Bandwidth Considerations for SMPs.*
//! > ICPP 2003.
//!
//! The umbrella crate re-exports the workspace layers:
//!
//! * [`sim`] — a deterministic fluid simulator of the paper's platform: a
//!   4-way SMP with a shared front-side bus (29.5 bus transactions/µs
//!   sustained), per-cpu caches with warmth/affinity dynamics, and
//!   barrier-coupled thread gangs.
//! * [`perfmon`] — simulated performance-monitoring counters with the
//!   read/accumulate/sample surface of the `perfctr` driver the paper
//!   used.
//! * [`workloads`] — models of the paper's eleven NAS/Splash-2
//!   applications and the BBMA/nBBMA microbenchmarks.
//! * [`core`] — the contribution: the **Latest Quantum** and **Quanta
//!   Window** policies, the gang selection algorithm (Equation 1), the
//!   Linux 2.4-like baseline, ablation comparators, and the user-level
//!   CPU manager (shared arenas, block/unblock signal gates) runnable
//!   with real OS threads.
//! * [`metrics`] — moving windows, slowdown/improvement summaries, table
//!   rendering.
//!
//! ## Quickstart
//!
//! ```
//! use busbw::sim::{StopCondition, XEON_4WAY};
//! use busbw::workloads::{mix, paper::PaperApp};
//! use busbw::core::quanta_window;
//!
//! // Two CG instances + two saturating and two idle microbenchmarks,
//! // on the paper's 4-way Xeon, under the Quanta Window policy.
//! let spec = mix::fig2_set_c(PaperApp::Cg).scaled(0.05);
//! let built = mix::build_machine(&spec, XEON_4WAY, 42);
//! let mut machine = built.machine;
//! let mut policy = quanta_window();
//! let out = machine.run(
//!     &mut policy,
//!     StopCondition::AppsFinished(built.measured_ids.clone()),
//! );
//! assert!(out.condition_met);
//! for id in &built.measured_ids {
//!     println!("turnaround: {} µs", machine.turnaround_us(*id).unwrap());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use busbw_core as core;
pub use busbw_metrics as metrics;
pub use busbw_perfmon as perfmon;
pub use busbw_sim as sim;
pub use busbw_workloads as workloads;
