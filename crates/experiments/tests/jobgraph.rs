//! Integration tests for the sweep-wide job graph: run-key soundness
//! (any tunable change changes the key), cache-served bit-identity
//! (including collected traces), and byte-identical figure artifacts
//! across worker counts and cache states.

use std::path::PathBuf;

use busbw_experiments::cache::encode_result;
use busbw_experiments::fig2::{fold_fig2, plan_fig2, Fig2Set};
use busbw_experiments::{Engine, Plan, PolicyKind, RunCache, RunRequest, RunnerConfig, TraceMode};
use busbw_metrics::Table;
use busbw_sim::{XEON_4WAY, XEON_4WAY_HT};
use busbw_workloads::mix::fig2_set_b;
use busbw_workloads::paper::PaperApp;
use proptest::prelude::*;

/// A scratch cache directory unique to this test process + label.
fn scratch_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("busbw-jobgraph-{}-{label}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Two run requests get the same key exactly when every tunable —
    /// workload, policy, seed, scale, hard cap, machine — agrees. Keys
    /// never collide across differing configurations, and never differ
    /// for identical ones.
    #[test]
    fn run_key_is_sound_and_complete(
        seed_a in 0u64..64, seed_b in 0u64..64,
        scale_a in 1u32..8, scale_b in 1u32..8,
        app_a in 0usize..11, app_b in 0usize..11,
        pol_a in 0usize..4, pol_b in 0usize..4,
        cap_a in 1u32..4, cap_b in 1u32..4,
        ht_a in 0u8..2, ht_b in 0u8..2,
    ) {
        let policies = [
            PolicyKind::Linux,
            PolicyKind::Latest,
            PolicyKind::Window,
            PolicyKind::ModelDriven,
        ];
        let mk = |seed, scale: u32, app: usize, pol: usize, cap: u32, ht: u8| {
            let rc = RunnerConfig {
                seed,
                scale: scale as f64 * 0.01,
                hard_cap_factor: cap as f64 * 100.0,
                machine: if ht == 1 { XEON_4WAY_HT } else { XEON_4WAY },
                ..RunnerConfig::default()
            };
            RunRequest::spec(fig2_set_b(PaperApp::ALL[app]), policies[pol], &rc)
        };
        let a = mk(seed_a, scale_a, app_a, pol_a, cap_a, ht_a);
        let b = mk(seed_b, scale_b, app_b, pol_b, cap_b, ht_b);
        let same = seed_a == seed_b
            && scale_a == scale_b
            && app_a == app_b
            && pol_a == pol_b
            && cap_a == cap_b
            && ht_a == ht_b;
        prop_assert_eq!(a.key() == b.key(), same);
        prop_assert_eq!(a.key().hash64() == b.key().hash64(), same);
    }
}

/// A cache-served result — memory tier or a disk round-trip through a
/// fresh engine — is bit-identical to the fresh run, including the
/// collected trace events (the run key separates trace modes, so a
/// traced run can never be served a traceless result).
#[test]
fn cache_served_result_is_bit_identical_including_trace() {
    let dir = scratch_dir("bitident");
    std::fs::remove_dir_all(&dir).ok();
    let rc = RunnerConfig {
        scale: 0.02,
        trace: TraceMode::Collect,
        ..RunnerConfig::default()
    };
    let req = RunRequest::spec(fig2_set_b(PaperApp::Cg), PolicyKind::Window, &rc);

    let mut plan = Plan::new();
    let id = plan.cell(req);

    let mut cold = Engine::new(RunCache::new(Some(dir.clone()), true));
    let fresh = cold.execute(&plan, 1);
    assert_eq!(cold.stats().executed, 1);
    let fresh_bytes = encode_result(fresh.get(id));
    assert!(
        !fresh.get(id).events.is_empty(),
        "collected trace must be part of the cached payload"
    );

    // Memory tier: same engine, same plan.
    let mem = cold.execute(&plan, 1);
    assert_eq!(cold.stats().cache_hits, 1);
    assert_eq!(encode_result(mem.get(id)), fresh_bytes);

    // Disk tier: a fresh engine over the same directory executes nothing.
    let mut warm = Engine::new(RunCache::new(Some(dir.clone()), true));
    let served = warm.execute(&plan, 1);
    assert_eq!(warm.stats().executed, 0, "disk cache must serve the run");
    assert_eq!(warm.stats().cache_hits, 1);
    assert_eq!(encode_result(served.get(id)), fresh_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

/// One Figure 2 panel folded to CSV through a given engine and worker
/// count.
fn fig2b_csv(workers: usize, engine: &mut Engine, rc: &RunnerConfig) -> String {
    let mut plan = Plan::new();
    let cells = plan_fig2(
        &mut plan,
        Fig2Set::B,
        &[PolicyKind::Latest, PolicyKind::Window],
        rc,
    );
    let executed = engine.execute(&plan, workers);
    Table::from_figure(&fold_fig2(&cells, &executed)).to_csv()
}

/// The acceptance gate of the job-graph change: the figure artifact is
/// byte-identical whether runs execute serially, on the work-stealing
/// pool, against a cold disk cache, or entirely from a warm one.
#[test]
fn figure_csv_identical_across_workers_and_cache_states() {
    let dir = scratch_dir("csv");
    std::fs::remove_dir_all(&dir).ok();
    let rc = RunnerConfig {
        scale: 0.02,
        ..RunnerConfig::default()
    };

    let serial = fig2b_csv(1, &mut Engine::new(RunCache::new(None, true)), &rc);
    let stolen = fig2b_csv(4, &mut Engine::new(RunCache::new(None, true)), &rc);
    let uncached = fig2b_csv(4, &mut Engine::new(RunCache::new(None, false)), &rc);
    let cold = fig2b_csv(
        4,
        &mut Engine::new(RunCache::new(Some(dir.clone()), true)),
        &rc,
    );
    let mut warm_engine = Engine::new(RunCache::new(Some(dir.clone()), true));
    let warm = fig2b_csv(2, &mut warm_engine, &rc);

    assert_eq!(serial, stolen, "work stealing must not change the figure");
    assert_eq!(
        serial, uncached,
        "disabling the cache must not change the figure"
    );
    assert_eq!(serial, cold, "a cold disk cache must not change the figure");
    assert_eq!(serial, warm, "a warm disk cache must not change the figure");
    assert!(
        warm_engine.stats().cache_hits > 0 && warm_engine.stats().executed == 0,
        "warm pass must be fully cache-served: {:?}",
        warm_engine.stats()
    );

    std::fs::remove_dir_all(&dir).ok();
}
