//! Property test behind `experiments audit`'s preset suite: every
//! built-in invariant holds for every preset policy across randomized
//! paper-workload mixes at 1/10 scale. The negative direction (each
//! invariant fires on a seeded fault) lives in the audit crate's unit
//! tests and `src/audit.rs`.

use busbw_audit::Auditor;
use busbw_experiments::audit::{check_cell_differential, FuzzCell};
use busbw_experiments::mix_from_names;
use busbw_experiments::policy::{
    AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec,
};
use busbw_experiments::runner::{run_spec_hooked, PolicyKind, RunnerConfig, TraceMode};
use busbw_workloads::paper::PaperApp;
use proptest::prelude::*;

const PRESETS: [PolicyKind; 7] = [
    PolicyKind::Latest,
    PolicyKind::Window,
    PolicyKind::Linux,
    PolicyKind::LinuxO1,
    PolicyKind::RoundRobinGang,
    PolicyKind::RandomGang(7),
    PolicyKind::GreedyPack,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn presets_are_invariant_clean_on_random_mixes(
        policy_idx in 0..PRESETS.len(),
        app_idxs in proptest::collection::vec(0..PaperApp::ALL.len(), 2..4),
        seed in 0u64..10_000,
    ) {
        let names: Vec<&str> = app_idxs.iter().map(|&i| PaperApp::ALL[i].name()).collect();
        let mix = mix_from_names(&names).expect("paper names are known");
        let rc = RunnerConfig {
            scale: 0.1,
            seed,
            trace: TraceMode::Collect,
            ..RunnerConfig::default()
        };
        let mut auditor = Auditor::with_builtins();
        let result = run_spec_hooked(&mix, PRESETS[policy_idx], &rc, Some(&mut auditor));
        auditor.check_events(&result.events);
        let violations = auditor.take_violations();
        prop_assert!(
            violations.is_empty(),
            "{} over {names:?} (seed {seed}): {:?}",
            PRESETS[policy_idx].label(),
            violations
        );
    }
}

fn arb_stack() -> impl Strategy<Value = StackSpec> {
    (
        (0usize..5, 1usize..8),
        0usize..5,
        (0usize..5, 0u64..1000),
        0usize..6,
        0usize..5,
    )
        .prop_map(|((e, n), a, (s, seed), p, q)| StackSpec {
            estimator: match e {
                0 => EstimatorKind::Latest,
                1 => EstimatorKind::Window(n),
                2 => EstimatorKind::Ewma(n),
                3 => EstimatorKind::Raw,
                _ => EstimatorKind::Null,
            },
            admission: [
                AdmissionKind::Head,
                AdmissionKind::StrictHead,
                AdmissionKind::Fcfs,
                AdmissionKind::Widest,
                AdmissionKind::Open,
            ][a],
            selector: match s {
                0 => SelectorKind::Fitness,
                1 => SelectorKind::Random(seed),
                2 => SelectorKind::Greedy,
                3 => SelectorKind::Lookahead,
                _ => SelectorKind::None,
            },
            placer: [
                PlacerKind::Packed,
                PlacerKind::Scatter,
                PlacerKind::Smt,
                PlacerKind::PackLocal,
                PlacerKind::SpreadSockets,
                PlacerKind::Migrate,
            ][p],
            quantum_us: [20_000, 50_000, 100_000, 200_000, 400_000][q],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Random composed stacks over random §5 workload mixes produce
    /// byte-identical run-codec output across every execution path:
    /// event-driven vs legacy per-tick, serial vs N-worker engine vs the
    /// lockstep SoA batch solver, cold vs cache-warm — the full
    /// differential behind `experiments audit --fuzz`.
    #[test]
    fn exec_paths_byte_agree_on_random_stacks_and_mixes(
        stack in arb_stack(),
        app_idxs in proptest::collection::vec(0..PaperApp::ALL.len(), 2..4),
        seed in 0u64..10_000,
        sockets_idx in 0usize..3,
    ) {
        let mix: Vec<&str> = app_idxs.iter().map(|&i| PaperApp::ALL[i].name()).collect();
        let sockets = [1, 2, 4][sockets_idx];
        let cell = FuzzCell { stack, mix, seed, scale: 0.05, sockets };
        let violations = check_cell_differential(&cell, 2);
        prop_assert!(violations.is_empty(), "{cell:?}: {violations:?}");
    }
}
