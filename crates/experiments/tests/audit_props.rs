//! Property test behind `experiments audit`'s preset suite: every
//! built-in invariant holds for every preset policy across randomized
//! paper-workload mixes at 1/10 scale. The negative direction (each
//! invariant fires on a seeded fault) lives in the audit crate's unit
//! tests and `src/audit.rs`.

use busbw_audit::Auditor;
use busbw_experiments::mix_from_names;
use busbw_experiments::runner::{run_spec_hooked, PolicyKind, RunnerConfig, TraceMode};
use busbw_workloads::paper::PaperApp;
use proptest::prelude::*;

const PRESETS: [PolicyKind; 7] = [
    PolicyKind::Latest,
    PolicyKind::Window,
    PolicyKind::Linux,
    PolicyKind::LinuxO1,
    PolicyKind::RoundRobinGang,
    PolicyKind::RandomGang(7),
    PolicyKind::GreedyPack,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn presets_are_invariant_clean_on_random_mixes(
        policy_idx in 0..PRESETS.len(),
        app_idxs in proptest::collection::vec(0..PaperApp::ALL.len(), 2..4),
        seed in 0u64..10_000,
    ) {
        let names: Vec<&str> = app_idxs.iter().map(|&i| PaperApp::ALL[i].name()).collect();
        let mix = mix_from_names(&names).expect("paper names are known");
        let rc = RunnerConfig {
            scale: 0.1,
            seed,
            trace: TraceMode::Collect,
            ..RunnerConfig::default()
        };
        let mut auditor = Auditor::with_builtins();
        let result = run_spec_hooked(&mix, PRESETS[policy_idx], &rc, Some(&mut auditor));
        auditor.check_events(&result.events);
        let violations = auditor.take_violations();
        prop_assert!(
            violations.is_empty(),
            "{} over {names:?} (seed {seed}): {:?}",
            PRESETS[policy_idx].label(),
            violations
        );
    }
}
