//! End-to-end checks of the structured-tracing layer: the pinned event
//! sequence of a tiny deterministic run, worker-count invariance of the
//! merged stream, and the hardened (non-panicking) hard-cap path.

use busbw_core::linux_like;
use busbw_experiments::{
    merge_traces, par_map, run_spec, Fig2Set, PolicyKind, RunCompletion, RunnerConfig, TraceMode,
};
use busbw_sim::{AppDescriptor, ConstantDemand, Machine, StopCondition, ThreadSpec, XEON_4WAY};
use busbw_trace::{EventBus, TraceEvent};
use busbw_workloads::paper::PaperApp;

/// A machine with two single-thread constant-demand apps, far more work
/// than two quanta can retire — the smallest fully deterministic workload
/// exercising placements, bus solves, and phase edges.
fn two_app_machine() -> Machine {
    let mut m = Machine::new(XEON_4WAY);
    for name in ["alpha", "beta"] {
        m.add_app(AppDescriptor::new(
            name,
            vec![ThreadSpec::new(
                10_000_000.0,
                Box::new(ConstantDemand::new(0.0, 0.0)),
            )],
        ));
    }
    m
}

#[test]
fn two_app_two_quantum_event_sequence_is_pinned() {
    let (bus, handle) = EventBus::memory();
    let mut m = two_app_machine();
    m.set_tracer(bus);
    let mut sched = linux_like();
    // Exactly two Linux quanta (100 ms each).
    let out = m.run(&mut sched, StopCondition::At(200_000));
    assert!(out.condition_met);

    let events = handle.take();
    let got: Vec<String> = events
        .iter()
        .map(|e| format!("{}@{}", e.kind(), e.at_us()))
        .collect();
    // The pinned sequence: the four pipeline stages report at each
    // reschedule, both threads are placed at t=0, one phase edge fires
    // per thread as its (zero-rate) demand is first observed, a single
    // Λ solve (constant demand never re-emits), and the re-placements at
    // the 100 ms quantum boundary. Any change to the tick loop's (or the
    // policy pipeline's) emission points shows up here verbatim.
    let want = [
        "stage_decision@0",
        "stage_decision@0",
        "stage_decision@0",
        "stage_decision@0",
        "placement@0",
        "placement@0",
        "phase_edge@0",
        "phase_edge@0",
        "bus_solve@0",
        "stage_decision@100000",
        "stage_decision@100000",
        "stage_decision@100000",
        "stage_decision@100000",
        "placement@100000",
        "placement@100000",
    ];
    assert_eq!(got, want, "full sequence: {got:#?}");

    // The same events serialize to parseable JSON with monotone times.
    let mut last = 0;
    for e in &events {
        assert!(e.at_us() >= last, "events must be time-ordered");
        last = e.at_us();
        let js = e.to_json();
        busbw_trace::json::parse(&js).expect("event JSON parses");
    }
}

#[test]
fn merged_selection_events_are_identical_serial_vs_four_workers() {
    let rc = RunnerConfig {
        scale: 0.05,
        trace: TraceMode::Collect,
        ..RunnerConfig::default()
    };
    let jobs: Vec<(PaperApp, PolicyKind)> = vec![
        (PaperApp::Cg, PolicyKind::Window),
        (PaperApp::Mg, PolicyKind::Latest),
        (PaperApp::Volrend, PolicyKind::Window),
        (PaperApp::Raytrace, PolicyKind::Latest),
    ];
    let run_all = |workers: usize| {
        let results = par_map(&jobs, workers, |(app, p)| {
            run_spec(&Fig2Set::B.spec(*app), *p, &rc)
        });
        merge_traces(&results)
    };
    let serial = run_all(1);
    let parallel = run_all(4);

    // The merged stream — and in particular every per-quantum gang
    // selection — is byte-for-byte identical regardless of worker count.
    let jsonl = |merged: &[(usize, TraceEvent)], kind: Option<&str>| {
        merged
            .iter()
            .filter(|(_, e)| kind.is_none_or(|k| e.kind() == k))
            .map(|(ji, e)| format!("{ji}:{}", e.to_json()))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let sel_serial = jsonl(&serial, Some("gang_selected"));
    assert!(!sel_serial.is_empty(), "bus-aware runs must select gangs");
    assert_eq!(sel_serial, jsonl(&parallel, Some("gang_selected")));
    assert_eq!(jsonl(&serial, None), jsonl(&parallel, None));
}

#[test]
fn hard_capped_run_reports_unfinished_apps_instead_of_panicking() {
    // A cap far below the work volume: no measured app can finish.
    let rc = RunnerConfig {
        scale: 0.05,
        hard_cap_factor: 0.2,
        trace: TraceMode::Collect,
        ..RunnerConfig::default()
    };
    let r = run_spec(&Fig2Set::A.spec(PaperApp::Cg), PolicyKind::Linux, &rc);

    let RunCompletion::HardCap { unfinished } = &r.completion else {
        panic!("expected the hard cap to fire, got {:?}", r.completion);
    };
    assert_eq!(unfinished.len(), 2, "both CG instances were cut off");
    for u in unfinished {
        assert!(u.name.contains("CG"), "unfinished app name: {}", u.name);
        assert!(
            u.progress_frac > 0.0 && u.progress_frac < 1.0,
            "progress {}",
            u.progress_frac
        );
    }
    // Turnarounds are censored at the stop time, not absent.
    assert_eq!(r.turnarounds_us.len(), 2);
    assert!(r.turnarounds_us.iter().all(|&t| t > 0.0));
    assert!(r.mean_turnaround_us > 0.0);
    // And the censoring is visible in the trace.
    let cut: Vec<&TraceEvent> = r
        .events
        .iter()
        .filter(|e| e.kind() == "run_unfinished")
        .collect();
    assert_eq!(cut.len(), 2);

    // The same workload with the default cap finishes cleanly.
    let ok = run_spec(
        &Fig2Set::A.spec(PaperApp::Cg),
        PolicyKind::Linux,
        &RunnerConfig {
            hard_cap_factor: 100.0,
            ..rc
        },
    );
    assert_eq!(ok.completion, RunCompletion::Finished);
    assert!(ok.events.iter().all(|e| e.kind() != "run_unfinished"));
}
