//! Byte-identity of the phase profiler: a profiling-enabled run must be
//! indistinguishable, under the run codec, from the same run with the
//! profiler off. The `PhaseTimer` only reads wall clocks, so nothing it
//! does may leak into simulation state — this is the property that lets
//! `bench profile` attribute nanoseconds to the *production* tick path
//! rather than to an instrumented variant of it.
//!
//! Mechanical timer semantics (nesting, re-entrancy, zero-duration
//! phases, disabled cost) are unit-tested in `busbw-sim::prof`.

use busbw_experiments::cache::encode_result;
use busbw_experiments::mix_from_names;
use busbw_experiments::policy::{
    AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec,
};
use busbw_experiments::runner::{run_spec, run_spec_profiled, PolicyKind, RunnerConfig, TraceMode};
use busbw_workloads::paper::PaperApp;
use proptest::prelude::*;

fn arb_stack() -> impl Strategy<Value = StackSpec> {
    (
        (0usize..5, 1usize..8),
        0usize..5,
        (0usize..5, 0u64..1000),
        0usize..3,
        0usize..5,
    )
        .prop_map(|((e, n), a, (s, seed), p, q)| StackSpec {
            estimator: match e {
                0 => EstimatorKind::Latest,
                1 => EstimatorKind::Window(n),
                2 => EstimatorKind::Ewma(n),
                3 => EstimatorKind::Raw,
                _ => EstimatorKind::Null,
            },
            admission: [
                AdmissionKind::Head,
                AdmissionKind::StrictHead,
                AdmissionKind::Fcfs,
                AdmissionKind::Widest,
                AdmissionKind::Open,
            ][a],
            selector: match s {
                0 => SelectorKind::Fitness,
                1 => SelectorKind::Random(seed),
                2 => SelectorKind::Greedy,
                3 => SelectorKind::Lookahead,
                _ => SelectorKind::None,
            },
            placer: [PlacerKind::Packed, PlacerKind::Scatter, PlacerKind::Smt][p],
            quantum_us: [20_000, 50_000, 100_000, 200_000, 400_000][q],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn profiled_runs_are_codec_identical_to_unprofiled(
        stack in arb_stack(),
        app_idxs in proptest::collection::vec(0..PaperApp::ALL.len(), 2..4),
        seed in 0u64..10_000,
    ) {
        let names: Vec<&str> = app_idxs.iter().map(|&i| PaperApp::ALL[i].name()).collect();
        let mix = mix_from_names(&names).expect("paper names are known");
        let rc = RunnerConfig {
            scale: 0.05,
            seed,
            trace: TraceMode::Null,
            ..RunnerConfig::default()
        };
        let policy = PolicyKind::Stack(stack);

        let mut plain = run_spec(&mix, policy, &rc);
        let (mut profiled, phases) = run_spec_profiled(&mix, policy, &rc);
        // Stage timings are wall-clock observations (explicitly excluded
        // from figure data and from the audit differential's canonical
        // bytes); everything else must match bit-for-bit.
        plain.stage_timings = None;
        profiled.stage_timings = None;

        // The profiler must have actually been on (the property is vacuous
        // against a timer that never fired) …
        prop_assert!(
            !phases.is_empty(),
            "profiled run recorded no phases over {names:?} (seed {seed})"
        );
        // … and invisible to everything the codec can see.
        prop_assert_eq!(
            encode_result(&plain),
            encode_result(&profiled),
            "profiling changed the run-codec bytes: {:?} over {:?} (seed {})",
            policy.label(),
            &names,
            seed
        );
    }
}
