//! Golden-decision pinned sequences: every preset policy must reproduce,
//! bit for bit, the `Decision` stream the pre-pipeline monolithic
//! schedulers produced on fixed workloads. The hashes below were captured
//! from the monoliths immediately before the pipeline refactor; a change
//! to any rotation rule, tie-break, RNG draw order, estimator feed, or
//! placement pass shows up here as a hash mismatch.

use busbw_experiments::PolicyKind;
use busbw_sim::{Decision, MachineView, Scheduler, StopCondition, XEON_4WAY};
use busbw_workloads::mix::{build_machine, fig2_set_a, fig2_set_b, WorkloadSpec};
use busbw_workloads::paper::{PaperApp, DEFAULT_SOLO_WORK_US};

const SCALE: f64 = 0.05;
const SEED: u64 = 42;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Wraps a scheduler and folds every `Decision` it emits (placements in
/// order, the requested quantum and sample period, and the decision time)
/// into one FNV-1a hash.
struct DecisionHasher {
    inner: Box<dyn Scheduler>,
    hash: u64,
    calls: u64,
}

impl DecisionHasher {
    fn new(inner: Box<dyn Scheduler>) -> Self {
        DecisionHasher {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
            calls: 0,
        }
    }
}

impl Scheduler for DecisionHasher {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        let d = self.inner.schedule(view);
        self.calls += 1;
        fnv(&mut self.hash, &view.now.to_le_bytes());
        fnv(&mut self.hash, &(d.assignments.len() as u64).to_le_bytes());
        for a in &d.assignments {
            fnv(&mut self.hash, &a.thread.0.to_le_bytes());
            fnv(&mut self.hash, &(a.cpu.0 as u64).to_le_bytes());
        }
        fnv(&mut self.hash, &d.next_resched_in_us.to_le_bytes());
        fnv(
            &mut self.hash,
            &d.sample_period_us.unwrap_or(0).to_le_bytes(),
        );
        d
    }

    fn on_sample(&mut self, view: &MachineView<'_>) {
        self.inner.on_sample(view);
    }
}

/// Drive `policy` over `spec` exactly as `run_spec` would (same scale,
/// seed, and hard cap) and return (decision count, decision-stream hash).
fn decision_hash(spec: &WorkloadSpec, policy: PolicyKind) -> (u64, u64) {
    let scaled = spec.clone().scaled(SCALE);
    let built = build_machine(&scaled, XEON_4WAY, SEED);
    let mut machine = built.machine;
    machine.set_hard_cap_us((DEFAULT_SOLO_WORK_US * SCALE * 100.0) as u64);
    let mut sched = DecisionHasher::new(policy.build());
    machine.run(&mut sched, StopCondition::AppsFinished(built.measured_ids));
    (sched.calls, sched.hash)
}

/// The pinned (policy, workload) → (calls, hash) table. Captured from the
/// pre-refactor monolithic schedulers; the pipeline presets must match.
fn golden() -> Vec<(PolicyKind, &'static str, u64, u64)> {
    vec![
        (PolicyKind::Linux, "a", 17, 0xf741d12b8f711074),
        (PolicyKind::Linux, "b", 9, 0x90212e2b43ec37a0),
        (PolicyKind::Latest, "a", 7, 0x1990b7730bfbf7b0),
        (PolicyKind::Latest, "b", 3, 0x049ef4382947e781),
        (PolicyKind::Window, "a", 7, 0x1990b7730bfbf7b0),
        (PolicyKind::Window, "b", 3, 0x049ef4382947e781),
        (PolicyKind::WindowN(3), "a", 7, 0x021c9d0c8758ea73),
        (
            PolicyKind::LatestWithQuantum(100_000),
            "b",
            7,
            0xe13b8261a6cafca7,
        ),
        (PolicyKind::RoundRobinGang, "a", 5, 0xb83915bdef2d3c6e),
        (PolicyKind::RoundRobinGang, "b", 5, 0xb83915bdef2d3c6e),
        (PolicyKind::RandomGang(SEED), "a", 9, 0x11022960afec2b2e),
        (PolicyKind::RandomGang(SEED), "b", 4, 0x11597f0a837ea8df),
        (PolicyKind::GreedyPack, "a", 10, 0xb898c84a580d7b91),
        (PolicyKind::GreedyPack, "b", 3, 0x1c345db63a1b5f38),
        (PolicyKind::LinuxO1, "a", 53, 0x16d50ea921e93c11),
        (PolicyKind::LinuxO1, "b", 50, 0xe2c5ba9cacc3daec),
        (PolicyKind::ModelDriven, "a", 4, 0x3dff88fcdf56cc55),
        (PolicyKind::ModelDriven, "b", 4, 0xdfea792ad6b054f1),
    ]
}

fn spec_for(tag: &str) -> WorkloadSpec {
    match tag {
        "a" => fig2_set_a(PaperApp::Cg),
        "b" => fig2_set_b(PaperApp::Mg),
        other => panic!("unknown workload tag {other}"),
    }
}

#[test]
fn presets_reproduce_pre_refactor_decision_sequences() {
    let mut failures = Vec::new();
    for (policy, tag, want_calls, want_hash) in golden() {
        let (calls, hash) = decision_hash(&spec_for(tag), policy);
        println!("(PolicyKind::{policy:?}, \"{tag}\", {calls}, 0x{hash:016x}),");
        if (calls, hash) != (want_calls, want_hash) {
            failures.push(format!(
                "{policy:?}/{tag}: got ({calls}, 0x{hash:016x}), want ({want_calls}, 0x{want_hash:016x})"
            ));
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}
