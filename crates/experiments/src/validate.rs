//! The reproduction gate: every shape claim of EXPERIMENTS.md as a
//! machine-checkable assertion.
//!
//! `experiments validate` runs a reduced-scale pass over the whole figure
//! suite and prints PASS/FAIL per claim — the command a CI pipeline runs
//! to ensure a change to the simulator, the calibration, or the policies
//! has not silently broken the reproduction.
//!
//! The suite declares all of its runs as job-graph cells up front — the
//! Figure 2 panels, the solo/fig1 probes, the fitness and strawman
//! cells — so they execute on the work-stealing pool with cross-claim
//! dedup (e.g. the Window cells of the fitness claim are the same cells
//! as the Figure 2 panels') instead of the old one-`run_spec`-at-a-time
//! serial loop.

use busbw_metrics::{improvement_pct, FigureSummary};
use busbw_workloads::mix;
use busbw_workloads::paper::PaperApp;

use crate::fig2::{fold_fig2, plan_fig2, Fig2Cells, Fig2Set};
use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunnerConfig};

/// One validated claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Which paper artifact the claim belongs to.
    pub figure: &'static str,
    /// The claim, in words.
    pub claim: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Measured evidence.
    pub detail: String,
}

fn claim(figure: &'static str, text: &'static str, pass: bool, detail: String) -> Claim {
    Claim {
        figure,
        claim: text,
        pass,
        detail,
    }
}

/// Spread (max − min) of a series.
fn spread(fig: &FigureSummary, series: &str) -> f64 {
    fig.series_max(series).unwrap_or(0.0) - fig.series_min(series).unwrap_or(0.0)
}

/// The fitness-vs-round-robin aggregate cells.
const FITNESS_CELLS: [(Fig2Set, PaperApp); 3] = [
    (Fig2Set::B, PaperApp::Raytrace),
    (Fig2Set::B, PaperApp::Cg),
    (Fig2Set::C, PaperApp::Mg),
];

/// Cell handles for the whole validation suite.
#[derive(Debug)]
pub struct ValidateCells {
    /// Solo run per app, `PaperApp::ALL` order (Fig. 1A rates).
    solos: Vec<CellId>,
    /// CG + 2×BBMA (saturation claim).
    cg_bbma: CellId,
    /// MG two-instance / +BBMA / +nBBMA (Fig. 1B slowdowns; the solo
    /// denominator is `solos[MG]`).
    mg_solo: CellId,
    mg_two: CellId,
    mg_bbma: CellId,
    mg_nbbma: CellId,
    /// The three Figure 2 panels with the default policies.
    panels: Vec<(Fig2Set, Fig2Cells)>,
    /// `(round_robin, window)` per [`FITNESS_CELLS`] entry.
    fitness: Vec<(CellId, CellId)>,
    /// `(linux, greedy)` for the strawman claim on set C / MG.
    strawman: (CellId, CellId),
}

/// Declare every run the validation suite needs.
pub fn plan_validate(plan: &mut Plan, rc: &RunnerConfig) -> ValidateCells {
    let solos = PaperApp::ALL
        .iter()
        .map(|&app| plan.cell(RunRequest::spec(mix::fig1_solo(app), PolicyKind::Linux, rc)))
        .collect::<Vec<_>>();
    let cg_bbma = plan.cell(RunRequest::spec(
        mix::fig1_with_bbma(PaperApp::Cg),
        PolicyKind::Linux,
        rc,
    ));
    let mg = PaperApp::ALL
        .iter()
        .position(|&a| a == PaperApp::Mg)
        .expect("MG is in the suite");
    let mg_solo = solos[mg];
    let mg_two = plan.cell(RunRequest::spec(
        mix::fig1_two_instances(PaperApp::Mg),
        PolicyKind::Linux,
        rc,
    ));
    let mg_bbma = plan.cell(RunRequest::spec(
        mix::fig1_with_bbma(PaperApp::Mg),
        PolicyKind::Linux,
        rc,
    ));
    let mg_nbbma = plan.cell(RunRequest::spec(
        mix::fig1_with_nbbma(PaperApp::Mg),
        PolicyKind::Linux,
        rc,
    ));
    let panels = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
        .into_iter()
        .map(|s| {
            (
                s,
                plan_fig2(plan, s, &[PolicyKind::Latest, PolicyKind::Window], rc),
            )
        })
        .collect();
    let fitness = FITNESS_CELLS
        .iter()
        .map(|&(set, app)| {
            let spec = set.spec(app);
            (
                plan.cell(RunRequest::spec(
                    spec.clone(),
                    PolicyKind::RoundRobinGang,
                    rc,
                )),
                plan.cell(RunRequest::spec(spec, PolicyKind::Window, rc)),
            )
        })
        .collect();
    let strawman_spec = Fig2Set::C.spec(PaperApp::Mg);
    let strawman = (
        plan.cell(RunRequest::spec(
            strawman_spec.clone(),
            PolicyKind::Linux,
            rc,
        )),
        plan.cell(RunRequest::spec(strawman_spec, PolicyKind::GreedyPack, rc)),
    );
    ValidateCells {
        solos,
        cg_bbma,
        mg_solo,
        mg_two,
        mg_bbma,
        mg_nbbma,
        panels,
        fitness,
        strawman,
    }
}

/// Fold the executed cells into the claim list.
pub fn fold_validate(cells: &ValidateCells, executed: &Executed) -> Vec<Claim> {
    let mut out = Vec::new();

    // ---- Figure 1A claims ----
    let rates: Vec<(PaperApp, f64)> = PaperApp::ALL
        .iter()
        .zip(&cells.solos)
        .map(|(&app, &id)| (app, executed.get(id).measured_apps_rate))
        .collect();
    let non_bursty_sorted = rates
        .iter()
        .filter(|(a, _)| *a != PaperApp::Raytrace)
        .map(|&(_, r)| r)
        .collect::<Vec<_>>()
        .windows(2)
        .all(|w| w[0] < w[1]);
    out.push(claim(
        "fig1a",
        "solo rates increase along the paper's ordering",
        non_bursty_sorted,
        format!("{rates:?}"),
    ));
    let bbma_rate = executed.get(cells.cg_bbma).workload_rate;
    out.push(claim(
        "fig1a",
        "BBMA mixes drive the workload near saturation (>25 tx/µs)",
        bbma_rate > 25.0,
        format!("{bbma_rate:.1} tx/µs"),
    ));

    // ---- Figure 1B claims ----
    let solo = executed.get(cells.mg_solo).mean_turnaround_us;
    let two = executed.get(cells.mg_two).mean_turnaround_us / solo;
    let with_bbma = executed.get(cells.mg_bbma).mean_turnaround_us / solo;
    let with_nbbma = executed.get(cells.mg_nbbma).mean_turnaround_us / solo;
    out.push(claim(
        "fig1b",
        "two heavy instances lose ~41-61 %",
        (1.2..1.9).contains(&two),
        format!("MG 2-instance slowdown {two:.2}x"),
    ));
    out.push(claim(
        "fig1b",
        "BBMA pressure slows a heavy app 2-3x",
        (1.7..3.2).contains(&with_bbma),
        format!("MG+2BBMA slowdown {with_bbma:.2}x"),
    ));
    out.push(claim(
        "fig1b",
        "nBBMA background is free",
        (0.95..1.1).contains(&with_nbbma),
        format!("MG+2nBBMA slowdown {with_nbbma:.2}x"),
    ));

    // ---- Figure 2 claims ----
    let figs: Vec<(Fig2Set, FigureSummary)> = cells
        .panels
        .iter()
        .map(|(s, c)| (*s, fold_fig2(c, executed)))
        .collect();
    for (set, fig) in &figs {
        for series in ["Latest", "Window"] {
            let mean = fig.series_mean(series).unwrap_or(f64::NAN);
            out.push(claim(
                set.id(),
                "policies improve mean turnaround over Linux",
                mean > 0.0,
                format!("{series} mean {mean:+.1} %"),
            ));
        }
    }
    let set_a = &figs[0].1;
    out.push(claim(
        "fig2a",
        "saturated-background set shows substantial peak wins (>=20 %)",
        set_a.series_max("Latest").unwrap_or(0.0) >= 20.0,
        format!(
            "Latest max {:+.1} %",
            set_a.series_max("Latest").unwrap_or(0.0)
        ),
    ));
    let set_b = &figs[1].1;
    // "More stable" means not-wider spread: at tiny scales the two
    // policies can make identical decisions and tie exactly, which is
    // stability, not a regression.
    out.push(claim(
        "fig2b",
        "Quanta Window is at least as stable as Latest Quantum on set B",
        spread(set_b, "Window") <= spread(set_b, "Latest") + 0.5,
        format!(
            "spread: Window {:.1} vs Latest {:.1}",
            spread(set_b, "Window"),
            spread(set_b, "Latest")
        ),
    ));

    // ---- Ablation claim: fitness beats oblivious fills in aggregate ----
    let mut log_ratio = 0.0;
    for &(rr, win) in &cells.fitness {
        log_ratio +=
            (executed.get(rr).mean_turnaround_us / executed.get(win).mean_turnaround_us).ln();
    }
    let geo = (log_ratio / cells.fitness.len() as f64).exp();
    out.push(claim(
        "ablate-fitness",
        "Equation-1 fitness beats round-robin gang in aggregate",
        geo > 1.0,
        format!("geo-mean speedup {geo:.3}x"),
    ));

    // ---- Greedy strawman claim ----
    let (linux_id, greedy_id) = cells.strawman;
    let linux = executed.get(linux_id).mean_turnaround_us;
    let greedy = executed.get(greedy_id).mean_turnaround_us;
    out.push(claim(
        "ablate-fitness",
        "greedy bandwidth-packing is harmful",
        greedy > linux,
        format!("greedy {:+.1} % vs Linux", improvement_pct(linux, greedy)),
    ));

    out
}

/// Run the full validation suite. Claims are grouped per figure; every
/// run is deterministic for a given `rc`.
pub fn validate(rc: &RunnerConfig) -> Vec<Claim> {
    run_figure(rc, |plan| plan_validate(plan, rc), fold_validate)
}

/// Render claims as a report; returns `(text, all_passed)`.
pub fn render(claims: &[Claim]) -> (String, bool) {
    let mut text = String::new();
    let mut all = true;
    for c in claims {
        all &= c.pass;
        text.push_str(&format!(
            "[{}] {:14} {} — {}\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.figure,
            c.claim,
            c.detail
        ));
    }
    text.push_str(&format!(
        "\n{}/{} claims hold\n",
        claims.iter().filter(|c| c.pass).count(),
        claims.len()
    ));
    (text, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_suite_passes_at_reduced_scale() {
        let rc = RunnerConfig::quick();
        let claims = validate(&rc);
        let (report, all) = render(&claims);
        assert!(all, "reproduction claims failed:\n{report}");
        assert!(claims.len() >= 12);
    }

    #[test]
    fn validation_plan_dedups_cross_claim_cells() {
        // The fitness claim's Window cells and the strawman's Linux cell
        // are already declared by the Figure 2 panels.
        let rc = RunnerConfig::quick();
        let mut plan = Plan::new();
        plan_validate(&mut plan, &rc);
        assert!(
            (plan.declared() as usize) > plan.len(),
            "expected cross-claim dedup: declared {} unique {}",
            plan.declared(),
            plan.len()
        );
    }
}
