//! The reproduction gate: every shape claim of EXPERIMENTS.md as a
//! machine-checkable assertion.
//!
//! `experiments validate` runs a reduced-scale pass over the whole figure
//! suite and prints PASS/FAIL per claim — the command a CI pipeline runs
//! to ensure a change to the simulator, the calibration, or the policies
//! has not silently broken the reproduction.

use busbw_metrics::{improvement_pct, FigureSummary};
use busbw_workloads::mix;
use busbw_workloads::paper::PaperApp;

use crate::fig2::{fig2, Fig2Set};
use crate::runner::{run_spec, solo_turnaround_us, PolicyKind, RunnerConfig};

/// One validated claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Which paper artifact the claim belongs to.
    pub figure: &'static str,
    /// The claim, in words.
    pub claim: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Measured evidence.
    pub detail: String,
}

fn claim(figure: &'static str, text: &'static str, pass: bool, detail: String) -> Claim {
    Claim {
        figure,
        claim: text,
        pass,
        detail,
    }
}

/// Spread (max − min) of a series.
fn spread(fig: &FigureSummary, series: &str) -> f64 {
    fig.series_max(series).unwrap_or(0.0) - fig.series_min(series).unwrap_or(0.0)
}

/// Run the full validation suite. Claims are grouped per figure; every
/// run is deterministic for a given `rc`.
pub fn validate(rc: &RunnerConfig) -> Vec<Claim> {
    let mut out = Vec::new();

    // ---- Figure 1A claims ----
    let mut rates = Vec::new();
    for app in PaperApp::ALL {
        let r = run_spec(&mix::fig1_solo(app), PolicyKind::Linux, rc);
        rates.push((app, r.measured_apps_rate));
    }
    let non_bursty_sorted = rates
        .iter()
        .filter(|(a, _)| *a != PaperApp::Raytrace)
        .map(|&(_, r)| r)
        .collect::<Vec<_>>()
        .windows(2)
        .all(|w| w[0] < w[1]);
    out.push(claim(
        "fig1a",
        "solo rates increase along the paper's ordering",
        non_bursty_sorted,
        format!("{rates:?}"),
    ));
    let bbma = run_spec(&mix::fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux, rc);
    out.push(claim(
        "fig1a",
        "BBMA mixes drive the workload near saturation (>25 tx/µs)",
        bbma.workload_rate > 25.0,
        format!("{:.1} tx/µs", bbma.workload_rate),
    ));

    // ---- Figure 1B claims ----
    let solo = solo_turnaround_us(PaperApp::Mg, rc);
    let two = run_spec(
        &mix::fig1_two_instances(PaperApp::Mg),
        PolicyKind::Linux,
        rc,
    )
    .mean_turnaround_us
        / solo;
    let with_bbma = run_spec(&mix::fig1_with_bbma(PaperApp::Mg), PolicyKind::Linux, rc)
        .mean_turnaround_us
        / solo;
    let with_nbbma = run_spec(&mix::fig1_with_nbbma(PaperApp::Mg), PolicyKind::Linux, rc)
        .mean_turnaround_us
        / solo;
    out.push(claim(
        "fig1b",
        "two heavy instances lose ~41-61 %",
        (1.2..1.9).contains(&two),
        format!("MG 2-instance slowdown {two:.2}x"),
    ));
    out.push(claim(
        "fig1b",
        "BBMA pressure slows a heavy app 2-3x",
        (1.7..3.2).contains(&with_bbma),
        format!("MG+2BBMA slowdown {with_bbma:.2}x"),
    ));
    out.push(claim(
        "fig1b",
        "nBBMA background is free",
        (0.95..1.1).contains(&with_nbbma),
        format!("MG+2nBBMA slowdown {with_nbbma:.2}x"),
    ));

    // ---- Figure 2 claims ----
    let figs: Vec<(Fig2Set, FigureSummary)> = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
        .into_iter()
        .map(|s| (s, fig2(s, rc)))
        .collect();
    for (set, fig) in &figs {
        for series in ["Latest", "Window"] {
            let mean = fig.series_mean(series).unwrap_or(f64::NAN);
            out.push(claim(
                set.id(),
                "policies improve mean turnaround over Linux",
                mean > 0.0,
                format!("{series} mean {mean:+.1} %"),
            ));
        }
    }
    let set_a = &figs[0].1;
    out.push(claim(
        "fig2a",
        "saturated-background set shows substantial peak wins (>=20 %)",
        set_a.series_max("Latest").unwrap_or(0.0) >= 20.0,
        format!(
            "Latest max {:+.1} %",
            set_a.series_max("Latest").unwrap_or(0.0)
        ),
    ));
    let set_b = &figs[1].1;
    // "More stable" means not-wider spread: at tiny scales the two
    // policies can make identical decisions and tie exactly, which is
    // stability, not a regression.
    out.push(claim(
        "fig2b",
        "Quanta Window is at least as stable as Latest Quantum on set B",
        spread(set_b, "Window") <= spread(set_b, "Latest") + 0.5,
        format!(
            "spread: Window {:.1} vs Latest {:.1}",
            spread(set_b, "Window"),
            spread(set_b, "Latest")
        ),
    ));

    // ---- Ablation claim: fitness beats oblivious fills in aggregate ----
    let mut log_ratio = 0.0;
    let cells = [
        (Fig2Set::B, PaperApp::Raytrace),
        (Fig2Set::B, PaperApp::Cg),
        (Fig2Set::C, PaperApp::Mg),
    ];
    for (set, app) in cells {
        let spec = set.spec(app);
        let rr = run_spec(&spec, PolicyKind::RoundRobinGang, rc);
        let win = run_spec(&spec, PolicyKind::Window, rc);
        log_ratio += (rr.mean_turnaround_us / win.mean_turnaround_us).ln();
    }
    let geo = (log_ratio / cells.len() as f64).exp();
    out.push(claim(
        "ablate-fitness",
        "Equation-1 fitness beats round-robin gang in aggregate",
        geo > 1.0,
        format!("geo-mean speedup {geo:.3}x"),
    ));

    // ---- Greedy strawman claim ----
    let spec = Fig2Set::C.spec(PaperApp::Mg);
    let linux = run_spec(&spec, PolicyKind::Linux, rc);
    let greedy = run_spec(&spec, PolicyKind::GreedyPack, rc);
    out.push(claim(
        "ablate-fitness",
        "greedy bandwidth-packing is harmful",
        greedy.mean_turnaround_us > linux.mean_turnaround_us,
        format!(
            "greedy {:+.1} % vs Linux",
            improvement_pct(linux.mean_turnaround_us, greedy.mean_turnaround_us)
        ),
    ));

    out
}

/// Render claims as a report; returns `(text, all_passed)`.
pub fn render(claims: &[Claim]) -> (String, bool) {
    let mut text = String::new();
    let mut all = true;
    for c in claims {
        all &= c.pass;
        text.push_str(&format!(
            "[{}] {:14} {} — {}\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.figure,
            c.claim,
            c.detail
        ));
    }
    text.push_str(&format!(
        "\n{}/{} claims hold\n",
        claims.iter().filter(|c| c.pass).count(),
        claims.len()
    ));
    (text, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_suite_passes_at_reduced_scale() {
        let rc = RunnerConfig::quick();
        let claims = validate(&rc);
        let (report, all) = render(&claims);
        assert!(all, "reproduction claims failed:\n{report}");
        assert!(claims.len() >= 12);
    }
}
