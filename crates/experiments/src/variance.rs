//! Seed-sensitivity of the headline numbers.
//!
//! Two stochastic ingredients exist in the reproduction: the Raytrace
//! burst process and the baseline's selection noise (standing in for
//! kernel timer/balancer nondeterminism — see DESIGN.md §6). The paper
//! reports single measurements; this experiment reruns Figure 2B (the set
//! with the strongest stochastic effects) across seeds and reports
//! mean / min / max improvement per application — the error bars the
//! paper did not have.
//!
//! The per-seed runs are declared as job-graph cells (2 × seeds × 11
//! apps), so the sweep parallelizes across `--workers` like the figures
//! instead of looping serially.

use busbw_metrics::{improvement_pct, mean, ExperimentRow, FigureSummary};
use busbw_workloads::paper::PaperApp;

use crate::fig2::Fig2Set;
use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunnerConfig};

/// Cell handles for the variance figure: per app, `seeds` pairs of
/// `(linux, policy)` cells at seed `rc.seed + k`.
#[derive(Debug)]
pub struct VarianceCells {
    policy: PolicyKind,
    seeds: u64,
    per_app: Vec<Vec<(CellId, CellId)>>,
}

/// Declare the multi-seed Figure 2B cells for one policy.
pub fn plan_variance(
    plan: &mut Plan,
    policy: PolicyKind,
    seeds: u64,
    rc: &RunnerConfig,
) -> VarianceCells {
    assert!(seeds >= 1, "need at least one seed");
    let per_app = PaperApp::ALL
        .iter()
        .map(|&app| {
            let spec = Fig2Set::B.spec(app);
            (0..seeds)
                .map(|k| {
                    let rck = RunnerConfig {
                        seed: rc.seed + k,
                        ..*rc
                    };
                    (
                        plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, &rck)),
                        plan.cell(RunRequest::spec(spec.clone(), policy, &rck)),
                    )
                })
                .collect()
        })
        .collect();
    VarianceCells {
        policy,
        seeds,
        per_app,
    }
}

/// Fold the variance figure: mean/min/max improvement per application.
pub fn fold_variance(cells: &VarianceCells, executed: &Executed) -> FigureSummary {
    let rows = PaperApp::ALL
        .iter()
        .zip(&cells.per_app)
        .map(|(&app, pairs)| {
            let imps: Vec<f64> = pairs
                .iter()
                .map(|&(linux, run)| {
                    improvement_pct(
                        executed.get(linux).mean_turnaround_us,
                        executed.get(run).mean_turnaround_us,
                    )
                })
                .collect();
            let lo = imps.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = imps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            ExperimentRow {
                app: app.name().to_string(),
                values: vec![
                    // `imps` has `seeds >= 1` entries, asserted at plan time.
                    ("mean".into(), mean(&imps).expect("at least one seed")),
                    ("min".into(), lo),
                    ("max".into(), hi),
                ],
            }
        })
        .collect();
    FigureSummary {
        id: "variance".into(),
        title: format!(
            "Fig. 2B improvement % for {} across {} seeds (mean/min/max)",
            cells.policy.label(),
            cells.seeds
        ),
        rows,
    }
}

/// Multi-seed Figure 2B for one policy: per app, mean[min..max] over
/// `seeds` runs (seed `rc.seed + k`).
pub fn fig2b_variance(policy: PolicyKind, seeds: u64, rc: &RunnerConfig) -> FigureSummary {
    run_figure(
        rc,
        |plan| plan_variance(plan, policy, seeds, rc),
        fold_variance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_rows_are_ordered_and_finite() {
        let rc = RunnerConfig::quick();
        let fig = fig2b_variance(PolicyKind::Window, 2, &rc);
        assert_eq!(fig.rows.len(), 11);
        for row in &fig.rows {
            let (mean, lo, hi) = (
                row.get("mean").unwrap(),
                row.get("min").unwrap(),
                row.get("max").unwrap(),
            );
            assert!(lo <= mean && mean <= hi, "{}: {lo} {mean} {hi}", row.app);
            assert!(mean.is_finite());
        }
    }

    #[test]
    fn different_seeds_actually_vary_the_stochastic_apps() {
        let rc = RunnerConfig::quick();
        let fig = fig2b_variance(PolicyKind::Latest, 3, &rc);
        let rt = fig
            .rows
            .iter()
            .find(|r| r.app == "Raytrace")
            .expect("raytrace row");
        assert!(
            rt.get("max").unwrap() - rt.get("min").unwrap() > 1e-9,
            "bursty app should vary across seeds"
        );
    }
}
