//! Seed-sensitivity of the headline numbers.
//!
//! Two stochastic ingredients exist in the reproduction: the Raytrace
//! burst process and the baseline's selection noise (standing in for
//! kernel timer/balancer nondeterminism — see DESIGN.md §6). The paper
//! reports single measurements; this experiment reruns Figure 2B (the set
//! with the strongest stochastic effects) across seeds and reports
//! mean / min / max improvement per application — the error bars the
//! paper did not have.

use busbw_metrics::{improvement_pct, mean, ExperimentRow, FigureSummary};
use busbw_workloads::paper::PaperApp;

use crate::fig2::Fig2Set;
use crate::runner::{run_spec, PolicyKind, RunnerConfig};

/// Multi-seed Figure 2B for one policy: per app, mean[min..max] over
/// `seeds` runs (seed `rc.seed + k`).
pub fn fig2b_variance(policy: PolicyKind, seeds: u64, rc: &RunnerConfig) -> FigureSummary {
    assert!(seeds >= 1, "need at least one seed");
    let mut rows = Vec::new();
    for app in PaperApp::ALL {
        let spec = Fig2Set::B.spec(app);
        let mut imps = Vec::new();
        for k in 0..seeds {
            let rck = RunnerConfig {
                seed: rc.seed + k,
                ..*rc
            };
            let linux = run_spec(&spec, PolicyKind::Linux, &rck);
            let r = run_spec(&spec, policy, &rck);
            imps.push(improvement_pct(
                linux.mean_turnaround_us,
                r.mean_turnaround_us,
            ));
        }
        let lo = imps.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = imps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        rows.push(ExperimentRow {
            app: app.name().to_string(),
            values: vec![
                // `imps` has `seeds >= 1` entries, asserted above.
                ("mean".into(), mean(&imps).expect("at least one seed")),
                ("min".into(), lo),
                ("max".into(), hi),
            ],
        });
    }
    FigureSummary {
        id: "variance".into(),
        title: format!(
            "Fig. 2B improvement % for {} across {seeds} seeds (mean/min/max)",
            policy.label()
        ),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_rows_are_ordered_and_finite() {
        let rc = RunnerConfig::quick();
        let fig = fig2b_variance(PolicyKind::Window, 2, &rc);
        assert_eq!(fig.rows.len(), 11);
        for row in &fig.rows {
            let (mean, lo, hi) = (
                row.get("mean").unwrap(),
                row.get("min").unwrap(),
                row.get("max").unwrap(),
            );
            assert!(lo <= mean && mean <= hi, "{}: {lo} {mean} {hi}", row.app);
            assert!(mean.is_finite());
        }
    }

    #[test]
    fn different_seeds_actually_vary_the_stochastic_apps() {
        let rc = RunnerConfig::quick();
        let fig = fig2b_variance(PolicyKind::Latest, 3, &rc);
        let rt = fig
            .rows
            .iter()
            .find(|r| r.app == "Raytrace")
            .expect("raytrace row");
        assert!(
            rt.get("max").unwrap() - rt.get("min").unwrap() > 1e-9,
            "bursty app should vary across seeds"
        );
    }
}
