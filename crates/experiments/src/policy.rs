//! CLI-composable policy stacks: parse `estimator=…,selector=…,placer=…`
//! into a [`StackSpec`] and build the corresponding
//! [`busbw_core::PolicyStack`].
//!
//! The grammar is a comma-separated list of `stage=value` pairs; omitted
//! stages take the paper defaults (Latest Quantum estimation, head-of-list
//! admission, fitness selection, packed placement, 200 ms quantum):
//!
//! ```text
//! estimator=latest | window[:N] | ewma[:N] | raw | null
//! admission=head | strict | fcfs | widest | open
//! selector=fitness | random[:SEED] | greedy | lookahead | none
//! placer=packed | scatter | smt | pack_local | spread_sockets | migrate
//! quantum=<ms>
//! ```

use busbw_core::estimator::{EwmaEstimator, LatestQuantumEstimator, QuantaWindowEstimator};
use busbw_core::pipeline::{
    Admission, Estimator, Fcfs, FitnessSelector, GreedySelector, HeadOfList, LookaheadSelector,
    MigrateOnSaturationPlacer, NullEstimator, NullSelector, Open, PackLocalPlacer, PackedPlacer,
    Placer, RandomSelector, RawRateEstimator, ReconstructingEstimator, ScatterPlacer, Selector,
    SmtAwarePlacer, SpreadSocketsPlacer, StrictHead, WidestFirst, PAPER_QUANTUM_US,
    PAPER_WINDOW_SAMPLES,
};
use busbw_core::PolicyStack;

/// Which estimator stage a [`StackSpec`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Latest Quantum (§4) behind the paper's demand reconstruction.
    Latest,
    /// Quanta Window with the given window length, reconstruction included.
    Window(usize),
    /// EWMA matched to the given window length, reconstruction included.
    Ewma(usize),
    /// Raw whole-quantum counter rates, no reconstruction (comparators).
    Raw,
    /// No estimation at all (bandwidth-oblivious stacks).
    Null,
}

/// Which admission stage a [`StackSpec`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Head-of-list: first candidate that fits (the paper's guarantee).
    Head,
    /// Strict head: the literal head or nothing.
    StrictHead,
    /// FCFS: admit in list order while gangs fit.
    Fcfs,
    /// Widest-fitting-first.
    Widest,
    /// Admit nothing; the selector sees the full candidate list.
    Open,
}

/// Which selector stage a [`StackSpec`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorKind {
    /// The §4 fitness-maximizing fill.
    Fitness,
    /// Random fill, seeded.
    Random(u64),
    /// Greedy max-measured-bandwidth fill.
    Greedy,
    /// One-step lookahead on the bus model's predicted aggregate value.
    Lookahead,
    /// No further selection beyond what admission produced.
    None,
}

/// Which placer stage a [`StackSpec`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacerKind {
    /// Affinity first, then lowest free cpu (the historical behavior).
    Packed,
    /// Affinity first, then least-loaded core.
    Scatter,
    /// Affinity first, then fully idle cores before sibling sharing.
    Smt,
    /// Socket-aware: keep each gang whole on one socket.
    PackLocal,
    /// Socket-aware: balance threads across sockets' local buses.
    SpreadSockets,
    /// Socket-aware: keep affinity until the local bus saturates, then
    /// migrate to the least-utilized socket.
    Migrate,
}

/// A fully-resolved four-stage stack choice, CLI- and cache-addressable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackSpec {
    /// Estimator stage.
    pub estimator: EstimatorKind,
    /// Admission stage.
    pub admission: AdmissionKind,
    /// Selector stage.
    pub selector: SelectorKind,
    /// Placer stage.
    pub placer: PlacerKind,
    /// Scheduling quantum, µs.
    pub quantum_us: u64,
}

impl Default for StackSpec {
    /// The paper's bus-aware stack: Latest Quantum estimation, head-of-list
    /// admission, fitness selection, packed placement, 200 ms quantum.
    fn default() -> Self {
        Self {
            estimator: EstimatorKind::Latest,
            admission: AdmissionKind::Head,
            selector: SelectorKind::Fitness,
            placer: PlacerKind::Packed,
            quantum_us: PAPER_QUANTUM_US,
        }
    }
}

fn parse_n(value: &str, what: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("bad {what} count {value:?}"))
}

impl StackSpec {
    /// Parse the `--policy` grammar (see module docs). Unknown stages and
    /// malformed values are errors; omitted stages keep their defaults.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected stage=value, got {part:?}"))?;
            let (head, arg) = match value.split_once(':') {
                Some((h, a)) => (h, Some(a)),
                None => (value, None),
            };
            match (key, head) {
                ("estimator", "latest") => spec.estimator = EstimatorKind::Latest,
                ("estimator", "window") => {
                    let n = arg.map_or(Ok(PAPER_WINDOW_SAMPLES), |a| parse_n(a, "window"))?;
                    spec.estimator = EstimatorKind::Window(n);
                }
                ("estimator", "ewma") => {
                    let n = arg.map_or(Ok(PAPER_WINDOW_SAMPLES), |a| parse_n(a, "ewma"))?;
                    spec.estimator = EstimatorKind::Ewma(n);
                }
                ("estimator", "raw") => spec.estimator = EstimatorKind::Raw,
                ("estimator", "null") => spec.estimator = EstimatorKind::Null,
                ("admission", "head") => spec.admission = AdmissionKind::Head,
                ("admission", "strict") => spec.admission = AdmissionKind::StrictHead,
                ("admission", "fcfs") => spec.admission = AdmissionKind::Fcfs,
                ("admission", "widest") => spec.admission = AdmissionKind::Widest,
                ("admission", "open") => spec.admission = AdmissionKind::Open,
                ("selector", "fitness") => spec.selector = SelectorKind::Fitness,
                ("selector", "random") => {
                    let seed = arg.map_or(Ok(42), |a| {
                        a.parse().map_err(|_| format!("bad random seed {a:?}"))
                    })?;
                    spec.selector = SelectorKind::Random(seed);
                }
                ("selector", "greedy") => spec.selector = SelectorKind::Greedy,
                ("selector", "lookahead") => spec.selector = SelectorKind::Lookahead,
                ("selector", "none") => spec.selector = SelectorKind::None,
                ("placer", "packed") => spec.placer = PlacerKind::Packed,
                ("placer", "scatter") => spec.placer = PlacerKind::Scatter,
                ("placer", "smt") => spec.placer = PlacerKind::Smt,
                ("placer", "pack_local") => spec.placer = PlacerKind::PackLocal,
                ("placer", "spread_sockets") => spec.placer = PlacerKind::SpreadSockets,
                ("placer", "migrate") => spec.placer = PlacerKind::Migrate,
                ("quantum", ms) => {
                    let ms: u64 = ms.parse().map_err(|_| format!("bad quantum (ms) {ms:?}"))?;
                    if ms == 0 {
                        return Err("quantum must be positive".into());
                    }
                    spec.quantum_us = ms * 1000;
                }
                _ => return Err(format!("unknown stage setting {part:?}")),
            }
        }
        Ok(spec)
    }

    /// Short display label, e.g. `latest+head+fitness+packed`.
    pub fn label(&self) -> String {
        let est = match self.estimator {
            EstimatorKind::Latest => "latest".into(),
            EstimatorKind::Window(n) => format!("window{n}"),
            EstimatorKind::Ewma(n) => format!("ewma{n}"),
            EstimatorKind::Raw => "raw".into(),
            EstimatorKind::Null => "null".into(),
        };
        let adm = match self.admission {
            AdmissionKind::Head => "head",
            AdmissionKind::StrictHead => "strict",
            AdmissionKind::Fcfs => "fcfs",
            AdmissionKind::Widest => "widest",
            AdmissionKind::Open => "open",
        };
        let sel = match self.selector {
            SelectorKind::Fitness => "fitness".into(),
            SelectorKind::Random(seed) => format!("random{seed}"),
            SelectorKind::Greedy => "greedy".into(),
            SelectorKind::Lookahead => "lookahead".into(),
            SelectorKind::None => "none".into(),
        };
        let pl = match self.placer {
            PlacerKind::Packed => "packed",
            PlacerKind::Scatter => "scatter",
            PlacerKind::Smt => "smt",
            PlacerKind::PackLocal => "pack_local",
            PlacerKind::SpreadSockets => "spread_sockets",
            PlacerKind::Migrate => "migrate",
        };
        let mut s = format!("{est}+{adm}+{sel}+{pl}");
        if self.quantum_us != PAPER_QUANTUM_US {
            s.push_str(&format!("@{}ms", self.quantum_us / 1000));
        }
        s
    }

    /// Build the stack. Bandwidth-aware estimators are wrapped in the
    /// paper's demand-reconstruction path with two samples per quantum.
    pub fn build(&self) -> PolicyStack {
        let estimator: Box<dyn Estimator> = match self.estimator {
            EstimatorKind::Latest => Box::new(ReconstructingEstimator::new(Box::new(
                LatestQuantumEstimator::new(),
            ))),
            EstimatorKind::Window(n) => Box::new(ReconstructingEstimator::new(Box::new(
                QuantaWindowEstimator::with_window(n),
            ))),
            EstimatorKind::Ewma(n) => Box::new(ReconstructingEstimator::new(Box::new(
                EwmaEstimator::matching_window(n),
            ))),
            EstimatorKind::Raw => Box::new(RawRateEstimator::new()),
            EstimatorKind::Null => Box::new(NullEstimator),
        };
        let admission: Box<dyn Admission> = match self.admission {
            AdmissionKind::Head => Box::new(HeadOfList),
            AdmissionKind::StrictHead => Box::new(StrictHead),
            AdmissionKind::Fcfs => Box::new(Fcfs),
            AdmissionKind::Widest => Box::new(WidestFirst),
            AdmissionKind::Open => Box::new(Open),
        };
        let selector: Box<dyn Selector> = match self.selector {
            SelectorKind::Fitness => Box::new(FitnessSelector),
            SelectorKind::Random(seed) => Box::new(RandomSelector::new(seed)),
            SelectorKind::Greedy => Box::new(GreedySelector),
            SelectorKind::Lookahead => Box::new(LookaheadSelector),
            SelectorKind::None => Box::new(NullSelector),
        };
        let placer: Box<dyn Placer> = match self.placer {
            PlacerKind::Packed => Box::new(PackedPlacer),
            PlacerKind::Scatter => Box::new(ScatterPlacer),
            PlacerKind::Smt => Box::new(SmtAwarePlacer),
            PlacerKind::PackLocal => Box::new(PackLocalPlacer),
            PlacerKind::SpreadSockets => Box::new(SpreadSocketsPlacer),
            PlacerKind::Migrate => Box::new(MigrateOnSaturationPlacer),
        };
        PolicyStack::new(
            self.label(),
            self.quantum_us,
            estimator,
            admission,
            selector,
            placer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::Scheduler;

    #[test]
    fn empty_string_is_the_paper_default() {
        assert_eq!(StackSpec::parse("").unwrap(), StackSpec::default());
        assert_eq!(StackSpec::default().quantum_us, 200_000);
    }

    #[test]
    fn full_grammar_round_trips() {
        let s = StackSpec::parse(
            "estimator=window:7,admission=fcfs,selector=random:9,placer=smt,quantum=100",
        )
        .unwrap();
        assert_eq!(s.estimator, EstimatorKind::Window(7));
        assert_eq!(s.admission, AdmissionKind::Fcfs);
        assert_eq!(s.selector, SelectorKind::Random(9));
        assert_eq!(s.placer, PlacerKind::Smt);
        assert_eq!(s.quantum_us, 100_000);
        assert_eq!(s.label(), "window7+fcfs+random9+smt@100ms");
    }

    #[test]
    fn socket_aware_placers_round_trip() {
        for (text, kind) in [
            ("pack_local", PlacerKind::PackLocal),
            ("spread_sockets", PlacerKind::SpreadSockets),
            ("migrate", PlacerKind::Migrate),
        ] {
            let s = StackSpec::parse(&format!("placer={text}")).unwrap();
            assert_eq!(s.placer, kind);
            assert_eq!(s.label(), format!("latest+head+fitness+{text}"));
        }
    }

    #[test]
    fn defaulted_arguments_use_paper_constants() {
        let s = StackSpec::parse("estimator=window").unwrap();
        assert_eq!(s.estimator, EstimatorKind::Window(PAPER_WINDOW_SAMPLES));
        let s = StackSpec::parse("selector=random").unwrap();
        assert_eq!(s.selector, SelectorKind::Random(42));
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        for bad in [
            "estimator=psychic",
            "selector",
            "quantum=0",
            "quantum=abc",
            "estimator=window:x",
            "placer=moon",
        ] {
            assert!(StackSpec::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn every_stage_combination_builds_and_schedules() {
        let ests = [
            EstimatorKind::Latest,
            EstimatorKind::Window(5),
            EstimatorKind::Ewma(5),
            EstimatorKind::Raw,
            EstimatorKind::Null,
        ];
        let adms = [
            AdmissionKind::Head,
            AdmissionKind::StrictHead,
            AdmissionKind::Fcfs,
            AdmissionKind::Widest,
            AdmissionKind::Open,
        ];
        let sels = [
            SelectorKind::Fitness,
            SelectorKind::Random(1),
            SelectorKind::Greedy,
            SelectorKind::Lookahead,
            SelectorKind::None,
        ];
        let pls = [
            PlacerKind::Packed,
            PlacerKind::Scatter,
            PlacerKind::Smt,
            PlacerKind::PackLocal,
            PlacerKind::SpreadSockets,
            PlacerKind::Migrate,
        ];
        let m = busbw_sim::Machine::new(busbw_sim::XEON_4WAY);
        for e in ests {
            for a in adms {
                for sel in sels {
                    for p in pls {
                        let spec = StackSpec {
                            estimator: e,
                            admission: a,
                            selector: sel,
                            placer: p,
                            quantum_us: 200_000,
                        };
                        let mut stack = spec.build();
                        let d = stack.schedule(&m.view());
                        assert!(d.assignments.is_empty(), "{}", spec.label());
                    }
                }
            }
        }
    }
}
