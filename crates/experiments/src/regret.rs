//! `experiments regret`: ranking every policy against the offline
//! optimum.
//!
//! The `busbw_core::oracle` branch-and-bound search finds the best gang
//! schedule a clairvoyant scheduler could have produced on a small
//! instance — the simulator itself is the cost evaluator, so "optimal"
//! accounts for bus contention, cache warmth, and completion-time
//! rescheduling exactly as the heuristics experience them. This figure
//! scores the seven preset policies plus a seeded sample of the
//! [`StackSpec`] space by **regret**: how many percent worse each
//! policy's mean turnaround is than the best cost observed on the same
//! cell (the oracle or, where the node budget truncates the search, the
//! best of all compared schedules — regret is never negative by
//! construction).
//!
//! The oracle run itself goes through the job graph as
//! [`RunShape::Oracle`](crate::jobgraph::RunShape): the search records
//! its winning decision sequence, replays it on a fresh machine, and
//! folds the replay through the ordinary [`finalize_run`] path, so an
//! oracle cell produces the same [`RunResult`] shape (and run-cache
//! entry) as any heuristic cell.

use busbw_core::{
    offline_optimal, FixedPlanScheduler, OracleReport, OracleSearchConfig, RecordingScheduler,
};
use busbw_core::pipeline::PAPER_QUANTUM_US;
use busbw_metrics::{ExperimentRow, FigureSummary};
use busbw_sim::Decision;
use busbw_workloads::mix::WorkloadSpec;
use busbw_workloads::paper::DEFAULT_SOLO_WORK_US;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::audit::mix_from_names;
use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::policy::{AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec};
use crate::runner::{finalize_run, prepare_run, PolicyKind, RunResult, RunnerConfig};

/// The seven preset policies ranked by the figure (the audit preset
/// suite's list).
pub const REGRET_PRESETS: [PolicyKind; 7] = [
    PolicyKind::Latest,
    PolicyKind::Window,
    PolicyKind::Linux,
    PolicyKind::LinuxO1,
    PolicyKind::RoundRobinGang,
    PolicyKind::RandomGang(7),
    PolicyKind::GreedyPack,
];

/// Number of sampled [`StackSpec`]s ranked alongside the presets.
pub const REGRET_SAMPLED_STACKS: usize = 20;

/// Node budget per oracle cell. Regret instances are three gangs on four
/// cpus, so trees are shallow; the seeds guarantee a finite incumbent
/// long before the budget bites.
const REGRET_NODE_BUDGET: u64 = 2_000;

/// The small §5-flavored instances the oracle can afford: two three-gang
/// all-measured mixes (a set-A-style heavy pair + light app, and a
/// set-C-style heavy/moderate/light spread).
pub fn regret_mixes() -> Vec<WorkloadSpec> {
    vec![
        mix_from_names(&["CG", "SP", "MG"]).expect("known paper apps"),
        mix_from_names(&["CG", "LU CB", "Volrend"]).expect("known paper apps"),
    ]
}

/// A deterministic sample of the `StackSpec` space: `n` distinct stacks
/// drawn from `seed`, deduplicated by label. Quanta are restricted to
/// round values ≥ 100 ms so cells stay cheap and comparable to the
/// presets.
pub fn sampled_stacks(seed: u64, n: usize) -> Vec<StackSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0F_5EED);
    let mut out: Vec<StackSpec> = Vec::with_capacity(n);
    let mut labels = std::collections::BTreeSet::new();
    while out.len() < n {
        let s = StackSpec {
            estimator: match rng.gen_range(0..5u32) {
                0 => EstimatorKind::Latest,
                1 => EstimatorKind::Window(rng.gen_range(1..8usize)),
                2 => EstimatorKind::Ewma(rng.gen_range(1..8usize)),
                3 => EstimatorKind::Raw,
                _ => EstimatorKind::Null,
            },
            admission: [
                AdmissionKind::Head,
                AdmissionKind::StrictHead,
                AdmissionKind::Fcfs,
                AdmissionKind::Widest,
                AdmissionKind::Open,
            ][rng.gen_range(0..5usize)],
            selector: match rng.gen_range(0..5u32) {
                0 => SelectorKind::Fitness,
                1 => SelectorKind::Random(rng.gen_range(0..1000u64)),
                2 => SelectorKind::Greedy,
                3 => SelectorKind::Lookahead,
                _ => SelectorKind::None,
            },
            placer: [
                PlacerKind::Packed,
                PlacerKind::Scatter,
                PlacerKind::Smt,
                PlacerKind::PackLocal,
                PlacerKind::SpreadSockets,
                PlacerKind::Migrate,
            ][rng.gen_range(0..6usize)],
            quantum_us: [100_000, 200_000, 400_000][rng.gen_range(0..3usize)],
        };
        if labels.insert(s.label()) {
            out.push(s);
        }
    }
    out
}

/// An oracle run's result plus the search report — what the audit
/// differential inspects ([`OracleReport::root_lower_bound_us`] must
/// never exceed [`OracleReport::best_cost_us`]).
#[derive(Debug)]
pub struct OracleOutcome {
    /// The replayed optimal schedule, folded like any other run.
    pub result: RunResult,
    /// Search accounting: bounds, prunes, completeness.
    pub report: OracleReport,
}

/// Record one preset's full decision stream over `spec` — the oracle's
/// incumbent seeds. Recorded untraced: decision content is what matters,
/// and the replay re-derives everything else.
fn record_seed(spec: &WorkloadSpec, policy: PolicyKind, rc: &RunnerConfig) -> Vec<Decision> {
    let rc_off = RunnerConfig {
        trace: crate::runner::TraceMode::Off,
        ..*rc
    };
    let mut p = prepare_run(spec, policy, &rc_off);
    let stop = p.stop_condition();
    let mut rec = RecordingScheduler::new(&mut *p.sched);
    let _ = p.machine.run(&mut rec, stop);
    rec.into_log()
}

/// Search for the offline-optimal schedule of `spec` and return both the
/// replayed [`RunResult`] and the search report.
///
/// The search horizon equals the runner's hard cap, so oracle costs are
/// censored on exactly the same boundary as heuristic runs. Seeds come
/// from the seven [`REGRET_PRESETS`], which makes the oracle's reported
/// cost structurally ≤ every preset on the same cell.
pub fn oracle_outcome(spec: &WorkloadSpec, rc: &RunnerConfig) -> OracleOutcome {
    let horizon_us = (DEFAULT_SOLO_WORK_US * rc.scale * rc.hard_cap_factor) as u64;
    let cfg = OracleSearchConfig {
        quantum_us: PAPER_QUANTUM_US,
        horizon_us,
        node_budget: REGRET_NODE_BUDGET,
        lb_slack_us: 1.0,
    };

    let seeds: Vec<Vec<Decision>> = REGRET_PRESETS
        .iter()
        .map(|&p| record_seed(spec, p, rc))
        .collect();

    let rc_off = RunnerConfig {
        trace: crate::runner::TraceMode::Off,
        ..*rc
    };
    let measured: Vec<busbw_sim::AppId> = prepare_run(spec, PolicyKind::OfflineOptimal, &rc_off)
        .measured_ids()
        .to_vec();

    // Instances built by `build_machine` seed each gang's demand model
    // independently (seed + instance index), so even same-name instances
    // are not bit-identical — no symmetry classes are declared here.
    let report = offline_optimal(
        &mut || {
            prepare_run(spec, PolicyKind::OfflineOptimal, &rc_off)
                .into_machine()
        },
        &measured,
        &cfg,
        &seeds,
        &[],
    );

    // Replay the winning plan on a fresh machine honoring the caller's
    // trace wiring, and fold it through the ordinary result path.
    let mut p = prepare_run(spec, PolicyKind::OfflineOptimal, rc);
    let stop = p.stop_condition();
    let mut sched = FixedPlanScheduler::new(report.best_plan.clone());
    let out = p.machine.run(&mut sched, stop);
    let result = finalize_run(p, out);
    OracleOutcome { result, report }
}

/// [`RunShape::Oracle`](crate::jobgraph::RunShape)'s executor: the
/// replayed optimal schedule as a plain [`RunResult`].
pub fn oracle_run(spec: &WorkloadSpec, rc: &RunnerConfig) -> RunResult {
    oracle_outcome(spec, rc).result
}

/// One ranked competitor of the regret figure.
#[derive(Debug, Clone)]
enum Competitor {
    Oracle,
    Preset(PolicyKind),
    Sampled(StackSpec),
}

impl Competitor {
    fn label(&self) -> String {
        match self {
            Competitor::Oracle => "Oracle".into(),
            Competitor::Preset(p) => p.label(),
            Competitor::Sampled(s) => s.label(),
        }
    }
}

/// Cell handles for the regret figure: for each mix, the oracle cell
/// followed by one cell per competitor.
#[derive(Debug)]
pub struct RegretCells {
    mixes: Vec<String>,
    competitors: Vec<String>,
    /// `cells[mix][competitor]`, competitor order = `competitors`.
    cells: Vec<Vec<CellId>>,
}

fn competitors(rc: &RunnerConfig) -> Vec<Competitor> {
    let mut out = vec![Competitor::Oracle];
    out.extend(REGRET_PRESETS.iter().map(|&p| Competitor::Preset(p)));
    out.extend(
        sampled_stacks(rc.seed, REGRET_SAMPLED_STACKS)
            .into_iter()
            .map(Competitor::Sampled),
    );
    out
}

/// Declare the regret figure's cells: every competitor (oracle, presets,
/// sampled stacks) over every small mix.
pub fn plan_regret(plan: &mut Plan, rc: &RunnerConfig) -> RegretCells {
    let comps = competitors(rc);
    let mixes = regret_mixes();
    let cells = mixes
        .iter()
        .map(|mix| {
            comps
                .iter()
                .map(|c| {
                    plan.cell(match c {
                        Competitor::Oracle => RunRequest::oracle(mix.clone(), rc),
                        Competitor::Preset(p) => RunRequest::spec(mix.clone(), *p, rc),
                        Competitor::Sampled(s) => {
                            RunRequest::spec(mix.clone(), PolicyKind::Stack(*s), rc)
                        }
                    })
                })
                .collect()
        })
        .collect();
    RegretCells {
        mixes: mixes.into_iter().map(|m| m.name).collect(),
        competitors: comps.iter().map(Competitor::label).collect(),
        cells,
    }
}

/// Fold the regret figure: per-mix regret % of each competitor against
/// the best cost observed on that mix (oracle included), plus the mean
/// over mixes, rows ranked by mean regret ascending (label-tie-broken).
pub fn fold_regret(cells: &RegretCells, executed: &Executed) -> FigureSummary {
    // Best per mix = min over every competitor *including* the oracle, so
    // regret is ≥ 0 even if a truncated search leaves the oracle above a
    // heuristic (the audit invariant separately requires it does not).
    let best: Vec<f64> = cells
        .cells
        .iter()
        .map(|row| {
            row.iter()
                .map(|&id| executed.get(id).mean_turnaround_us)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut rows: Vec<ExperimentRow> = cells
        .competitors
        .iter()
        .enumerate()
        .map(|(ci, label)| {
            let mut values: Vec<(String, f64)> = Vec::with_capacity(cells.mixes.len() + 1);
            let mut sum = 0.0;
            for (mi, mix) in cells.mixes.iter().enumerate() {
                let cost = executed.get(cells.cells[mi][ci]).mean_turnaround_us;
                let regret = if best[mi] > 0.0 {
                    100.0 * (cost - best[mi]) / best[mi]
                } else {
                    0.0
                };
                values.push((format!("regret%({mix})"), regret));
                sum += regret;
            }
            values.push(("mean_regret%".into(), sum / cells.mixes.len() as f64));
            ExperimentRow {
                app: label.clone(),
                values,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        let ka = a.values.last().expect("mean column").1;
        let kb = b.values.last().expect("mean column").1;
        ka.partial_cmp(&kb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.app.cmp(&b.app))
    });
    FigureSummary {
        id: "regret".into(),
        title: format!(
            "regret vs offline optimal (%) — {} presets + {} sampled stacks, {} mixes",
            REGRET_PRESETS.len(),
            REGRET_SAMPLED_STACKS,
            cells.mixes.len()
        ),
        rows,
    }
}

/// Regenerate the regret figure.
pub fn regret_panel(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_regret(plan, rc), fold_regret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_spec;

    fn rc() -> RunnerConfig {
        RunnerConfig {
            scale: 0.05,
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn sampled_stacks_are_distinct_and_deterministic() {
        let a = sampled_stacks(42, REGRET_SAMPLED_STACKS);
        let b = sampled_stacks(42, REGRET_SAMPLED_STACKS);
        assert_eq!(a, b);
        let labels: std::collections::BTreeSet<String> =
            a.iter().map(StackSpec::label).collect();
        assert_eq!(labels.len(), REGRET_SAMPLED_STACKS, "labels collide");
        assert_ne!(a, sampled_stacks(43, REGRET_SAMPLED_STACKS));
    }

    #[test]
    fn oracle_outcome_is_admissible_and_beats_every_preset() {
        let mix = mix_from_names(&["CG", "Volrend"]).unwrap();
        let rc = rc();
        let o = oracle_outcome(&mix, &rc);
        assert!(
            o.report.root_lower_bound_us <= o.report.best_cost_us,
            "LB {} above cost {}",
            o.report.root_lower_bound_us,
            o.report.best_cost_us
        );
        for p in REGRET_PRESETS {
            let h = run_spec(&mix, p, &rc);
            assert!(
                o.result.mean_turnaround_us <= h.mean_turnaround_us + 1e-6,
                "oracle {} worse than {} at {}",
                o.result.mean_turnaround_us,
                p.label(),
                h.mean_turnaround_us
            );
        }
    }

    #[test]
    fn oracle_replay_reproduces_the_search_cost() {
        let mix = mix_from_names(&["CG", "Volrend"]).unwrap();
        let rc = rc();
        let o = oracle_outcome(&mix, &rc);
        let total: f64 = o.result.turnarounds_us.iter().sum();
        assert_eq!(
            total as u64, o.report.best_cost_us,
            "replayed plan cost diverged from the search's evaluation"
        );
    }

    #[test]
    fn regret_figure_ranks_all_competitors_nonnegatively() {
        let fig = regret_panel(&rc());
        assert_eq!(fig.id, "regret");
        // Oracle + 7 presets + 20 sampled stacks.
        assert_eq!(fig.rows.len(), 1 + REGRET_PRESETS.len() + REGRET_SAMPLED_STACKS);
        let mixes = regret_mixes().len();
        let mut prev = f64::NEG_INFINITY;
        for row in &fig.rows {
            assert_eq!(row.values.len(), mixes + 1, "{row:?}");
            for (label, v) in &row.values {
                assert!(v.is_finite() && *v >= 0.0, "{}: {label} = {v}", row.app);
            }
            let mean = row.values.last().unwrap().1;
            assert!(mean >= prev, "rows not ranked ascending");
            prev = mean;
        }
        // Someone achieves the per-mix best, so the top row has 0 regret
        // somewhere; with the oracle seeded by every preset it is the
        // oracle itself.
        assert_eq!(fig.rows[0].app, "Oracle");
        assert_eq!(fig.rows[0].values.last().unwrap().1, 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            /// The oracle never loses to a preset on a random small cell.
            #[test]
            fn oracle_is_at_most_every_preset(names_i in 0usize..3, seed in 0u64..50) {
                let pair = [["CG", "SP"], ["MG", "Volrend"], ["CG", "LU CB"]][names_i];
                let mix = mix_from_names(&pair).unwrap();
                let rc = RunnerConfig { scale: 0.04, seed, ..RunnerConfig::default() };
                let o = oracle_outcome(&mix, &rc);
                prop_assert!(o.report.root_lower_bound_us <= o.report.best_cost_us);
                for p in REGRET_PRESETS {
                    let h = run_spec(&mix, p, &rc);
                    prop_assert!(
                        o.result.mean_turnaround_us <= h.mean_turnaround_us + 1e-6,
                        "oracle {} vs {} {}", o.result.mean_turnaround_us, p.label(), h.mean_turnaround_us
                    );
                }
            }
        }
    }
}
