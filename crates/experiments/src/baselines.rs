//! Baseline comparison: does the paper's win survive a stronger baseline?
//!
//! The paper compares only against the Linux 2.4 scheduler. This
//! experiment reruns set C against the 2.6-class O(1) baseline (per-cpu
//! runqueues, load balancing) and against the §6 model-driven comparator,
//! all normalized to the 2.4-like baseline's turnaround.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_workloads::paper::PaperApp;

use crate::fig2::Fig2Set;
use crate::runner::{run_spec, PolicyKind, RunnerConfig};

/// Improvement % over the 2.4-like baseline, on set C, for the O(1)
/// baseline, both paper policies, and the model-driven comparator.
pub fn baselines(rc: &RunnerConfig) -> FigureSummary {
    let policies = [
        PolicyKind::LinuxO1,
        PolicyKind::Latest,
        PolicyKind::Window,
        PolicyKind::ModelDriven,
    ];
    let mut rows = Vec::new();
    for app in [PaperApp::Volrend, PaperApp::Bt, PaperApp::Mg, PaperApp::Cg] {
        let spec = Fig2Set::C.spec(app);
        let linux24 = run_spec(&spec, PolicyKind::Linux, rc);
        let mut values = Vec::new();
        for &p in &policies {
            let r = run_spec(&spec, p, rc);
            values.push((
                p.label(),
                improvement_pct(linux24.mean_turnaround_us, r.mean_turnaround_us),
            ));
        }
        rows.push(ExperimentRow {
            app: app.name().to_string(),
            values,
        });
    }
    FigureSummary {
        id: "baselines".into(),
        title: "Set C improvement % over the 2.4-like baseline".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_comparison_produces_all_series() {
        let rc = RunnerConfig::quick();
        let fig = baselines(&rc);
        assert_eq!(fig.rows.len(), 4);
        assert_eq!(
            fig.series(),
            vec!["LinuxO1", "Latest", "Window", "ModelDriven"]
        );
        for row in &fig.rows {
            for (_, v) in &row.values {
                assert!(v.is_finite(), "{}: {v}", row.app);
            }
        }
    }

    #[test]
    fn policies_also_beat_the_o1_baseline_on_heavy_apps() {
        // The paper's win must not be an artifact of the 2.4 baseline:
        // compare Window directly against O(1) for CG.
        let rc = RunnerConfig::quick();
        let spec = Fig2Set::C.spec(PaperApp::Cg);
        let o1 = run_spec(&spec, PolicyKind::LinuxO1, &rc);
        let window = run_spec(&spec, PolicyKind::Window, &rc);
        assert!(
            window.mean_turnaround_us < o1.mean_turnaround_us * 1.02,
            "Window {} vs O(1) {}",
            window.mean_turnaround_us,
            o1.mean_turnaround_us
        );
    }
}
