//! Baseline comparison: does the paper's win survive a stronger baseline?
//!
//! The paper compares only against the Linux 2.4 scheduler. This
//! experiment reruns set C against the 2.6-class O(1) baseline (per-cpu
//! runqueues, load balancing) and against the §6 model-driven comparator,
//! all normalized to the 2.4-like baseline's turnaround.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_workloads::paper::PaperApp;

use crate::fig2::Fig2Set;
use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunnerConfig};

const BASELINE_APPS: [PaperApp; 4] = [PaperApp::Volrend, PaperApp::Bt, PaperApp::Mg, PaperApp::Cg];
const BASELINE_POLICIES: [PolicyKind; 4] = [
    PolicyKind::LinuxO1,
    PolicyKind::Latest,
    PolicyKind::Window,
    PolicyKind::ModelDriven,
];

/// Cell handles for the baselines figure: per app, the 2.4-like baseline
/// then each comparison policy (the Linux/Latest/Window cells dedup
/// against the `fig2c` panel on a shared plan).
#[derive(Debug)]
pub struct BaselineCells {
    cells: Vec<CellId>,
}

/// Declare the baselines figure's set-C cells.
pub fn plan_baselines(plan: &mut Plan, rc: &RunnerConfig) -> BaselineCells {
    let mut cells = Vec::new();
    for app in BASELINE_APPS {
        let spec = Fig2Set::C.spec(app);
        cells.push(plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, rc)));
        for p in BASELINE_POLICIES {
            cells.push(plan.cell(RunRequest::spec(spec.clone(), p, rc)));
        }
    }
    BaselineCells { cells }
}

/// Fold the baselines figure.
pub fn fold_baselines(cells: &BaselineCells, executed: &Executed) -> FigureSummary {
    let per_app = 1 + BASELINE_POLICIES.len();
    let rows = BASELINE_APPS
        .iter()
        .zip(cells.cells.chunks_exact(per_app))
        .map(|(&app, ids)| {
            let linux24 = executed.get(ids[0]).mean_turnaround_us;
            ExperimentRow {
                app: app.name().to_string(),
                values: BASELINE_POLICIES
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        (
                            p.label(),
                            improvement_pct(linux24, executed.get(ids[i + 1]).mean_turnaround_us),
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    FigureSummary {
        id: "baselines".into(),
        title: "Set C improvement % over the 2.4-like baseline".into(),
        rows,
    }
}

/// Improvement % over the 2.4-like baseline, on set C, for the O(1)
/// baseline, both paper policies, and the model-driven comparator.
pub fn baselines(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_baselines(plan, rc), fold_baselines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_spec;

    #[test]
    fn baseline_comparison_produces_all_series() {
        let rc = RunnerConfig::quick();
        let fig = baselines(&rc);
        assert_eq!(fig.rows.len(), 4);
        assert_eq!(
            fig.series(),
            vec!["LinuxO1", "Latest", "Window", "ModelDriven"]
        );
        for row in &fig.rows {
            for (_, v) in &row.values {
                assert!(v.is_finite(), "{}: {v}", row.app);
            }
        }
    }

    #[test]
    fn policies_also_beat_the_o1_baseline_on_heavy_apps() {
        // The paper's win must not be an artifact of the 2.4 baseline:
        // compare Window directly against O(1) for CG.
        let rc = RunnerConfig::quick();
        let spec = Fig2Set::C.spec(PaperApp::Cg);
        let o1 = run_spec(&spec, PolicyKind::LinuxO1, &rc);
        let window = run_spec(&spec, PolicyKind::Window, &rc);
        assert!(
            window.mean_turnaround_us < o1.mean_turnaround_us * 1.02,
            "Window {} vs O(1) {}",
            window.mean_turnaround_us,
            o1.mean_turnaround_us
        );
    }
}
