//! Figure 1: the motivation experiments of §3.
//!
//! Four configurations per application (each application instance uses two
//! processors; there is never processor sharing in these runs):
//!
//! * **1 Appl** — the instance alone (black bars);
//! * **2 Apps** — two instances (dark gray);
//! * **1 Appl + 2 BBMA** — one instance + two saturating microbenchmarks
//!   (light gray);
//! * **1 Appl + 2 nBBMA** — one instance + two bus-idle microbenchmarks
//!   (white/striped).
//!
//! Figure 1A reports cumulative bus transaction rates; Figure 1B the
//! slowdown relative to the solo run (arithmetic mean over instances).
//! Both panels *declare the same 44 cells*, so on a shared plan (the
//! `all` command) the runs execute once and the panels fold different
//! quantities from the same results.

use busbw_metrics::{ExperimentRow, FigureSummary};
use busbw_workloads::mix::{
    fig1_solo, fig1_two_instances, fig1_with_bbma, fig1_with_nbbma, WorkloadSpec,
};
use busbw_workloads::paper::PaperApp;

use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunResult, RunnerConfig};

/// The four per-application configurations, in legend order.
fn fig1_configs(app: PaperApp) -> [WorkloadSpec; 4] {
    [
        fig1_solo(app),
        fig1_two_instances(app),
        fig1_with_bbma(app),
        fig1_with_nbbma(app),
    ]
}

/// Cell handles for both Figure 1 panels: apps in `PaperApp::ALL` order,
/// four configurations each, every run under the Linux baseline.
#[derive(Debug)]
pub struct Fig1Cells {
    cells: Vec<CellId>,
}

/// Declare the 44 Figure-1 cells (shared by both panels).
pub fn plan_fig1(plan: &mut Plan, rc: &RunnerConfig) -> Fig1Cells {
    let cells = PaperApp::ALL
        .iter()
        .flat_map(|&app| fig1_configs(app))
        .map(|spec| plan.cell(RunRequest::spec(spec, PolicyKind::Linux, rc)))
        .collect();
    Fig1Cells { cells }
}

/// The per-job results in declaration order (for trace merging/metrics).
pub fn fig1_results(cells: &Fig1Cells, executed: &Executed) -> Vec<RunResult> {
    cells
        .cells
        .iter()
        .map(|&id| executed.get(id).clone())
        .collect()
}

/// Fold Figure 1A (cumulative bus transaction rates).
pub fn fold_fig1a(cells: &Fig1Cells, executed: &Executed) -> FigureSummary {
    let rows = PaperApp::ALL
        .iter()
        .zip(cells.cells.chunks_exact(4))
        .map(|(&app, ids)| {
            let r: Vec<&RunResult> = ids.iter().map(|&id| executed.get(id)).collect();
            ExperimentRow {
                app: app.name().to_string(),
                values: vec![
                    ("1 Appl".into(), r[0].measured_apps_rate),
                    ("2 Apps".into(), r[1].measured_apps_rate),
                    ("1 Appl + 2 BBMA".into(), r[2].workload_rate),
                    ("1 Appl + 2 nBBMA".into(), r[3].workload_rate),
                ],
            }
        })
        .collect();
    FigureSummary {
        id: "fig1a".into(),
        title: "Cumulative bus transactions rate (tx/µs)".into(),
        rows,
    }
}

/// Fold Figure 1B (slowdowns of the three multiprogrammed configurations
/// relative to solo execution).
pub fn fold_fig1b(cells: &Fig1Cells, executed: &Executed) -> FigureSummary {
    let rows = PaperApp::ALL
        .iter()
        .zip(cells.cells.chunks_exact(4))
        .map(|(&app, ids)| {
            let r: Vec<&RunResult> = ids.iter().map(|&id| executed.get(id)).collect();
            let solo = r[0].mean_turnaround_us;
            ExperimentRow {
                app: app.name().to_string(),
                values: vec![
                    ("2 Apps".into(), r[1].mean_turnaround_us / solo),
                    ("1 Appl + 2 BBMA".into(), r[2].mean_turnaround_us / solo),
                    ("1 Appl + 2 nBBMA".into(), r[3].mean_turnaround_us / solo),
                ],
            }
        })
        .collect();
    FigureSummary {
        id: "fig1b".into(),
        title: "Slowdown vs. solo execution".into(),
        rows,
    }
}

/// Regenerate Figure 1A (cumulative bus transaction rates).
///
/// Series match the paper's legend: for the application-only
/// configurations the series is the applications' own cumulative rate; for
/// the microbenchmark mixes it is the whole workload's rate (what the
/// paper plots — e.g. the BBMA workloads average 28.34 tx/µs, "very close
/// to the limit of saturation").
pub fn fig1a(rc: &RunnerConfig) -> FigureSummary {
    fig1a_traced(rc).0
}

/// [`fig1a`] plus the per-job [`RunResult`]s (apps in `PaperApp::ALL`
/// order, four configurations each) for trace merging and metrics.
pub fn fig1a_traced(rc: &RunnerConfig) -> (FigureSummary, Vec<RunResult>) {
    run_figure(
        rc,
        |plan| plan_fig1(plan, rc),
        |cells, executed| (fold_fig1a(cells, executed), fig1_results(cells, executed)),
    )
}

/// Regenerate Figure 1B (slowdowns of the three multiprogrammed
/// configurations relative to solo execution).
pub fn fig1b(rc: &RunnerConfig) -> FigureSummary {
    fig1b_traced(rc).0
}

/// [`fig1b`] plus the per-job [`RunResult`]s (same job order as
/// [`fig1a_traced`]).
pub fn fig1b_traced(rc: &RunnerConfig) -> (FigureSummary, Vec<RunResult>) {
    run_figure(
        rc,
        |plan| plan_fig1(plan, rc),
        |cells, executed| (fold_fig1b(cells, executed), fig1_results(cells, executed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_spec, solo_turnaround_us};

    /// One reduced-size end-to-end check of the Figure 1 shapes. The full
    /// figure is exercised by the `experiments` binary and the benches.
    #[test]
    fn fig1_shapes_hold_for_representative_apps() {
        let rc = RunnerConfig::quick();
        // Light app: BBMA hurts a little, nBBMA not at all.
        let solo_l = solo_turnaround_us(PaperApp::Volrend, &rc);
        let l_bbma = run_spec(&fig1_with_bbma(PaperApp::Volrend), PolicyKind::Linux, &rc);
        let l_nbbma = run_spec(&fig1_with_nbbma(PaperApp::Volrend), PolicyKind::Linux, &rc);
        let s_bbma = l_bbma.mean_turnaround_us / solo_l;
        let s_nbbma = l_nbbma.mean_turnaround_us / solo_l;
        assert!(
            (1.0..1.6).contains(&s_bbma),
            "Volrend+BBMA slowdown {s_bbma}"
        );
        assert!(
            (0.97..1.1).contains(&s_nbbma),
            "Volrend+nBBMA slowdown {s_nbbma}"
        );

        // Heavy app: BBMA causes a 2–3× slowdown (the paper's headline).
        let solo_h = solo_turnaround_us(PaperApp::Cg, &rc);
        let h_bbma = run_spec(&fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux, &rc);
        let s_h = h_bbma.mean_turnaround_us / solo_h;
        assert!((1.8..3.2).contains(&s_h), "CG+BBMA slowdown {s_h}");
    }

    #[test]
    fn both_panels_share_one_cell_set_on_a_common_plan() {
        let rc = RunnerConfig::quick();
        let mut plan = Plan::new();
        let a = plan_fig1(&mut plan, &rc);
        let unique_after_a = plan.len();
        let b = plan_fig1(&mut plan, &rc);
        assert_eq!(plan.len(), unique_after_a, "1B adds no new cells");
        assert_eq!(a.cells, b.cells);
        assert_eq!(unique_after_a, PaperApp::ALL.len() * 4);
    }
}
