//! Figure 1: the motivation experiments of §3.
//!
//! Four configurations per application (each application instance uses two
//! processors; there is never processor sharing in these runs):
//!
//! * **1 Appl** — the instance alone (black bars);
//! * **2 Apps** — two instances (dark gray);
//! * **1 Appl + 2 BBMA** — one instance + two saturating microbenchmarks
//!   (light gray);
//! * **1 Appl + 2 nBBMA** — one instance + two bus-idle microbenchmarks
//!   (white/striped).
//!
//! Figure 1A reports cumulative bus transaction rates; Figure 1B the
//! slowdown relative to the solo run (arithmetic mean over instances).

use busbw_metrics::{ExperimentRow, FigureSummary};
use busbw_workloads::mix::{
    fig1_solo, fig1_two_instances, fig1_with_bbma, fig1_with_nbbma, WorkloadSpec,
};
use busbw_workloads::paper::PaperApp;

use crate::runner::{effective_workers, par_map, run_spec, PolicyKind, RunResult, RunnerConfig};

/// The four per-application configurations, in legend order.
fn fig1_configs(app: PaperApp) -> [WorkloadSpec; 4] {
    [
        fig1_solo(app),
        fig1_two_instances(app),
        fig1_with_bbma(app),
        fig1_with_nbbma(app),
    ]
}

/// Run every Figure-1 job under the Linux baseline (both panels share the
/// same runs; they differ only in which quantity each row reports).
fn fig1_runs(rc: &RunnerConfig) -> Vec<RunResult> {
    let jobs: Vec<WorkloadSpec> = PaperApp::ALL
        .iter()
        .flat_map(|&app| fig1_configs(app))
        .collect();
    par_map(&jobs, effective_workers(rc), |spec| {
        run_spec(spec, PolicyKind::Linux, rc)
    })
}

/// Regenerate Figure 1A (cumulative bus transaction rates).
///
/// Series match the paper's legend: for the application-only
/// configurations the series is the applications' own cumulative rate; for
/// the microbenchmark mixes it is the whole workload's rate (what the
/// paper plots — e.g. the BBMA workloads average 28.34 tx/µs, "very close
/// to the limit of saturation").
pub fn fig1a(rc: &RunnerConfig) -> FigureSummary {
    fig1a_traced(rc).0
}

/// [`fig1a`] plus the per-job [`RunResult`]s (apps in `PaperApp::ALL`
/// order, four configurations each) for trace merging and metrics.
pub fn fig1a_traced(rc: &RunnerConfig) -> (FigureSummary, Vec<RunResult>) {
    let results = fig1_runs(rc);
    let rows = PaperApp::ALL
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(&app, r)| ExperimentRow {
            app: app.name().to_string(),
            values: vec![
                ("1 Appl".into(), r[0].measured_apps_rate),
                ("2 Apps".into(), r[1].measured_apps_rate),
                ("1 Appl + 2 BBMA".into(), r[2].workload_rate),
                ("1 Appl + 2 nBBMA".into(), r[3].workload_rate),
            ],
        })
        .collect();
    (
        FigureSummary {
            id: "fig1a".into(),
            title: "Cumulative bus transactions rate (tx/µs)".into(),
            rows,
        },
        results,
    )
}

/// Regenerate Figure 1B (slowdowns of the three multiprogrammed
/// configurations relative to solo execution).
pub fn fig1b(rc: &RunnerConfig) -> FigureSummary {
    fig1b_traced(rc).0
}

/// [`fig1b`] plus the per-job [`RunResult`]s (same job order as
/// [`fig1a_traced`]).
pub fn fig1b_traced(rc: &RunnerConfig) -> (FigureSummary, Vec<RunResult>) {
    let results = fig1_runs(rc);
    let rows = PaperApp::ALL
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(&app, r)| {
            let solo = r[0].mean_turnaround_us;
            ExperimentRow {
                app: app.name().to_string(),
                values: vec![
                    ("2 Apps".into(), r[1].mean_turnaround_us / solo),
                    ("1 Appl + 2 BBMA".into(), r[2].mean_turnaround_us / solo),
                    ("1 Appl + 2 nBBMA".into(), r[3].mean_turnaround_us / solo),
                ],
            }
        })
        .collect();
    (
        FigureSummary {
            id: "fig1b".into(),
            title: "Slowdown vs. solo execution".into(),
            rows,
        },
        results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::solo_turnaround_us;

    /// One reduced-size end-to-end check of the Figure 1 shapes. The full
    /// figure is exercised by the `experiments` binary and the benches.
    #[test]
    fn fig1_shapes_hold_for_representative_apps() {
        let rc = RunnerConfig::quick();
        // Light app: BBMA hurts a little, nBBMA not at all.
        let solo_l = solo_turnaround_us(PaperApp::Volrend, &rc);
        let l_bbma = run_spec(&fig1_with_bbma(PaperApp::Volrend), PolicyKind::Linux, &rc);
        let l_nbbma = run_spec(&fig1_with_nbbma(PaperApp::Volrend), PolicyKind::Linux, &rc);
        let s_bbma = l_bbma.mean_turnaround_us / solo_l;
        let s_nbbma = l_nbbma.mean_turnaround_us / solo_l;
        assert!(
            (1.0..1.6).contains(&s_bbma),
            "Volrend+BBMA slowdown {s_bbma}"
        );
        assert!(
            (0.97..1.1).contains(&s_nbbma),
            "Volrend+nBBMA slowdown {s_nbbma}"
        );

        // Heavy app: BBMA causes a 2–3× slowdown (the paper's headline).
        let solo_h = solo_turnaround_us(PaperApp::Cg, &rc);
        let h_bbma = run_spec(&fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux, &rc);
        let s_h = h_bbma.mean_turnaround_us / solo_h;
        assert!((1.8..3.2).contains(&s_h), "CG+BBMA slowdown {s_h}");
    }
}
