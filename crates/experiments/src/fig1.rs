//! Figure 1: the motivation experiments of §3.
//!
//! Four configurations per application (each application instance uses two
//! processors; there is never processor sharing in these runs):
//!
//! * **1 Appl** — the instance alone (black bars);
//! * **2 Apps** — two instances (dark gray);
//! * **1 Appl + 2 BBMA** — one instance + two saturating microbenchmarks
//!   (light gray);
//! * **1 Appl + 2 nBBMA** — one instance + two bus-idle microbenchmarks
//!   (white/striped).
//!
//! Figure 1A reports cumulative bus transaction rates; Figure 1B the
//! slowdown relative to the solo run (arithmetic mean over instances).

use busbw_metrics::{ExperimentRow, FigureSummary};
use busbw_workloads::mix::{fig1_solo, fig1_two_instances, fig1_with_bbma, fig1_with_nbbma};
use busbw_workloads::paper::PaperApp;

use crate::runner::{run_spec, solo_turnaround_us, PolicyKind, RunnerConfig};

/// Regenerate Figure 1A (cumulative bus transaction rates).
///
/// Series match the paper's legend: for the application-only
/// configurations the series is the applications' own cumulative rate; for
/// the microbenchmark mixes it is the whole workload's rate (what the
/// paper plots — e.g. the BBMA workloads average 28.34 tx/µs, "very close
/// to the limit of saturation").
pub fn fig1a(rc: &RunnerConfig) -> FigureSummary {
    let mut rows = Vec::new();
    for app in PaperApp::ALL {
        let solo = run_spec(&fig1_solo(app), PolicyKind::Linux, rc);
        let two = run_spec(&fig1_two_instances(app), PolicyKind::Linux, rc);
        let bbma = run_spec(&fig1_with_bbma(app), PolicyKind::Linux, rc);
        let nbbma = run_spec(&fig1_with_nbbma(app), PolicyKind::Linux, rc);
        rows.push(ExperimentRow {
            app: app.name().to_string(),
            values: vec![
                ("1 Appl".into(), solo.measured_apps_rate),
                ("2 Apps".into(), two.measured_apps_rate),
                ("1 Appl + 2 BBMA".into(), bbma.workload_rate),
                ("1 Appl + 2 nBBMA".into(), nbbma.workload_rate),
            ],
        });
    }
    FigureSummary {
        id: "fig1a".into(),
        title: "Cumulative bus transactions rate (tx/µs)".into(),
        rows,
    }
}

/// Regenerate Figure 1B (slowdowns of the three multiprogrammed
/// configurations relative to solo execution).
pub fn fig1b(rc: &RunnerConfig) -> FigureSummary {
    let mut rows = Vec::new();
    for app in PaperApp::ALL {
        let solo = solo_turnaround_us(app, rc);
        let two = run_spec(&fig1_two_instances(app), PolicyKind::Linux, rc);
        let bbma = run_spec(&fig1_with_bbma(app), PolicyKind::Linux, rc);
        let nbbma = run_spec(&fig1_with_nbbma(app), PolicyKind::Linux, rc);
        rows.push(ExperimentRow {
            app: app.name().to_string(),
            values: vec![
                ("2 Apps".into(), two.mean_turnaround_us / solo),
                ("1 Appl + 2 BBMA".into(), bbma.mean_turnaround_us / solo),
                ("1 Appl + 2 nBBMA".into(), nbbma.mean_turnaround_us / solo),
            ],
        });
    }
    FigureSummary {
        id: "fig1b".into(),
        title: "Slowdown vs. solo execution".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One reduced-size end-to-end check of the Figure 1 shapes. The full
    /// figure is exercised by the `experiments` binary and the benches.
    #[test]
    fn fig1_shapes_hold_for_representative_apps() {
        let rc = RunnerConfig::quick();
        // Light app: BBMA hurts a little, nBBMA not at all.
        let solo_l = solo_turnaround_us(PaperApp::Volrend, &rc);
        let l_bbma = run_spec(&fig1_with_bbma(PaperApp::Volrend), PolicyKind::Linux, &rc);
        let l_nbbma = run_spec(&fig1_with_nbbma(PaperApp::Volrend), PolicyKind::Linux, &rc);
        let s_bbma = l_bbma.mean_turnaround_us / solo_l;
        let s_nbbma = l_nbbma.mean_turnaround_us / solo_l;
        assert!((1.0..1.6).contains(&s_bbma), "Volrend+BBMA slowdown {s_bbma}");
        assert!(
            (0.97..1.1).contains(&s_nbbma),
            "Volrend+nBBMA slowdown {s_nbbma}"
        );

        // Heavy app: BBMA causes a 2–3× slowdown (the paper's headline).
        let solo_h = solo_turnaround_us(PaperApp::Cg, &rc);
        let h_bbma = run_spec(&fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux, &rc);
        let s_h = h_bbma.mean_turnaround_us / solo_h;
        assert!((1.8..3.2).contains(&s_h), "CG+BBMA slowdown {s_h}");
    }
}
