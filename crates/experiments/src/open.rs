//! The `open` figure family: tail latency of the live manager server.
//!
//! Everything else in the harness replays *closed* workloads through the
//! simulator. This figure drives the real `core::manager` daemon stack
//! through `busbw-managerd`'s open-system event loop: seeded
//! Poisson/Pareto/diurnal client arrivals connect live, are scheduled by
//! the §4 quantum loop, and depart on completion. Per offered-load
//! multiple and per estimator stack it reports:
//!
//! * turnaround tail quantiles — p50 / p99 / p999, via
//!   [`busbw_metrics::Histogram::quantile`];
//! * the shed rate of the bounded accept queue (overload admission
//!   control);
//! * mean slowdown (turnaround ÷ solo service time);
//! * the manager's modeled bookkeeping overhead, to compare with the
//!   paper's measured ≈4.5 % bound.
//!
//! Three stacks are compared: the bandwidth-oblivious baseline
//! ([`ZeroEstimator`], Linux-like rotation), the paper's Latest-Quantum
//! policy, and its Quanta-Window policy. All stacks serve the **same**
//! seeded arrival schedule, so tails are directly comparable.
//!
//! Open cells flow through the shared job graph like every other run:
//! content-addressed by [`OpenSpec::encode`] in the cell key, deduped,
//! cached, and byte-identically replayable for any worker count.

use busbw_core::estimator::{BandwidthEstimator, LatestQuantumEstimator, QuantaWindowEstimator};
use busbw_managerd::{serve, ArrivalProcess, OpenConfig, ZeroEstimator};
use busbw_metrics::{ExperimentRow, FigureSummary, Histogram};
use busbw_sim::TickDtHist;

use crate::cache::Enc;
use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{OpenStats, RunCompletion, RunResult, RunnerConfig, TraceMode};

/// The estimator stack an open serve schedules with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenStack {
    /// Bandwidth-oblivious baseline: every job reads as bandwidth-free.
    Oblivious,
    /// The paper's Latest-Quantum estimator.
    Latest,
    /// The paper's Quanta-Window estimator (window 5).
    Window,
}

impl OpenStack {
    /// All stacks of the figure, baseline first.
    pub const ALL: [OpenStack; 3] = [OpenStack::Oblivious, OpenStack::Latest, OpenStack::Window];

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            OpenStack::Oblivious => "Oblivious",
            OpenStack::Latest => "Latest",
            OpenStack::Window => "Window",
        }
    }

    /// Build the estimator this stack schedules with.
    pub fn build(&self) -> Box<dyn BandwidthEstimator> {
        match self {
            OpenStack::Oblivious => Box::new(ZeroEstimator),
            OpenStack::Latest => Box::new(LatestQuantumEstimator::new()),
            OpenStack::Window => Box::new(QuantaWindowEstimator::new()),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            OpenStack::Oblivious => 0,
            OpenStack::Latest => 1,
            OpenStack::Window => 2,
        }
    }
}

/// One open managerd-serve cell: everything that shapes the serve other
/// than what [`RunnerConfig`] already carries (seed, scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenSpec {
    /// The arrival process at its configured mean rate.
    pub arrivals: ArrivalProcess,
    /// Unscaled serve horizon, µs ([`RunnerConfig::scale`] applies).
    pub duration_us: u64,
    /// The estimator stack.
    pub stack: OpenStack,
    /// Bounded accept queue: maximum simultaneously live clients.
    pub queue_capacity: usize,
}

impl OpenSpec {
    /// Canonical encoding for the run-cache cell key. Every field that
    /// can change the serve must land here (the schema-version salt and
    /// seed/scale/trace fields are appended by the caller).
    pub(crate) fn encode(&self, e: &mut Enc) {
        // Normalize first: processes that draw identical arrival streams
        // (e.g. Pareto shapes below the admissible floor) must encode to
        // the same key, or equal behavior would fragment the run cache.
        match self.arrivals.normalized() {
            ArrivalProcess::Poisson { rate_per_s } => {
                e.u8(0);
                e.f64(rate_per_s);
            }
            ArrivalProcess::Pareto { rate_per_s, alpha } => {
                e.u8(1);
                e.f64(rate_per_s);
                e.f64(alpha);
            }
            ArrivalProcess::Diurnal {
                rate_per_s,
                period_us,
            } => {
                e.u8(2);
                e.f64(rate_per_s);
                e.u64(period_us);
            }
        }
        e.u64(self.duration_us);
        e.u8(self.stack.tag());
        e.u64(self.queue_capacity as u64);
    }
}

/// Execute one open cell: serve the arrival process through the managerd
/// event loop and adapt the [`busbw_managerd::OpenOutcome`] into the
/// harness's [`RunResult`] so it caches, dedups, and folds like any
/// other cell. Deterministic in (spec, seed, scale).
pub fn open_run(spec: &OpenSpec, rc: &RunnerConfig) -> RunResult {
    let cfg = OpenConfig {
        arrivals: spec.arrivals,
        duration_us: ((spec.duration_us as f64 * rc.scale) as u64).max(1),
        seed: rc.seed,
        queue_capacity: spec.queue_capacity,
        collect_events: rc.trace == TraceMode::Collect,
        ..OpenConfig::default()
    };
    let out = serve(&cfg, spec.stack.build());
    let mean = if out.turnarounds_us.is_empty() {
        0.0
    } else {
        out.turnarounds_us.iter().sum::<f64>() / out.turnarounds_us.len() as f64
    };
    RunResult {
        mean_turnaround_us: mean,
        turnarounds_us: out.turnarounds_us.clone(),
        workload_rate: 0.0,
        measured_apps_rate: 0.0,
        saturated_fraction: 0.0,
        ticks: 0,
        sim_elapsed_us: out.duration_us,
        completion: RunCompletion::Finished,
        events: out.events.clone(),
        tick_dt_hist: TickDtHist::default(),
        memo_hits: 0,
        memo_misses: 0,
        stage_timings: None,
        open: Some(OpenStats {
            arrived: out.arrived,
            shed: out.shed,
            served: out.served,
            duration_us: out.duration_us,
            overhead_us: out.overhead_us,
            mean_slowdown: out.mean_slowdown(),
        }),
        n_levels: 0,
        level_utilization: [0.0; busbw_sim::MAX_BUS_LEVELS],
        level_saturated: [0.0; busbw_sim::MAX_BUS_LEVELS],
    }
}

/// Offered-load multipliers swept per stack.
pub const LOAD_MULTIPLIERS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Log-spaced turnaround histogram bounds (µs), 1 ms … ~100 s. The
/// quantile interpolation of [`Histogram::quantile`] operates inside
/// these buckets; ~9 % bucket width keeps p999 readable.
fn turnaround_bounds() -> Vec<f64> {
    let mut b = Vec::new();
    let mut v = 1_000.0f64;
    while v < 100_000_000.0 {
        b.push(v);
        v *= 1.09;
    }
    b
}

/// Cell handles for the open figure: per stack, one cell per load
/// multiplier, in [`OpenStack::ALL`] × [`LOAD_MULTIPLIERS`] order.
#[derive(Debug)]
pub struct OpenCells {
    cells: Vec<(OpenStack, f64, CellId)>,
}

/// Declare the open figure's cells: each stack serves the same arrival
/// schedule at each offered-load multiple of `base`.
pub fn plan_open(
    plan: &mut Plan,
    rc: &RunnerConfig,
    base: ArrivalProcess,
    duration_us: u64,
    queue_capacity: usize,
) -> OpenCells {
    let mut cells = Vec::new();
    for stack in OpenStack::ALL {
        for mult in LOAD_MULTIPLIERS {
            let spec = OpenSpec {
                arrivals: base.with_rate(base.rate_per_s() * mult),
                duration_us,
                stack,
                queue_capacity,
            };
            cells.push((stack, mult, plan.cell(RunRequest::open(spec, rc))));
        }
    }
    OpenCells { cells }
}

/// Fold the open figure: one row per (stack × offered load) with tail
/// quantiles, shed rate, mean slowdown, and manager overhead.
pub fn fold_open(cells: &OpenCells, executed: &Executed) -> FigureSummary {
    let rows = cells
        .cells
        .iter()
        .map(|&(stack, mult, id)| {
            let r = executed.get(id);
            let mut hist = Histogram::new(turnaround_bounds());
            for &t in &r.turnarounds_us {
                hist.record(t);
            }
            let q_ms = |q: f64| hist.quantile(q).unwrap_or(0.0) / 1000.0;
            let open = r.open.expect("open cell carries open stats");
            ExperimentRow {
                app: format!("{} @{mult}x", stack.label()),
                values: vec![
                    ("p50_ms".into(), q_ms(0.50)),
                    ("p99_ms".into(), q_ms(0.99)),
                    ("p999_ms".into(), q_ms(0.999)),
                    ("shed_%".into(), 100.0 * open.shed_rate()),
                    ("slowdown".into(), open.mean_slowdown),
                    ("mgr_ovh_%".into(), open.overhead_pct()),
                ],
            }
        })
        .collect();
    FigureSummary {
        id: "open".into(),
        title: "Open-system manager serve — turnaround tails, shed rate, overhead vs offered load"
            .into(),
        rows,
    }
}

/// The open tail-latency figure on a throwaway engine (the `experiments
/// open` entry point goes through the shared engine instead).
pub fn open_tail_latency(
    rc: &RunnerConfig,
    base: ArrivalProcess,
    duration_us: u64,
) -> FigureSummary {
    run_figure(
        rc,
        |plan| plan_open(plan, rc, base, duration_us, DEFAULT_QUEUE_CAPACITY),
        fold_open,
    )
}

/// Default bounded-accept-queue depth of the open figure.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8;

/// Mean arrival rate (clients/s) of the `poisson:small` / `pareto:small`
/// presets — light enough that the CI smoke run finishes in seconds.
pub const SMALL_RATE_PER_S: f64 = 20.0;

/// Unscaled horizon of the `--duration short` preset, µs (10 s; the
/// run's effective horizon is this × `--scale`).
pub const SHORT_DURATION_US: u64 = 10_000_000;

/// Parse an `--arrivals` spec: `poisson:<rate|small>`,
/// `pareto:<rate|small>[:alpha]`, `diurnal:<rate|small>[:period_s]`, or
/// `trace:diurnal` (alias for the default diurnal trace).
pub fn parse_arrivals(s: &str) -> Result<ArrivalProcess, String> {
    const DEFAULT_ALPHA: f64 = 1.5;
    const DEFAULT_PERIOD_US: u64 = 8_000_000;
    let mut parts = s.split(':');
    let family = parts.next().unwrap_or("");
    let rate = |p: Option<&str>| -> Result<f64, String> {
        match p {
            None | Some("small") => Ok(SMALL_RATE_PER_S),
            Some(v) => match v.parse::<f64>() {
                Ok(r) if r > 0.0 && r.is_finite() => Ok(r),
                _ => Err(format!("bad arrival rate `{v}` (clients/s, > 0)")),
            },
        }
    };
    let spec = match family {
        "poisson" => ArrivalProcess::Poisson {
            rate_per_s: rate(parts.next())?,
        },
        "pareto" => {
            let rate_per_s = rate(parts.next())?;
            let alpha = match parts.next() {
                None => DEFAULT_ALPHA,
                Some(v) => match v.parse::<f64>() {
                    Ok(a) if a > 1.0 && a.is_finite() => a,
                    _ => return Err(format!("bad pareto alpha `{v}` (must be > 1)")),
                },
            };
            ArrivalProcess::Pareto { rate_per_s, alpha }
        }
        "diurnal" => ArrivalProcess::Diurnal {
            rate_per_s: rate(parts.next())?,
            period_us: match parts.next() {
                None => DEFAULT_PERIOD_US,
                Some(v) => match v.parse::<f64>() {
                    Ok(p) if p > 0.0 && p.is_finite() => (p * 1e6) as u64,
                    _ => return Err(format!("bad diurnal period `{v}` (seconds, > 0)")),
                },
            },
        },
        "trace" => match parts.next() {
            Some("diurnal") => ArrivalProcess::Diurnal {
                rate_per_s: SMALL_RATE_PER_S,
                period_us: DEFAULT_PERIOD_US,
            },
            other => {
                return Err(format!(
                    "unknown trace `{}` (only `trace:diurnal` is bundled)",
                    other.unwrap_or("")
                ))
            }
        },
        other => {
            return Err(format!(
                "unknown arrival family `{other}` (poisson|pareto|diurnal|trace:diurnal)"
            ))
        }
    };
    if let Some(extra) = parts.next() {
        return Err(format!("trailing arrival component `{extra}`"));
    }
    Ok(spec)
}

/// Parse a `--duration` spec: seconds, or the `short` preset. Returns the
/// unscaled horizon in µs.
pub fn parse_duration(s: &str) -> Result<u64, String> {
    if s == "short" {
        return Ok(SHORT_DURATION_US);
    }
    match s.parse::<f64>() {
        Ok(v) if v > 0.0 && v.is_finite() => Ok((v * 1e6) as u64),
        _ => Err(format!("bad duration `{s}` (seconds, > 0, or `short`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobgraph::Engine;
    use proptest::prelude::*;

    fn quick_rc() -> RunnerConfig {
        RunnerConfig {
            scale: 0.1,
            ..RunnerConfig::default()
        }
    }

    fn quick_base() -> ArrivalProcess {
        ArrivalProcess::Poisson { rate_per_s: 30.0 }
    }

    #[test]
    fn open_run_reports_consistent_stats() {
        let rc = quick_rc();
        let spec = OpenSpec {
            arrivals: quick_base(),
            duration_us: 20_000_000,
            stack: OpenStack::Latest,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        };
        let r = open_run(&spec, &rc);
        let open = r.open.expect("open stats present");
        assert!(open.arrived > 0);
        assert_eq!(open.served as usize, r.turnarounds_us.len());
        assert!(open.served + open.shed <= open.arrived);
        assert!(
            open.overhead_pct() < 4.5,
            "overhead {}",
            open.overhead_pct()
        );
        assert!(r.completion.is_finished());
        // Scale entered the horizon: 20 s × 0.1 = 2 s.
        assert_eq!(r.sim_elapsed_us, 2_000_000);
    }

    #[test]
    fn open_cells_cache_and_dedup_like_any_other_cell() {
        let rc = quick_rc();
        let spec = OpenSpec {
            arrivals: quick_base(),
            duration_us: 10_000_000,
            stack: OpenStack::Window,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        };
        let mut plan = Plan::new();
        let a = plan.cell(RunRequest::open(spec, &rc));
        let b = plan.cell(RunRequest::open(spec, &rc));
        assert_eq!(a, b, "identical open cells dedup");
        let c = plan.cell(RunRequest::open(
            OpenSpec {
                stack: OpenStack::Latest,
                ..spec
            },
            &rc,
        ));
        assert_ne!(a, c, "stack is part of the cell identity");
        let mut engine = Engine::ephemeral();
        let first = engine.execute(&plan, 1);
        let again = engine.execute(&plan, 1);
        assert!(std::sync::Arc::ptr_eq(&first.get_arc(a), &again.get_arc(a)));
    }

    #[test]
    fn subcritical_pareto_alpha_keys_like_the_floor_it_samples_as() {
        // The sampler clamps Pareto shapes to MIN_PARETO_ALPHA, so a raw
        // subcritical alpha and the clamped constructor draw identical
        // arrival streams. Their cell keys — and results — must agree,
        // while a genuinely different shape must key differently.
        let rc = quick_rc();
        let spec_of = |arrivals| OpenSpec {
            arrivals,
            duration_us: 10_000_000,
            stack: OpenStack::Latest,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        };
        let raw = spec_of(ArrivalProcess::Pareto {
            rate_per_s: 30.0,
            alpha: 0.5,
        });
        let canon = spec_of(ArrivalProcess::pareto(30.0, 0.5));
        let mut plan = Plan::new();
        let a = plan.cell(RunRequest::open(raw, &rc));
        let b = plan.cell(RunRequest::open(canon, &rc));
        assert_eq!(a, b, "raw subcritical alpha keys like the clamped floor");
        let c = plan.cell(RunRequest::open(
            spec_of(ArrivalProcess::pareto(30.0, 1.5)),
            &rc,
        ));
        assert_ne!(a, c, "a supercritical shape is a different cell");
        assert_eq!(
            crate::cache::encode_result(&open_run(&raw, &rc)),
            crate::cache::encode_result(&open_run(&canon, &rc))
        );
    }

    #[test]
    fn every_open_tunable_lands_in_the_cell_key() {
        let rc = quick_rc();
        let base = OpenSpec {
            arrivals: quick_base(),
            duration_us: 10_000_000,
            stack: OpenStack::Latest,
            queue_capacity: 8,
        };
        let k = RunRequest::open(base, &rc).key();
        let variants = [
            OpenSpec {
                arrivals: ArrivalProcess::Poisson { rate_per_s: 31.0 },
                ..base
            },
            OpenSpec {
                arrivals: ArrivalProcess::Pareto {
                    rate_per_s: 30.0,
                    alpha: 1.5,
                },
                ..base
            },
            OpenSpec {
                arrivals: ArrivalProcess::Diurnal {
                    rate_per_s: 30.0,
                    period_us: 8_000_000,
                },
                ..base
            },
            OpenSpec {
                duration_us: 10_000_001,
                ..base
            },
            OpenSpec {
                stack: OpenStack::Oblivious,
                ..base
            },
            OpenSpec {
                queue_capacity: 9,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(RunRequest::open(v, &rc).key(), k, "{v:?} collides");
        }
        assert_ne!(
            RunRequest::open(base, &RunnerConfig { seed: 43, ..rc }).key(),
            k,
            "seed must separate open cells"
        );
        assert_eq!(RunRequest::open(base, &rc).key(), k);
    }

    #[test]
    fn fold_reports_tails_shed_and_overhead_per_stack_and_load() {
        let rc = quick_rc();
        let fig = open_tail_latency(&rc, quick_base(), 20_000_000);
        assert_eq!(
            fig.rows.len(),
            OpenStack::ALL.len() * LOAD_MULTIPLIERS.len()
        );
        for row in &fig.rows {
            let p50 = row.get("p50_ms").unwrap();
            let p99 = row.get("p99_ms").unwrap();
            let p999 = row.get("p999_ms").unwrap();
            assert!(p50 <= p99 && p99 <= p999, "{}: tails not monotone", row.app);
            let shed = row.get("shed_%").unwrap();
            assert!((0.0..=100.0).contains(&shed));
            let ovh = row.get("mgr_ovh_%").unwrap();
            assert!((0.0..4.5).contains(&ovh), "{}: overhead {ovh}", row.app);
        }
        // Overload must shed somewhere at 4× offered load.
        let worst = fig
            .rows
            .iter()
            .filter(|r| r.app.ends_with("@4x"))
            .map(|r| r.get("shed_%").unwrap())
            .fold(0.0f64, f64::max);
        assert!(worst > 0.0, "4x offered load must shed");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The open serve is a real multi-client event loop, but its
        /// determinism contract is the same as every simulator cell:
        /// for any seed, Poisson/Pareto/trace arrivals must produce
        /// byte-identical results (codec bytes, stage timings stripped)
        /// whether the plan runs on 1, 2, or 8 engine workers, and a
        /// cache-warm replay must reproduce the cold bytes.
        #[test]
        fn open_cells_are_byte_identical_across_workers_and_warm_replay(
            seed in 0u64..512,
        ) {
            let rc = RunnerConfig {
                seed,
                scale: 0.05,
                ..RunnerConfig::default()
            };
            let families = [
                ("poisson", ArrivalProcess::Poisson { rate_per_s: 40.0 }),
                (
                    "pareto",
                    ArrivalProcess::Pareto {
                        rate_per_s: 40.0,
                        alpha: 1.5,
                    },
                ),
                ("trace:diurnal", parse_arrivals("trace:diurnal").unwrap()),
            ];
            let mut plan = Plan::new();
            let ids: Vec<_> = families
                .iter()
                .map(|&(_, arrivals)| {
                    plan.cell(RunRequest::open(
                        OpenSpec {
                            arrivals,
                            duration_us: 10_000_000,
                            stack: OpenStack::Latest,
                            queue_capacity: DEFAULT_QUEUE_CAPACITY,
                        },
                        &rc,
                    ))
                })
                .collect();

            let mut cold_engine = Engine::ephemeral();
            let cold = cold_engine.execute(&plan, 1);
            let baseline: Vec<Vec<u8>> = ids
                .iter()
                .map(|&id| crate::audit::canonical_bytes(cold.get(id)))
                .collect();

            let mut auditor = busbw_audit::Auditor::with_builtins();
            for workers in [2usize, 8] {
                let other = Engine::ephemeral().execute(&plan, workers);
                for (i, &(name, _)) in families.iter().enumerate() {
                    auditor.check_byte_identity_as(
                        "cache-consistency",
                        &format!("open {name} seed {seed}: 1 vs {workers} workers"),
                        &baseline[i],
                        &crate::audit::canonical_bytes(other.get(ids[i])),
                    );
                }
            }
            let warm = cold_engine.execute(&plan, 1);
            for (i, &(name, _)) in families.iter().enumerate() {
                auditor.check_byte_identity_as(
                    "cache-consistency",
                    &format!("open {name} seed {seed}: cold vs cache-warm replay"),
                    &baseline[i],
                    &crate::audit::canonical_bytes(warm.get(ids[i])),
                );
            }
            prop_assert!(auditor.is_clean(), "{:?}", auditor.violations());
        }
    }

    #[test]
    fn arrival_and_duration_specs_parse() {
        assert_eq!(
            parse_arrivals("poisson:small").unwrap(),
            ArrivalProcess::Poisson {
                rate_per_s: SMALL_RATE_PER_S
            }
        );
        assert_eq!(
            parse_arrivals("poisson:35").unwrap(),
            ArrivalProcess::Poisson { rate_per_s: 35.0 }
        );
        assert_eq!(
            parse_arrivals("pareto:30:1.8").unwrap(),
            ArrivalProcess::Pareto {
                rate_per_s: 30.0,
                alpha: 1.8
            }
        );
        assert_eq!(
            parse_arrivals("trace:diurnal").unwrap(),
            ArrivalProcess::Diurnal {
                rate_per_s: SMALL_RATE_PER_S,
                period_us: 8_000_000
            }
        );
        assert_eq!(
            parse_arrivals("diurnal:40:2").unwrap(),
            ArrivalProcess::Diurnal {
                rate_per_s: 40.0,
                period_us: 2_000_000
            }
        );
        for bad in [
            "poisson:-1",
            "pareto:30:0.5",
            "uniform:10",
            "trace:web",
            "poisson:30:extra",
        ] {
            assert!(parse_arrivals(bad).is_err(), "`{bad}` must not parse");
        }
        assert_eq!(parse_duration("short").unwrap(), SHORT_DURATION_US);
        assert_eq!(parse_duration("2.5").unwrap(), 2_500_000);
        assert!(parse_duration("0").is_err());
        assert!(parse_duration("fast").is_err());
    }
}
