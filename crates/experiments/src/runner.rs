//! Shared experiment mechanics: build a workload, pick a policy, run it,
//! and collect the turnarounds of the measured application instances.
//!
//! Independent (workload, policy) points are embarrassingly parallel:
//! every run builds its own machine and its own seeded RNGs, so
//! [`par_map`] fans them out over OS threads with results bit-identical
//! to a serial sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use busbw_core::estimator::{LatestQuantumEstimator, QuantaWindowEstimator};
use busbw_core::model::ModelDrivenScheduler;
use busbw_core::{
    bus_aware, bus_aware_with_config, greedy_pack, linux_like, linux_o1, random_gang,
    round_robin_gang, PolicyConfig,
};
use busbw_sim::{
    ExecMode, MachineConfig, Scheduler, StageTimings, StopCondition, TickDtHist, XEON_4WAY,
};
use busbw_trace::{EventBus, MemoryHandle, NullSink, TraceEvent};
use busbw_workloads::mix::{build_machine, fig1_solo, WorkloadSpec};
use busbw_workloads::paper::PaperApp;

/// Which scheduler drives a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The Linux 2.4-like baseline (100 ms time sharing with affinity).
    Linux,
    /// The paper's 'Latest Quantum' policy.
    Latest,
    /// The paper's 'Quanta Window' policy (5-sample window).
    Window,
    /// Quanta Window with a custom window length (ablation).
    WindowN(usize),
    /// Latest Quantum with a custom quantum length in µs (ablation).
    LatestWithQuantum(u64),
    /// Gang + rotation, no fitness (ablation).
    RoundRobinGang,
    /// Gang + random fill (ablation; seeded).
    RandomGang(u64),
    /// Gang + "maximize measured bandwidth" fill (ablation strawman).
    GreedyPack,
    /// The Linux 2.6 O(1)-class baseline (per-cpu runqueues,
    /// active/expired arrays, load balancing).
    LinuxO1,
    /// The §6 future-work comparator: model-driven quantum optimization.
    ModelDriven,
    /// An arbitrary four-stage stack composed from the CLI
    /// (`--policy estimator=…,selector=…,placer=…`) or the stage ablation.
    Stack(crate::policy::StackSpec),
    /// The offline-optimal oracle (`busbw_core::oracle::offline_optimal`).
    /// Not a live scheduler: `build()` yields an empty-plan replayer that
    /// idles — real oracle runs go through [`crate::regret::oracle_run`],
    /// which searches for the optimal plan first and replays it. The
    /// variant exists so oracle cells share the run-cache/job-graph
    /// plumbing of every other policy.
    OfflineOptimal,
}

impl PolicyKind {
    /// Display label used in figure series.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Linux => "Linux".into(),
            PolicyKind::Latest => "Latest".into(),
            PolicyKind::Window => "Window".into(),
            PolicyKind::WindowN(n) => format!("Window{n}"),
            PolicyKind::LatestWithQuantum(q) => format!("Latest@{}ms", q / 1000),
            PolicyKind::RoundRobinGang => "RRGang".into(),
            PolicyKind::RandomGang(_) => "RandGang".into(),
            PolicyKind::GreedyPack => "Greedy".into(),
            PolicyKind::LinuxO1 => "LinuxO1".into(),
            PolicyKind::ModelDriven => "ModelDriven".into(),
            PolicyKind::Stack(spec) => spec.label(),
            PolicyKind::OfflineOptimal => "Oracle".into(),
        }
    }

    /// Instantiate the scheduler (a [`busbw_core::PolicyStack`] preset for
    /// every kind but the model-driven comparator).
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            PolicyKind::Linux => Box::new(linux_like()),
            PolicyKind::Latest => Box::new(bus_aware(Box::new(LatestQuantumEstimator::new()))),
            PolicyKind::Window => Box::new(bus_aware(Box::new(QuantaWindowEstimator::new()))),
            PolicyKind::WindowN(n) => {
                Box::new(bus_aware(Box::new(QuantaWindowEstimator::with_window(n))))
            }
            PolicyKind::LatestWithQuantum(q) => Box::new(bus_aware_with_config(
                Box::new(LatestQuantumEstimator::new()),
                PolicyConfig {
                    quantum_us: q,
                    ..PolicyConfig::default()
                },
            )),
            PolicyKind::RoundRobinGang => Box::new(round_robin_gang()),
            PolicyKind::RandomGang(seed) => Box::new(random_gang(seed)),
            PolicyKind::GreedyPack => Box::new(greedy_pack()),
            PolicyKind::LinuxO1 => Box::new(linux_o1()),
            PolicyKind::ModelDriven => Box::new(ModelDrivenScheduler::new()),
            PolicyKind::Stack(spec) => Box::new(spec.build()),
            PolicyKind::OfflineOptimal => {
                Box::new(busbw_core::FixedPlanScheduler::new(Vec::new()))
            }
        }
    }
}

/// How a run's structured-trace bus is wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracer attached at all (the zero-cost default).
    #[default]
    Off,
    /// A [`NullSink`] tracer attached: exercises bus wiring (attach,
    /// flush) but the sink discards, so hot emission sites skip event
    /// construction entirely (see [`busbw_trace::EventBus::emits`]). Used
    /// by `bench tick-rate` for an attached-but-silent configuration.
    Null,
    /// An in-memory sink per run; events come back in
    /// [`RunResult::events`] for merging and serialization.
    Collect,
}

/// Experiment-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// The simulated machine (defaults to the paper's 4-way Xeon).
    pub machine: MachineConfig,
    /// Work-volume scale: 1.0 = the default 6 simulated seconds of solo
    /// work per application; smaller runs faster with the same shape.
    pub scale: f64,
    /// Seed for bursty demand models and randomized comparators.
    pub seed: u64,
    /// Worker threads for figure-level fan-out; 0 = one per available
    /// hardware thread. Results are bit-identical for any value — the
    /// setting only affects wall-clock time.
    pub workers: usize,
    /// Structured-trace wiring for every run (see [`TraceMode`]).
    pub trace: TraceMode,
    /// Hard-cap multiple of the scaled solo work volume after which a run
    /// is abandoned and reported as unfinished. 100 is far beyond any
    /// plausible schedule; tests shrink it to exercise the censored path.
    pub hard_cap_factor: f64,
    /// Inner-loop execution mode of every machine built by this runner.
    /// Both modes are bit-identical (the audit fuzzer enforces it), so
    /// this is deliberately **not** part of the run-cache key: a cached
    /// result produced under either mode answers for both.
    pub exec: ExecMode,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            machine: XEON_4WAY,
            scale: 1.0,
            seed: 42,
            workers: 0,
            trace: TraceMode::Off,
            hard_cap_factor: 100.0,
            exec: ExecMode::EventDriven,
        }
    }
}

impl RunnerConfig {
    /// A configuration scaled for fast test runs.
    pub fn quick() -> Self {
        Self {
            scale: 0.1,
            ..Self::default()
        }
    }
}

/// Effective worker count for `rc` (resolving 0 = auto).
pub fn effective_workers(rc: &RunnerConfig) -> usize {
    if rc.workers != 0 {
        rc.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Map `f` over `items` on up to `workers` OS threads, returning results
/// in input order.
///
/// Work is pulled from a shared atomic cursor, so stragglers don't idle
/// the other workers. Because every experiment point builds a fresh
/// machine and fresh seeded RNGs, the outputs are **bit-identical** to a
/// serial sweep — parallelism only changes the order work is *done*, not
/// the order (or content) of the results. `workers <= 1` degenerates to
/// a plain serial map with no thread machinery at all.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                done.lock().expect("worker panicked").push((i, r));
            });
        }
    });
    let mut v = done.into_inner().expect("worker panicked");
    v.sort_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// A measured application that had not finished when its run hit the
/// hard cap.
#[derive(Debug, Clone, PartialEq)]
pub struct UnfinishedApp {
    /// Application name from the workload spec.
    pub name: String,
    /// Fraction of the app's finite work completed at the cap, in
    /// `[0, 1]` (0 when the app has no finite-work threads).
    pub progress_frac: f64,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunCompletion {
    /// Every measured application instance finished.
    Finished,
    /// The hard cap fired first. Turnarounds of the listed apps are
    /// censored at the cap (reported as `stop_time − arrival`), which
    /// used to panic the whole parallel sweep instead.
    HardCap {
        /// The measured instances still running at the cap, spec order.
        unfinished: Vec<UnfinishedApp>,
    },
}

impl RunCompletion {
    /// True when every measured instance finished.
    pub fn is_finished(&self) -> bool {
        matches!(self, RunCompletion::Finished)
    }
}

/// The result of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Turnaround (µs) of each measured application instance, spec order.
    /// Censored at the stop time for apps listed in an unfinished
    /// [`RunCompletion::HardCap`].
    pub turnarounds_us: Vec<f64>,
    /// Mean turnaround over the measured instances — the quantity whose
    /// improvement Fig. 2 reports.
    pub mean_turnaround_us: f64,
    /// Cumulative bus transaction rate over the run, tx/µs (whole
    /// workload) — Fig. 1A's quantity for the microbenchmark mixes.
    pub workload_rate: f64,
    /// Sum over measured apps of their individual transaction rates —
    /// Fig. 1A's quantity for the application-only configurations.
    pub measured_apps_rate: f64,
    /// Fraction of wall time the bus was saturated.
    pub saturated_fraction: f64,
    /// Tick-loop iterations the run executed (with event-driven tick
    /// coarsening this is typically far below `sim_elapsed_us / tick_us`).
    pub ticks: u64,
    /// Simulated wall time of the run, µs.
    pub sim_elapsed_us: u64,
    /// Whether the run finished or was censored at the hard cap.
    pub completion: RunCompletion,
    /// Structured trace of the run (empty unless
    /// [`RunnerConfig::trace`] is [`TraceMode::Collect`]).
    pub events: Vec<TraceEvent>,
    /// Histogram of nominal ticks covered per tick-loop iteration.
    pub tick_dt_hist: TickDtHist,
    /// Λ-solve memo hits of the bus model (0 when the bus keeps no memo).
    pub memo_hits: u64,
    /// Λ-solve memo misses of the bus model.
    pub memo_misses: u64,
    /// Per-stage wall-time accounting when the policy is a pipeline stack
    /// (`None` for schedulers that expose no stage breakdown). Wall-clock
    /// derived: a cache hit replays the producing run's readings, and the
    /// manifest checksum excludes them.
    pub stage_timings: Option<StageTimings>,
    /// Open-system accounting when the run was an open managerd serve
    /// (`None` for the closed-batch workloads).
    pub open: Option<OpenStats>,
    /// Number of bus levels the machine reported (0 = flat single bus;
    /// hierarchical topologies report one per socket plus the
    /// interconnect).
    pub n_levels: usize,
    /// Per-level mean utilization over the run (first `n_levels` slots).
    pub level_utilization: [f64; busbw_sim::MAX_BUS_LEVELS],
    /// Per-level fraction of wall time spent saturated (first `n_levels`
    /// slots).
    pub level_saturated: [f64; busbw_sim::MAX_BUS_LEVELS],
}

/// Accounting of one open-system managerd run (see `busbw_managerd`):
/// how many clients arrived, were shed by overload admission control, or
/// were served to completion, plus the manager's modeled overhead — the
/// numbers behind the shed-rate and 4.5 %-bound columns of
/// `experiments open`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenStats {
    /// Clients the arrival process offered.
    pub arrived: u64,
    /// Clients rejected because the accept queue was full.
    pub shed: u64,
    /// Clients served to completion (departed before the horizon).
    pub served: u64,
    /// Virtual duration of the serve, µs.
    pub duration_us: u64,
    /// Modeled manager work (pump/sample/quantum bookkeeping), virtual µs.
    pub overhead_us: u64,
    /// Mean slowdown (turnaround ÷ solo service time) over served clients
    /// (0 when none were served).
    pub mean_slowdown: f64,
}

impl OpenStats {
    /// Manager overhead as a percentage of the serve duration — the
    /// number the paper bounds at ≈4.5 % (§4).
    pub fn overhead_pct(&self) -> f64 {
        if self.duration_us == 0 {
            0.0
        } else {
            100.0 * self.overhead_us as f64 / self.duration_us as f64
        }
    }

    /// Fraction of arrivals shed, ∈ [0, 1].
    pub fn shed_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrived as f64
        }
    }
}

/// Run `spec` under `policy` and measure the marked instances.
///
/// The run stops when all measured instances finish (background
/// microbenchmarks run forever) or when the hard cap
/// ([`RunnerConfig::hard_cap_factor`] × the scaled solo work volume)
/// fires. A capped run no longer panics: unfinished apps are reported in
/// [`RunResult::completion`] with censored turnarounds, and a
/// [`TraceEvent::RunUnfinished`] is emitted per unfinished app when a
/// tracer is attached.
pub fn run_spec(spec: &WorkloadSpec, policy: PolicyKind, rc: &RunnerConfig) -> RunResult {
    run_spec_hooked(spec, policy, rc, None)
}

/// [`run_spec`] with an optional [`busbw_sim::AuditHook`] observing the
/// run (see `Machine::run_audited`). The audited path is what
/// `experiments audit` drives; `hook = None` is the plain `run_spec` and
/// produces bit-identical results to it.
pub fn run_spec_hooked(
    spec: &WorkloadSpec,
    policy: PolicyKind,
    rc: &RunnerConfig,
    hook: Option<&mut dyn busbw_sim::AuditHook>,
) -> RunResult {
    let mut p = prepare_run(spec, policy, rc);
    let stop = p.stop_condition();
    let PreparedRun {
        ref mut machine,
        ref mut sched,
        ..
    } = p;
    let out = machine.run_audited(&mut **sched, stop, hook);
    finalize_run(p, out)
}

/// [`run_spec`] with the machine's phase profiler switched on: returns
/// the run result plus the per-phase wall-time profile (see
/// `busbw_sim::prof`). Profiling is observational only — the returned
/// result is byte-identical under the run codec to what [`run_spec`]
/// produces, which a proptest pins.
pub fn run_spec_profiled(
    spec: &WorkloadSpec,
    policy: PolicyKind,
    rc: &RunnerConfig,
) -> (RunResult, busbw_sim::PhaseSet) {
    let mut p = prepare_run(spec, policy, rc);
    p.machine.set_profiling(true);
    let stop = p.stop_condition();
    let PreparedRun {
        ref mut machine,
        ref mut sched,
        ..
    } = p;
    let out = machine.run_audited(&mut **sched, stop, None);
    let profile = p.machine.take_phase_profile();
    (finalize_run(p, out), profile)
}

/// A run built and wired (machine, workload, tracer, scheduler) but not
/// yet driven: the unit the batched sweep engine advances in lockstep
/// through the machine's stepped API ([`busbw_sim::Machine::run_begin`]).
/// Serial callers go through [`run_spec`], which drives the same
/// preparation to completion in one call.
pub struct PreparedRun {
    pub(crate) machine: busbw_sim::Machine,
    pub(crate) sched: Box<dyn Scheduler>,
    measured_ids: Vec<busbw_sim::AppId>,
    handle: Option<MemoryHandle>,
}

impl PreparedRun {
    /// The stop condition of this run (all measured instances finished).
    pub(crate) fn stop_condition(&self) -> StopCondition {
        StopCondition::AppsFinished(self.measured_ids.clone())
    }

    /// The measured application ids, spec order — the oracle's objective
    /// set (see [`crate::regret`]).
    pub(crate) fn measured_ids(&self) -> &[busbw_sim::AppId] {
        &self.measured_ids
    }

    /// Consume the prepared run, yielding just its machine — how the
    /// oracle search builds fresh instances for prefix replay (see
    /// [`crate::regret`]).
    pub(crate) fn into_machine(self) -> busbw_sim::Machine {
        self.machine
    }
}

/// Build the machine, workload, tracer, and scheduler for one run
/// without driving it. [`finalize_run`] folds the finished machine into
/// a [`RunResult`]; `prepare → drive → finalize` is bit-identical to
/// [`run_spec`] however the drive is interleaved with other runs.
pub(crate) fn prepare_run(
    spec: &WorkloadSpec,
    policy: PolicyKind,
    rc: &RunnerConfig,
) -> PreparedRun {
    let scaled = spec.clone().scaled(rc.scale);
    let built = build_machine(&scaled, rc.machine, rc.seed);
    let mut machine = built.machine;
    machine.set_exec_mode(rc.exec);
    machine.set_hard_cap_us(
        (busbw_workloads::paper::DEFAULT_SOLO_WORK_US * rc.scale * rc.hard_cap_factor) as u64,
    );
    let mut handle = None;
    match rc.trace {
        TraceMode::Off => {}
        TraceMode::Null => machine.set_tracer(EventBus::new(Box::new(NullSink))),
        TraceMode::Collect => {
            let (bus, h) = EventBus::memory();
            machine.set_tracer(bus);
            handle = Some(h);
        }
    }
    let sched = policy.build();
    PreparedRun {
        machine,
        sched,
        measured_ids: built.measured_ids,
        handle,
    }
}

/// Fold a driven run into its [`RunResult`] (censoring, rates, memo and
/// tick accounting). Shared verbatim by the serial and batched paths.
pub(crate) fn finalize_run(p: PreparedRun, out: busbw_sim::RunOutcome) -> RunResult {
    let PreparedRun {
        machine,
        sched,
        measured_ids,
        handle,
    } = p;
    let stage_timings = sched.stage_timings().cloned();

    let mut unfinished = Vec::new();
    let mut turnarounds = Vec::with_capacity(measured_ids.len());
    let mut measured_apps_rate = 0.0;
    for &id in &measured_ids {
        let t_us = match machine.turnaround_us(id) {
            Some(t) => t as f64,
            None => {
                // Censored at the cap: the app arrived but never finished.
                let report = machine.app_report(id).expect("measured app exists");
                let (mut done, mut total) = (0.0, 0.0);
                for th in machine.view().threads() {
                    if th.app == id && th.work_us.is_finite() {
                        done += th.progress_us.min(th.work_us);
                        total += th.work_us;
                    }
                }
                let progress_frac = if total > 0.0 {
                    (done / total).min(1.0)
                } else {
                    0.0
                };
                if machine.tracer().emits() {
                    machine.tracer().emit(TraceEvent::RunUnfinished {
                        at_us: out.stopped_at,
                        app: id.0,
                        name: report.name.clone(),
                        progress_frac,
                    });
                }
                unfinished.push(UnfinishedApp {
                    name: report.name,
                    progress_frac,
                });
                (out.stopped_at - report.arrived_at_us) as f64
            }
        };
        turnarounds.push(t_us);
        if t_us > 0.0 {
            measured_apps_rate += machine.app_transactions(id) / t_us;
        }
    }
    let completion = if unfinished.is_empty() {
        RunCompletion::Finished
    } else {
        RunCompletion::HardCap { unfinished }
    };
    let (memo_hits, memo_misses) = machine.bus_memo_stats().unwrap_or((0, 0));
    let mut level_utilization = [0.0; busbw_sim::MAX_BUS_LEVELS];
    let mut level_saturated = [0.0; busbw_sim::MAX_BUS_LEVELS];
    for (k, l) in out.stats.levels[..out.stats.n_levels].iter().enumerate() {
        level_utilization[k] = l.mean_utilization(out.stats.elapsed_us);
        level_saturated[k] = l.saturated_fraction(out.stats.elapsed_us);
    }
    RunResult {
        mean_turnaround_us: busbw_metrics::mean(&turnarounds).unwrap_or(0.0),
        turnarounds_us: turnarounds,
        workload_rate: out.stats.mean_bus_rate(),
        measured_apps_rate,
        saturated_fraction: out.stats.saturated_fraction(),
        ticks: out.stats.ticks,
        sim_elapsed_us: out.stats.elapsed_us,
        completion,
        events: handle.map(|h| h.take()).unwrap_or_default(),
        tick_dt_hist: out.stats.tick_dt_hist,
        memo_hits,
        memo_misses,
        stage_timings,
        open: None,
        n_levels: out.stats.n_levels,
        level_utilization,
        level_saturated,
    }
}

/// Merge per-run traces into one deterministic stream: events tagged with
/// their job index, stably sorted by `(simulated time, job index)`.
///
/// [`par_map`] returns results in input order regardless of worker count,
/// and the sort is stable over each run's emission order, so the merged
/// stream is byte-identical for any `--workers` value.
pub fn merge_traces(results: &[RunResult]) -> Vec<(usize, TraceEvent)> {
    let mut merged: Vec<(usize, TraceEvent)> = results
        .iter()
        .enumerate()
        .flat_map(|(ji, r)| r.events.iter().cloned().map(move |ev| (ji, ev)))
        .collect();
    merged.sort_by_key(|(ji, ev)| (ev.at_us(), *ji));
    merged
}

/// Fold a figure's runs and merged trace into a metrics snapshot.
///
/// Counters: run/tick/event totals and Λ-memo hits/misses. Gauges: memo
/// hit rate, unfinished-run count, and one per-figure-cell gauge
/// (`fig.<row>.<series>` — Fig. 1B slowdowns / Fig. 2 improvements, i.e.
/// the per-app slowdown gauges). Histograms: tick-loop coverage folded
/// from every run's [`TickDtHist`]. Timelines: bus utilization ρ from the
/// merged `bus_solve` events.
pub fn collect_metrics(
    fig: &busbw_metrics::FigureSummary,
    results: &[RunResult],
    merged: &[(usize, TraceEvent)],
) -> busbw_metrics::MetricsRegistry {
    let mut reg = busbw_metrics::MetricsRegistry::new();
    reg.inc_counter("runs.total", results.len() as u64);
    let unfinished: u64 = results
        .iter()
        .filter(|r| !r.completion.is_finished())
        .count() as u64;
    reg.inc_counter("runs.unfinished", unfinished);
    reg.set_gauge("runs.unfinished", unfinished as f64);
    reg.inc_counter("trace.events", merged.len() as u64);

    let (mut hits, mut misses) = (0u64, 0u64);
    // le-bounds 1, 2, 4, …, 64 plus the overflow bucket: one histogram
    // bucket per TickDtHist bucket (samples are recorded at bucket floors).
    let bounds: Vec<f64> = (0..7).map(|i| TickDtHist::bucket_lo(i) as f64).collect();
    {
        let h = reg.histogram("tick.dt_ticks", &bounds);
        for r in results {
            for (i, &n) in r.tick_dt_hist.buckets.iter().enumerate() {
                h.record_n(TickDtHist::bucket_lo(i) as f64, n);
            }
        }
    }
    for r in results {
        reg.inc_counter("sim.ticks", r.ticks);
        hits += r.memo_hits;
        misses += r.memo_misses;
    }
    reg.inc_counter("bus.memo_hits", hits);
    reg.inc_counter("bus.memo_misses", misses);
    if hits + misses > 0 {
        reg.set_gauge("bus.memo_hit_rate", hits as f64 / (hits + misses) as f64);
    }

    for (ji, ev) in merged {
        if let TraceEvent::BusSolve {
            at_us, utilization, ..
        } = ev
        {
            reg.timeline(&format!("bus.rho.job{ji}"))
                .push(*at_us, *utilization);
        }
    }

    for row in &fig.rows {
        for (series, v) in &row.values {
            reg.set_gauge(&format!("fig.{}.{}", row.app, series), *v);
        }
    }
    reg
}

/// Solo turnaround of one paper application (2 threads, machine otherwise
/// idle) — the Fig. 1B denominator.
pub fn solo_turnaround_us(app: PaperApp, rc: &RunnerConfig) -> f64 {
    run_spec(&fig1_solo(app), PolicyKind::Linux, rc).mean_turnaround_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_workloads::mix::{fig1_two_instances, fig2_set_b};

    fn rc() -> RunnerConfig {
        RunnerConfig::quick()
    }

    #[test]
    fn solo_run_finishes_in_scaled_work_time() {
        let t = solo_turnaround_us(PaperApp::Radiosity, &rc());
        // 600 ms scaled work ± cache warmup effects.
        assert!((590_000.0..680_000.0).contains(&t), "solo {t}");
    }

    #[test]
    fn heavy_pair_slows_down_under_linux() {
        let solo = solo_turnaround_us(PaperApp::Cg, &rc());
        let double = run_spec(&fig1_two_instances(PaperApp::Cg), PolicyKind::Linux, &rc());
        let slowdown = double.mean_turnaround_us / solo;
        assert!(
            slowdown > 1.3,
            "two CG instances should contend: slowdown {slowdown}"
        );
        assert!(double.saturated_fraction > 0.5);
    }

    #[test]
    fn policies_beat_linux_on_set_b_for_heavy_apps() {
        let spec = fig2_set_b(PaperApp::Cg);
        let linux = run_spec(&spec, PolicyKind::Linux, &rc());
        let window = run_spec(&spec, PolicyKind::Window, &rc());
        assert!(
            window.mean_turnaround_us < linux.mean_turnaround_us,
            "Window {} vs Linux {}",
            window.mean_turnaround_us,
            linux.mean_turnaround_us
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = fig2_set_b(PaperApp::Raytrace);
        let a = run_spec(&spec, PolicyKind::Window, &rc());
        let b = run_spec(&spec, PolicyKind::Window, &rc());
        assert_eq!(a.turnarounds_us, b.turnarounds_us);
        assert_eq!(a.workload_rate, b.workload_rate);
    }

    #[test]
    fn parallel_runner_is_bit_identical_to_serial() {
        use busbw_metrics::{ExperimentRow, FigureSummary, Table};
        use busbw_workloads::mix::fig1_two_instances;

        let rc = RunnerConfig {
            scale: 0.05,
            ..RunnerConfig::default()
        };
        let jobs = vec![
            (fig2_set_b(PaperApp::Cg), PolicyKind::Window),
            (fig1_two_instances(PaperApp::LuCb), PolicyKind::Linux),
            (fig1_two_instances(PaperApp::Volrend), PolicyKind::Latest),
        ];
        let serial = par_map(&jobs, 1, |(s, p)| run_spec(s, *p, &rc));
        let parallel = par_map(&jobs, 4, |(s, p)| run_spec(s, *p, &rc));

        // Every float agrees to the bit.
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.mean_turnaround_us.to_bits(),
                b.mean_turnaround_us.to_bits()
            );
            assert_eq!(a.workload_rate.to_bits(), b.workload_rate.to_bits());
            assert_eq!(
                a.measured_apps_rate.to_bits(),
                b.measured_apps_rate.to_bits()
            );
            assert_eq!(a.turnarounds_us.len(), b.turnarounds_us.len());
            for (x, y) in a.turnarounds_us.iter().zip(&b.turnarounds_us) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.ticks, b.ticks);
            assert_eq!(a.sim_elapsed_us, b.sim_elapsed_us);
        }

        // And the rendered CSV (what the binary writes) is byte-identical.
        let to_csv = |rs: &[RunResult]| {
            let rows = rs
                .iter()
                .enumerate()
                .map(|(i, r)| ExperimentRow {
                    app: format!("job{i}"),
                    values: vec![
                        ("turnaround".into(), r.mean_turnaround_us),
                        ("rate".into(), r.workload_rate),
                    ],
                })
                .collect();
            let fig = FigureSummary {
                id: "par-check".into(),
                title: String::new(),
                rows,
            };
            Table::from_figure(&fig).to_csv()
        };
        assert_eq!(to_csv(&serial), to_csv(&parallel));
    }

    #[test]
    fn par_map_preserves_input_order_for_uneven_work() {
        let items: Vec<u64> = (0..40).collect();
        let out = par_map(&items, 8, |&i| {
            // Uneven spin so completion order scrambles.
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        let ids: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, items);
    }

    #[test]
    fn all_policy_kinds_build() {
        for p in [
            PolicyKind::Linux,
            PolicyKind::Latest,
            PolicyKind::Window,
            PolicyKind::WindowN(3),
            PolicyKind::LatestWithQuantum(100_000),
            PolicyKind::RoundRobinGang,
            PolicyKind::RandomGang(1),
            PolicyKind::GreedyPack,
            PolicyKind::LinuxO1,
            PolicyKind::ModelDriven,
            PolicyKind::Stack(crate::policy::StackSpec::default()),
            PolicyKind::OfflineOptimal,
        ] {
            let s = p.build();
            assert!(!s.name().is_empty());
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn pipeline_runs_report_stage_timings() {
        let r = run_spec(&fig2_set_b(PaperApp::Volrend), PolicyKind::Latest, &rc());
        let t = r.stage_timings.expect("preset stacks expose timings");
        assert!(t.any_calls());
        assert!(t.stages.iter().all(|s| s.calls > 0), "{t:?}");
        // The model-driven comparator is not a stack and reports none.
        let r = run_spec(
            &fig2_set_b(PaperApp::Volrend),
            PolicyKind::ModelDriven,
            &rc(),
        );
        assert!(r.stage_timings.is_none());
    }
}
