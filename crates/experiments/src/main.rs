//! The figure-regeneration binary.
//!
//! ```text
//! experiments <command> [--scale X] [--seed N] [--out DIR] [--trace-out PATH]
//!
//! commands:
//!   fig1a | fig1b | fig2a | fig2b | fig2c   one figure
//!   trace <figure>                           one figure + validated trace
//!   summary                                  §5 max/avg table (needs fig2 runs)
//!   ablate-window | ablate-quantum | ablate-fitness
//!   all                                      everything above
//! ```
//!
//! Output goes to stdout and, per figure, to `<out>/<id>.txt`,
//! `<out>/<id>.csv` and a machine-readable `<out>/<id>.manifest.json`
//! (default `results/`). With `--trace-out PATH` (or the `trace`
//! subcommand) the figure's runs also write a structured JSONL trace,
//! merged deterministically across the parallel runner's workers; the
//! figure numbers are identical to a traceless run.

use std::collections::BTreeMap;
use std::path::PathBuf;

use busbw_experiments::PolicyKind;
use busbw_experiments::{
    ablate_fitness, ablate_quantum, ablate_smt, ablate_window, baselines, collect_metrics,
    dynamic_arrivals, fig1a, fig1a_traced, fig1b, fig1b_traced, fig2, fig2_with_policies_traced,
    fig2b_variance, merge_traces, render_validation, robustness, validate, Fig2Set, RunResult,
    RunnerConfig, TraceMode,
};
use busbw_metrics::{FigureSummary, Table};
use busbw_trace::{git_describe, json, ArtifactSum, Manifest, TraceInfo};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig1a|fig1b|fig2a|fig2b|fig2c|trace <figure>|summary|ablate-window|ablate-quantum|ablate-fitness|ablate-smt|dynamic|baselines|robustness|validate|variance|bench tick-rate|all> [--scale X] [--seed N] [--workers N] [--out DIR] [--trace-out PATH]"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    rc: RunnerConfig,
    out: PathBuf,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut command = args.next().unwrap_or_else(|| usage());
    if command == "bench" || command == "trace" {
        // `bench <what>` / `trace <figure>` — two-word commands.
        let sub = args.next().unwrap_or_else(|| usage());
        command = format!("{command} {sub}");
    }
    let mut rc = RunnerConfig::default();
    let mut out = PathBuf::from("results");
    let mut trace_out = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                rc.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                rc.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                rc.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            _ => usage(),
        }
    }
    Args {
        command,
        rc,
        out,
        trace_out,
    }
}

/// `bench tick-rate`: run a representative slice of the figure workloads
/// (a coarsenable solo run, a saturated mix, and two time-shared Fig. 2
/// sets) and report the simulator's tick throughput. Writes
/// `BENCH_tick.json` both to the output directory and the working
/// directory so tooling can find it without knowing `--out`.
///
/// The runs execute with a null-sink tracer attached, so the reported
/// throughput *includes* the cost of every emission site — the number the
/// ≤2 % tracing-overhead budget is checked against.
fn bench_tick_rate(rc: &RunnerConfig, out: &PathBuf) {
    use busbw_experiments::{effective_workers, par_map, run_spec};
    use busbw_workloads::mix::{fig1_solo, fig1_with_bbma, fig2_set_a, fig2_set_b, WorkloadSpec};
    use busbw_workloads::paper::PaperApp;

    let rc = RunnerConfig {
        trace: TraceMode::Null,
        ..*rc
    };
    let jobs: Vec<(WorkloadSpec, PolicyKind)> = vec![
        (fig1_solo(PaperApp::Cg), PolicyKind::Linux),
        (fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux),
        (fig2_set_a(PaperApp::Mg), PolicyKind::Window),
        (fig2_set_b(PaperApp::Raytrace), PolicyKind::Latest),
    ];
    let workers = effective_workers(&rc);
    let t0 = std::time::Instant::now();
    let results = par_map(&jobs, workers, |(s, p)| run_spec(s, *p, &rc));
    let wall = t0.elapsed().as_secs_f64();
    let ticks: u64 = results.iter().map(|r| r.ticks).sum();
    let sim_us: u64 = results.iter().map(|r| r.sim_elapsed_us).sum();
    let tps = ticks as f64 / wall;
    println!("== bench tick-rate (null-sink tracer attached)\n");
    println!("   runs: {}, workers: {workers}", jobs.len());
    println!(
        "   wall: {wall:.3} s, ticks: {ticks}, simulated: {:.2} s",
        sim_us as f64 / 1e6
    );
    println!("   ticks/sec: {tps:.0}");
    println!(
        "   simulated µs per wall second: {:.0}",
        sim_us as f64 / wall
    );
    let json = format!(
        "{{\n  \"bench\": \"tick-rate\",\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"runs\": {},\n  \"wall_s\": {:.6},\n  \"ticks\": {},\n  \"sim_elapsed_us\": {},\n  \"ticks_per_sec\": {:.1},\n  \"sim_us_per_wall_s\": {:.1}\n}}\n",
        rc.scale,
        rc.seed,
        workers,
        jobs.len(),
        wall,
        ticks,
        sim_us,
        tps,
        sim_us as f64 / wall
    );
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("BENCH_tick.json"), &json).expect("write BENCH_tick.json");
    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
}

/// Context for the manifest written next to each figure's artifacts.
struct EmitCtx {
    /// The command as typed (e.g. `fig2a`, `trace fig2a`).
    command: String,
    rc: RunnerConfig,
    started: std::time::Instant,
    trace: Option<TraceInfo>,
    metrics_json: Option<String>,
}

impl EmitCtx {
    fn new(command: &str, rc: &RunnerConfig) -> Self {
        Self {
            command: command.to_string(),
            rc: *rc,
            started: std::time::Instant::now(),
            trace: None,
            metrics_json: None,
        }
    }
}

fn emit(fig: &FigureSummary, out: &PathBuf, ctx: &EmitCtx) {
    let table = Table::from_figure(fig);
    println!("== {} — {}\n", fig.id, fig.title);
    println!("{}", table.render());
    for s in fig.series() {
        let (mean, max, min) = (
            fig.series_mean(&s).unwrap_or(f64::NAN),
            fig.series_max(&s).unwrap_or(f64::NAN),
            fig.series_min(&s).unwrap_or(f64::NAN),
        );
        println!("   {s}: mean {mean:.1}, max {max:.1}, min {min:.1}");
    }
    println!();
    std::fs::create_dir_all(out).expect("create output dir");
    let txt = out.join(format!("{}.txt", fig.id));
    let csv = out.join(format!("{}.csv", fig.id));
    std::fs::write(&txt, table.render()).expect("write txt");
    std::fs::write(&csv, table.to_csv()).expect("write csv");

    let artifacts = [&txt, &csv]
        .into_iter()
        .map(|p| ArtifactSum::of_file(p).expect("checksum just-written artifact"))
        .collect();
    let manifest = Manifest {
        id: fig.id.clone(),
        command: format!("experiments {}", ctx.command),
        seed: ctx.rc.seed,
        scale: ctx.rc.scale,
        workers: ctx.rc.workers,
        policies: fig.series(),
        git_describe: git_describe(),
        wall_ms: ctx.started.elapsed().as_millis() as u64,
        artifacts,
        trace: ctx.trace.clone(),
        metrics_json: ctx.metrics_json.clone(),
    };
    std::fs::write(
        out.join(format!("{}.manifest.json", fig.id)),
        manifest.to_json(),
    )
    .expect("write manifest");
}

fn summary_table(figs: &[FigureSummary], out: &PathBuf) {
    let mut t = Table::new(&["Set", "Policy", "Max impr %", "Avg impr %", "Min impr %"]);
    for fig in figs {
        for s in fig.series() {
            t.row(vec![
                fig.id.clone(),
                s.clone(),
                format!("{:.1}", fig.series_max(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_mean(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_min(&s).unwrap_or(f64::NAN)),
            ]);
        }
    }
    println!("== summary — §5 headline numbers\n");
    println!("{}", t.render());
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("summary.txt"), t.render()).expect("write txt");
    std::fs::write(out.join("summary.csv"), t.to_csv()).expect("write csv");
}

/// Run one of the five figures with per-run trace collection.
fn traced_figure(exp: &str, rc: &RunnerConfig) -> Option<(FigureSummary, Vec<RunResult>)> {
    let rc = RunnerConfig {
        trace: TraceMode::Collect,
        ..*rc
    };
    Some(match exp {
        "fig1a" => fig1a_traced(&rc),
        "fig1b" => fig1b_traced(&rc),
        "fig2a" => {
            fig2_with_policies_traced(Fig2Set::A, &[PolicyKind::Latest, PolicyKind::Window], &rc)
        }
        "fig2b" => {
            fig2_with_policies_traced(Fig2Set::B, &[PolicyKind::Latest, PolicyKind::Window], &rc)
        }
        "fig2c" => {
            fig2_with_policies_traced(Fig2Set::C, &[PolicyKind::Latest, PolicyKind::Window], &rc)
        }
        _ => return None,
    })
}

/// Serialize a merged trace as JSONL: one event object per line, each
/// tagged with the index of the job (runner input order) that emitted it.
fn render_jsonl(merged: &[(usize, busbw_trace::TraceEvent)]) -> String {
    let mut buf = String::with_capacity(merged.len() * 96);
    for (ji, ev) in merged {
        let obj = ev.to_json();
        buf.push('{');
        use std::fmt::Write as _;
        let _ = write!(buf, "\"job\":{ji},");
        buf.push_str(&obj[1..]); // the event object minus its opening brace
        buf.push('\n');
    }
    buf
}

/// The traced-figure flow shared by `--trace-out` and `trace <exp>`:
/// run with collection on, merge worker traces by tick order, write the
/// JSONL stream, fold the metrics snapshot, and emit figure + manifest.
/// Returns the merged events for validation.
fn run_traced(
    exp: &str,
    command: &str,
    rc: &RunnerConfig,
    out: &PathBuf,
    trace_out: Option<&PathBuf>,
) -> Vec<(usize, busbw_trace::TraceEvent)> {
    let mut ctx = EmitCtx::new(command, rc);
    let Some((fig, results)) = traced_figure(exp, rc) else {
        eprintln!("`{exp}` does not support tracing (figures only: fig1a|fig1b|fig2a|fig2b|fig2c)");
        std::process::exit(2);
    };
    let merged = merge_traces(&results);
    std::fs::create_dir_all(out).expect("create output dir");
    let path = trace_out
        .cloned()
        .unwrap_or_else(|| out.join(format!("{exp}-trace.jsonl")));
    std::fs::write(&path, render_jsonl(&merged)).expect("write trace jsonl");
    ctx.trace = Some(TraceInfo {
        path: path.display().to_string(),
        events: merged.len() as u64,
    });
    ctx.metrics_json = Some(collect_metrics(&fig, &results, &merged).to_json());
    emit(&fig, out, &ctx);
    println!("   trace: {} events -> {}", merged.len(), path.display());
    merged
}

fn main() {
    let args = parse_args();
    let rc = args.rc;
    let out = &args.out;
    let ctx = EmitCtx::new(&args.command, &rc);
    let figure_ids = ["fig1a", "fig1b", "fig2a", "fig2b", "fig2c"];

    // `--trace-out` turns any figure command into its traced flow; the
    // figure numbers are identical either way (tracing only observes).
    if let Some(path) = &args.trace_out {
        if figure_ids.contains(&args.command.as_str()) {
            run_traced(&args.command, &args.command, &rc, out, Some(path));
            return;
        }
        if !args.command.starts_with("trace ") {
            eprintln!("--trace-out only applies to figure commands or `trace <figure>`");
            std::process::exit(2);
        }
    }

    if let Some(exp) = args.command.strip_prefix("trace ") {
        let merged = run_traced(exp, &args.command, &rc, out, args.trace_out.as_ref());
        // Validation: the manifest must parse and the trace be non-empty.
        let manifest_path = out.join(format!("{exp}.manifest.json"));
        let text = std::fs::read_to_string(&manifest_path).expect("read back manifest");
        let v = json::parse(&text).expect("manifest must be valid JSON");
        assert_eq!(
            v.get("id").and_then(|x| x.as_str()),
            Some(exp),
            "manifest id mismatch"
        );
        assert!(!merged.is_empty(), "trace must be non-empty");
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for (_, ev) in &merged {
            *by_kind.entry(ev.kind()).or_insert(0) += 1;
        }
        println!("   manifest: {} (valid)", manifest_path.display());
        for (kind, n) in &by_kind {
            println!("   {kind:>16}: {n}");
        }
        return;
    }

    match args.command.as_str() {
        "fig1a" => emit(&fig1a(&rc), out, &ctx),
        "fig1b" => emit(&fig1b(&rc), out, &ctx),
        "fig2a" => emit(&fig2(Fig2Set::A, &rc), out, &ctx),
        "fig2b" => emit(&fig2(Fig2Set::B, &rc), out, &ctx),
        "fig2c" => emit(&fig2(Fig2Set::C, &rc), out, &ctx),
        "summary" => {
            let figs: Vec<FigureSummary> = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
                .into_iter()
                .map(|s| fig2(s, &rc))
                .collect();
            summary_table(&figs, out);
        }
        "ablate-window" => emit(&ablate_window(&rc), out, &ctx),
        "ablate-quantum" => emit(&ablate_quantum(&rc), out, &ctx),
        "ablate-fitness" => emit(&ablate_fitness(&rc), out, &ctx),
        "ablate-smt" => emit(&ablate_smt(&rc), out, &ctx),
        "dynamic" => emit(&dynamic_arrivals(&rc), out, &ctx),
        "baselines" => emit(&baselines(&rc), out, &ctx),
        "validate" => {
            let claims = validate(&rc);
            let (report, all) = render_validation(&claims);
            println!("== validate — reproduction gate\n");
            print!("{report}");
            std::fs::create_dir_all(out).expect("create output dir");
            std::fs::write(out.join("validate.txt"), &report).expect("write report");
            if !all {
                std::process::exit(1);
            }
        }
        "bench tick-rate" => bench_tick_rate(&rc, out),
        "robustness" => emit(&robustness(10, 5, &rc), out, &ctx),
        "variance" => {
            for p in [PolicyKind::Latest, PolicyKind::Window] {
                let mut fig = fig2b_variance(p, 5, &rc);
                fig.id = format!("variance-{}", p.label().to_lowercase());
                emit(&fig, out, &ctx);
            }
        }
        "all" => {
            emit(&fig1a(&rc), out, &ctx);
            emit(&fig1b(&rc), out, &ctx);
            let mut figs = Vec::new();
            for s in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
                let f = fig2(s, &rc);
                emit(&f, out, &ctx);
                figs.push(f);
            }
            summary_table(&figs, out);
            emit(&ablate_window(&rc), out, &ctx);
            emit(&ablate_quantum(&rc), out, &ctx);
            emit(&ablate_fitness(&rc), out, &ctx);
            emit(&ablate_smt(&rc), out, &ctx);
            emit(&dynamic_arrivals(&rc), out, &ctx);
            emit(&baselines(&rc), out, &ctx);
            emit(&robustness(10, 5, &rc), out, &ctx);
        }
        _ => usage(),
    }
}
