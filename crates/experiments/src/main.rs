//! The figure-regeneration binary.
//!
//! ```text
//! experiments <command> [--scale X] [--seed N] [--out DIR]
//!
//! commands:
//!   fig1a | fig1b | fig2a | fig2b | fig2c   one figure
//!   summary                                  §5 max/avg table (needs fig2 runs)
//!   ablate-window | ablate-quantum | ablate-fitness
//!   all                                      everything above
//! ```
//!
//! Output goes to stdout and, per figure, to `<out>/<id>.txt` and
//! `<out>/<id>.csv` (default `results/`).

use std::path::PathBuf;

use busbw_experiments::PolicyKind;
use busbw_experiments::{
    ablate_fitness, ablate_quantum, ablate_smt, ablate_window, baselines, dynamic_arrivals, fig1a,
    fig1b, fig2, fig2b_variance, render_validation, robustness, validate, Fig2Set, RunnerConfig,
};
use busbw_metrics::{FigureSummary, Table};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig1a|fig1b|fig2a|fig2b|fig2c|summary|ablate-window|ablate-quantum|ablate-fitness|ablate-smt|dynamic|baselines|robustness|validate|variance|bench tick-rate|all> [--scale X] [--seed N] [--workers N] [--out DIR]"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    rc: RunnerConfig,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut command = args.next().unwrap_or_else(|| usage());
    if command == "bench" {
        // `bench <what>` — two-word commands.
        let sub = args.next().unwrap_or_else(|| usage());
        command = format!("bench {sub}");
    }
    let mut rc = RunnerConfig::default();
    let mut out = PathBuf::from("results");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                rc.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                rc.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                rc.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    Args { command, rc, out }
}

/// `bench tick-rate`: run a representative slice of the figure workloads
/// (a coarsenable solo run, a saturated mix, and two time-shared Fig. 2
/// sets) and report the simulator's tick throughput. Writes
/// `BENCH_tick.json` both to the output directory and the working
/// directory so tooling can find it without knowing `--out`.
fn bench_tick_rate(rc: &RunnerConfig, out: &PathBuf) {
    use busbw_experiments::{effective_workers, par_map, run_spec};
    use busbw_workloads::mix::{fig1_solo, fig1_with_bbma, fig2_set_a, fig2_set_b, WorkloadSpec};
    use busbw_workloads::paper::PaperApp;

    let jobs: Vec<(WorkloadSpec, PolicyKind)> = vec![
        (fig1_solo(PaperApp::Cg), PolicyKind::Linux),
        (fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux),
        (fig2_set_a(PaperApp::Mg), PolicyKind::Window),
        (fig2_set_b(PaperApp::Raytrace), PolicyKind::Latest),
    ];
    let workers = effective_workers(rc);
    let t0 = std::time::Instant::now();
    let results = par_map(&jobs, workers, |(s, p)| run_spec(s, *p, rc));
    let wall = t0.elapsed().as_secs_f64();
    let ticks: u64 = results.iter().map(|r| r.ticks).sum();
    let sim_us: u64 = results.iter().map(|r| r.sim_elapsed_us).sum();
    let tps = ticks as f64 / wall;
    println!("== bench tick-rate\n");
    println!("   runs: {}, workers: {workers}", jobs.len());
    println!(
        "   wall: {wall:.3} s, ticks: {ticks}, simulated: {:.2} s",
        sim_us as f64 / 1e6
    );
    println!("   ticks/sec: {tps:.0}");
    println!(
        "   simulated µs per wall second: {:.0}",
        sim_us as f64 / wall
    );
    let json = format!(
        "{{\n  \"bench\": \"tick-rate\",\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"runs\": {},\n  \"wall_s\": {:.6},\n  \"ticks\": {},\n  \"sim_elapsed_us\": {},\n  \"ticks_per_sec\": {:.1},\n  \"sim_us_per_wall_s\": {:.1}\n}}\n",
        rc.scale,
        rc.seed,
        workers,
        jobs.len(),
        wall,
        ticks,
        sim_us,
        tps,
        sim_us as f64 / wall
    );
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("BENCH_tick.json"), &json).expect("write BENCH_tick.json");
    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
}

fn emit(fig: &FigureSummary, out: &PathBuf) {
    let table = Table::from_figure(fig);
    println!("== {} — {}\n", fig.id, fig.title);
    println!("{}", table.render());
    for s in fig.series() {
        let (mean, max, min) = (
            fig.series_mean(&s).unwrap_or(f64::NAN),
            fig.series_max(&s).unwrap_or(f64::NAN),
            fig.series_min(&s).unwrap_or(f64::NAN),
        );
        println!("   {s}: mean {mean:.1}, max {max:.1}, min {min:.1}");
    }
    println!();
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join(format!("{}.txt", fig.id)), table.render()).expect("write txt");
    std::fs::write(out.join(format!("{}.csv", fig.id)), table.to_csv()).expect("write csv");
}

fn summary_table(figs: &[FigureSummary], out: &PathBuf) {
    let mut t = Table::new(&["Set", "Policy", "Max impr %", "Avg impr %", "Min impr %"]);
    for fig in figs {
        for s in fig.series() {
            t.row(vec![
                fig.id.clone(),
                s.clone(),
                format!("{:.1}", fig.series_max(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_mean(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_min(&s).unwrap_or(f64::NAN)),
            ]);
        }
    }
    println!("== summary — §5 headline numbers\n");
    println!("{}", t.render());
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("summary.txt"), t.render()).expect("write txt");
    std::fs::write(out.join("summary.csv"), t.to_csv()).expect("write csv");
}

fn main() {
    let args = parse_args();
    let rc = args.rc;
    match args.command.as_str() {
        "fig1a" => emit(&fig1a(&rc), &args.out),
        "fig1b" => emit(&fig1b(&rc), &args.out),
        "fig2a" => emit(&fig2(Fig2Set::A, &rc), &args.out),
        "fig2b" => emit(&fig2(Fig2Set::B, &rc), &args.out),
        "fig2c" => emit(&fig2(Fig2Set::C, &rc), &args.out),
        "summary" => {
            let figs: Vec<FigureSummary> = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
                .into_iter()
                .map(|s| fig2(s, &rc))
                .collect();
            summary_table(&figs, &args.out);
        }
        "ablate-window" => emit(&ablate_window(&rc), &args.out),
        "ablate-quantum" => emit(&ablate_quantum(&rc), &args.out),
        "ablate-fitness" => emit(&ablate_fitness(&rc), &args.out),
        "ablate-smt" => emit(&ablate_smt(&rc), &args.out),
        "dynamic" => emit(&dynamic_arrivals(&rc), &args.out),
        "baselines" => emit(&baselines(&rc), &args.out),
        "validate" => {
            let claims = validate(&rc);
            let (report, all) = render_validation(&claims);
            println!("== validate — reproduction gate\n");
            print!("{report}");
            std::fs::create_dir_all(&args.out).expect("create output dir");
            std::fs::write(args.out.join("validate.txt"), &report).expect("write report");
            if !all {
                std::process::exit(1);
            }
        }
        "bench tick-rate" => bench_tick_rate(&rc, &args.out),
        "robustness" => emit(&robustness(10, 5, &rc), &args.out),
        "variance" => {
            for p in [PolicyKind::Latest, PolicyKind::Window] {
                let mut fig = fig2b_variance(p, 5, &rc);
                fig.id = format!("variance-{}", p.label().to_lowercase());
                emit(&fig, &args.out);
            }
        }
        "all" => {
            emit(&fig1a(&rc), &args.out);
            emit(&fig1b(&rc), &args.out);
            let mut figs = Vec::new();
            for s in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
                let f = fig2(s, &rc);
                emit(&f, &args.out);
                figs.push(f);
            }
            summary_table(&figs, &args.out);
            emit(&ablate_window(&rc), &args.out);
            emit(&ablate_quantum(&rc), &args.out);
            emit(&ablate_fitness(&rc), &args.out);
            emit(&ablate_smt(&rc), &args.out);
            emit(&dynamic_arrivals(&rc), &args.out);
            emit(&baselines(&rc), &args.out);
            emit(&robustness(10, 5, &rc), &args.out);
        }
        _ => usage(),
    }
}
