//! The figure-regeneration binary.
//!
//! ```text
//! experiments <command> [--scale X] [--seed N] [--out DIR]
//!
//! commands:
//!   fig1a | fig1b | fig2a | fig2b | fig2c   one figure
//!   summary                                  §5 max/avg table (needs fig2 runs)
//!   ablate-window | ablate-quantum | ablate-fitness
//!   all                                      everything above
//! ```
//!
//! Output goes to stdout and, per figure, to `<out>/<id>.txt` and
//! `<out>/<id>.csv` (default `results/`).

use std::path::PathBuf;

use busbw_experiments::{
    ablate_fitness, ablate_quantum, ablate_smt, ablate_window, baselines, dynamic_arrivals,
    fig1a, fig1b, fig2, fig2b_variance, render_validation, robustness, validate, Fig2Set,
    RunnerConfig,
};
use busbw_experiments::PolicyKind;
use busbw_metrics::{FigureSummary, Table};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig1a|fig1b|fig2a|fig2b|fig2c|summary|ablate-window|ablate-quantum|ablate-fitness|ablate-smt|dynamic|baselines|robustness|validate|variance|all> [--scale X] [--seed N] [--out DIR]"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    rc: RunnerConfig,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage());
    let mut rc = RunnerConfig::default();
    let mut out = PathBuf::from("results");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                rc.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                rc.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    Args { command, rc, out }
}

fn emit(fig: &FigureSummary, out: &PathBuf) {
    let table = Table::from_figure(fig);
    println!("== {} — {}\n", fig.id, fig.title);
    println!("{}", table.render());
    for s in fig.series() {
        let (mean, max, min) = (
            fig.series_mean(&s).unwrap_or(f64::NAN),
            fig.series_max(&s).unwrap_or(f64::NAN),
            fig.series_min(&s).unwrap_or(f64::NAN),
        );
        println!("   {s}: mean {mean:.1}, max {max:.1}, min {min:.1}");
    }
    println!();
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join(format!("{}.txt", fig.id)), table.render()).expect("write txt");
    std::fs::write(out.join(format!("{}.csv", fig.id)), table.to_csv()).expect("write csv");
}

fn summary_table(figs: &[FigureSummary], out: &PathBuf) {
    let mut t = Table::new(&["Set", "Policy", "Max impr %", "Avg impr %", "Min impr %"]);
    for fig in figs {
        for s in fig.series() {
            t.row(vec![
                fig.id.clone(),
                s.clone(),
                format!("{:.1}", fig.series_max(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_mean(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_min(&s).unwrap_or(f64::NAN)),
            ]);
        }
    }
    println!("== summary — §5 headline numbers\n");
    println!("{}", t.render());
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("summary.txt"), t.render()).expect("write txt");
    std::fs::write(out.join("summary.csv"), t.to_csv()).expect("write csv");
}

fn main() {
    let args = parse_args();
    let rc = args.rc;
    match args.command.as_str() {
        "fig1a" => emit(&fig1a(&rc), &args.out),
        "fig1b" => emit(&fig1b(&rc), &args.out),
        "fig2a" => emit(&fig2(Fig2Set::A, &rc), &args.out),
        "fig2b" => emit(&fig2(Fig2Set::B, &rc), &args.out),
        "fig2c" => emit(&fig2(Fig2Set::C, &rc), &args.out),
        "summary" => {
            let figs: Vec<FigureSummary> = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
                .into_iter()
                .map(|s| fig2(s, &rc))
                .collect();
            summary_table(&figs, &args.out);
        }
        "ablate-window" => emit(&ablate_window(&rc), &args.out),
        "ablate-quantum" => emit(&ablate_quantum(&rc), &args.out),
        "ablate-fitness" => emit(&ablate_fitness(&rc), &args.out),
        "ablate-smt" => emit(&ablate_smt(&rc), &args.out),
        "dynamic" => emit(&dynamic_arrivals(&rc), &args.out),
        "baselines" => emit(&baselines(&rc), &args.out),
        "validate" => {
            let claims = validate(&rc);
            let (report, all) = render_validation(&claims);
            println!("== validate — reproduction gate\n");
            print!("{report}");
            std::fs::create_dir_all(&args.out).expect("create output dir");
            std::fs::write(args.out.join("validate.txt"), &report).expect("write report");
            if !all {
                std::process::exit(1);
            }
        }
        "robustness" => emit(&robustness(10, 5, &rc), &args.out),
        "variance" => {
            for p in [PolicyKind::Latest, PolicyKind::Window] {
                let mut fig = fig2b_variance(p, 5, &rc);
                fig.id = format!("variance-{}", p.label().to_lowercase());
                emit(&fig, &args.out);
            }
        }
        "all" => {
            emit(&fig1a(&rc), &args.out);
            emit(&fig1b(&rc), &args.out);
            let mut figs = Vec::new();
            for s in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
                let f = fig2(s, &rc);
                emit(&f, &args.out);
                figs.push(f);
            }
            summary_table(&figs, &args.out);
            emit(&ablate_window(&rc), &args.out);
            emit(&ablate_quantum(&rc), &args.out);
            emit(&ablate_fitness(&rc), &args.out);
            emit(&ablate_smt(&rc), &args.out);
            emit(&dynamic_arrivals(&rc), &args.out);
            emit(&baselines(&rc), &args.out);
            emit(&robustness(10, 5, &rc), &args.out);
        }
        _ => usage(),
    }
}
