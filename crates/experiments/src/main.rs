//! The figure-regeneration binary.
//!
//! ```text
//! experiments <command> [--scale X] [--seed N] [--out DIR] [--trace-out PATH]
//!                       [--cache-dir DIR] [--no-cache] [--policy SPEC]
//!
//! commands:
//!   fig1a | fig1b | fig2a | fig2b | fig2c   one figure
//!   trace <figure>                           one figure + validated trace
//!   summary                                  §5 max/avg table (needs fig2 runs)
//!   ablate-window | ablate-quantum | ablate-fitness | ablate-smt
//!   ablate --stages                          estimator x selector x placer sweep
//!   bench tick-rate [--guard PCT]            throughput + pipeline-overhead guard
//!   bench profile                             phase-attributed tick-engine breakdown
//!   audit [--fuzz N]                         invariant catalog + differential fuzzer
//!   open [--arrivals SPEC] [--duration S]    open-system managerd tail-latency figure
//!   topo                                      socket-aware placers on 1/2/4-socket shapes
//!   regret                                    presets + sampled stacks vs the offline optimum
//!   all                                      everything above
//! ```
//!
//! `--policy` composes the fig2/summary scheduler from pipeline stages,
//! e.g. `--policy estimator=window:5,selector=fitness,placer=packed`; see
//! [`StackSpec`] for the grammar. `--guard PCT` makes `bench tick-rate`
//! assert that driving the selection logic through the composed pipeline
//! costs less than PCT % versus calling it directly.
//!
//! Output goes to stdout and, per figure, to `<out>/<id>.txt`,
//! `<out>/<id>.csv` and a machine-readable `<out>/<id>.manifest.json`
//! (default `results/`). With `--trace-out PATH` (or the `trace`
//! subcommand) the figure's runs also write a structured JSONL trace,
//! merged deterministically across the parallel runner's workers; the
//! figure numbers are identical to a traceless run.
//!
//! Every command routes its simulator runs through the sweep-wide job
//! graph: cells are deduplicated by content-addressed run key, served
//! from the run cache when possible, and executed on a work-stealing
//! pool. `--cache-dir DIR` persists results across invocations (keyed by
//! the canonical run encoding, so any parameter change misses);
//! `--no-cache` disables caching entirely. Figure outputs are
//! byte-identical for any `--workers` value and any cache state.
//!
//! `audit` runs the [`busbw_audit`] invariant catalog: estimator
//! self-checks, every preset policy over one mix per §5 set, and `--fuzz
//! N` random policy-stack × workload-mix cells, each checked serially
//! and differentially against the multi-worker and cache-warm engine.
//! Any violation is delta-debugged down to a minimal reproducer written
//! to `<out>/repro.json`, and the process exits non-zero. `audit`
//! defaults to `--scale 0.1` (pass `--scale` to override).

use std::collections::BTreeMap;
use std::path::PathBuf;

use busbw_experiments::ablate::{
    fold_fitness, fold_quantum, fold_smt, fold_stages, fold_window, plan_fitness, plan_quantum,
    plan_smt, plan_stages, plan_window,
};
use busbw_experiments::baselines::{fold_baselines, plan_baselines};
use busbw_experiments::dynamic::{fold_dynamic, plan_dynamic};
use busbw_experiments::fig1::{fig1_results, fold_fig1a, fold_fig1b, plan_fig1};
use busbw_experiments::fig2::{fig2_results, fold_fig2, plan_fig2};
use busbw_experiments::robustness::{fold_robustness, plan_robustness};
use busbw_experiments::regret::{fold_regret, plan_regret};
use busbw_experiments::topo::{fold_topo, plan_topo};
use busbw_experiments::validate::{fold_validate, plan_validate};
use busbw_experiments::variance::{fold_variance, plan_variance};
use busbw_experiments::{
    collect_metrics, effective_workers, fold_suite, merge_traces, plan_suite, render_validation,
    run_audit, AuditConfig, CellStats, Engine, ExecStats, Executed, Fig2Set, Plan, PolicyKind,
    RunCache, RunResult, RunnerConfig, StackSpec, SuiteFigure, TraceMode,
};
use busbw_metrics::{FigureSummary, MetricsRegistry, Table};
use busbw_sim::{StageTimings, STAGE_BUCKET_BOUNDS_NS};
use busbw_trace::{fnv1a64, git_describe, json, ArtifactSum, Manifest, TraceInfo};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig1a|fig1b|fig2a|fig2b|fig2c|trace <figure>|summary|ablate-window|ablate-quantum|ablate-fitness|ablate-smt|ablate-stages|ablate --stages|dynamic|open|baselines|robustness|topo|regret|validate|variance|bench tick-rate|bench profile|bench sweep|audit|all> [--scale X] [--seed N] [--workers N] [--out DIR] [--trace-out PATH] [--cache-dir DIR] [--no-cache] [--policy SPEC] [--guard PCT] [--fuzz N] [--arrivals SPEC] [--duration S]\n\n  --policy composes a scheduler from pipeline stages for the fig2 panels\n  and summary, e.g. --policy estimator=window:5,selector=fitness,placer=packed\n  (stages: estimator=latest|window[:n]|ewma[:n]|raw|null,\n   admission=head|strict|fcfs|widest|open,\n   selector=fitness|random[:seed]|greedy|lookahead|none,\n   placer=packed|scatter|smt|pack_local|spread_sockets|migrate, quantum=<ms>)\n  --guard PCT (bench tick-rate) asserts the policy-pipeline indirection\n  costs < PCT %% versus driving the same selector directly\n  --fuzz N (audit) sets the number of random differential cells; audit\n  defaults to --scale 0.1 and writes <out>/repro.json on failure\n  --arrivals SPEC (open) picks the arrival process:\n  poisson:<rate|small> | pareto:<rate|small>[:alpha] |\n  diurnal:<rate|small>[:period_s] | trace:diurnal (rates in clients/s)\n  --duration S (open) sets the unscaled horizon in seconds (or `short`)"
    );
    std::process::exit(2);
}

struct Args {
    command: String,
    rc: RunnerConfig,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    policy: Option<StackSpec>,
    guard_pct: Option<f64>,
    fuzz: usize,
    scale_set: bool,
    arrivals: busbw_managerd::ArrivalProcess,
    duration_us: u64,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut command = args.next().unwrap_or_else(|| usage());
    if command == "bench" || command == "trace" {
        // `bench <what>` / `trace <figure>` — two-word commands.
        let sub = args.next().unwrap_or_else(|| usage());
        command = format!("{command} {sub}");
    } else if command == "ablate" {
        // `ablate --stages` and friends alias the one-word spellings.
        command = match args.next().as_deref() {
            Some("--stages") => "ablate-stages".into(),
            Some("--window") => "ablate-window".into(),
            Some("--quantum") => "ablate-quantum".into(),
            Some("--fitness") => "ablate-fitness".into(),
            Some("--smt") => "ablate-smt".into(),
            _ => usage(),
        };
    }
    let mut rc = RunnerConfig::default();
    let mut out = PathBuf::from("results");
    let mut trace_out = None;
    let mut cache_dir = None;
    let mut no_cache = false;
    let mut policy = None;
    let mut guard_pct = None;
    let mut fuzz = 25;
    let mut scale_set = false;
    let mut arrivals = busbw_managerd::ArrivalProcess::Poisson {
        rate_per_s: busbw_experiments::open::SMALL_RATE_PER_S,
    };
    let mut duration_us = busbw_experiments::open::SHORT_DURATION_US;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                rc.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                scale_set = true;
            }
            "--seed" => {
                rc.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                rc.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--no-cache" => no_cache = true,
            "--policy" => {
                let spec = args.next().unwrap_or_else(|| usage());
                policy = Some(StackSpec::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("--policy: {e}");
                    std::process::exit(2);
                }));
            }
            "--guard" => {
                guard_pct = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--fuzz" => {
                fuzz = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--arrivals" => {
                let spec = args.next().unwrap_or_else(|| usage());
                arrivals = busbw_experiments::parse_arrivals(&spec).unwrap_or_else(|e| {
                    eprintln!("--arrivals: {e}");
                    std::process::exit(2);
                });
            }
            "--duration" => {
                let spec = args.next().unwrap_or_else(|| usage());
                duration_us = busbw_experiments::parse_duration(&spec).unwrap_or_else(|e| {
                    eprintln!("--duration: {e}");
                    std::process::exit(2);
                });
            }
            _ => usage(),
        }
    }
    Args {
        command,
        rc,
        out,
        trace_out,
        cache_dir,
        no_cache,
        policy,
        guard_pct,
        fuzz,
        scale_set,
        arrivals,
        duration_us,
    }
}

/// `bench tick-rate`: run a representative slice of the figure workloads
/// (a coarsenable solo run, a saturated mix, and two time-shared Fig. 2
/// sets) and report the simulator's tick throughput. Writes
/// `BENCH_tick.json` both to the output directory and the working
/// directory so tooling can find it without knowing `--out`.
///
/// The runs execute with a null-sink tracer attached, so the reported
/// throughput *includes* the cost of every emission site — the number the
/// ≤2 % tracing-overhead budget is checked against.
///
/// With `--guard PCT` it also measures the policy-pipeline indirection:
/// the same workload is run under the Linux preset stack and under a
/// [`SoloSelector`](busbw_core::SoloSelector) driving the identical
/// selector directly (same decisions, no estimate/admit/place framing or
/// per-stage timing), interleaved min-of-N, and the run asserts the
/// overhead stays under PCT %.
fn pipeline_overhead_pct(rc: &RunnerConfig) -> (f64, f64, f64) {
    use busbw_core::{linux_like, LinuxConfig, LinuxEpochSelector, SoloSelector};
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, StopCondition, ThreadSpec};

    // A fixed simulated horizon of endless-work gangs: both schedulers
    // make identical decisions every quantum, the run is long enough
    // (tens of milliseconds of wall time) for sub-percent timing
    // resolution, and the measurement is independent of `--scale`.
    let build = || {
        let mut m = Machine::new(rc.machine);
        for i in 0..4 {
            let threads = (0..2)
                .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(5.0, 0.6))))
                .collect();
            m.add_app(AppDescriptor::new(format!("a{i}"), threads));
        }
        m
    };
    // On-CPU nanoseconds of the calling thread (Linux schedstat), which
    // excludes preemption and steal time — the dominant noise when
    // benchmarking inside shared containers/CI runners.
    let thread_cpu_ns = || -> Option<u64> {
        let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
        s.split_whitespace().next()?.parse().ok()
    };
    let run = |stack: bool| {
        let mut machine = build();
        let stop = StopCondition::At(15_000_000);
        let cpu0 = thread_cpu_ns();
        let t = std::time::Instant::now();
        if stack {
            machine.run(&mut linux_like(), stop);
        } else {
            let mut solo =
                SoloSelector::new(LinuxEpochSelector::new(), LinuxConfig::default().quantum_us);
            machine.run(&mut solo, stop);
        }
        let wall = t.elapsed().as_secs_f64();
        match (cpu0, thread_cpu_ns()) {
            (Some(a), Some(b)) if b > a => (b - a) as f64 / 1e9,
            _ => wall,
        }
    };
    // One discarded warmup pair, then back-to-back (stack, direct) pairs
    // in alternating order so neither side systematically runs first.
    // Each pair shares its ambient load, so its overhead ratio is nearly
    // noise-free; the median across pairs discards the few pairs a
    // scheduling burst lands inside. Minima are reported for reference.
    run(true);
    run(false);
    let (mut best_stack, mut best_solo) = (f64::INFINITY, f64::INFINITY);
    let mut overheads: Vec<f64> = (0..15)
        .map(|i| {
            let (stack, solo) = if i % 2 == 0 {
                let s = run(true);
                (s, run(false))
            } else {
                let d = run(false);
                (run(true), d)
            };
            best_stack = best_stack.min(stack);
            best_solo = best_solo.min(solo);
            100.0 * (stack - solo) / solo
        })
        .collect();
    overheads.sort_by(f64::total_cmp);
    (best_stack, best_solo, overheads[overheads.len() / 2])
}

/// Extract one numeric field from the flat JSON objects bench writes
/// (no nesting, no string values containing the key pattern).
fn bench_field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = json[json.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The committed `BENCH_tick.json` baseline: `git show HEAD:BENCH_tick.json`
/// when available (so a dirty working copy — including the file this very
/// run is about to overwrite — cannot masquerade as the baseline). Inside a
/// git checkout whose HEAD has no `BENCH_tick.json` — a fresh branch or a
/// shallow CI clone — the gate is skipped with a logged reason rather than
/// silently trusting whatever file a previous run left behind; the
/// working-copy fallback applies only outside a git checkout entirely.
fn committed_baseline() -> Option<(String, &'static str)> {
    match std::process::Command::new("git")
        .args(["show", "HEAD:BENCH_tick.json"])
        .output()
    {
        Ok(o) if o.status.success() => {
            if let Ok(s) = String::from_utf8(o.stdout) {
                return Some((s, "git HEAD"));
            }
            None
        }
        Ok(_) => {
            let in_checkout = std::process::Command::new("git")
                .args(["rev-parse", "--is-inside-work-tree"])
                .output()
                .is_ok_and(|o| o.status.success());
            if in_checkout {
                println!(
                    "\n   no BENCH_tick.json in git HEAD (fresh branch?); regression gate skipped"
                );
                return None;
            }
            std::fs::read_to_string("BENCH_tick.json")
                .ok()
                .map(|s| (s, "working copy"))
        }
        Err(_) => std::fs::read_to_string("BENCH_tick.json")
            .ok()
            .map(|s| (s, "working copy")),
    }
}

/// Measurement repetitions for `bench tick-rate`. The best wall time is
/// reported: the runs are deterministic, so every rep does identical work
/// and the minimum is the least-noise estimate of what the engine costs
/// (medians still carry scheduler preemption on busy hosts). Every rep is
/// recorded in the history sidecar.
const TICK_RATE_REPS: usize = 5;

fn bench_tick_rate(rc: &RunnerConfig, out: &PathBuf, guard_pct: Option<f64>) {
    use busbw_experiments::jobgraph::{Engine, Plan, RunRequest};
    use busbw_experiments::{par_map, run_spec};
    use busbw_workloads::mix::{fig1_solo, fig1_with_bbma, fig2_set_a, fig2_set_b, WorkloadSpec};
    use busbw_workloads::paper::PaperApp;

    let rc = RunnerConfig {
        trace: TraceMode::Null,
        ..*rc
    };
    let jobs: Vec<(WorkloadSpec, PolicyKind)> = vec![
        (fig1_solo(PaperApp::Cg), PolicyKind::Linux),
        (fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux),
        (fig2_set_a(PaperApp::Mg), PolicyKind::Window),
        (fig2_set_b(PaperApp::Raytrace), PolicyKind::Latest),
    ];
    let workers = effective_workers(&rc);

    // Serial and batched passes, interleaved: load waves on shared hosts
    // last longer than one rep, so alternating the two engines through the
    // same window keeps their comparison honest (a wave that slows one
    // slows the other), and best-of-reps strips the waves from the
    // absolute number.
    let mut serial_walls = Vec::with_capacity(TICK_RATE_REPS);
    let mut batched_walls = Vec::with_capacity(TICK_RATE_REPS);
    let mut ticks = 0u64;
    let mut sim_us = 0u64;
    for rep in 0..TICK_RATE_REPS {
        let t0 = std::time::Instant::now();
        let results = par_map(&jobs, workers, |(s, p)| run_spec(s, *p, &rc));
        serial_walls.push(t0.elapsed().as_secs_f64());
        let rep_ticks: u64 = results.iter().map(|r| r.ticks).sum();
        let rep_sim_us: u64 = results.iter().map(|r| r.sim_elapsed_us).sum();
        if rep == 0 {
            (ticks, sim_us) = (rep_ticks, rep_sim_us);
        } else {
            assert_eq!(
                (rep_ticks, rep_sim_us),
                (ticks, sim_us),
                "deterministic runs must repeat identically"
            );
        }

        // The same slice through the batched sweep engine (fresh engine
        // per rep so no rep inherits a warmed cross-batch memo).
        let mut plan = Plan::new();
        let cell_ids: Vec<_> = jobs
            .iter()
            .map(|(s, p)| plan.cell(RunRequest::spec(s.clone(), *p, &rc)))
            .collect();
        let t1 = std::time::Instant::now();
        let batched = Engine::ephemeral().execute_batched(&plan, workers);
        batched_walls.push(t1.elapsed().as_secs_f64());
        let batched_ticks: u64 = cell_ids.iter().map(|&id| batched.get(id).ticks).sum();
        assert_eq!(
            batched_ticks, ticks,
            "batched engine must reproduce the serial tick counts"
        );
    }
    let wall = serial_walls.iter().copied().fold(f64::INFINITY, f64::min);
    let tps = ticks as f64 / wall;
    let batched_wall = batched_walls.iter().copied().fold(f64::INFINITY, f64::min);
    let batched_tps = ticks as f64 / batched_wall;
    println!("== bench tick-rate (null-sink tracer attached)\n");
    println!(
        "   runs: {}, workers: {workers}, reps: {TICK_RATE_REPS} (best, interleaved)",
        jobs.len()
    );
    println!(
        "   wall: {wall:.3} s, ticks: {ticks}, simulated: {:.2} s",
        sim_us as f64 / 1e6
    );
    println!("   ticks/sec: {tps:.0}");
    println!(
        "   simulated µs per wall second: {:.0}",
        sim_us as f64 / wall
    );
    println!("   batched engine: wall {batched_wall:.3} s, ticks/sec: {batched_tps:.0}");

    // History first — every invocation appends one line (all reps), even
    // when an assertion below fails the run, so regressions leave a trail
    // instead of a gap.
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let fmt_walls = |w: &[f64]| {
        w.iter()
            .map(|v| format!("{v:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let hist = format!(
        "{{\"unix_time\": {ts}, \"scale\": {}, \"seed\": {}, \"workers\": {workers}, \"ticks\": {ticks}, \"wall_s\": {wall:.6}, \"ticks_per_sec\": {tps:.1}, \"batched_ticks_per_sec\": {batched_tps:.1}, \"serial_walls_s\": [{}], \"batched_walls_s\": [{}]}}\n",
        rc.scale,
        rc.seed,
        fmt_walls(&serial_walls),
        fmt_walls(&batched_walls)
    );
    std::fs::create_dir_all(out).expect("create output dir");
    for path in [
        out.join("BENCH_tick_history.jsonl"),
        "BENCH_tick_history.jsonl".into(),
    ] {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(hist.as_bytes());
        }
    }

    // Regression gate against the *committed* baseline (git HEAD, not the
    // working copy this run overwrites). A tick-count difference means the
    // simulation itself changed (the bench artifacts are deterministic);
    // with `--guard` that, or a >10 % throughput drop, fails the run.
    let mut baseline_json = String::new();
    if let Some((base, source)) = committed_baseline() {
        let comparable = bench_field(&base, "scale") == Some(rc.scale)
            && bench_field(&base, "seed") == Some(rc.seed as f64)
            && bench_field(&base, "runs") == Some(jobs.len() as f64);
        match (
            comparable,
            bench_field(&base, "ticks_per_sec"),
            bench_field(&base, "ticks"),
            bench_field(&base, "sim_elapsed_us"),
        ) {
            (true, Some(base_tps), Some(base_ticks), Some(base_sim_us)) => {
                let ratio = tps / base_tps;
                println!(
                    "\n   baseline ({source}): {base_tps:.0} ticks/sec ({}× {})",
                    format_args!("{ratio:.2}"),
                    if ratio >= 1.0 { "faster" } else { "slower" },
                );
                baseline_json = format!(
                    ",\n  \"baseline_ticks_per_sec\": {base_tps:.1},\n  \"speedup_vs_baseline\": {ratio:.3}"
                );
                let artifacts_match =
                    base_ticks == ticks as f64 && base_sim_us == sim_us as f64;
                if !artifacts_match {
                    println!(
                        "   baseline artifact mismatch: ticks {base_ticks} → {ticks}, sim_us {base_sim_us} → {sim_us}"
                    );
                }
                if guard_pct.is_some() {
                    assert!(
                        artifacts_match,
                        "bench artifacts diverged from the committed baseline \
                         (ticks {base_ticks} vs {ticks}, sim_us {base_sim_us} vs {sim_us})"
                    );
                    // The throughput gate is a collapse tripwire, not a
                    // precision check: the baseline was measured on one
                    // particular host, and the guard may run on a slower
                    // one, so only a ≥2× drop — an algorithmic regression
                    // on comparable hardware — fails. Per-host trend
                    // precision lives in BENCH_tick_history.jsonl.
                    assert!(
                        ratio >= 0.5,
                        "tick throughput collapsed vs the committed baseline: \
                         {tps:.0} vs {base_tps:.0} ticks/sec"
                    );
                }
            }
            _ => println!("\n   baseline BENCH_tick.json not comparable (different scale/seed/runs); gate skipped"),
        }
    }

    // The batched engine exists to be at least as fast as the serial path
    // (adaptive cutover included); a regression here fails the bench
    // outright rather than slipping into the record as a footnote. The
    // interleaved best-of-reps comparison absorbs host-load waves; the 5 %
    // slack covers the residual jitter of two separately-timed loops.
    assert!(
        batched_tps >= tps * 0.95,
        "batched engine slower than serial: {batched_tps:.0} vs {tps:.0} ticks/sec \
         (the adaptive cutover in execute_batched should make small plans \
         match the serial path)"
    );

    let mut guard_json = String::new();
    if let Some(pct) = guard_pct {
        let (stack_s, solo_s, overhead) = pipeline_overhead_pct(&rc);
        println!("\n   pipeline guard: stack {stack_s:.4} s vs direct selector {solo_s:.4} s");
        println!("   pipeline indirection: {overhead:+.2} % (budget < {pct} %)");
        guard_json = format!(
            ",\n  \"pipeline_stack_wall_s\": {stack_s:.6},\n  \"pipeline_direct_wall_s\": {solo_s:.6},\n  \"pipeline_overhead_pct\": {overhead:.3},\n  \"pipeline_guard_pct\": {pct}"
        );
        assert!(
            overhead < pct,
            "policy-pipeline indirection {overhead:.2} % exceeds the {pct} % guard"
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"tick-rate\",\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"runs\": {},\n  \"reps\": {},\n  \"wall_s\": {:.6},\n  \"ticks\": {},\n  \"sim_elapsed_us\": {},\n  \"ticks_per_sec\": {:.1},\n  \"sim_us_per_wall_s\": {:.1},\n  \"batched_wall_s\": {:.6},\n  \"batched_ticks_per_sec\": {:.1}{}{}\n}}\n",
        rc.scale,
        rc.seed,
        workers,
        jobs.len(),
        TICK_RATE_REPS,
        wall,
        ticks,
        sim_us,
        tps,
        sim_us as f64 / wall,
        batched_wall,
        batched_tps,
        baseline_json,
        guard_json
    );
    std::fs::write(out.join("BENCH_tick.json"), &json).expect("write BENCH_tick.json");
    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
}

/// One pass of `bench sweep` as a JSON object body.
fn sweep_pass_json(wall_s: f64, stats: &ExecStats) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"executed\": {}, \"steals\": {}}}",
        wall_s,
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate(),
        stats.executed,
        stats.steals
    )
}

/// `bench sweep`: execute the full `all` plan twice on one engine — a
/// `bench profile`: run the `bench tick-rate` workload slice with the
/// engine's phase profiler enabled and print where the nanoseconds go.
/// Per phase (schedule, barrier, replay, placement, demand, solve,
/// commit, trace, codec) the breakdown reports calls, total time, and
/// mean ns/call; the same numbers are folded into the metrics registry
/// (`prof.<phase>.{calls,total_ns,ns}`) and written to
/// `BENCH_profile.json` in the output directory and the working
/// directory. Profiling is observational: the runs are byte-identical to
/// unprofiled ones (pinned by a proptest), so the attribution can be
/// trusted to describe exactly the production tick path plus the clock
/// reads themselves.
fn bench_profile(rc: &RunnerConfig, out: &PathBuf) {
    use busbw_experiments::cache::{decode_result, encode_result};
    use busbw_experiments::run_spec_profiled;
    use busbw_sim::{Phase, PhaseSet, PHASE_BUCKET_BOUNDS_NS};
    use busbw_workloads::mix::{fig1_solo, fig1_with_bbma, fig2_set_a, fig2_set_b, WorkloadSpec};
    use busbw_workloads::paper::PaperApp;

    let rc = RunnerConfig {
        trace: TraceMode::Null,
        ..*rc
    };
    let jobs: Vec<(WorkloadSpec, PolicyKind)> = vec![
        (fig1_solo(PaperApp::Cg), PolicyKind::Linux),
        (fig1_with_bbma(PaperApp::Cg), PolicyKind::Linux),
        (fig2_set_a(PaperApp::Mg), PolicyKind::Window),
        (fig2_set_b(PaperApp::Raytrace), PolicyKind::Latest),
    ];
    let t0 = std::time::Instant::now();
    let mut merged = PhaseSet::new();
    let mut ticks = 0u64;
    for (s, p) in &jobs {
        let (r, profile) = run_spec_profiled(s, *p, &rc);
        ticks += r.ticks;
        merged.merge(&profile);
        // Attribute the run codec too: one encode/decode round trip per
        // run, timed with the same clock as the engine phases.
        let c0 = std::time::Instant::now();
        let bytes = encode_result(&r);
        let back = decode_result(&bytes).expect("self-decode");
        merged.record_ns(Phase::Codec, c0.elapsed().as_nanos() as u64);
        assert_eq!(encode_result(&back), bytes, "codec round trip drifted");
    }
    let wall = t0.elapsed().as_secs_f64();

    let attributed: u64 = merged.grand_total_ns();
    println!("== bench profile (phase-attributed tick engine)\n");
    println!("   runs: {}, ticks: {ticks}, wall: {wall:.3} s", jobs.len());
    println!(
        "   attributed: {:.3} s of {wall:.3} s ({:.0} % — remainder is loop glue and timer cost)\n",
        attributed as f64 / 1e9,
        100.0 * attributed as f64 / 1e9 / wall.max(1e-12)
    );
    println!(
        "   {:<10} {:>10} {:>12} {:>10} {:>7}",
        "phase", "calls", "total_ms", "ns/call", "share"
    );
    for (name, st) in merged.named() {
        println!(
            "   {:<10} {:>10} {:>12.3} {:>10.0} {:>6.1}%",
            name,
            st.calls,
            st.total_ns as f64 / 1e6,
            st.mean_ns(),
            100.0 * st.total_ns as f64 / attributed.max(1) as f64
        );
    }

    // The same numbers, queryable: counters + histograms in the metrics
    // registry, mirroring the scheduler-stage convention.
    let mut reg = MetricsRegistry::new();
    let bounds: Vec<f64> = PHASE_BUCKET_BOUNDS_NS.iter().map(|&b| b as f64).collect();
    for (name, st) in merged.named() {
        reg.inc_counter(&format!("prof.{name}.calls"), st.calls);
        reg.inc_counter(&format!("prof.{name}.total_ns"), st.total_ns);
        let h = reg.histogram(&format!("prof.{name}.ns"), &bounds);
        for (i, &n) in st.buckets.iter().enumerate() {
            if n > 0 {
                let v = PHASE_BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(2 * PHASE_BUCKET_BOUNDS_NS[PHASE_BUCKET_BOUNDS_NS.len() - 1]);
                h.record_n(v as f64, n);
            }
        }
    }

    let mut phases_json = String::new();
    for (name, st) in merged.named() {
        if !phases_json.is_empty() {
            phases_json.push_str(",\n");
        }
        phases_json.push_str(&format!(
            "    \"{name}\": {{\"calls\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}}}",
            st.calls,
            st.total_ns,
            st.mean_ns()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"profile\",\n  \"scale\": {},\n  \"seed\": {},\n  \"runs\": {},\n  \"ticks\": {},\n  \"wall_s\": {:.6},\n  \"attributed_ns\": {},\n  \"phases\": {{\n{}\n  }}\n}}\n",
        rc.scale,
        rc.seed,
        jobs.len(),
        ticks,
        wall,
        attributed,
        phases_json
    );
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("BENCH_profile.json"), &json).expect("write BENCH_profile.json");
    std::fs::write("BENCH_profile.json", &json).expect("write BENCH_profile.json");
}

/// cold pass (relative to the engine's cache state at startup: empty
/// unless `--cache-dir` points at a warm directory) and a warm pass
/// served from the run cache — and report wall time, dedup and cache
/// counters, and whether the two passes folded byte-identical figures.
/// Writes `BENCH_sweep.json` to the output directory and the working
/// directory.
fn bench_sweep(rc: &RunnerConfig, out: &PathBuf, engine: &mut Engine) {
    let workers = effective_workers(rc);
    let mut plan = Plan::new();
    let cells = plan_suite(&mut plan, rc);
    let digest = |figs: &[SuiteFigure]| -> u64 {
        let mut buf = String::new();
        for sf in figs {
            buf.push_str(&Table::from_figure(&sf.fig).to_csv());
        }
        fnv1a64(buf.as_bytes())
    };

    let t0 = std::time::Instant::now();
    let executed = engine.execute(&plan, workers);
    let cold_wall = t0.elapsed().as_secs_f64();
    let cold = *engine.stats();
    let cold_digest = digest(&fold_suite(&cells, &executed));

    let t1 = std::time::Instant::now();
    let executed = engine.execute(&plan, workers);
    let warm_wall = t1.elapsed().as_secs_f64();
    let warm = engine.stats().since(&cold);
    let warm_digest = digest(&fold_suite(&cells, &executed));

    let identical = cold_digest == warm_digest;
    println!("== bench sweep (full `all` plan, cold + warm)\n");
    println!(
        "   cells: {} declared, {} unique, {} deduped; workers: {workers}",
        plan.declared(),
        plan.len(),
        plan.declared() - plan.len() as u64
    );
    println!(
        "   cold: {cold_wall:.3} s ({} executed, {} cache hits, {} steals)",
        cold.executed, cold.cache_hits, cold.steals
    );
    println!(
        "   warm: {warm_wall:.3} s ({} executed, {} cache hits, hit rate {:.0} %)",
        warm.executed,
        warm.cache_hits,
        100.0 * warm.hit_rate()
    );
    println!("   figures: fnv1a64 {cold_digest:016x}, cold == warm: {identical}");
    assert!(identical, "warm pass must fold byte-identical figures");
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"cells_declared\": {},\n  \"cells_unique\": {},\n  \"cells_deduped\": {},\n  \"cold\": {},\n  \"warm\": {},\n  \"outputs_identical\": {},\n  \"figures_fnv1a64\": \"{:016x}\"\n}}\n",
        rc.scale,
        rc.seed,
        workers,
        plan.declared(),
        plan.len(),
        plan.declared() - plan.len() as u64,
        sweep_pass_json(cold_wall, &cold),
        sweep_pass_json(warm_wall, &warm),
        identical,
        cold_digest
    );
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("BENCH_sweep.json"), &json).expect("write BENCH_sweep.json");
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
}

/// Context for the manifest written next to each figure's artifacts.
struct EmitCtx {
    /// The command as typed (e.g. `fig2a`, `trace fig2a`).
    command: String,
    rc: RunnerConfig,
    started: std::time::Instant,
    trace: Option<TraceInfo>,
    metrics_json: Option<String>,
}

impl EmitCtx {
    fn new(command: &str, rc: &RunnerConfig) -> Self {
        Self {
            command: command.to_string(),
            rc: *rc,
            started: std::time::Instant::now(),
            trace: None,
            metrics_json: None,
        }
    }
}

/// Record the figure's cell accounting and the engine's cumulative
/// cache/dedup/steal counters into `reg` (the numbers that land in the
/// figure's manifest).
fn record_exec(reg: &mut MetricsRegistry, figure: CellStats, engine: &Engine) {
    reg.inc_counter("figure.cells.declared", figure.declared);
    reg.inc_counter("figure.cells.unique", figure.unique);
    reg.inc_counter("figure.cells.deduped", figure.deduped());
    engine.stats().record(reg);
}

/// Record the per-stage wall-time histograms of a figure's policy-stack
/// runs into `reg`: per stage a call counter, a total-time counter, and a
/// duration histogram over the canonical nanosecond buckets. Monolithic
/// schedulers report no timings; a figure with none contributes nothing.
fn record_stage_timings(reg: &mut MetricsRegistry, timings: &StageTimings) {
    if !timings.any_calls() {
        return;
    }
    let bounds: Vec<f64> = STAGE_BUCKET_BOUNDS_NS.iter().map(|&b| b as f64).collect();
    for (name, t) in timings.named() {
        reg.inc_counter(&format!("stage.{name}.calls"), t.calls);
        reg.inc_counter(&format!("stage.{name}.total_ns"), t.total_ns);
        let h = reg.histogram(&format!("stage.{name}.ns"), &bounds);
        for (i, &n) in t.buckets.iter().enumerate() {
            if n > 0 {
                // Re-record each bucket at a value inside it: the bound
                // itself for the bounded buckets, past the last bound for
                // the overflow bucket.
                let v = STAGE_BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(2 * STAGE_BUCKET_BOUNDS_NS[STAGE_BUCKET_BOUNDS_NS.len() - 1]);
                h.record_n(v as f64, n);
            }
        }
    }
}

/// The exec-stats metrics snapshot (plus any per-stage wall-time
/// histograms) as manifest JSON.
fn exec_metrics_json(figure: CellStats, engine: &Engine, timings: Option<&StageTimings>) -> String {
    let mut reg = MetricsRegistry::new();
    record_exec(&mut reg, figure, engine);
    if let Some(t) = timings {
        record_stage_timings(&mut reg, t);
    }
    reg.to_json()
}

fn emit(fig: &FigureSummary, out: &PathBuf, ctx: &EmitCtx) {
    let table = Table::from_figure(fig);
    println!("== {} — {}\n", fig.id, fig.title);
    println!("{}", table.render());
    for s in fig.series() {
        let (mean, max, min) = (
            fig.series_mean(&s).unwrap_or(f64::NAN),
            fig.series_max(&s).unwrap_or(f64::NAN),
            fig.series_min(&s).unwrap_or(f64::NAN),
        );
        println!("   {s}: mean {mean:.1}, max {max:.1}, min {min:.1}");
    }
    println!();
    std::fs::create_dir_all(out).expect("create output dir");
    let txt = out.join(format!("{}.txt", fig.id));
    let csv = out.join(format!("{}.csv", fig.id));
    std::fs::write(&txt, table.render()).expect("write txt");
    std::fs::write(&csv, table.to_csv()).expect("write csv");

    let artifacts = [&txt, &csv]
        .into_iter()
        .map(|p| ArtifactSum::of_file(p).expect("checksum just-written artifact"))
        .collect();
    let manifest = Manifest {
        id: fig.id.clone(),
        command: format!("experiments {}", ctx.command),
        seed: ctx.rc.seed,
        scale: ctx.rc.scale,
        workers: ctx.rc.workers,
        policies: fig.series(),
        git_describe: git_describe(),
        wall_ms: ctx.started.elapsed().as_millis() as u64,
        artifacts,
        trace: ctx.trace.clone(),
        metrics_json: ctx.metrics_json.clone(),
    };
    std::fs::write(
        out.join(format!("{}.manifest.json", fig.id)),
        manifest.to_json(),
    )
    .expect("write manifest");
}

/// Plan one figure, execute it on the shared engine, fold, and emit with
/// exec stats in the manifest.
fn emit_figure<C>(
    engine: &mut Engine,
    ctx: &mut EmitCtx,
    out: &PathBuf,
    rc: &RunnerConfig,
    declare: impl FnOnce(&mut Plan) -> C,
    fold: impl FnOnce(&C, &Executed) -> FigureSummary,
) {
    let mut plan = Plan::new();
    let mark = plan.checkpoint();
    let cells = declare(&mut plan);
    let stats = plan.since(mark);
    let executed = engine.execute(&plan, effective_workers(rc));
    let fig = fold(&cells, &executed);
    let timings = executed.merged_stage_timings(plan.range_since(mark));
    ctx.metrics_json = Some(exec_metrics_json(stats, engine, Some(&timings)));
    emit(&fig, out, ctx);
}

fn summary_table(figs: &[FigureSummary], out: &PathBuf) {
    let mut t = Table::new(&["Set", "Policy", "Max impr %", "Avg impr %", "Min impr %"]);
    for fig in figs {
        for s in fig.series() {
            t.row(vec![
                fig.id.clone(),
                s.clone(),
                format!("{:.1}", fig.series_max(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_mean(&s).unwrap_or(f64::NAN)),
                format!("{:.1}", fig.series_min(&s).unwrap_or(f64::NAN)),
            ]);
        }
    }
    println!("== summary — §5 headline numbers\n");
    println!("{}", t.render());
    std::fs::create_dir_all(out).expect("create output dir");
    std::fs::write(out.join("summary.txt"), t.render()).expect("write txt");
    std::fs::write(out.join("summary.csv"), t.to_csv()).expect("write csv");
}

/// Run one of the five figures with per-run trace collection, through the
/// shared engine (so traced runs hit the same cache as everything else —
/// collected traces are cached under their own run key, never mixed with
/// traceless results).
fn traced_figure(
    exp: &str,
    rc: &RunnerConfig,
    policies: &[PolicyKind],
    engine: &mut Engine,
) -> Option<(FigureSummary, Vec<RunResult>, CellStats)> {
    let rc = RunnerConfig {
        trace: TraceMode::Collect,
        ..*rc
    };
    let default_policies = policies;
    let mut plan = Plan::new();
    let mark = plan.checkpoint();
    enum Cells {
        One(busbw_experiments::fig1::Fig1Cells, bool),
        Two(busbw_experiments::fig2::Fig2Cells),
    }
    let cells = match exp {
        "fig1a" => Cells::One(plan_fig1(&mut plan, &rc), true),
        "fig1b" => Cells::One(plan_fig1(&mut plan, &rc), false),
        "fig2a" => Cells::Two(plan_fig2(&mut plan, Fig2Set::A, default_policies, &rc)),
        "fig2b" => Cells::Two(plan_fig2(&mut plan, Fig2Set::B, default_policies, &rc)),
        "fig2c" => Cells::Two(plan_fig2(&mut plan, Fig2Set::C, default_policies, &rc)),
        _ => return None,
    };
    let stats = plan.since(mark);
    let executed = engine.execute(&plan, effective_workers(&rc));
    Some(match cells {
        Cells::One(c, panel_a) => {
            let fig = if panel_a {
                fold_fig1a(&c, &executed)
            } else {
                fold_fig1b(&c, &executed)
            };
            (fig, fig1_results(&c, &executed), stats)
        }
        Cells::Two(c) => (fold_fig2(&c, &executed), fig2_results(&c, &executed), stats),
    })
}

/// Serialize a merged trace as JSONL: one event object per line, each
/// tagged with the index of the job (runner input order) that emitted it.
fn render_jsonl(merged: &[(usize, busbw_trace::TraceEvent)]) -> String {
    let mut buf = String::with_capacity(merged.len() * 96);
    for (ji, ev) in merged {
        let obj = ev.to_json();
        buf.push('{');
        use std::fmt::Write as _;
        let _ = write!(buf, "\"job\":{ji},");
        buf.push_str(&obj[1..]); // the event object minus its opening brace
        buf.push('\n');
    }
    buf
}

/// The traced-figure flow shared by `--trace-out` and `trace <exp>`:
/// run with collection on, merge worker traces by tick order, write the
/// JSONL stream, fold the metrics snapshot, and emit figure + manifest.
/// Returns the merged events for validation.
fn run_traced(
    exp: &str,
    command: &str,
    rc: &RunnerConfig,
    policies: &[PolicyKind],
    out: &PathBuf,
    trace_out: Option<&PathBuf>,
    engine: &mut Engine,
) -> Vec<(usize, busbw_trace::TraceEvent)> {
    let mut ctx = EmitCtx::new(command, rc);
    let Some((fig, results, stats)) = traced_figure(exp, rc, policies, engine) else {
        eprintln!("`{exp}` does not support tracing (figures only: fig1a|fig1b|fig2a|fig2b|fig2c)");
        std::process::exit(2);
    };
    let merged = merge_traces(&results);
    std::fs::create_dir_all(out).expect("create output dir");
    let path = trace_out
        .cloned()
        .unwrap_or_else(|| out.join(format!("{exp}-trace.jsonl")));
    std::fs::write(&path, render_jsonl(&merged)).expect("write trace jsonl");
    ctx.trace = Some(TraceInfo {
        path: path.display().to_string(),
        events: merged.len() as u64,
    });
    let mut reg = collect_metrics(&fig, &results, &merged);
    record_exec(&mut reg, stats, engine);
    let mut timings = StageTimings::default();
    for r in &results {
        if let Some(t) = &r.stage_timings {
            timings.merge(t);
        }
    }
    record_stage_timings(&mut reg, &timings);
    ctx.metrics_json = Some(reg.to_json());
    emit(&fig, out, &ctx);
    println!("   trace: {} events -> {}", merged.len(), path.display());
    merged
}

fn main() {
    let args = parse_args();
    let rc = args.rc;
    let out = &args.out;
    let mut engine = Engine::new(RunCache::new(args.cache_dir.clone(), !args.no_cache));
    let mut ctx = EmitCtx::new(&args.command, &rc);
    let figure_ids = ["fig1a", "fig1b", "fig2a", "fig2b", "fig2c"];
    // `--policy` swaps the fig2/summary panels' policy list for one
    // scheduler composed from pipeline stages.
    let default_policies: Vec<PolicyKind> = match args.policy {
        Some(spec) => vec![PolicyKind::Stack(spec)],
        None => vec![PolicyKind::Latest, PolicyKind::Window],
    };

    // `--trace-out` turns any figure command into its traced flow; the
    // figure numbers are identical either way (tracing only observes).
    if let Some(path) = &args.trace_out {
        if figure_ids.contains(&args.command.as_str()) {
            run_traced(
                &args.command,
                &args.command,
                &rc,
                &default_policies,
                out,
                Some(path),
                &mut engine,
            );
            return;
        }
        if !args.command.starts_with("trace ") {
            eprintln!("--trace-out only applies to figure commands or `trace <figure>`");
            std::process::exit(2);
        }
    }

    if let Some(exp) = args.command.strip_prefix("trace ") {
        let merged = run_traced(
            exp,
            &args.command,
            &rc,
            &default_policies,
            out,
            args.trace_out.as_ref(),
            &mut engine,
        );
        // Validation: the manifest must parse and the trace be non-empty.
        let manifest_path = out.join(format!("{exp}.manifest.json"));
        let text = std::fs::read_to_string(&manifest_path).expect("read back manifest");
        let v = json::parse(&text).expect("manifest must be valid JSON");
        assert_eq!(
            v.get("id").and_then(|x| x.as_str()),
            Some(exp),
            "manifest id mismatch"
        );
        assert!(!merged.is_empty(), "trace must be non-empty");
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for (_, ev) in &merged {
            *by_kind.entry(ev.kind()).or_insert(0) += 1;
        }
        println!("   manifest: {} (valid)", manifest_path.display());
        for (kind, n) in &by_kind {
            println!("   {kind:>16}: {n}");
        }
        return;
    }

    match args.command.as_str() {
        "fig1a" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_fig1(p, &rc),
            fold_fig1a,
        ),
        "fig1b" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_fig1(p, &rc),
            fold_fig1b,
        ),
        "fig2a" | "fig2b" | "fig2c" => {
            let set = match args.command.as_str() {
                "fig2a" => Fig2Set::A,
                "fig2b" => Fig2Set::B,
                _ => Fig2Set::C,
            };
            emit_figure(
                &mut engine,
                &mut ctx,
                out,
                &rc,
                |p| plan_fig2(p, set, &default_policies, &rc),
                fold_fig2,
            );
        }
        "summary" => {
            // One plan for all three panels: shared cells execute once.
            let mut plan = Plan::new();
            let panels: Vec<_> = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
                .into_iter()
                .map(|s| plan_fig2(&mut plan, s, &default_policies, &rc))
                .collect();
            let executed = engine.execute(&plan, effective_workers(&rc));
            let figs: Vec<FigureSummary> = panels.iter().map(|c| fold_fig2(c, &executed)).collect();
            summary_table(&figs, out);
        }
        "ablate-window" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_window(p, &rc),
            fold_window,
        ),
        "ablate-quantum" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_quantum(p, &rc),
            fold_quantum,
        ),
        "ablate-fitness" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_fitness(p, &rc),
            fold_fitness,
        ),
        "ablate-smt" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_smt(p, &rc),
            fold_smt,
        ),
        "ablate-stages" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_stages(p, &rc),
            fold_stages,
        ),
        "dynamic" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_dynamic(p, &rc),
            fold_dynamic,
        ),
        "open" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| {
                busbw_experiments::plan_open(
                    p,
                    &rc,
                    args.arrivals,
                    args.duration_us,
                    busbw_experiments::open::DEFAULT_QUEUE_CAPACITY,
                )
            },
            busbw_experiments::fold_open,
        ),
        "baselines" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_baselines(p, &rc),
            fold_baselines,
        ),
        "validate" => {
            let mut plan = Plan::new();
            let cells = plan_validate(&mut plan, &rc);
            let executed = engine.execute(&plan, effective_workers(&rc));
            let claims = fold_validate(&cells, &executed);
            let (report, all) = render_validation(&claims);
            println!("== validate — reproduction gate\n");
            print!("{report}");
            std::fs::create_dir_all(out).expect("create output dir");
            std::fs::write(out.join("validate.txt"), &report).expect("write report");
            if !all {
                std::process::exit(1);
            }
        }
        "bench tick-rate" => bench_tick_rate(&rc, out, args.guard_pct),
        "bench profile" => bench_profile(&rc, out),
        "bench sweep" => bench_sweep(&rc, out, &mut engine),
        "audit" => {
            // Audited cells are many and tiny; default to a light scale
            // unless the user pinned one explicitly. The differential leg
            // compares serial against multi-worker execution, so keep at
            // least a few workers even on small machines.
            let workers = if rc.workers != 0 {
                rc.workers
            } else {
                effective_workers(&rc).max(4)
            };
            let cfg = AuditConfig {
                fuzz: args.fuzz,
                seed: rc.seed,
                scale: if args.scale_set { rc.scale } else { 0.1 },
                workers,
                out: out.clone(),
            };
            std::process::exit(run_audit(&cfg));
        }
        "robustness" => emit_figure(
            &mut engine,
            &mut ctx,
            out,
            &rc,
            |p| plan_robustness(p, 10, 5, &rc),
            fold_robustness,
        ),
        "topo" => {
            for shape in busbw_experiments::TOPO_SHAPES {
                emit_figure(
                    &mut engine,
                    &mut ctx,
                    out,
                    &rc,
                    |p| plan_topo(p, shape, &rc),
                    fold_topo,
                );
            }
        }
        "regret" => {
            emit_figure(
                &mut engine,
                &mut ctx,
                out,
                &rc,
                |p| plan_regret(p, &rc),
                fold_regret,
            );
        }
        "variance" => {
            for p in [PolicyKind::Latest, PolicyKind::Window] {
                emit_figure(
                    &mut engine,
                    &mut ctx,
                    out,
                    &rc,
                    |plan| plan_variance(plan, p, 5, &rc),
                    |c, e| {
                        let mut fig = fold_variance(c, e);
                        fig.id = format!("variance-{}", p.label().to_lowercase());
                        fig
                    },
                );
            }
        }
        "all" => {
            // The whole sweep is ONE plan: every figure's cells
            // deduplicated together and drained by a single
            // work-stealing pool, no inter-figure barriers.
            let mut plan = Plan::new();
            let cells = plan_suite(&mut plan, &rc);
            let executed = engine.execute(&plan, effective_workers(&rc));
            let figs = fold_suite(&cells, &executed);
            let emit_suite_figure = |sf: &SuiteFigure, ctx: &mut EmitCtx| {
                // Per-stage wall-time histograms cover the cells this
                // figure first declared (deduped cells are attributed to
                // the figure that declared them first).
                let timings = executed.merged_stage_timings(sf.range.clone());
                ctx.metrics_json = Some(exec_metrics_json(sf.cells, &engine, Some(&timings)));
                emit(&sf.fig, out, ctx);
            };
            for sf in &figs[..5] {
                emit_suite_figure(sf, &mut ctx);
            }
            let panels: Vec<FigureSummary> = figs[2..5].iter().map(|sf| sf.fig.clone()).collect();
            summary_table(&panels, out);
            for sf in &figs[5..] {
                emit_suite_figure(sf, &mut ctx);
            }
        }
        _ => usage(),
    }
}
