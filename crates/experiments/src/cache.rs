//! Content-addressed run cache.
//!
//! Every simulator run is identified by a **run key**: an FNV-1a 64-bit
//! hash (the `busbw-trace` manifest hasher) over a canonical byte
//! encoding of the fully-resolved run tuple — workload spec, policy,
//! machine config, seed, scale, hard-cap factor, and trace wiring —
//! salted with [`RUN_SCHEMA_VERSION`]. The encoded bytes travel with the
//! hash, so key equality compares content, not just the 64-bit digest:
//! a hash collision degrades to a cache miss, never to a wrong result.
//!
//! Cached [`RunResult`]s round-trip through a hand-rolled binary codec
//! that stores every `f64` as its IEEE-754 bit pattern, so a cache-served
//! result is **bit-identical** to the fresh run that produced it —
//! including the structured trace events. The cache itself is an
//! in-memory map plus an optional on-disk store (`--cache-dir`), with
//! writes going through a temp-file rename so concurrent processes never
//! observe a torn entry.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::Arc;

use busbw_sim::MachineConfig;
use busbw_trace::{fnv1a64, TraceEvent};
use busbw_workloads::app::{AppSpec, Behavior};
use busbw_workloads::mix::WorkloadSpec;

use crate::policy::{AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec};
use crate::runner::{PolicyKind, RunCompletion, RunResult, TraceMode, UnfinishedApp};

/// Schema-version salt mixed into every run key and stamped on every
/// cache file. Bump it whenever the [`RunResult`] layout, the canonical
/// key encoding, or anything that feeds a run's numbers changes: old
/// entries then simply stop matching (cache invalidation by content).
///
/// v2: `PolicyKind::Stack` joined the policy encoding, `StageDecision`
/// joined the event codec, and [`RunResult`] grew stage timings.
///
/// v3: the open-system manager runs joined — `RunShape::Open` in the key
/// encoding, `ClientArrived`/`ClientShed`/`ClientDeparted` in the event
/// codec, and [`RunResult`] grew optional [`OpenStats`].
///
/// v4: hierarchical bus topologies joined — [`MachineConfig::topology`]
/// in the machine encoding, the three socket-aware placer kinds in the
/// stack encoding, and `LevelSaturated` in the event codec.
///
/// v5: the offline-optimal oracle joined — `PolicyKind::OfflineOptimal`
/// in the policy encoding and `RunShape::Oracle` in the key encoding
/// (`experiments regret`).
pub const RUN_SCHEMA_VERSION: u32 = 5;

/// Magic bytes prefixing every on-disk cache entry.
const MAGIC: &[u8; 8] = b"BBWRUN\x00\x01";

// ---------------------------------------------------------------------
// Canonical byte encoding
// ---------------------------------------------------------------------

/// Append-only canonical byte encoder. All multi-byte integers are
/// little-endian; floats are encoded as their `to_bits` pattern, so the
/// encoding is total (infinities and NaNs included) and bit-exact.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }
}

/// Cursor-based decoder matching [`Enc`]. All errors are strings — a
/// decode failure only ever downgrades a cache hit to a miss.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read a length prefix for a sequence whose elements occupy at least
    /// `min_elem_bytes` each, rejecting counts that cannot possibly fit in
    /// the remaining buffer. The check runs **before** any allocation, so
    /// an adversarial or bit-flipped prefix can neither reserve huge
    /// buffers nor spin a long decode loop — it fails immediately.
    fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.usize()?;
        let fits = n
            .checked_mul(min_elem_bytes.max(1))
            .is_some_and(|total| total <= self.remaining());
        if !fits {
            return Err(format!(
                "sequence length {n} cannot fit in {} remaining bytes",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "usize overflow".to_string())
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| e.to_string())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Run keys
// ---------------------------------------------------------------------

/// A content-addressed run identity: the FNV-1a 64-bit digest of the
/// canonical encoding, plus the encoding itself for collision-proof
/// equality.
#[derive(Debug, Clone)]
pub struct RunKey {
    hash: u64,
    encoded: Arc<Vec<u8>>,
}

impl RunKey {
    /// Wrap a finished canonical encoding.
    pub fn from_encoded(encoded: Vec<u8>) -> Self {
        Self {
            hash: fnv1a64(&encoded),
            encoded: Arc::new(encoded),
        }
    }

    /// The 64-bit digest (names the on-disk cache entry).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Lowercase-hex digest, e.g. for cache file names.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// The canonical encoding the digest was computed over.
    pub fn encoded(&self) -> &[u8] {
        &self.encoded
    }
}

impl PartialEq for RunKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.encoded == other.encoded
    }
}

impl Eq for RunKey {}

impl Hash for RunKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

fn encode_behavior(e: &mut Enc, b: &Behavior) {
    match b {
        Behavior::Constant => e.u8(0),
        Behavior::Oscillating {
            amplitude,
            period_us,
        } => {
            e.u8(1);
            e.f64(*amplitude);
            e.f64(*period_us);
        }
        Behavior::Bursty => e.u8(2),
    }
}

fn encode_app_spec(e: &mut Enc, a: &AppSpec) {
    e.str(&a.name);
    e.usize(a.nthreads);
    e.f64(a.work_us_per_thread);
    e.f64(a.rate_per_thread);
    e.f64(a.mu);
    e.f64(a.cache_sensitivity);
    encode_behavior(e, &a.behavior);
    e.opt_f64(a.barrier_interval_us);
}

/// Encode a [`WorkloadSpec`] canonically (names included — they are part
/// of the figure output via unfinished-app reports).
pub(crate) fn encode_workload(e: &mut Enc, w: &WorkloadSpec) {
    e.str(&w.name);
    e.usize(w.apps.len());
    for a in &w.apps {
        encode_app_spec(e, a);
    }
    e.usize(w.measured.len());
    for &m in &w.measured {
        e.usize(m);
    }
}

/// Encode a [`PolicyKind`] including every variant payload (window
/// widths, quantum lengths, gang-fill seeds).
pub(crate) fn encode_policy(e: &mut Enc, p: &PolicyKind) {
    match *p {
        PolicyKind::Linux => e.u8(0),
        PolicyKind::Latest => e.u8(1),
        PolicyKind::Window => e.u8(2),
        PolicyKind::WindowN(n) => {
            e.u8(3);
            e.usize(n);
        }
        PolicyKind::LatestWithQuantum(q) => {
            e.u8(4);
            e.u64(q);
        }
        PolicyKind::RoundRobinGang => e.u8(5),
        PolicyKind::RandomGang(seed) => {
            e.u8(6);
            e.u64(seed);
        }
        PolicyKind::GreedyPack => e.u8(7),
        PolicyKind::LinuxO1 => e.u8(8),
        PolicyKind::ModelDriven => e.u8(9),
        PolicyKind::Stack(spec) => {
            e.u8(10);
            encode_stack_spec(e, &spec);
        }
        PolicyKind::OfflineOptimal => e.u8(11),
    }
}

/// Encode a composed stack: every stage choice with its payload, plus the
/// quantum — substituting any single stage must change the run key.
pub(crate) fn encode_stack_spec(e: &mut Enc, s: &StackSpec) {
    match s.estimator {
        EstimatorKind::Latest => e.u8(0),
        EstimatorKind::Window(n) => {
            e.u8(1);
            e.usize(n);
        }
        EstimatorKind::Ewma(n) => {
            e.u8(2);
            e.usize(n);
        }
        EstimatorKind::Raw => e.u8(3),
        EstimatorKind::Null => e.u8(4),
    }
    e.u8(match s.admission {
        AdmissionKind::Head => 0,
        AdmissionKind::StrictHead => 1,
        AdmissionKind::Fcfs => 2,
        AdmissionKind::Widest => 3,
        AdmissionKind::Open => 4,
    });
    match s.selector {
        SelectorKind::Fitness => e.u8(0),
        SelectorKind::Random(seed) => {
            e.u8(1);
            e.u64(seed);
        }
        SelectorKind::Greedy => e.u8(2),
        SelectorKind::Lookahead => e.u8(3),
        SelectorKind::None => e.u8(4),
    }
    e.u8(match s.placer {
        PlacerKind::Packed => 0,
        PlacerKind::Scatter => 1,
        PlacerKind::Smt => 2,
        PlacerKind::PackLocal => 3,
        PlacerKind::SpreadSockets => 4,
        PlacerKind::Migrate => 5,
    });
    e.u64(s.quantum_us);
}

/// Encode a [`MachineConfig`]: every field that can change a run's
/// numbers, in declaration order.
pub(crate) fn encode_machine(e: &mut Enc, m: &MachineConfig) {
    e.usize(m.num_cpus);
    e.u64(m.tick_us);
    e.usize(m.smt_threads_per_core);
    e.f64(m.smt_core_speedup);
    e.f64(m.bus.capacity_tx_per_us);
    e.f64(m.bus.bytes_per_tx);
    e.f64(m.bus.arbitration_per_master);
    e.f64(m.bus.active_master_threshold);
    e.f64(m.bus.queueing_coeff);
    e.f64(m.bus.queueing_exponent);
    e.f64(m.cache.warmup_tau_us);
    e.f64(m.cache.decay_tau_us);
    e.f64(m.cache.cold_demand_boost);
    e.f64(m.cache.min_tracked_warmth);
    e.usize(m.topology.sockets);
    e.f64(m.topology.interconnect_tx_per_us);
    e.f64(m.topology.remote_fraction);
}

/// Encode the trace wiring — collected traces are part of the result, so
/// runs with different wiring must never share a cache entry.
pub(crate) fn encode_trace_mode(e: &mut Enc, t: TraceMode) {
    e.u8(match t {
        TraceMode::Off => 0,
        TraceMode::Null => 1,
        TraceMode::Collect => 2,
    });
}

// ---------------------------------------------------------------------
// RunResult codec
// ---------------------------------------------------------------------

fn encode_event(e: &mut Enc, ev: &TraceEvent) {
    match ev {
        TraceEvent::Placement {
            at_us,
            cpu,
            thread,
            app,
            cold,
        } => {
            e.u8(0);
            e.u64(*at_us);
            e.usize(*cpu);
            e.u64(*thread);
            e.u64(*app);
            e.bool(*cold);
        }
        TraceEvent::PhaseEdge {
            at_us,
            thread,
            rate,
            mu,
        } => {
            e.u8(1);
            e.u64(*at_us);
            e.u64(*thread);
            e.f64(*rate);
            e.f64(*mu);
        }
        TraceEvent::CoarseJump {
            at_us,
            dt_us,
            ticks_covered,
        } => {
            e.u8(2);
            e.u64(*at_us);
            e.u64(*dt_us);
            e.u64(*ticks_covered);
        }
        TraceEvent::BusSolve {
            at_us,
            lambda,
            utilization,
            saturated,
            requesters,
        } => {
            e.u8(3);
            e.u64(*at_us);
            e.f64(*lambda);
            e.f64(*utilization);
            e.bool(*saturated);
            e.usize(*requesters);
        }
        TraceEvent::AppFinished {
            at_us,
            app,
            turnaround_us,
        } => {
            e.u8(4);
            e.u64(*at_us);
            e.u64(*app);
            e.u64(*turnaround_us);
        }
        TraceEvent::HeadAdmission { at_us, app, width } => {
            e.u8(5);
            e.u64(*at_us);
            e.u64(*app);
            e.usize(*width);
        }
        TraceEvent::GangSelected {
            at_us,
            app,
            width,
            fitness,
            available_per_proc,
        } => {
            e.u8(6);
            e.u64(*at_us);
            e.u64(*app);
            e.usize(*width);
            e.f64(*fitness);
            e.f64(*available_per_proc);
        }
        TraceEvent::Reconstruct {
            at_us,
            app,
            measured_per_thread,
            dilation,
            demand_per_thread,
        } => {
            e.u8(7);
            e.u64(*at_us);
            e.u64(*app);
            e.f64(*measured_per_thread);
            e.f64(*dilation);
            e.f64(*demand_per_thread);
        }
        TraceEvent::RunUnfinished {
            at_us,
            app,
            name,
            progress_frac,
        } => {
            e.u8(8);
            e.u64(*at_us);
            e.u64(*app);
            e.str(name);
            e.f64(*progress_frac);
        }
        TraceEvent::MgrConnect { client, threads } => {
            e.u8(9);
            e.u64(*client);
            e.usize(*threads);
        }
        TraceEvent::MgrDisconnect { client } => {
            e.u8(10);
            e.u64(*client);
        }
        TraceEvent::MgrGate {
            client,
            thread,
            resumed,
            blocks,
            unblocks,
        } => {
            e.u8(11);
            e.u64(*client);
            e.u64(*thread);
            e.bool(*resumed);
            e.u64(*blocks);
            e.u64(*unblocks);
        }
        TraceEvent::MgrSignalReorder { client, thread } => {
            e.u8(12);
            e.u64(*client);
            e.u64(*thread);
        }
        TraceEvent::StageDecision {
            at_us,
            stage,
            items,
        } => {
            e.u8(13);
            e.u64(*at_us);
            e.u8(stage.index() as u8);
            e.usize(*items);
        }
        TraceEvent::ClientArrived {
            at_us,
            client,
            width,
        } => {
            e.u8(14);
            e.u64(*at_us);
            e.u64(*client);
            e.usize(*width);
        }
        TraceEvent::ClientShed {
            at_us,
            arrival,
            live,
        } => {
            e.u8(15);
            e.u64(*at_us);
            e.u64(*arrival);
            e.usize(*live);
        }
        TraceEvent::ClientDeparted {
            at_us,
            client,
            turnaround_us,
        } => {
            e.u8(16);
            e.u64(*at_us);
            e.u64(*client);
            e.u64(*turnaround_us);
        }
        TraceEvent::LevelSaturated {
            at_us,
            level,
            utilization,
            dilation,
        } => {
            e.u8(17);
            e.u64(*at_us);
            e.u64(*level);
            e.f64(*utilization);
            e.f64(*dilation);
        }
    }
}

fn decode_event(d: &mut Dec) -> Result<TraceEvent, String> {
    Ok(match d.u8()? {
        0 => TraceEvent::Placement {
            at_us: d.u64()?,
            cpu: d.usize()?,
            thread: d.u64()?,
            app: d.u64()?,
            cold: d.bool()?,
        },
        1 => TraceEvent::PhaseEdge {
            at_us: d.u64()?,
            thread: d.u64()?,
            rate: d.f64()?,
            mu: d.f64()?,
        },
        2 => TraceEvent::CoarseJump {
            at_us: d.u64()?,
            dt_us: d.u64()?,
            ticks_covered: d.u64()?,
        },
        3 => TraceEvent::BusSolve {
            at_us: d.u64()?,
            lambda: d.f64()?,
            utilization: d.f64()?,
            saturated: d.bool()?,
            requesters: d.usize()?,
        },
        4 => TraceEvent::AppFinished {
            at_us: d.u64()?,
            app: d.u64()?,
            turnaround_us: d.u64()?,
        },
        5 => TraceEvent::HeadAdmission {
            at_us: d.u64()?,
            app: d.u64()?,
            width: d.usize()?,
        },
        6 => TraceEvent::GangSelected {
            at_us: d.u64()?,
            app: d.u64()?,
            width: d.usize()?,
            fitness: d.f64()?,
            available_per_proc: d.f64()?,
        },
        7 => TraceEvent::Reconstruct {
            at_us: d.u64()?,
            app: d.u64()?,
            measured_per_thread: d.f64()?,
            dilation: d.f64()?,
            demand_per_thread: d.f64()?,
        },
        8 => TraceEvent::RunUnfinished {
            at_us: d.u64()?,
            app: d.u64()?,
            name: d.str()?,
            progress_frac: d.f64()?,
        },
        9 => TraceEvent::MgrConnect {
            client: d.u64()?,
            threads: d.usize()?,
        },
        10 => TraceEvent::MgrDisconnect { client: d.u64()? },
        11 => TraceEvent::MgrGate {
            client: d.u64()?,
            thread: d.u64()?,
            resumed: d.bool()?,
            blocks: d.u64()?,
            unblocks: d.u64()?,
        },
        12 => TraceEvent::MgrSignalReorder {
            client: d.u64()?,
            thread: d.u64()?,
        },
        13 => TraceEvent::StageDecision {
            at_us: d.u64()?,
            stage: {
                let i = d.u8()? as usize;
                busbw_trace::PipelineStage::from_index(i)
                    .ok_or_else(|| format!("bad pipeline stage index {i}"))?
            },
            items: d.usize()?,
        },
        14 => TraceEvent::ClientArrived {
            at_us: d.u64()?,
            client: d.u64()?,
            width: d.usize()?,
        },
        15 => TraceEvent::ClientShed {
            at_us: d.u64()?,
            arrival: d.u64()?,
            live: d.usize()?,
        },
        16 => TraceEvent::ClientDeparted {
            at_us: d.u64()?,
            client: d.u64()?,
            turnaround_us: d.u64()?,
        },
        17 => TraceEvent::LevelSaturated {
            at_us: d.u64()?,
            level: d.u64()?,
            utilization: d.f64()?,
            dilation: d.f64()?,
        },
        t => return Err(format!("unknown event tag {t}")),
    })
}

/// Serialize a [`RunResult`] to the bit-exact binary cache payload.
pub fn encode_result(r: &RunResult) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(r.turnarounds_us.len());
    for &t in &r.turnarounds_us {
        e.f64(t);
    }
    e.f64(r.mean_turnaround_us);
    e.f64(r.workload_rate);
    e.f64(r.measured_apps_rate);
    e.f64(r.saturated_fraction);
    e.u64(r.ticks);
    e.u64(r.sim_elapsed_us);
    match &r.completion {
        RunCompletion::Finished => e.u8(0),
        RunCompletion::HardCap { unfinished } => {
            e.u8(1);
            e.usize(unfinished.len());
            for u in unfinished {
                e.str(&u.name);
                e.f64(u.progress_frac);
            }
        }
    }
    e.usize(r.events.len());
    for ev in &r.events {
        encode_event(&mut e, ev);
    }
    for &b in &r.tick_dt_hist.buckets {
        e.u64(b);
    }
    e.u64(r.memo_hits);
    e.u64(r.memo_misses);
    // Stage timings are wall-clock observations, not simulation outputs:
    // a cache-served result replays the producing run's readings, which is
    // as meaningful as any other run's (they never feed figure data).
    match &r.stage_timings {
        None => e.u8(0),
        Some(t) => {
            e.u8(1);
            for s in &t.stages {
                e.u64(s.calls);
                e.u64(s.total_ns);
                for &b in &s.buckets {
                    e.u64(b);
                }
            }
        }
    }
    match &r.open {
        None => e.u8(0),
        Some(o) => {
            e.u8(1);
            e.u64(o.arrived);
            e.u64(o.shed);
            e.u64(o.served);
            e.u64(o.duration_us);
            e.u64(o.overhead_us);
            e.f64(o.mean_slowdown);
        }
    }
    e.usize(r.n_levels);
    for &u in &r.level_utilization {
        e.f64(u);
    }
    for &s in &r.level_saturated {
        e.f64(s);
    }
    e.into_bytes()
}

/// Deserialize a cache payload produced by [`encode_result`].
pub fn decode_result(bytes: &[u8]) -> Result<RunResult, String> {
    let mut d = Dec::new(bytes);
    let n = d.seq_len(8)?;
    let mut turnarounds_us = Vec::with_capacity(n);
    for _ in 0..n {
        turnarounds_us.push(d.f64()?);
    }
    let mean_turnaround_us = d.f64()?;
    let workload_rate = d.f64()?;
    let measured_apps_rate = d.f64()?;
    let saturated_fraction = d.f64()?;
    let ticks = d.u64()?;
    let sim_elapsed_us = d.u64()?;
    let completion = match d.u8()? {
        0 => RunCompletion::Finished,
        1 => {
            // Each entry is a length-prefixed name (≥ 4 bytes) + one f64.
            let n = d.seq_len(12)?;
            let mut unfinished = Vec::with_capacity(n);
            for _ in 0..n {
                unfinished.push(UnfinishedApp {
                    name: d.str()?,
                    progress_frac: d.f64()?,
                });
            }
            RunCompletion::HardCap { unfinished }
        }
        t => return Err(format!("unknown completion tag {t}")),
    };
    // The smallest event is a tag byte + its at_us timestamp.
    let n = d.seq_len(9)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(decode_event(&mut d)?);
    }
    let mut tick_dt_hist = busbw_sim::TickDtHist::default();
    for b in tick_dt_hist.buckets.iter_mut() {
        *b = d.u64()?;
    }
    let memo_hits = d.u64()?;
    let memo_misses = d.u64()?;
    let stage_timings = match d.u8()? {
        0 => None,
        1 => {
            let mut t = busbw_sim::StageTimings::default();
            for s in t.stages.iter_mut() {
                s.calls = d.u64()?;
                s.total_ns = d.u64()?;
                for b in s.buckets.iter_mut() {
                    *b = d.u64()?;
                }
            }
            Some(t)
        }
        t => return Err(format!("unknown stage-timings tag {t}")),
    };
    let open = match d.u8()? {
        0 => None,
        1 => Some(crate::runner::OpenStats {
            arrived: d.u64()?,
            shed: d.u64()?,
            served: d.u64()?,
            duration_us: d.u64()?,
            overhead_us: d.u64()?,
            mean_slowdown: d.f64()?,
        }),
        t => return Err(format!("unknown open-stats tag {t}")),
    };
    let n_levels = d.usize()?;
    if n_levels > busbw_sim::MAX_BUS_LEVELS {
        return Err(format!("level count {n_levels} out of range"));
    }
    let mut level_utilization = [0.0; busbw_sim::MAX_BUS_LEVELS];
    for u in level_utilization.iter_mut() {
        *u = d.f64()?;
    }
    let mut level_saturated = [0.0; busbw_sim::MAX_BUS_LEVELS];
    for s in level_saturated.iter_mut() {
        *s = d.f64()?;
    }
    d.done()?;
    Ok(RunResult {
        turnarounds_us,
        mean_turnaround_us,
        workload_rate,
        measured_apps_rate,
        saturated_fraction,
        ticks,
        sim_elapsed_us,
        completion,
        events,
        tick_dt_hist,
        memo_hits,
        memo_misses,
        stage_timings,
        open,
        n_levels,
        level_utilization,
        level_saturated,
    })
}

// ---------------------------------------------------------------------
// The cache proper
// ---------------------------------------------------------------------

/// Which tier served a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-process map.
    Memory,
    /// Loaded (and verified) from the on-disk store.
    Disk,
}

/// How a disk entry failed to serve a lookup.
enum EntryReject {
    /// A different schema version or a different key's bytes: the entry is
    /// well-formed but simply not ours (stale store, digest collision).
    Stale,
    /// Bad magic, truncated header, or a payload that fails to decode —
    /// the file is damaged. Counted in [`RunCache::corrupt_count`].
    Corrupt,
}

/// In-memory + optional on-disk store of [`RunResult`]s keyed by
/// [`RunKey`].
#[derive(Debug, Default)]
pub struct RunCache {
    mem: HashMap<RunKey, Arc<RunResult>>,
    dir: Option<PathBuf>,
    enabled: bool,
    /// Disk entries rejected as damaged (vs merely stale). Every corrupt
    /// read degrades to a miss; this counter makes the degradation
    /// observable as the `cache.corrupt` metric.
    corrupt: u64,
}

impl RunCache {
    /// A cache with an optional disk directory. `enabled = false` turns
    /// every lookup into a miss and every store into a no-op
    /// (`--no-cache`).
    pub fn new(dir: Option<PathBuf>, enabled: bool) -> Self {
        Self {
            mem: HashMap::new(),
            dir,
            enabled,
            corrupt: 0,
        }
    }

    /// True when lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Disk entries rejected as damaged since this cache was created.
    pub fn corrupt_count(&self) -> u64 {
        self.corrupt
    }

    fn file_for(&self, key: &RunKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.run", key.hex())))
    }

    /// Look `key` up, memory first, then disk. A disk hit is verified
    /// against the full encoded key (collision check) and the schema
    /// version, then promoted into the memory tier.
    pub fn get(&mut self, key: &RunKey) -> Option<(Arc<RunResult>, CacheTier)> {
        if !self.enabled {
            return None;
        }
        if let Some(r) = self.mem.get(key) {
            return Some((Arc::clone(r), CacheTier::Memory));
        }
        let path = self.file_for(key)?;
        let data = std::fs::read(&path).ok()?;
        let result = match Self::parse_entry(key, &data) {
            Ok(r) => r,
            Err(EntryReject::Stale) => return None,
            Err(EntryReject::Corrupt) => {
                self.corrupt += 1;
                return None;
            }
        };
        let arc = Arc::new(result);
        self.mem.insert(key.clone(), Arc::clone(&arc));
        Some((arc, CacheTier::Disk))
    }

    fn parse_entry(key: &RunKey, data: &[u8]) -> Result<RunResult, EntryReject> {
        let mut d = Dec::new(data);
        if d.take(MAGIC.len()).map_err(|_| EntryReject::Corrupt)? != MAGIC {
            return Err(EntryReject::Corrupt);
        }
        if d.u32().map_err(|_| EntryReject::Corrupt)? != RUN_SCHEMA_VERSION {
            return Err(EntryReject::Stale);
        }
        let key_len = d.u32().map_err(|_| EntryReject::Corrupt)? as usize;
        if d.take(key_len).map_err(|_| EntryReject::Corrupt)? != key.encoded() {
            // Digest collision or a stale store: well-formed, just not ours.
            return Err(EntryReject::Stale);
        }
        decode_result(&data[d.pos..]).map_err(|_| EntryReject::Corrupt)
    }

    /// Store a result under `key` in memory and, when a directory is
    /// configured, on disk (atomically, via temp-file rename). Disk write
    /// failures are silently ignored — the cache is an accelerator, never
    /// a correctness dependency.
    pub fn put(&mut self, key: RunKey, result: Arc<RunResult>) {
        if !self.enabled {
            return;
        }
        if let Some(path) = self.file_for(&key) {
            let mut data = Vec::with_capacity(256 + key.encoded().len());
            data.extend_from_slice(MAGIC);
            data.extend_from_slice(&RUN_SCHEMA_VERSION.to_le_bytes());
            data.extend_from_slice(&(key.encoded().len() as u32).to_le_bytes());
            data.extend_from_slice(key.encoded());
            data.extend_from_slice(&encode_result(&result));
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
                let tmp = dir.join(format!(".{}.tmp{}", key.hex(), std::process::id()));
                if std::fs::write(&tmp, &data).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
        }
        self.mem.insert(key, result);
    }

    /// Number of entries held in memory.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::TickDtHist;

    fn sample_result() -> RunResult {
        let mut hist = TickDtHist::default();
        hist.record(1);
        hist.record(130);
        RunResult {
            turnarounds_us: vec![1.5, f64::consts_hack(), 3.25e-300],
            mean_turnaround_us: 2.0,
            workload_rate: 28.34,
            measured_apps_rate: 10.65,
            saturated_fraction: 0.97,
            ticks: 12345,
            sim_elapsed_us: 678_900,
            completion: RunCompletion::HardCap {
                unfinished: vec![UnfinishedApp {
                    name: "CG \"x\"".into(),
                    progress_frac: 0.42,
                }],
            },
            events: vec![
                TraceEvent::Placement {
                    at_us: 0,
                    cpu: 3,
                    thread: 9,
                    app: 2,
                    cold: true,
                },
                TraceEvent::BusSolve {
                    at_us: 100,
                    lambda: 1.65,
                    utilization: 1.0,
                    saturated: true,
                    requesters: 4,
                },
                TraceEvent::RunUnfinished {
                    at_us: 500,
                    app: 2,
                    name: "CG \"x\"".into(),
                    progress_frac: 0.42,
                },
                TraceEvent::StageDecision {
                    at_us: 600,
                    stage: busbw_trace::PipelineStage::Select,
                    items: 2,
                },
                TraceEvent::ClientArrived {
                    at_us: 700,
                    client: 4,
                    width: 2,
                },
                TraceEvent::ClientShed {
                    at_us: 710,
                    arrival: 5,
                    live: 8,
                },
                TraceEvent::ClientDeparted {
                    at_us: 720,
                    client: 4,
                    turnaround_us: 20,
                },
                TraceEvent::LevelSaturated {
                    at_us: 730,
                    level: 2,
                    utilization: 1.0,
                    dilation: 1.4,
                },
            ],
            tick_dt_hist: hist,
            memo_hits: 7,
            memo_misses: 3,
            stage_timings: {
                let mut t = busbw_sim::StageTimings::default();
                t.stages[0].record_ns(120);
                t.stages[2].record_ns(9_999);
                Some(t)
            },
            open: Some(crate::runner::OpenStats {
                arrived: 120,
                shed: 7,
                served: 110,
                duration_us: 5_000_000,
                overhead_us: 31_415,
                mean_slowdown: f64::consts_hack(),
            }),
            n_levels: 3,
            level_utilization: {
                let mut u = [0.0; busbw_sim::MAX_BUS_LEVELS];
                u[0] = 1.0;
                u[1] = 0.42;
                u[2] = f64::consts_hack();
                u
            },
            level_saturated: {
                let mut s = [0.0; busbw_sim::MAX_BUS_LEVELS];
                s[0] = 0.97;
                s
            },
        }
    }

    // A denormal-ish odd value exercising bit-exactness.
    trait F64Hack {
        fn consts_hack() -> f64;
    }
    impl F64Hack for f64 {
        fn consts_hack() -> f64 {
            f64::from_bits(0x3FF0_0000_0000_0001) // 1.0 + 1 ulp
        }
    }

    #[test]
    fn result_codec_round_trips_bit_exactly() {
        let r = sample_result();
        let bytes = encode_result(&r);
        let back = decode_result(&bytes).expect("decodes");
        assert_eq!(back.turnarounds_us.len(), r.turnarounds_us.len());
        for (a, b) in r.turnarounds_us.iter().zip(&back.turnarounds_us) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            back.mean_turnaround_us.to_bits(),
            r.mean_turnaround_us.to_bits()
        );
        assert_eq!(back.workload_rate.to_bits(), r.workload_rate.to_bits());
        assert_eq!(back.completion, r.completion);
        assert_eq!(back.events, r.events);
        assert_eq!(back.tick_dt_hist, r.tick_dt_hist);
        assert_eq!(back.memo_hits, 7);
        assert_eq!(back.memo_misses, 3);
        assert_eq!(back.stage_timings, r.stage_timings);
        assert_eq!(back.open, r.open);
        assert_eq!(
            back.open.unwrap().mean_slowdown.to_bits(),
            r.open.unwrap().mean_slowdown.to_bits()
        );
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let bytes = encode_result(&sample_result());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_result(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is also rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_result(&long).is_err());
    }

    #[test]
    fn run_keys_compare_by_content_not_digest() {
        let a = RunKey::from_encoded(vec![1, 2, 3]);
        let b = RunKey::from_encoded(vec![1, 2, 3]);
        let c = RunKey::from_encoded(vec![1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("busbw-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = RunKey::from_encoded(vec![9, 9, 9]);
        let r = Arc::new(sample_result());

        let mut c1 = RunCache::new(Some(dir.clone()), true);
        assert!(c1.get(&key).is_none());
        c1.put(key.clone(), Arc::clone(&r));
        // Fresh cache (cold memory): must come back from disk.
        let mut c2 = RunCache::new(Some(dir.clone()), true);
        let (got, tier) = c2.get(&key).expect("disk hit");
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(got.events, r.events);
        // Second get is served from memory.
        let (_, tier) = c2.get(&key).expect("mem hit");
        assert_eq!(tier, CacheTier::Memory);

        // Corrupt the file: the entry degrades to a miss, and the damage
        // is counted.
        let path = dir.join(format!("{}.run", key.hex()));
        let pristine = std::fs::read(&path).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        let mut c3 = RunCache::new(Some(dir.clone()), true);
        assert!(c3.get(&key).is_none());
        assert_eq!(c3.corrupt_count(), 1);

        std::fs::write(&path, &pristine).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_flip_fuzz_never_panics_and_counts_damage() {
        // Write one valid disk entry, then re-read it under systematic
        // single-byte flips and truncations. Every read must either miss
        // cleanly or produce *some* decoded result — never panic, never
        // over-allocate on a poisoned length prefix. (A flip in a payload
        // f64 can still decode; only the key bytes are identity-checked.)
        let dir = std::env::temp_dir().join(format!("busbw-cache-fuzz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = RunKey::from_encoded(vec![7, 7, 7]);
        let mut seed_cache = RunCache::new(Some(dir.clone()), true);
        seed_cache.put(key.clone(), Arc::new(sample_result()));
        let path = dir.join(format!("{}.run", key.hex()));
        let pristine = std::fs::read(&path).unwrap();

        let mut rejected = 0u64;
        let mut corrupt_total = 0u64;
        // Flip one byte at a time across the whole file (stride 3 keeps
        // the loop fast while still covering header, key, lengths, and
        // payload), plus a sweep of truncation lengths.
        for pos in (0..pristine.len()).step_by(3) {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut mutated = pristine.clone();
                mutated[pos] ^= mask;
                std::fs::write(&path, &mutated).unwrap();
                let mut c = RunCache::new(Some(dir.clone()), true);
                if c.get(&key).is_none() {
                    rejected += 1;
                }
                corrupt_total += c.corrupt_count();
            }
        }
        for cut in (0..pristine.len()).step_by(7) {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let mut c = RunCache::new(Some(dir.clone()), true);
            assert!(c.get(&key).is_none(), "truncation at {cut} cannot hit");
            corrupt_total += c.corrupt_count();
        }
        assert!(rejected > 0, "some flips must be rejected");
        assert!(corrupt_total > 0, "damaged entries must tick the counter");

        // The pristine bytes still hit afterwards: rejection is per-read,
        // not sticky.
        std::fs::write(&path, &pristine).unwrap();
        let mut c = RunCache::new(Some(dir.clone()), true);
        assert!(c.get(&key).is_some());
        assert_eq!(c.corrupt_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let key = RunKey::from_encoded(vec![1]);
        let mut c = RunCache::new(None, false);
        c.put(key.clone(), Arc::new(sample_result()));
        assert!(c.get(&key).is_none());
        assert_eq!(c.mem_len(), 0);
    }
}
