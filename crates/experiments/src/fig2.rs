//! Figure 2: the evaluation of §5.
//!
//! Multiprogramming degree 2 (8 threads on 4 processors). For every
//! application and every workload set, the workload runs under the Linux
//! baseline and under each new policy; the figure reports the percentage
//! improvement of the *mean turnaround time of the two application
//! instances* relative to Linux.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_workloads::mix::{fig2_set_a, fig2_set_b, fig2_set_c, WorkloadSpec};
use busbw_workloads::paper::PaperApp;

use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunResult, RunnerConfig};

/// The three workload families of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Set {
    /// 2 × app + 4 × BBMA (saturated background).
    A,
    /// 2 × app + 4 × nBBMA (idle-bus background).
    B,
    /// 2 × app + 2 × BBMA + 2 × nBBMA (mixed background).
    C,
}

impl Fig2Set {
    /// The workload for one application.
    pub fn spec(self, app: PaperApp) -> WorkloadSpec {
        match self {
            Fig2Set::A => fig2_set_a(app),
            Fig2Set::B => fig2_set_b(app),
            Fig2Set::C => fig2_set_c(app),
        }
    }

    /// Figure id ("fig2a"…).
    pub fn id(self) -> &'static str {
        match self {
            Fig2Set::A => "fig2a",
            Fig2Set::B => "fig2b",
            Fig2Set::C => "fig2c",
        }
    }

    /// Paper subtitle.
    pub fn title(self) -> &'static str {
        match self {
            Fig2Set::A => "2 Apps (2 Threads each) + 4 BBMA — Avg. turnaround improvement (%)",
            Fig2Set::B => "2 Apps (2 Threads each) + 4 nBBMA — Avg. turnaround improvement (%)",
            Fig2Set::C => {
                "2 Apps (2 Threads each) + 2 BBMA + 2 nBBMA — Avg. turnaround improvement (%)"
            }
        }
    }
}

/// Cell handles for one Figure 2 panel: apps in `PaperApp::ALL` order,
/// Linux first then each policy. Linux/Latest/Window cells dedup against
/// any other figure that declares the same set on a shared plan (the
/// fitness and SMT ablations, the baselines figure).
#[derive(Debug)]
pub struct Fig2Cells {
    set: Fig2Set,
    policies: Vec<PolicyKind>,
    cells: Vec<CellId>,
}

/// Declare one Figure 2 panel's cells for an arbitrary policy list.
pub fn plan_fig2(
    plan: &mut Plan,
    set: Fig2Set,
    policies: &[PolicyKind],
    rc: &RunnerConfig,
) -> Fig2Cells {
    let mut cells = Vec::with_capacity(PaperApp::ALL.len() * (1 + policies.len()));
    for &app in PaperApp::ALL.iter() {
        let spec = set.spec(app);
        cells.push(plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, rc)));
        for &p in policies {
            cells.push(plan.cell(RunRequest::spec(spec.clone(), p, rc)));
        }
    }
    Fig2Cells {
        set,
        policies: policies.to_vec(),
        cells,
    }
}

/// Fold one Figure 2 panel: improvement % of each policy over Linux.
pub fn fold_fig2(cells: &Fig2Cells, executed: &Executed) -> FigureSummary {
    let per_app = 1 + cells.policies.len();
    let rows = PaperApp::ALL
        .iter()
        .zip(cells.cells.chunks_exact(per_app))
        .map(|(&app, ids)| {
            let linux = executed.get(ids[0]);
            ExperimentRow {
                app: app.name().to_string(),
                values: cells
                    .policies
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        (
                            p.label(),
                            improvement_pct(
                                linux.mean_turnaround_us,
                                executed.get(ids[i + 1]).mean_turnaround_us,
                            ),
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    FigureSummary {
        id: cells.set.id().into(),
        title: cells.set.title().into(),
        rows,
    }
}

/// The panel's per-job results in declaration order (for trace merging
/// and metrics).
pub fn fig2_results(cells: &Fig2Cells, executed: &Executed) -> Vec<RunResult> {
    cells
        .cells
        .iter()
        .map(|&id| executed.get(id).clone())
        .collect()
}

/// Regenerate one Figure 2 panel: improvement % of `policies` (default:
/// Latest and Window) over the Linux baseline, per application.
pub fn fig2(set: Fig2Set, rc: &RunnerConfig) -> FigureSummary {
    fig2_with_policies(set, &[PolicyKind::Latest, PolicyKind::Window], rc)
}

/// Figure 2 panel with an arbitrary policy list (used by ablations).
pub fn fig2_with_policies(
    set: Fig2Set,
    policies: &[PolicyKind],
    rc: &RunnerConfig,
) -> FigureSummary {
    fig2_with_policies_traced(set, policies, rc).0
}

/// Like [`fig2_with_policies`], but also hands back the per-job
/// [`RunResult`]s (job order: apps in `PaperApp::ALL` order, Linux first
/// then each policy) so the caller can merge traces and fold metrics.
pub fn fig2_with_policies_traced(
    set: Fig2Set,
    policies: &[PolicyKind],
    rc: &RunnerConfig,
) -> (FigureSummary, Vec<RunResult>) {
    run_figure(
        rc,
        |plan| plan_fig2(plan, set, policies, rc),
        |cells, executed| (fold_fig2(cells, executed), fig2_results(cells, executed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_spec;

    /// Reduced-size shape check for one heavy application on set A — the
    /// configuration with the paper's largest wins. Full panels are
    /// produced by the binary and benches.
    #[test]
    fn heavy_app_set_a_improves_substantially() {
        let rc = RunnerConfig::quick();
        let spec = Fig2Set::A.spec(PaperApp::Mg);
        let linux = run_spec(&spec, PolicyKind::Linux, &rc);
        let latest = run_spec(&spec, PolicyKind::Latest, &rc);
        let window = run_spec(&spec, PolicyKind::Window, &rc);
        let imp_l = improvement_pct(linux.mean_turnaround_us, latest.mean_turnaround_us);
        let imp_w = improvement_pct(linux.mean_turnaround_us, window.mean_turnaround_us);
        assert!(imp_l > 10.0, "Latest improvement on MG set A: {imp_l}%");
        assert!(imp_w > 10.0, "Window improvement on MG set A: {imp_w}%");
    }

    #[test]
    fn set_enum_roundtrips() {
        assert_eq!(Fig2Set::A.id(), "fig2a");
        assert_eq!(Fig2Set::B.id(), "fig2b");
        assert_eq!(Fig2Set::C.id(), "fig2c");
        for s in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
            assert_eq!(s.spec(PaperApp::Cg).total_threads(), 8);
            assert!(!s.title().is_empty());
        }
    }

    #[test]
    fn overlapping_policy_lists_share_baseline_and_policy_cells() {
        let rc = RunnerConfig::quick();
        let mut plan = Plan::new();
        plan_fig2(
            &mut plan,
            Fig2Set::C,
            &[PolicyKind::Latest, PolicyKind::Window],
            &rc,
        );
        let after_panel = plan.len();
        // The fitness ablation extends the same panel's policy list: only
        // the three gang policies add new cells.
        plan_fig2(
            &mut plan,
            Fig2Set::C,
            &[
                PolicyKind::Latest,
                PolicyKind::Window,
                PolicyKind::RoundRobinGang,
                PolicyKind::RandomGang(rc.seed),
                PolicyKind::GreedyPack,
            ],
            &rc,
        );
        assert_eq!(plan.len(), after_panel + 3 * PaperApp::ALL.len());
    }
}
