//! Open-system experiment: jobs arriving over time.
//!
//! Every workload in the paper starts all jobs at t = 0. Real
//! multiprogrammed servers are open systems — jobs connect to the CPU
//! manager while others are mid-flight. This experiment checks that the
//! policies' circular-list mechanics (new jobs appended, head-of-list
//! guarantee, estimator warm-up from zero) behave under staggered
//! arrivals:
//!
//! * at t = 0 the background starts (2 × BBMA + 2 × nBBMA);
//! * the two measured application instances arrive at `stagger_us` and
//!   `2 × stagger_us`;
//! * the run ends when both instances finish; we report their mean
//!   turnaround (arrival-relative) per scheduler.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_sim::{Machine, Scheduler, StopCondition};
use busbw_workloads::micro::{bbma, nbbma};
use busbw_workloads::paper::{paper_app, PaperApp};

use crate::runner::{PolicyKind, RunnerConfig};

/// Mean turnaround (µs) of two staggered instances of `app` under
/// `policy`, with a mixed microbenchmark background.
pub fn staggered_turnaround(
    app: PaperApp,
    policy: PolicyKind,
    stagger_us: u64,
    rc: &RunnerConfig,
) -> f64 {
    let mut machine = Machine::new(rc.machine);
    machine
        .set_hard_cap_us((busbw_workloads::paper::DEFAULT_SOLO_WORK_US * rc.scale * 100.0) as u64);
    // Background from t = 0.
    machine.add_app(bbma().descriptor(rc.seed));
    machine.add_app(bbma().descriptor(rc.seed + 1));
    machine.add_app(nbbma().descriptor(rc.seed + 2));
    machine.add_app(nbbma().descriptor(rc.seed + 3));

    let mut sched: Box<dyn Scheduler> = policy.build();

    // Phase 1: background only, until the first arrival.
    machine.run(&mut *sched, StopCondition::At(stagger_us));
    let first = machine.add_app(paper_app(app).scaled(rc.scale).descriptor(rc.seed + 10));

    // Phase 2: until the second arrival.
    machine.run(&mut *sched, StopCondition::At(2 * stagger_us));
    let second = machine.add_app(paper_app(app).scaled(rc.scale).descriptor(rc.seed + 11));

    // Phase 3: until both instances complete.
    let out = machine.run(
        &mut *sched,
        StopCondition::AppsFinished(vec![first, second]),
    );
    assert!(
        out.condition_met,
        "staggered workload for {} under {} hit the hard cap",
        app.name(),
        policy.label()
    );
    let t1 = machine.turnaround_us(first).expect("first finished") as f64;
    let t2 = machine.turnaround_us(second).expect("second finished") as f64;
    (t1 + t2) / 2.0
}

/// The dynamic-arrival figure: improvement over Linux per application.
pub fn dynamic_arrivals(rc: &RunnerConfig) -> FigureSummary {
    let stagger = (500_000.0 * rc.scale).max(100_000.0) as u64;
    let mut rows = Vec::new();
    for app in [PaperApp::Volrend, PaperApp::Bt, PaperApp::Mg, PaperApp::Cg] {
        let linux = staggered_turnaround(app, PolicyKind::Linux, stagger, rc);
        let mut values = Vec::new();
        for p in [PolicyKind::Latest, PolicyKind::Window] {
            let t = staggered_turnaround(app, p, stagger, rc);
            values.push((p.label(), improvement_pct(linux, t)));
        }
        rows.push(ExperimentRow {
            app: app.name().to_string(),
            values,
        });
    }
    FigureSummary {
        id: "dynamic".into(),
        title: "Staggered arrivals into a live background — improvement % over Linux".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_jobs_finish_and_policies_handle_arrivals() {
        let rc = RunnerConfig::quick();
        for p in [PolicyKind::Linux, PolicyKind::Window] {
            let t = staggered_turnaround(PaperApp::Volrend, p, 100_000, &rc);
            // 600 ms of scaled work in a multiprogrammed open system:
            // bounded well below the hard cap, above solo time.
            assert!((550_000.0..5_000_000.0).contains(&t), "{}: {t}", p.label());
        }
    }

    #[test]
    fn late_arrivals_are_not_starved_by_established_jobs() {
        // The second instance arrives into a system whose estimator
        // already knows everyone else; the head-of-list rule must still
        // cycle it in. Turnaround within 4x of the first instance's.
        let rc = RunnerConfig::quick();
        let mean = staggered_turnaround(PaperApp::Cg, PolicyKind::Latest, 100_000, &rc);
        assert!(mean < 4_000_000.0, "mean turnaround {mean}");
    }
}
