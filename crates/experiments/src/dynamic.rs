//! Open-system experiment: jobs arriving over time.
//!
//! Every workload in the paper starts all jobs at t = 0. Real
//! multiprogrammed servers are open systems — jobs connect to the CPU
//! manager while others are mid-flight. This experiment checks that the
//! policies' circular-list mechanics (new jobs appended, head-of-list
//! guarantee, estimator warm-up from zero) behave under staggered
//! arrivals:
//!
//! * at t = 0 the background starts (2 × BBMA + 2 × nBBMA);
//! * the two measured application instances arrive at `stagger_us` and
//!   `2 × stagger_us`;
//! * the run ends when both instances finish; we report their mean
//!   turnaround (arrival-relative) per scheduler.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_sim::{Machine, Scheduler, StopCondition};
use busbw_workloads::micro::{bbma, nbbma};
use busbw_workloads::paper::{paper_app, PaperApp};

use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunCompletion, RunResult, RunnerConfig};

/// Run the staggered-arrival scenario for `app` under `policy` and return
/// a [`RunResult`] (the job-graph cell behind the `dynamic` figure).
///
/// `turnarounds_us` holds the two instances' arrival-relative turnarounds
/// and `mean_turnaround_us` their mean; the bus/tick statistics cover the
/// final phase of the run (arrival of the second instance onward). No
/// tracer is wired — the open-system phases drive the machine directly.
pub fn staggered_run(
    app: PaperApp,
    policy: PolicyKind,
    stagger_us: u64,
    rc: &RunnerConfig,
) -> RunResult {
    let mut machine = Machine::new(rc.machine);
    machine.set_hard_cap_us(
        (busbw_workloads::paper::DEFAULT_SOLO_WORK_US * rc.scale * rc.hard_cap_factor) as u64,
    );
    // Background from t = 0.
    machine.add_app(bbma().descriptor(rc.seed));
    machine.add_app(bbma().descriptor(rc.seed + 1));
    machine.add_app(nbbma().descriptor(rc.seed + 2));
    machine.add_app(nbbma().descriptor(rc.seed + 3));

    let mut sched: Box<dyn Scheduler> = policy.build();

    // Phase 1: background only, until the first arrival.
    machine.run(&mut *sched, StopCondition::At(stagger_us));
    let first = machine.add_app(paper_app(app).scaled(rc.scale).descriptor(rc.seed + 10));

    // Phase 2: until the second arrival.
    machine.run(&mut *sched, StopCondition::At(2 * stagger_us));
    let second = machine.add_app(paper_app(app).scaled(rc.scale).descriptor(rc.seed + 11));

    // Phase 3: until both instances complete.
    let out = machine.run(
        &mut *sched,
        StopCondition::AppsFinished(vec![first, second]),
    );
    assert!(
        out.condition_met,
        "staggered workload for {} under {} hit the hard cap",
        app.name(),
        policy.label()
    );
    let t1 = machine.turnaround_us(first).expect("first finished") as f64;
    let t2 = machine.turnaround_us(second).expect("second finished") as f64;
    let (memo_hits, memo_misses) = machine.bus_memo_stats().unwrap_or((0, 0));
    let mut level_utilization = [0.0; busbw_sim::MAX_BUS_LEVELS];
    let mut level_saturated = [0.0; busbw_sim::MAX_BUS_LEVELS];
    for (k, l) in out.stats.levels[..out.stats.n_levels].iter().enumerate() {
        level_utilization[k] = l.mean_utilization(out.stats.elapsed_us);
        level_saturated[k] = l.saturated_fraction(out.stats.elapsed_us);
    }
    RunResult {
        mean_turnaround_us: (t1 + t2) / 2.0,
        turnarounds_us: vec![t1, t2],
        workload_rate: out.stats.mean_bus_rate(),
        measured_apps_rate: 0.0,
        saturated_fraction: out.stats.saturated_fraction(),
        ticks: out.stats.ticks,
        sim_elapsed_us: out.stats.elapsed_us,
        completion: RunCompletion::Finished,
        events: Vec::new(),
        tick_dt_hist: out.stats.tick_dt_hist,
        memo_hits,
        memo_misses,
        stage_timings: sched.stage_timings().cloned(),
        open: None,
        n_levels: out.stats.n_levels,
        level_utilization,
        level_saturated,
    }
}

/// Mean turnaround (µs) of two staggered instances of `app` under
/// `policy`, with a mixed microbenchmark background.
pub fn staggered_turnaround(
    app: PaperApp,
    policy: PolicyKind,
    stagger_us: u64,
    rc: &RunnerConfig,
) -> f64 {
    staggered_run(app, policy, stagger_us, rc).mean_turnaround_us
}

/// The applications and comparison policies of the dynamic figure.
const DYN_APPS: [PaperApp; 4] = [PaperApp::Volrend, PaperApp::Bt, PaperApp::Mg, PaperApp::Cg];
const DYN_POLICIES: [PolicyKind; 2] = [PolicyKind::Latest, PolicyKind::Window];

/// Cell handles for the dynamic figure: per app, the Linux baseline then
/// each comparison policy.
#[derive(Debug)]
pub struct DynamicCells {
    cells: Vec<CellId>,
}

/// Declare the dynamic figure's staggered-arrival cells.
pub fn plan_dynamic(plan: &mut Plan, rc: &RunnerConfig) -> DynamicCells {
    let stagger = (500_000.0 * rc.scale).max(100_000.0) as u64;
    let mut cells = Vec::new();
    for app in DYN_APPS {
        cells.push(plan.cell(RunRequest::staggered(app, stagger, PolicyKind::Linux, rc)));
        for p in DYN_POLICIES {
            cells.push(plan.cell(RunRequest::staggered(app, stagger, p, rc)));
        }
    }
    DynamicCells { cells }
}

/// Fold the dynamic figure: improvement over Linux per application.
pub fn fold_dynamic(cells: &DynamicCells, executed: &Executed) -> FigureSummary {
    let per_app = 1 + DYN_POLICIES.len();
    let rows = DYN_APPS
        .iter()
        .zip(cells.cells.chunks_exact(per_app))
        .map(|(&app, ids)| {
            let linux = executed.get(ids[0]).mean_turnaround_us;
            ExperimentRow {
                app: app.name().to_string(),
                values: DYN_POLICIES
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        (
                            p.label(),
                            improvement_pct(linux, executed.get(ids[i + 1]).mean_turnaround_us),
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    FigureSummary {
        id: "dynamic".into(),
        title: "Staggered arrivals into a live background — improvement % over Linux".into(),
        rows,
    }
}

/// The dynamic-arrival figure: improvement over Linux per application.
pub fn dynamic_arrivals(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_dynamic(plan, rc), fold_dynamic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_jobs_finish_and_policies_handle_arrivals() {
        let rc = RunnerConfig::quick();
        for p in [PolicyKind::Linux, PolicyKind::Window] {
            let t = staggered_turnaround(PaperApp::Volrend, p, 100_000, &rc);
            // 600 ms of scaled work in a multiprogrammed open system:
            // bounded well below the hard cap, above solo time.
            assert!((550_000.0..5_000_000.0).contains(&t), "{}: {t}", p.label());
        }
    }

    #[test]
    fn late_arrivals_are_not_starved_by_established_jobs() {
        // The second instance arrives into a system whose estimator
        // already knows everyone else; the head-of-list rule must still
        // cycle it in. Turnaround within 4x of the first instance's.
        let rc = RunnerConfig::quick();
        let mean = staggered_turnaround(PaperApp::Cg, PolicyKind::Latest, 100_000, &rc);
        assert!(mean < 4_000_000.0, "mean turnaround {mean}");
    }

    #[test]
    fn staggered_run_reports_both_instances() {
        let rc = RunnerConfig::quick();
        let r = staggered_run(PaperApp::Volrend, PolicyKind::Window, 100_000, &rc);
        assert_eq!(r.turnarounds_us.len(), 2);
        assert!(r.completion.is_finished());
        let mean = (r.turnarounds_us[0] + r.turnarounds_us[1]) / 2.0;
        assert_eq!(mean.to_bits(), r.mean_turnaround_us.to_bits());
    }
}
