//! Ablations of the design choices the paper motivates but does not plot.
//!
//! * **Window length** (§4): the 5-sample window "limits the average
//!   distance between the observed transactions pattern and the moving
//!   window average to 5 % for applications with irregular bus bandwidth
//!   requirements". [`ablate_window`] reproduces both halves of the
//!   tradeoff: the analytic distance criterion on a bursty trace, and the
//!   end-to-end improvement on the Raytrace set-B workload where Latest
//!   Quantum misbehaves (−19 % in the paper).
//! * **Quantum length** (§5): the paper moved from 100 ms to 200 ms
//!   because of user/kernel scheduling conflicts. The simulator has no
//!   such conflict, so [`ablate_quantum`] reports the pure policy-side
//!   sensitivity.
//! * **Fitness rule** (§4): [`ablate_fitness`] compares the fitness-driven
//!   fill against round-robin, random, and greedy-max-bandwidth gang
//!   fills on set C.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary, MovingWindow};
use busbw_sim::{DemandModel, XEON_4WAY_HT};
use busbw_workloads::burst::TwoStateBurst;
use busbw_workloads::paper::PaperApp;

use crate::fig2::{fig2_with_policies, Fig2Set};
use crate::runner::{run_spec, PolicyKind, RunnerConfig};

/// Window lengths swept by [`ablate_window`].
pub const WINDOW_SWEEP: [usize; 5] = [1, 3, 5, 9, 15];

/// Window-length ablation.
///
/// Rows: one per window length. Columns: the §4 distance criterion on a
/// Raytrace-like burst trace (%), and the end-to-end improvement over
/// Linux on the Raytrace and CG set-B workloads.
pub fn ablate_window(rc: &RunnerConfig) -> FigureSummary {
    // The analytic half: sample a Raytrace-like burst process at the
    // manager's sampling period (100 ms), compute the §4 criterion.
    let mut burst = TwoStateBurst::raytrace(10.65, 0.82, rc.seed);
    let trace: Vec<f64> = (0..600)
        .map(|i| burst.demand_at(0.0, i * 100_000).rate)
        .collect();

    let mut rows = Vec::new();
    for w in WINDOW_SWEEP {
        // The burst trace is 600 samples, never empty.
        let dist =
            MovingWindow::mean_relative_distance(w, &trace).expect("non-empty trace") * 100.0;
        let mut values = vec![("distance %".to_string(), dist)];
        for app in [PaperApp::Raytrace, PaperApp::Cg] {
            let spec = Fig2Set::B.spec(app);
            let linux = run_spec(&spec, PolicyKind::Linux, rc);
            let win = run_spec(&spec, PolicyKind::WindowN(w), rc);
            values.push((
                format!("{} impr %", app.name()),
                improvement_pct(linux.mean_turnaround_us, win.mean_turnaround_us),
            ));
        }
        rows.push(ExperimentRow {
            app: format!("W={w}"),
            values,
        });
    }
    FigureSummary {
        id: "ablate-window".into(),
        title: "Window length: §4 distance criterion and set-B improvement".into(),
        rows,
    }
}

/// Quantum lengths swept by [`ablate_quantum`] (µs).
pub const QUANTUM_SWEEP: [u64; 4] = [50_000, 100_000, 200_000, 400_000];

/// Quantum-length ablation for the Latest Quantum policy on set C.
pub fn ablate_quantum(rc: &RunnerConfig) -> FigureSummary {
    let mut rows = Vec::new();
    for q in QUANTUM_SWEEP {
        let mut values = Vec::new();
        for app in [PaperApp::Volrend, PaperApp::Sp, PaperApp::Cg] {
            let spec = Fig2Set::C.spec(app);
            let linux = run_spec(&spec, PolicyKind::Linux, rc);
            let pol = run_spec(&spec, PolicyKind::LatestWithQuantum(q), rc);
            values.push((
                format!("{} impr %", app.name()),
                improvement_pct(linux.mean_turnaround_us, pol.mean_turnaround_us),
            ));
        }
        rows.push(ExperimentRow {
            app: format!("{}ms", q / 1000),
            values,
        });
    }
    FigureSummary {
        id: "ablate-quantum".into(),
        title: "Latest Quantum: scheduling quantum sweep on set C".into(),
        rows,
    }
}

/// Fitness-rule ablation on set C: the paper's policies vs gang
/// scheduling with round-robin, random, and greedy-max-bandwidth fills.
pub fn ablate_fitness(rc: &RunnerConfig) -> FigureSummary {
    let mut fig = fig2_with_policies(
        Fig2Set::C,
        &[
            PolicyKind::Latest,
            PolicyKind::Window,
            PolicyKind::RoundRobinGang,
            PolicyKind::RandomGang(rc.seed),
            PolicyKind::GreedyPack,
        ],
        rc,
    );
    fig.id = "ablate-fitness".into();
    fig.title = "Set C improvement %: fitness vs oblivious gang fills".into();
    fig
}

/// Hyperthreading extension (§6 future work; the paper disabled HT
/// because perfctr could not virtualize counters across siblings).
///
/// Reruns set C on the same machine with SMT enabled (8 logical cpus on
/// 4 cores, 1.25× aggregate core speedup) and reports the policies'
/// improvement over Linux on both configurations. With HT, all 8 threads
/// of the workload fit simultaneously, so the baseline stops paying the
/// gang-splitting cost — but the bus is pressured by more concurrent
/// streams, which is exactly the regime the bandwidth-aware policies
/// target.
pub fn ablate_smt(rc: &RunnerConfig) -> FigureSummary {
    let mut rows = Vec::new();
    let ht_rc = RunnerConfig {
        machine: XEON_4WAY_HT,
        ..*rc
    };
    for app in [PaperApp::Volrend, PaperApp::Mg, PaperApp::Cg] {
        let spec = Fig2Set::C.spec(app);
        let mut values = Vec::new();
        for (label, cfg) in [("4-way", rc), ("4-way+HT", &ht_rc)] {
            let linux = run_spec(&spec, PolicyKind::Linux, cfg);
            for p in [PolicyKind::Latest, PolicyKind::Window] {
                let r = run_spec(&spec, p, cfg);
                values.push((
                    format!("{} {}", p.label(), label),
                    improvement_pct(linux.mean_turnaround_us, r.mean_turnaround_us),
                ));
            }
        }
        rows.push(ExperimentRow {
            app: app.name().to_string(),
            values,
        });
    }
    FigureSummary {
        id: "ablate-smt".into(),
        title: "Set C improvement % with and without Hyperthreading".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_distance_criterion_grows_with_width() {
        // Pure analytic part (fast): the §4 tradeoff direction.
        let mut burst = TwoStateBurst::raytrace(10.65, 0.82, 3);
        let trace: Vec<f64> = (0..600)
            .map(|i| burst.demand_at(0.0, i * 100_000).rate)
            .collect();
        let d1 = MovingWindow::mean_relative_distance(1, &trace).unwrap();
        let d5 = MovingWindow::mean_relative_distance(5, &trace).unwrap();
        let d15 = MovingWindow::mean_relative_distance(15, &trace).unwrap();
        assert!(d1 <= d5 && d5 <= d15, "{d1} {d5} {d15}");
        // The paper's 5-sample choice keeps the distance moderate (the
        // text cites ~5 %; our synthetic bursts are of the same order).
        assert!(d5 < 0.60, "5-sample distance {d5}");
    }
}
