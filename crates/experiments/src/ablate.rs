//! Ablations of the design choices the paper motivates but does not plot.
//!
//! * **Window length** (§4): the 5-sample window "limits the average
//!   distance between the observed transactions pattern and the moving
//!   window average to 5 % for applications with irregular bus bandwidth
//!   requirements". [`ablate_window`] reproduces both halves of the
//!   tradeoff: the analytic distance criterion on a bursty trace, and the
//!   end-to-end improvement on the Raytrace set-B workload where Latest
//!   Quantum misbehaves (−19 % in the paper).
//! * **Quantum length** (§5): the paper moved from 100 ms to 200 ms
//!   because of user/kernel scheduling conflicts. The simulator has no
//!   such conflict, so [`ablate_quantum`] reports the pure policy-side
//!   sensitivity.
//! * **Fitness rule** (§4): [`ablate_fitness`] compares the fitness-driven
//!   fill against round-robin, random, and greedy-max-bandwidth gang
//!   fills on set C.
//!
//! All sweeps declare job-graph cells instead of looping over `run_spec`
//! serially: the per-sweep-point Linux baselines collapse to one cell
//! each, and on a shared plan they dedup against the Figure 2 panels.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary, MovingWindow};
use busbw_sim::{DemandModel, XEON_4WAY_HT};
use busbw_workloads::burst::TwoStateBurst;
use busbw_workloads::paper::PaperApp;

use crate::fig2::{fold_fig2, plan_fig2, Fig2Cells, Fig2Set};
use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::policy::{EstimatorKind, PlacerKind, SelectorKind, StackSpec};
use crate::runner::{PolicyKind, RunnerConfig};

/// Window lengths swept by [`ablate_window`].
pub const WINDOW_SWEEP: [usize; 5] = [1, 3, 5, 9, 15];

const WINDOW_APPS: [PaperApp; 2] = [PaperApp::Raytrace, PaperApp::Cg];

/// Cell handles for the window-length ablation: per app, the (single)
/// Linux baseline plus one `WindowN` cell per swept width.
#[derive(Debug)]
pub struct WindowCells {
    /// `(linux, [windowed; WINDOW_SWEEP])` per app in `WINDOW_APPS` order.
    per_app: Vec<(CellId, Vec<CellId>)>,
    /// The §4 analytic distances, % per swept width (no runs needed).
    distances: Vec<f64>,
}

/// Declare the window-length ablation. The analytic half (the §4 distance
/// criterion on a Raytrace-like burst trace) is computed here — it needs
/// no simulator runs.
pub fn plan_window(plan: &mut Plan, rc: &RunnerConfig) -> WindowCells {
    let mut burst = TwoStateBurst::raytrace(10.65, 0.82, rc.seed);
    let trace: Vec<f64> = (0..600)
        .map(|i| burst.demand_at(0.0, i * 100_000).rate)
        .collect();
    let distances = WINDOW_SWEEP
        .iter()
        // The burst trace is 600 samples, never empty.
        .map(|&w| MovingWindow::mean_relative_distance(w, &trace).expect("non-empty trace") * 100.0)
        .collect();
    let per_app = WINDOW_APPS
        .iter()
        .map(|&app| {
            let spec = Fig2Set::B.spec(app);
            let linux = plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, rc));
            let windowed = WINDOW_SWEEP
                .iter()
                .map(|&w| plan.cell(RunRequest::spec(spec.clone(), PolicyKind::WindowN(w), rc)))
                .collect();
            (linux, windowed)
        })
        .collect();
    WindowCells { per_app, distances }
}

/// Fold the window-length ablation.
pub fn fold_window(cells: &WindowCells, executed: &Executed) -> FigureSummary {
    let rows = WINDOW_SWEEP
        .iter()
        .enumerate()
        .map(|(wi, &w)| {
            let mut values = vec![("distance %".to_string(), cells.distances[wi])];
            for (&app, (linux, windowed)) in WINDOW_APPS.iter().zip(&cells.per_app) {
                values.push((
                    format!("{} impr %", app.name()),
                    improvement_pct(
                        executed.get(*linux).mean_turnaround_us,
                        executed.get(windowed[wi]).mean_turnaround_us,
                    ),
                ));
            }
            ExperimentRow {
                app: format!("W={w}"),
                values,
            }
        })
        .collect();
    FigureSummary {
        id: "ablate-window".into(),
        title: "Window length: §4 distance criterion and set-B improvement".into(),
        rows,
    }
}

/// Window-length ablation.
///
/// Rows: one per window length. Columns: the §4 distance criterion on a
/// Raytrace-like burst trace (%), and the end-to-end improvement over
/// Linux on the Raytrace and CG set-B workloads.
pub fn ablate_window(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_window(plan, rc), fold_window)
}

/// Quantum lengths swept by [`ablate_quantum`] (µs).
pub const QUANTUM_SWEEP: [u64; 4] = [50_000, 100_000, 200_000, 400_000];

const QUANTUM_APPS: [PaperApp; 3] = [PaperApp::Volrend, PaperApp::Sp, PaperApp::Cg];

/// Cell handles for the quantum-length ablation.
#[derive(Debug)]
pub struct QuantumCells {
    /// `(linux, [quantum; QUANTUM_SWEEP])` per app in `QUANTUM_APPS` order.
    per_app: Vec<(CellId, Vec<CellId>)>,
}

/// Declare the quantum-length ablation's cells on set C.
pub fn plan_quantum(plan: &mut Plan, rc: &RunnerConfig) -> QuantumCells {
    let per_app = QUANTUM_APPS
        .iter()
        .map(|&app| {
            let spec = Fig2Set::C.spec(app);
            let linux = plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, rc));
            let swept = QUANTUM_SWEEP
                .iter()
                .map(|&q| {
                    plan.cell(RunRequest::spec(
                        spec.clone(),
                        PolicyKind::LatestWithQuantum(q),
                        rc,
                    ))
                })
                .collect();
            (linux, swept)
        })
        .collect();
    QuantumCells { per_app }
}

/// Fold the quantum-length ablation.
pub fn fold_quantum(cells: &QuantumCells, executed: &Executed) -> FigureSummary {
    let rows = QUANTUM_SWEEP
        .iter()
        .enumerate()
        .map(|(qi, &q)| {
            let values = QUANTUM_APPS
                .iter()
                .zip(&cells.per_app)
                .map(|(&app, (linux, swept))| {
                    (
                        format!("{} impr %", app.name()),
                        improvement_pct(
                            executed.get(*linux).mean_turnaround_us,
                            executed.get(swept[qi]).mean_turnaround_us,
                        ),
                    )
                })
                .collect();
            ExperimentRow {
                app: format!("{}ms", q / 1000),
                values,
            }
        })
        .collect();
    FigureSummary {
        id: "ablate-quantum".into(),
        title: "Latest Quantum: scheduling quantum sweep on set C".into(),
        rows,
    }
}

/// Quantum-length ablation for the Latest Quantum policy on set C.
pub fn ablate_quantum(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_quantum(plan, rc), fold_quantum)
}

/// The fitness ablation's policy list (set C).
fn fitness_policies(rc: &RunnerConfig) -> [PolicyKind; 5] {
    [
        PolicyKind::Latest,
        PolicyKind::Window,
        PolicyKind::RoundRobinGang,
        PolicyKind::RandomGang(rc.seed),
        PolicyKind::GreedyPack,
    ]
}

/// Declare the fitness-rule ablation (a full set-C panel; its Linux,
/// Latest and Window cells dedup against the `fig2c` panel on a shared
/// plan).
pub fn plan_fitness(plan: &mut Plan, rc: &RunnerConfig) -> Fig2Cells {
    plan_fig2(plan, Fig2Set::C, &fitness_policies(rc), rc)
}

/// Fold the fitness-rule ablation.
pub fn fold_fitness(cells: &Fig2Cells, executed: &Executed) -> FigureSummary {
    let mut fig = fold_fig2(cells, executed);
    fig.id = "ablate-fitness".into();
    fig.title = "Set C improvement %: fitness vs oblivious gang fills".into();
    fig
}

/// Fitness-rule ablation on set C: the paper's policies vs gang
/// scheduling with round-robin, random, and greedy-max-bandwidth fills.
pub fn ablate_fitness(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_fitness(plan, rc), fold_fitness)
}

const SMT_APPS: [PaperApp; 3] = [PaperApp::Volrend, PaperApp::Mg, PaperApp::Cg];
const SMT_POLICIES: [PolicyKind; 2] = [PolicyKind::Latest, PolicyKind::Window];

/// Cell handles for the Hyperthreading ablation: per app, `(linux,
/// latest, window)` for the 4-way machine then the 4-way+HT machine.
#[derive(Debug)]
pub struct SmtCells {
    per_app: Vec<Vec<CellId>>,
}

/// Declare the SMT ablation's cells (the 4-way cells dedup against the
/// `fig2c` panel on a shared plan; the HT cells are unique).
pub fn plan_smt(plan: &mut Plan, rc: &RunnerConfig) -> SmtCells {
    let ht_rc = RunnerConfig {
        machine: XEON_4WAY_HT,
        ..*rc
    };
    let per_app = SMT_APPS
        .iter()
        .map(|&app| {
            let spec = Fig2Set::C.spec(app);
            let mut ids = Vec::with_capacity(2 * (1 + SMT_POLICIES.len()));
            for cfg in [rc, &ht_rc] {
                ids.push(plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, cfg)));
                for p in SMT_POLICIES {
                    ids.push(plan.cell(RunRequest::spec(spec.clone(), p, cfg)));
                }
            }
            ids
        })
        .collect();
    SmtCells { per_app }
}

/// Fold the SMT ablation.
pub fn fold_smt(cells: &SmtCells, executed: &Executed) -> FigureSummary {
    let group = 1 + SMT_POLICIES.len();
    let rows = SMT_APPS
        .iter()
        .zip(&cells.per_app)
        .map(|(&app, ids)| {
            let mut values = Vec::with_capacity(2 * SMT_POLICIES.len());
            for (gi, label) in [(0, "4-way"), (1, "4-way+HT")] {
                let linux = executed.get(ids[gi * group]).mean_turnaround_us;
                for (pi, p) in SMT_POLICIES.iter().enumerate() {
                    values.push((
                        format!("{} {}", p.label(), label),
                        improvement_pct(
                            linux,
                            executed.get(ids[gi * group + 1 + pi]).mean_turnaround_us,
                        ),
                    ));
                }
            }
            ExperimentRow {
                app: app.name().to_string(),
                values,
            }
        })
        .collect();
    FigureSummary {
        id: "ablate-smt".into(),
        title: "Set C improvement % with and without Hyperthreading".into(),
        rows,
    }
}

/// Hyperthreading extension (§6 future work; the paper disabled HT
/// because perfctr could not virtualize counters across siblings).
///
/// Reruns set C on the same machine with SMT enabled (8 logical cpus on
/// 4 cores, 1.25× aggregate core speedup) and reports the policies'
/// improvement over Linux on both configurations. With HT, all 8 threads
/// of the workload fit simultaneously, so the baseline stops paying the
/// gang-splitting cost — but the bus is pressured by more concurrent
/// streams, which is exactly the regime the bandwidth-aware policies
/// target.
pub fn ablate_smt(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_smt(plan, rc), fold_smt)
}

/// Estimators crossed by [`ablate_stages`].
pub const STAGE_ESTIMATORS: [EstimatorKind; 2] = [
    EstimatorKind::Latest,
    EstimatorKind::Window(busbw_core::pipeline::PAPER_WINDOW_SAMPLES),
];

/// Placers crossed by [`ablate_stages`].
pub const STAGE_PLACERS: [PlacerKind; 2] = [PlacerKind::Packed, PlacerKind::Scatter];

/// Selectors crossed by [`ablate_stages`] (the random fill is seeded from
/// the run config so the figure stays deterministic per seed).
pub fn stage_selectors(rc: &RunnerConfig) -> [SelectorKind; 3] {
    [
        SelectorKind::Fitness,
        SelectorKind::Random(rc.seed),
        SelectorKind::Greedy,
    ]
}

const STAGE_APP: PaperApp = PaperApp::Mg;

/// Cell handles for the stage cross-product ablation: the Linux baseline
/// plus one composed [`StackSpec`] cell per estimator × selector × placer
/// combination.
#[derive(Debug)]
pub struct StageCells {
    linux: CellId,
    combos: Vec<(StackSpec, CellId)>,
}

/// Declare the stage cross-product on the set-C MG workload. Every cell
/// is a [`PolicyKind::Stack`], so this sweep exercises exactly the same
/// composition path as the `--policy` CLI grammar.
pub fn plan_stages(plan: &mut Plan, rc: &RunnerConfig) -> StageCells {
    let spec = Fig2Set::C.spec(STAGE_APP);
    let linux = plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, rc));
    let mut combos = Vec::new();
    for est in STAGE_ESTIMATORS {
        for sel in stage_selectors(rc) {
            for placer in STAGE_PLACERS {
                let stack = StackSpec {
                    estimator: est,
                    selector: sel,
                    placer,
                    ..StackSpec::default()
                };
                let id = plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Stack(stack), rc));
                combos.push((stack, id));
            }
        }
    }
    StageCells { linux, combos }
}

/// Fold the stage cross-product: one row per composed stack, reporting
/// its improvement over the Linux baseline.
pub fn fold_stages(cells: &StageCells, executed: &Executed) -> FigureSummary {
    let linux = executed.get(cells.linux).mean_turnaround_us;
    let rows = cells
        .combos
        .iter()
        .map(|&(stack, id)| ExperimentRow {
            app: stack.label(),
            values: vec![(
                format!("{} impr %", STAGE_APP.name()),
                improvement_pct(linux, executed.get(id).mean_turnaround_us),
            )],
        })
        .collect();
    FigureSummary {
        id: "ablate-stages".into(),
        title: "Set C (MG): estimator x selector x placer cross-product".into(),
        rows,
    }
}

/// Stage cross-product ablation: every estimator × selector × placer
/// combination of the policy pipeline, composed through [`StackSpec`]
/// exactly as the `--policy` CLI flag composes them, against the Linux
/// baseline on the set-C MG workload.
pub fn ablate_stages(rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_stages(plan, rc), fold_stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_distance_criterion_grows_with_width() {
        // Pure analytic part (fast): the §4 tradeoff direction.
        let mut burst = TwoStateBurst::raytrace(10.65, 0.82, 3);
        let trace: Vec<f64> = (0..600)
            .map(|i| burst.demand_at(0.0, i * 100_000).rate)
            .collect();
        let d1 = MovingWindow::mean_relative_distance(1, &trace).unwrap();
        let d5 = MovingWindow::mean_relative_distance(5, &trace).unwrap();
        let d15 = MovingWindow::mean_relative_distance(15, &trace).unwrap();
        assert!(d1 <= d5 && d5 <= d15, "{d1} {d5} {d15}");
        // The paper's 5-sample choice keeps the distance moderate (the
        // text cites ~5 %; our synthetic bursts are of the same order).
        assert!(d5 < 0.60, "5-sample distance {d5}");
    }

    #[test]
    fn sweeps_declare_one_baseline_cell_per_app() {
        // The old serial loops re-ran Linux per sweep point; the job
        // graph collapses those to one cell per (spec, config).
        let rc = RunnerConfig::quick();
        let mut plan = Plan::new();
        plan_window(&mut plan, &rc);
        assert_eq!(
            plan.len(),
            WINDOW_APPS.len() * (1 + WINDOW_SWEEP.len()),
            "window sweep: one Linux cell per app"
        );
        let before = plan.len();
        plan_quantum(&mut plan, &rc);
        assert_eq!(
            plan.len() - before,
            QUANTUM_APPS.len() * (1 + QUANTUM_SWEEP.len()),
            "quantum sweep: one Linux cell per app"
        );
    }

    #[test]
    fn stage_cross_product_declares_every_combo_once() {
        let rc = RunnerConfig::quick();
        let mut plan = Plan::new();
        let cells = plan_stages(&mut plan, &rc);
        // One Linux baseline + the full estimator × selector × placer
        // cross-product, each a distinct cell with a distinct label.
        assert_eq!(
            plan.len(),
            1 + STAGE_ESTIMATORS.len() * stage_selectors(&rc).len() * STAGE_PLACERS.len()
        );
        let labels: std::collections::BTreeSet<String> =
            cells.combos.iter().map(|(s, _)| s.label()).collect();
        assert_eq!(labels.len(), cells.combos.len(), "labels must be distinct");
    }
}
