//! Experiment harness: regenerates every figure of the paper.
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `fig1a` | Fig. 1A — cumulative bus transaction rates, 4 configurations × 11 apps |
//! | `fig1b` | Fig. 1B — slowdowns under multiprogrammed bus pressure |
//! | `fig2a` | Fig. 2A — turnaround improvement %, set A (2×app + 4×BBMA) |
//! | `fig2b` | Fig. 2B — set B (2×app + 4×nBBMA) |
//! | `fig2c` | Fig. 2C — set C (2×app + 2×BBMA + 2×nBBMA) |
//! | `summary` | §5 — per-set max/average improvements |
//! | `ablate-window` | §4 — window-length tradeoff behind the 5-sample choice |
//! | `ablate-quantum` | §5 — quantum-length sensitivity (100 vs 200 ms and beyond) |
//! | `ablate-fitness` | design ablation — fitness vs round-robin/random/greedy gangs |
//! | `ablate-smt` | §6 future work — the same policies with Hyperthreading enabled |
//! | `ablate-stages` | pipeline ablation — estimator × selector × placer cross-product |
//! | `dynamic` | open-system extension — staggered job arrivals |
//! | `open` | open-system managerd serve — turnaround tails (p50/p99/p999), shed rate, manager overhead vs offered load |
//! | `robustness` | random job populations — win-rate of each policy over Linux |
//! | `topo` | DESIGN §16 — socket-aware placers on 1/2/4-socket shapes, per-level bus utilisation |
//! | `regret` | DESIGN §17 — presets + sampled stacks ranked by regret vs the offline-optimal oracle |
//! | `baselines` | Linux 2.4-like vs O(1)-like vs the policies vs model-driven |
//! | `validate` | the reproduction gate: every EXPERIMENTS.md claim, PASS/FAIL |
//! | `variance` | seed-sensitivity of Fig. 2B (the error bars the paper lacks) |
//!
//! Each function returns a [`busbw_metrics::FigureSummary`]; the
//! `experiments` binary renders them as aligned text + CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod audit;
pub mod baselines;
pub mod cache;
pub mod dynamic;
pub mod fig1;
pub mod fig2;
pub mod jobgraph;
pub mod open;
pub mod policy;
pub mod pool;
pub mod regret;
pub mod robustness;
pub mod runner;
pub mod suite;
pub mod topo;
pub mod validate;
pub mod variance;

pub use ablate::{ablate_fitness, ablate_quantum, ablate_smt, ablate_stages, ablate_window};
pub use audit::{
    check_cell, check_cell_differential, fuzz_cell, mix_from_names, run_audit, shrink, AuditConfig,
    FuzzCell,
};
pub use baselines::baselines;
pub use cache::{RunCache, RunKey, RUN_SCHEMA_VERSION};
pub use dynamic::{dynamic_arrivals, staggered_run, staggered_turnaround};
pub use fig1::{fig1a, fig1a_traced, fig1b, fig1b_traced};
pub use fig2::{fig2, fig2_with_policies_traced, Fig2Set};
pub use jobgraph::{
    CellId, CellStats, Engine, ExecStats, Executed, Plan, PlanMark, RunRequest, RunShape,
};
pub use open::{
    fold_open, open_run, open_tail_latency, parse_arrivals, parse_duration, plan_open, OpenCells,
    OpenSpec, OpenStack,
};
pub use policy::{AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec};
pub use pool::{steal_map, StealStats};
pub use regret::{
    fold_regret, oracle_outcome, oracle_run, plan_regret, regret_mixes, regret_panel,
    sampled_stacks, OracleOutcome, RegretCells, REGRET_PRESETS, REGRET_SAMPLED_STACKS,
};
pub use robustness::robustness;
pub use runner::{
    collect_metrics, effective_workers, merge_traces, par_map, run_spec, run_spec_profiled,
    solo_turnaround_us, PolicyKind, RunCompletion, RunResult, RunnerConfig, TraceMode,
    UnfinishedApp,
};
pub use suite::{fold_suite, plan_suite, SuiteCells, SuiteFigure};
pub use topo::{fold_topo, plan_topo, topo_panel, TopoCells, TopoShape, TOPO_SHAPES};
pub use validate::{render as render_validation, validate, Claim};
pub use variance::fig2b_variance;
