//! The sweep-wide job graph: declare cells, execute once, fold figures.
//!
//! Every figure module declares the simulator runs it needs as
//! [`RunRequest`] *cells* on a shared [`Plan`]. Declaring is free and
//! deduplicating: two figures that need the same fully-resolved run (same
//! workload, policy, machine, seed, scale, hard cap, trace wiring) get
//! the same [`CellId`] and the run executes **once**. [`Engine::execute`]
//! then drains the deduplicated cell set through the content-addressed
//! [`RunCache`](crate::cache::RunCache) and the work-stealing pool
//! ([`steal_map`](crate::pool::steal_map)), and each figure folds its
//! rows from the [`Executed`] results by [`CellId`].
//!
//! Results are indexed, not streamed, so fold order — and therefore every
//! figure artifact — is byte-identical to the old per-figure serial
//! loops for any worker count and any cache state.

use std::collections::HashMap;
use std::sync::Arc;

use busbw_sim::{BatchSolver, MachineConfig, StepEvent};

/// Below this many pending Λ solves in a lockstep round, the batched
/// engine bypasses the [`BatchSolver`] and calls
/// [`busbw_sim::solve_lambda`] directly: the SoA stream's content hashing
/// and memo upkeep only pay for themselves once enough cells share the
/// round (measured crossover ≈ a handful of lanes; small plans like the
/// four-run tick benchmark were paying the full round-trip for nothing).
/// Either path produces the same bits — a solver lane reproduces
/// `solve_lambda` exactly.
const ADAPTIVE_BATCH_MIN_LANES: usize = 8;
use busbw_workloads::mix::WorkloadSpec;
use busbw_workloads::paper::PaperApp;

use crate::cache::{
    encode_machine, encode_policy, encode_trace_mode, encode_workload, Enc, RunCache, RunKey,
    RUN_SCHEMA_VERSION,
};
use crate::pool::steal_map;
use crate::runner::{
    finalize_run, prepare_run, run_spec, PolicyKind, PreparedRun, RunResult, RunnerConfig,
    TraceMode,
};

/// Handle to one declared cell of a [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId(usize);

/// The shape of one simulator run.
#[derive(Debug, Clone)]
pub enum RunShape {
    /// A closed-system run: everything arrives at t = 0
    /// ([`run_spec`] semantics).
    Spec(WorkloadSpec),
    /// The open-system staggered-arrival run of the `dynamic` figure:
    /// microbenchmark background at t = 0, two instances of `app` at
    /// `stagger_us` and `2 × stagger_us`
    /// ([`crate::dynamic::staggered_run`] semantics).
    Staggered {
        /// The measured paper application.
        app: PaperApp,
        /// Arrival offset of the first instance, µs.
        stagger_us: u64,
    },
    /// A fully open managerd serve: live arrivals through the real
    /// `core::manager` stack ([`crate::open::open_run`] semantics).
    Open(crate::open::OpenSpec),
    /// An offline-optimal oracle run: branch-and-bound search for the
    /// best gang schedule of a closed workload, seeded by the preset
    /// heuristics ([`crate::regret::oracle_run`] semantics).
    Oracle(WorkloadSpec),
}

/// One fully-resolved run: shape + policy + every [`RunnerConfig`] field
/// that can change the numbers. `workers` is deliberately absent — it
/// only affects wall-clock time, never results.
#[derive(Debug, Clone)]
pub struct RunRequest {
    shape: RunShape,
    policy: PolicyKind,
    machine: MachineConfig,
    scale: f64,
    seed: u64,
    trace: TraceMode,
    hard_cap_factor: f64,
}

impl RunRequest {
    /// A closed-system cell: `spec` under `policy` with `rc`'s machine,
    /// scale, seed, trace wiring, and hard cap.
    pub fn spec(spec: WorkloadSpec, policy: PolicyKind, rc: &RunnerConfig) -> Self {
        Self {
            shape: RunShape::Spec(spec),
            policy,
            machine: rc.machine,
            scale: rc.scale,
            seed: rc.seed,
            trace: rc.trace,
            hard_cap_factor: rc.hard_cap_factor,
        }
    }

    /// A staggered-arrival cell (the `dynamic` figure).
    pub fn staggered(
        app: PaperApp,
        stagger_us: u64,
        policy: PolicyKind,
        rc: &RunnerConfig,
    ) -> Self {
        Self {
            shape: RunShape::Staggered { app, stagger_us },
            policy,
            machine: rc.machine,
            scale: rc.scale,
            seed: rc.seed,
            trace: rc.trace,
            hard_cap_factor: rc.hard_cap_factor,
        }
    }

    /// An open managerd-serve cell (the `open` figure). The estimator
    /// stack lives inside [`crate::open::OpenSpec`], so the simulator
    /// policy slot is pinned to the Linux baseline — it never runs and
    /// exists only to keep the request shape uniform.
    pub fn open(spec: crate::open::OpenSpec, rc: &RunnerConfig) -> Self {
        Self {
            shape: RunShape::Open(spec),
            policy: PolicyKind::Linux,
            machine: rc.machine,
            scale: rc.scale,
            seed: rc.seed,
            trace: rc.trace,
            hard_cap_factor: rc.hard_cap_factor,
        }
    }

    /// An offline-optimal oracle cell (the `regret` figure). The search
    /// owns policy selection end to end, so the policy slot is pinned to
    /// [`PolicyKind::OfflineOptimal`] — the request stays uniform and the
    /// key still separates oracle cells from every heuristic on the same
    /// workload.
    pub fn oracle(spec: WorkloadSpec, rc: &RunnerConfig) -> Self {
        Self {
            shape: RunShape::Oracle(spec),
            policy: PolicyKind::OfflineOptimal,
            machine: rc.machine,
            scale: rc.scale,
            seed: rc.seed,
            trace: rc.trace,
            hard_cap_factor: rc.hard_cap_factor,
        }
    }

    /// The content-addressed identity of this run: FNV-1a over the
    /// canonical encoding of every field above, salted with
    /// [`RUN_SCHEMA_VERSION`].
    pub fn key(&self) -> RunKey {
        let mut e = Enc::new();
        e.u32(RUN_SCHEMA_VERSION);
        match &self.shape {
            RunShape::Spec(spec) => {
                e.u8(0);
                encode_workload(&mut e, spec);
            }
            RunShape::Staggered { app, stagger_us } => {
                e.u8(1);
                e.str(app.name());
                e.u64(*stagger_us);
            }
            RunShape::Open(spec) => {
                e.u8(2);
                spec.encode(&mut e);
            }
            RunShape::Oracle(spec) => {
                e.u8(3);
                encode_workload(&mut e, spec);
            }
        }
        encode_policy(&mut e, &self.policy);
        encode_machine(&mut e, &self.machine);
        e.f64(self.scale);
        e.u64(self.seed);
        encode_trace_mode(&mut e, self.trace);
        e.f64(self.hard_cap_factor);
        RunKey::from_encoded(e.into_bytes())
    }

    /// The [`RunnerConfig`] this cell resolves to (single-run, so
    /// `workers` is irrelevant and pinned to 1; `exec` is not part of the
    /// cell identity because both modes are bit-identical).
    fn runner_config(&self) -> RunnerConfig {
        RunnerConfig {
            machine: self.machine,
            scale: self.scale,
            seed: self.seed,
            workers: 1,
            trace: self.trace,
            hard_cap_factor: self.hard_cap_factor,
            ..RunnerConfig::default()
        }
    }

    /// Execute the run. Deterministic: same request, bit-identical
    /// [`RunResult`].
    pub fn execute(&self) -> RunResult {
        let rc = self.runner_config();
        match &self.shape {
            RunShape::Spec(spec) => run_spec(spec, self.policy, &rc),
            RunShape::Staggered { app, stagger_us } => {
                crate::dynamic::staggered_run(*app, self.policy, *stagger_us, &rc)
            }
            RunShape::Open(spec) => crate::open::open_run(spec, &rc),
            RunShape::Oracle(spec) => crate::regret::oracle_run(spec, &rc),
        }
    }
}

/// Position marker into a [`Plan`], for per-figure declare/dedup deltas.
#[derive(Debug, Clone, Copy)]
pub struct PlanMark {
    declared: u64,
    unique: usize,
}

/// Per-figure slice of a plan's declare/dedup accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellStats {
    /// Cells the figure declared (including duplicates).
    pub declared: u64,
    /// Cells that were new to the plan.
    pub unique: u64,
}

impl CellStats {
    /// Declared cells that were already in the plan.
    pub fn deduped(&self) -> u64 {
        self.declared - self.unique
    }
}

/// An ordered, deduplicated set of run cells.
#[derive(Debug, Default)]
pub struct Plan {
    requests: Vec<RunRequest>,
    keys: Vec<RunKey>,
    index: HashMap<RunKey, usize>,
    declared: u64,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare one cell. If an identical cell (by [`RunRequest::key`])
    /// was already declared — by this figure or any other sharing the
    /// plan — the existing [`CellId`] is returned and nothing is added.
    pub fn cell(&mut self, req: RunRequest) -> CellId {
        self.declared += 1;
        let key = req.key();
        if let Some(&i) = self.index.get(&key) {
            return CellId(i);
        }
        let i = self.requests.len();
        self.index.insert(key.clone(), i);
        self.requests.push(req);
        self.keys.push(key);
        CellId(i)
    }

    /// Number of unique cells.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when no cell has been declared.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total `cell()` calls, duplicates included.
    pub fn declared(&self) -> u64 {
        self.declared
    }

    /// Current position, for [`Plan::since`].
    pub fn checkpoint(&self) -> PlanMark {
        PlanMark {
            declared: self.declared,
            unique: self.requests.len(),
        }
    }

    /// Declare/dedup deltas since `mark` — the per-figure numbers
    /// recorded in each figure's manifest.
    pub fn since(&self, mark: PlanMark) -> CellStats {
        CellStats {
            declared: self.declared - mark.declared,
            unique: (self.requests.len() - mark.unique) as u64,
        }
    }

    /// The unique cells declared since `mark`, as a [`CellId`] index
    /// range. Cells deduped against an earlier figure are attributed to
    /// the figure that first declared them, not to this range.
    pub fn range_since(&self, mark: PlanMark) -> std::ops::Range<usize> {
        mark.unique..self.requests.len()
    }
}

/// Executed results of a plan, indexed by [`CellId`].
#[derive(Debug)]
pub struct Executed {
    results: Vec<Arc<RunResult>>,
}

impl Executed {
    /// The result of one cell.
    pub fn get(&self, id: CellId) -> &RunResult {
        &self.results[id.0]
    }

    /// Shared handle to one cell's result.
    pub fn get_arc(&self, id: CellId) -> Arc<RunResult> {
        Arc::clone(&self.results[id.0])
    }

    /// Merge the per-stage wall-time histograms of every cell in `range`
    /// (a [`Plan::range_since`] slice). Cells whose scheduler is not a
    /// policy stack contribute nothing; an all-monolith range merges to
    /// a timing set with zero calls.
    pub fn merged_stage_timings(&self, range: std::ops::Range<usize>) -> busbw_sim::StageTimings {
        let mut merged = busbw_sim::StageTimings::default();
        for r in &self.results[range] {
            if let Some(t) = &r.stage_timings {
                merged.merge(t);
            }
        }
        merged
    }
}

/// Cumulative accounting of everything an [`Engine`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cells declared on executed plans, duplicates included.
    pub declared: u64,
    /// Unique cells after plan-level dedup.
    pub unique: u64,
    /// Cells served by the run cache (memory or disk tier).
    pub cache_hits: u64,
    /// Cells the cache could not serve.
    pub cache_misses: u64,
    /// Damaged disk entries rejected by the cache decoder (each one also
    /// counts as a miss).
    pub cache_corrupt: u64,
    /// Runs actually executed by the pool.
    pub executed: u64,
    /// Work-stealing claims across pool chunks.
    pub steals: u64,
}

impl ExecStats {
    /// Declared cells eliminated by plan-level dedup.
    pub fn deduped(&self) -> u64 {
        self.declared - self.unique
    }

    /// Cache hit rate over unique cells, in `[0, 1]` (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Stats accumulated since an earlier snapshot of the same engine
    /// (e.g. the warm pass of `bench sweep`).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            declared: self.declared - earlier.declared,
            unique: self.unique - earlier.unique,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_corrupt: self.cache_corrupt - earlier.cache_corrupt,
            executed: self.executed - earlier.executed,
            steals: self.steals - earlier.steals,
        }
    }

    /// Record these stats into a metrics registry under the engine's
    /// counter namespace (`cells.*`, `cache.*`, `pool.*`).
    pub fn record(&self, reg: &mut busbw_metrics::MetricsRegistry) {
        reg.inc_counter("cells.declared", self.declared);
        reg.inc_counter("cells.deduped", self.deduped());
        reg.inc_counter("cache.hits", self.cache_hits);
        reg.inc_counter("cache.misses", self.cache_misses);
        reg.inc_counter("cache.corrupt", self.cache_corrupt);
        reg.inc_counter("pool.executed", self.executed);
        reg.inc_counter("pool.steals", self.steals);
        reg.set_gauge("cache.hit_rate", self.hit_rate());
    }
}

/// The execution engine: a [`RunCache`] plus the work-stealing pool.
///
/// One engine lives for a whole `experiments` invocation, so its
/// in-memory cache deduplicates across successive [`Engine::execute`]
/// calls too (e.g. a figure re-planned by `trace <fig>` after `all`).
#[derive(Debug)]
pub struct Engine {
    cache: RunCache,
    stats: ExecStats,
}

impl Engine {
    /// An engine over the given cache.
    pub fn new(cache: RunCache) -> Self {
        Self {
            cache,
            stats: ExecStats::default(),
        }
    }

    /// An engine with a fresh memory-only cache — what the legacy
    /// per-figure entry points use.
    pub fn ephemeral() -> Self {
        Self::new(RunCache::new(None, true))
    }

    /// Execute every cell of `plan` not already served by the cache, on
    /// up to `workers` threads with work stealing, and return the results
    /// indexed by [`CellId`].
    pub fn execute(&mut self, plan: &Plan, workers: usize) -> Executed {
        let mut slots: Vec<Option<Arc<RunResult>>> = vec![None; plan.requests.len()];
        let mut missing: Vec<usize> = Vec::new();
        for (i, key) in plan.keys.iter().enumerate() {
            match self.cache.get(key) {
                Some((r, _tier)) => {
                    self.stats.cache_hits += 1;
                    slots[i] = Some(r);
                }
                None => {
                    self.stats.cache_misses += 1;
                    missing.push(i);
                }
            }
        }
        let (fresh, steal) = steal_map(&missing, workers, |&i| plan.requests[i].execute());
        self.stats.executed += steal.executed;
        self.stats.steals += steal.steals;
        for (&i, r) in missing.iter().zip(fresh) {
            let arc = Arc::new(r);
            self.cache.put(plan.keys[i].clone(), Arc::clone(&arc));
            slots[i] = Some(arc);
        }
        self.stats.declared += plan.declared;
        self.stats.unique += plan.requests.len() as u64;
        self.stats.cache_corrupt = self.cache.corrupt_count();
        Executed {
            results: slots
                .into_iter()
                .map(|s| s.expect("every cell resolved"))
                .collect(),
        }
    }

    /// [`Engine::execute`] with every cache-missing [`RunShape::Spec`]
    /// cell driven in lockstep through the machine's stepped API
    /// ([`busbw_sim::Machine::run_begin`]) over one shared
    /// [`BatchSolver`]: each round collects the pending Λ solves of all
    /// live runs into SoA lanes, solves them in a single Newton stream
    /// (sharing the cross-batch warm-start memo between cells), and
    /// resumes each run with its lane's λ. Results are bit-identical to
    /// [`Engine::execute`] — a solver lane reproduces
    /// [`busbw_sim::solve_lambda`] exactly, and lockstep interleaving
    /// never reorders work *within* a run. Staggered cells (the `dynamic`
    /// figure) fall back to the per-cell path on the stealing pool.
    pub fn execute_batched(&mut self, plan: &Plan, workers: usize) -> Executed {
        struct LiveRun {
            slot: usize,
            prep: PreparedRun,
            cur: busbw_sim::RunCursor,
            out: Option<busbw_sim::RunOutcome>,
        }

        let mut slots: Vec<Option<Arc<RunResult>>> = vec![None; plan.requests.len()];
        let mut spec_missing: Vec<usize> = Vec::new();
        let mut other_missing: Vec<usize> = Vec::new();
        for (i, key) in plan.keys.iter().enumerate() {
            match self.cache.get(key) {
                Some((r, _tier)) => {
                    self.stats.cache_hits += 1;
                    slots[i] = Some(r);
                }
                None => {
                    self.stats.cache_misses += 1;
                    match plan.requests[i].shape {
                        RunShape::Spec(_) => spec_missing.push(i),
                        RunShape::Staggered { .. } | RunShape::Open(_) | RunShape::Oracle(_) => {
                            other_missing.push(i)
                        }
                    }
                }
            }
        }

        let mut live: Vec<LiveRun> = spec_missing
            .iter()
            .map(|&i| {
                let req = &plan.requests[i];
                let RunShape::Spec(spec) = &req.shape else {
                    unreachable!("spec_missing holds only Spec cells")
                };
                let mut prep = prepare_run(spec, req.policy, &req.runner_config());
                let stop = prep.stop_condition();
                let PreparedRun {
                    ref mut machine,
                    ref mut sched,
                    ..
                } = prep;
                let cur = machine.run_begin(&mut **sched, stop, false);
                LiveRun {
                    slot: i,
                    prep,
                    cur,
                    out: None,
                }
            })
            .collect();

        let mut solver = BatchSolver::new();
        let mut pending: Vec<(usize, busbw_sim::SolveJob)> = Vec::new();
        let mut lanes: Vec<(usize, usize)> = Vec::new();
        loop {
            pending.clear();
            for (j, run) in live.iter_mut().enumerate() {
                if run.out.is_some() {
                    continue;
                }
                let LiveRun { prep, cur, out, .. } = run;
                let PreparedRun {
                    ref mut machine,
                    ref mut sched,
                    ..
                } = prep;
                match machine.run_step(&mut **sched, cur, None) {
                    StepEvent::NeedSolve(job) => pending.push((j, job)),
                    StepEvent::Done(o) => *out = Some(o),
                }
            }
            if pending.is_empty() {
                break; // every live run reached Done
            }
            if pending.len() < ADAPTIVE_BATCH_MIN_LANES {
                // Adaptive cutover: with only a few pending solves the SoA
                // machinery (content hashing, memo upkeep, lane bookkeeping)
                // costs more per solve than it amortizes, so solve inline.
                // `solve_lambda` is the reference the batch lanes reproduce,
                // so either path yields the same bits.
                for &(j, job) in &pending {
                    let run = &mut live[j];
                    let lambda =
                        busbw_sim::solve_lambda(run.cur.pending_requests(), job.cap, job.warm);
                    run.prep
                        .machine
                        .run_step_complete(&mut run.cur, lambda, None);
                }
                continue;
            }
            solver.clear(); // keeps the cross-batch warm-start memo
            lanes.clear();
            for &(j, job) in &pending {
                let reqs = live[j].cur.pending_requests();
                lanes.push((j, solver.push_lane(reqs, job)));
            }
            solver.solve_all();
            for &(j, lane) in &lanes {
                let run = &mut live[j];
                run.prep
                    .machine
                    .run_step_complete(&mut run.cur, solver.lambda(lane), None);
            }
        }
        self.stats.executed += live.len() as u64;
        for run in live {
            let out = run.out.expect("lockstep loop drains every run");
            let arc = Arc::new(finalize_run(run.prep, out));
            self.cache
                .put(plan.keys[run.slot].clone(), Arc::clone(&arc));
            slots[run.slot] = Some(arc);
        }

        let (fresh, steal) = steal_map(&other_missing, workers, |&i| plan.requests[i].execute());
        self.stats.executed += steal.executed;
        self.stats.steals += steal.steals;
        for (&i, r) in other_missing.iter().zip(fresh) {
            let arc = Arc::new(r);
            self.cache.put(plan.keys[i].clone(), Arc::clone(&arc));
            slots[i] = Some(arc);
        }

        self.stats.declared += plan.declared;
        self.stats.unique += plan.requests.len() as u64;
        self.stats.cache_corrupt = self.cache.corrupt_count();
        Executed {
            results: slots
                .into_iter()
                .map(|s| s.expect("every cell resolved"))
                .collect(),
        }
    }

    /// Everything this engine has done so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }
}

/// Plan, execute, and fold one figure on a throwaway engine — the shared
/// implementation of the legacy per-figure entry points.
pub fn run_figure<C, R>(
    rc: &RunnerConfig,
    declare: impl FnOnce(&mut Plan) -> C,
    fold: impl FnOnce(&C, &Executed) -> R,
) -> R {
    let mut plan = Plan::new();
    let cells = declare(&mut plan);
    let executed = Engine::ephemeral().execute(&plan, crate::runner::effective_workers(rc));
    fold(&cells, &executed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_workloads::mix::fig2_set_b;

    fn quick() -> RunnerConfig {
        RunnerConfig {
            scale: 0.05,
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn identical_cells_dedup_to_one_id() {
        let rc = quick();
        let mut plan = Plan::new();
        let a = plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Cg),
            PolicyKind::Linux,
            &rc,
        ));
        let b = plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Cg),
            PolicyKind::Linux,
            &rc,
        ));
        let c = plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Cg),
            PolicyKind::Window,
            &rc,
        ));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.declared(), 3);
    }

    #[test]
    fn engine_counts_hits_on_replayed_plans() {
        let rc = quick();
        let mut plan = Plan::new();
        let id = plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Volrend),
            PolicyKind::Linux,
            &rc,
        ));
        let mut engine = Engine::ephemeral();
        let first = engine.execute(&plan, 1);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 0);
        let second = engine.execute(&plan, 1);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.stats().executed, 1, "second pass served from cache");
        // Cache-served result is the same allocation, hence bit-identical.
        assert!(Arc::ptr_eq(&first.get_arc(id), &second.get_arc(id)));
    }

    #[test]
    fn batched_engine_is_bit_identical_to_serial_engine() {
        let rc = quick();
        let mut plan = Plan::new();
        let mut ids = Vec::new();
        for (app, policy) in [
            (PaperApp::Cg, PolicyKind::Linux),
            (PaperApp::Cg, PolicyKind::Window),
            (PaperApp::Volrend, PolicyKind::Latest),
            (PaperApp::Mg, PolicyKind::GreedyPack),
        ] {
            ids.push(plan.cell(RunRequest::spec(fig2_set_b(app), policy, &rc)));
        }
        // One staggered cell exercises the per-cell fallback path.
        ids.push(plan.cell(RunRequest::staggered(
            PaperApp::Cg,
            50_000,
            PolicyKind::Linux,
            &rc,
        )));
        let serial = Engine::ephemeral().execute(&plan, 1);
        let mut engine = Engine::ephemeral();
        let batched = engine.execute_batched(&plan, 1);
        assert_eq!(engine.stats().executed, plan.len() as u64);
        for &id in &ids {
            let (a, b) = (serial.get(id), batched.get(id));
            assert_eq!(a.turnarounds_us.len(), b.turnarounds_us.len());
            for (x, y) in a.turnarounds_us.iter().zip(&b.turnarounds_us) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.workload_rate.to_bits(), b.workload_rate.to_bits());
            assert_eq!(a.ticks, b.ticks);
            assert_eq!(a.sim_elapsed_us, b.sim_elapsed_us);
            assert_eq!(a.tick_dt_hist, b.tick_dt_hist);
        }
        // A re-execute in either mode is a pure cache hit.
        let again = engine.execute_batched(&plan, 1);
        assert!(Arc::ptr_eq(
            &batched.get_arc(ids[0]),
            &again.get_arc(ids[0])
        ));
    }

    #[test]
    fn per_figure_marks_slice_the_accounting() {
        let rc = quick();
        let mut plan = Plan::new();
        let m0 = plan.checkpoint();
        plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Cg),
            PolicyKind::Linux,
            &rc,
        ));
        let fig1 = plan.since(m0);
        assert_eq!(
            fig1,
            CellStats {
                declared: 1,
                unique: 1
            }
        );
        let m1 = plan.checkpoint();
        // A second "figure" re-declares the same cell plus one new one.
        plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Cg),
            PolicyKind::Linux,
            &rc,
        ));
        plan.cell(RunRequest::spec(
            fig2_set_b(PaperApp::Cg),
            PolicyKind::Latest,
            &rc,
        ));
        let fig2 = plan.since(m1);
        assert_eq!(
            fig2,
            CellStats {
                declared: 2,
                unique: 1
            }
        );
        assert_eq!(fig2.deduped(), 1);
    }

    #[test]
    fn run_key_separates_every_tunable() {
        let rc = quick();
        let base = RunRequest::spec(fig2_set_b(PaperApp::Cg), PolicyKind::Linux, &rc);
        let k = base.key();
        let variants = [
            RunRequest::spec(fig2_set_b(PaperApp::Mg), PolicyKind::Linux, &rc),
            RunRequest::spec(fig2_set_b(PaperApp::Cg), PolicyKind::Latest, &rc),
            RunRequest::spec(
                fig2_set_b(PaperApp::Cg),
                PolicyKind::Linux,
                &RunnerConfig { seed: 43, ..rc },
            ),
            RunRequest::spec(
                fig2_set_b(PaperApp::Cg),
                PolicyKind::Linux,
                &RunnerConfig { scale: 0.06, ..rc },
            ),
            RunRequest::spec(
                fig2_set_b(PaperApp::Cg),
                PolicyKind::Linux,
                &RunnerConfig {
                    hard_cap_factor: 50.0,
                    ..rc
                },
            ),
            RunRequest::spec(
                fig2_set_b(PaperApp::Cg),
                PolicyKind::Linux,
                &RunnerConfig {
                    trace: TraceMode::Collect,
                    ..rc
                },
            ),
            RunRequest::spec(
                fig2_set_b(PaperApp::Cg),
                PolicyKind::Linux,
                &RunnerConfig {
                    machine: busbw_sim::MachineConfig {
                        topology: busbw_sim::TopologyConfig::multi(2),
                        ..rc.machine
                    },
                    ..rc
                },
            ),
            RunRequest::staggered(PaperApp::Cg, 100_000, PolicyKind::Linux, &rc),
            RunRequest::oracle(fig2_set_b(PaperApp::Cg), &rc),
            RunRequest::open(
                crate::open::OpenSpec {
                    arrivals: busbw_managerd::ArrivalProcess::Poisson { rate_per_s: 30.0 },
                    duration_us: 10_000_000,
                    stack: crate::open::OpenStack::Latest,
                    queue_capacity: 8,
                },
                &rc,
            ),
        ];
        for v in &variants {
            assert_ne!(v.key(), k, "{v:?} must not collide with the base key");
        }
        // But workers never enters the key: same request, same key.
        assert_eq!(base.key(), k);
    }

    mod props {
        use super::*;
        use crate::policy::{AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec};
        use proptest::prelude::*;

        fn arb_stack() -> impl Strategy<Value = StackSpec> {
            (
                (0usize..5, 1usize..16),
                0usize..5,
                (0usize..5, 0u64..(1 << 48)),
                0usize..6,
                1u64..1_000_000,
            )
                .prop_map(|((e, n), a, (s, seed), p, quantum_us)| StackSpec {
                    estimator: match e {
                        0 => EstimatorKind::Latest,
                        1 => EstimatorKind::Window(n),
                        2 => EstimatorKind::Ewma(n),
                        3 => EstimatorKind::Raw,
                        _ => EstimatorKind::Null,
                    },
                    admission: [
                        AdmissionKind::Head,
                        AdmissionKind::StrictHead,
                        AdmissionKind::Fcfs,
                        AdmissionKind::Widest,
                        AdmissionKind::Open,
                    ][a],
                    selector: match s {
                        0 => SelectorKind::Fitness,
                        1 => SelectorKind::Random(seed),
                        2 => SelectorKind::Greedy,
                        3 => SelectorKind::Lookahead,
                        _ => SelectorKind::None,
                    },
                    placer: [
                        PlacerKind::Packed,
                        PlacerKind::Scatter,
                        PlacerKind::Smt,
                        PlacerKind::PackLocal,
                        PlacerKind::SpreadSockets,
                        PlacerKind::Migrate,
                    ][p],
                    quantum_us,
                })
        }

        proptest! {
            /// Substituting any stage (or the quantum) of a composed
            /// stack changes the run key; identical stacks collide.
            #[test]
            fn stage_substitution_changes_the_run_key(a in arb_stack(), b in arb_stack()) {
                let rc = quick();
                let key = |s: StackSpec| {
                    RunRequest::spec(fig2_set_b(PaperApp::Cg), PolicyKind::Stack(s), &rc).key()
                };
                if a == b {
                    prop_assert_eq!(key(a), key(b));
                } else {
                    prop_assert_ne!(key(a), key(b));
                }
            }
        }
    }
}
