//! Robustness over random job populations.
//!
//! §1 claims the scheduler "is effective with applications of varying
//! bandwidth requirements, from very low to close to the limit of
//! saturation". This experiment stress-tests that claim beyond the
//! hand-picked §5 mixes: draw many random workloads (random rates,
//! widths, burstiness — see [`busbw_workloads::synth`]), run each under
//! every scheduler, and report the distribution of improvements over
//! Linux.

use busbw_metrics::{improvement_pct, mean, ExperimentRow, FigureSummary};
use busbw_sim::StopCondition;
use busbw_workloads::mix::{build_machine, WorkloadSpec};
use busbw_workloads::synth::{generate, SynthConfig};

use crate::runner::{PolicyKind, RunnerConfig};

/// Mean turnaround (µs) of all finite jobs of `spec` under `policy`.
fn run_random(spec: &WorkloadSpec, policy: PolicyKind, rc: &RunnerConfig) -> f64 {
    let built = build_machine(spec, rc.machine, rc.seed);
    let mut machine = built.machine;
    machine
        .set_hard_cap_us((busbw_workloads::paper::DEFAULT_SOLO_WORK_US * rc.scale * 200.0) as u64);
    let mut sched = policy.build();
    let out = machine.run(
        &mut *sched,
        StopCondition::AppsFinished(built.measured_ids.clone()),
    );
    assert!(out.condition_met, "random workload hit the hard cap");
    let ts: Vec<f64> = built
        .measured_ids
        .iter()
        .map(|&id| machine.turnaround_us(id).unwrap() as f64)
        .collect();
    mean(&ts).expect("synth workloads always have measured jobs")
}

/// Build a measured workload from a random population.
fn random_spec(trial: u64, jobs: usize, rc: &RunnerConfig) -> WorkloadSpec {
    let cfg = SynthConfig {
        jobs,
        work_us: busbw_workloads::paper::DEFAULT_SOLO_WORK_US * rc.scale,
        ..SynthConfig::default()
    };
    let apps = generate(&cfg, rc.seed.wrapping_add(trial * 1009));
    let measured = (0..apps.len()).collect();
    WorkloadSpec {
        name: format!("random#{trial}"),
        apps,
        measured,
    }
}

/// The robustness figure: per trial, improvement % of each policy over
/// Linux; plus an aggregate row.
pub fn robustness(trials: u64, jobs: usize, rc: &RunnerConfig) -> FigureSummary {
    assert!(trials >= 1);
    let policies = [
        PolicyKind::Latest,
        PolicyKind::Window,
        PolicyKind::ModelDriven,
    ];
    let mut rows = Vec::new();
    let mut sums: Vec<f64> = vec![0.0; policies.len()];
    let mut wins: Vec<u32> = vec![0; policies.len()];
    for trial in 0..trials {
        let spec = random_spec(trial, jobs, rc);
        let linux = run_random(&spec, PolicyKind::Linux, rc);
        let mut values = Vec::new();
        for (i, &p) in policies.iter().enumerate() {
            let t = run_random(&spec, p, rc);
            let imp = improvement_pct(linux, t);
            sums[i] += imp;
            if imp > 0.0 {
                wins[i] += 1;
            }
            values.push((p.label(), imp));
        }
        rows.push(ExperimentRow {
            app: format!("trial {trial}"),
            values,
        });
    }
    rows.push(ExperimentRow {
        app: "WIN RATE %".into(),
        values: policies
            .iter()
            .enumerate()
            .map(|(i, p)| (p.label(), 100.0 * wins[i] as f64 / trials as f64))
            .collect(),
    });
    FigureSummary {
        id: "robustness".into(),
        title: format!("{trials} random {jobs}-job workloads — improvement % over Linux"),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workloads_complete_under_all_policies() {
        let rc = RunnerConfig::quick();
        let fig = robustness(2, 4, &rc);
        // 2 trials + the win-rate row.
        assert_eq!(fig.rows.len(), 3);
        for row in &fig.rows {
            for (_, v) in &row.values {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn policies_win_most_random_workloads() {
        let rc = RunnerConfig::quick();
        let fig = robustness(5, 5, &rc);
        let win_rate = fig
            .rows
            .last()
            .unwrap()
            .get("Window")
            .expect("win-rate row");
        assert!(
            win_rate >= 60.0,
            "Window should beat Linux on most random workloads: {win_rate}%"
        );
    }
}
