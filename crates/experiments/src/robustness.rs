//! Robustness over random job populations.
//!
//! §1 claims the scheduler "is effective with applications of varying
//! bandwidth requirements, from very low to close to the limit of
//! saturation". This experiment stress-tests that claim beyond the
//! hand-picked §5 mixes: draw many random workloads (random rates,
//! widths, burstiness — see [`busbw_workloads::synth`]), run each under
//! every scheduler, and report the distribution of improvements over
//! Linux.
//!
//! The trials are declared as job-graph cells — `trials × (1 + policies)`
//! of them — so the whole experiment parallelizes across `--workers`
//! instead of looping serially. The synthetic specs carry their work
//! volume pre-scaled (the generator bakes `scale` into `work_us`), so the
//! cells resolve with `scale = 1` and the ×200 trial hard cap folded into
//! `hard_cap_factor`.

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_workloads::mix::WorkloadSpec;
use busbw_workloads::synth::{generate, SynthConfig};

use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::runner::{PolicyKind, RunnerConfig};

const ROBUSTNESS_POLICIES: [PolicyKind; 3] = [
    PolicyKind::Latest,
    PolicyKind::Window,
    PolicyKind::ModelDriven,
];

/// Build a measured workload from a random population.
fn random_spec(trial: u64, jobs: usize, rc: &RunnerConfig) -> WorkloadSpec {
    let cfg = SynthConfig {
        jobs,
        work_us: busbw_workloads::paper::DEFAULT_SOLO_WORK_US * rc.scale,
        ..SynthConfig::default()
    };
    let apps = generate(&cfg, rc.seed.wrapping_add(trial * 1009));
    let measured = (0..apps.len()).collect();
    WorkloadSpec {
        name: format!("random#{trial}"),
        apps,
        measured,
    }
}

/// Cell handles for the robustness figure: per trial, the Linux baseline
/// then each policy.
#[derive(Debug)]
pub struct RobustnessCells {
    trials: u64,
    jobs: usize,
    cells: Vec<CellId>,
}

/// Declare the robustness trials. Each trial's spec is generated here
/// (deterministic per seed), and every run gets the robustness hard cap
/// (×200 of the scaled solo work — random mixes can be adversarial).
pub fn plan_robustness(
    plan: &mut Plan,
    trials: u64,
    jobs: usize,
    rc: &RunnerConfig,
) -> RobustnessCells {
    assert!(trials >= 1);
    // The synth specs are already scaled, so the cell runs at scale 1 with
    // the trial budget folded into the cap factor (scale × 200 of the
    // unscaled solo work = 200 × the scaled work volume).
    let cell_rc = RunnerConfig {
        scale: 1.0,
        hard_cap_factor: rc.scale * 200.0,
        ..*rc
    };
    let mut cells = Vec::new();
    for trial in 0..trials {
        let spec = random_spec(trial, jobs, rc);
        cells.push(plan.cell(RunRequest::spec(spec.clone(), PolicyKind::Linux, &cell_rc)));
        for p in ROBUSTNESS_POLICIES {
            cells.push(plan.cell(RunRequest::spec(spec.clone(), p, &cell_rc)));
        }
    }
    RobustnessCells {
        trials,
        jobs,
        cells,
    }
}

/// Mean turnaround of one cell, asserting the trial finished (a capped
/// random workload is a generator bug, not a data point).
fn trial_turnaround(executed: &Executed, id: CellId) -> f64 {
    let r = executed.get(id);
    assert!(
        r.completion.is_finished(),
        "random workload hit the hard cap"
    );
    r.mean_turnaround_us
}

/// Fold the robustness figure: per-trial improvements plus the win-rate
/// aggregate row.
pub fn fold_robustness(cells: &RobustnessCells, executed: &Executed) -> FigureSummary {
    let per_trial = 1 + ROBUSTNESS_POLICIES.len();
    let mut rows = Vec::new();
    let mut wins: Vec<u32> = vec![0; ROBUSTNESS_POLICIES.len()];
    for (trial, ids) in cells.cells.chunks_exact(per_trial).enumerate() {
        let linux = trial_turnaround(executed, ids[0]);
        let mut values = Vec::new();
        for (i, &p) in ROBUSTNESS_POLICIES.iter().enumerate() {
            let imp = improvement_pct(linux, trial_turnaround(executed, ids[i + 1]));
            if imp > 0.0 {
                wins[i] += 1;
            }
            values.push((p.label(), imp));
        }
        rows.push(ExperimentRow {
            app: format!("trial {trial}"),
            values,
        });
    }
    rows.push(ExperimentRow {
        app: "WIN RATE %".into(),
        values: ROBUSTNESS_POLICIES
            .iter()
            .enumerate()
            .map(|(i, p)| (p.label(), 100.0 * wins[i] as f64 / cells.trials as f64))
            .collect(),
    });
    FigureSummary {
        id: "robustness".into(),
        title: format!(
            "{} random {}-job workloads — improvement % over Linux",
            cells.trials, cells.jobs
        ),
        rows,
    }
}

/// The robustness figure: per trial, improvement % of each policy over
/// Linux; plus an aggregate row.
pub fn robustness(trials: u64, jobs: usize, rc: &RunnerConfig) -> FigureSummary {
    run_figure(
        rc,
        |plan| plan_robustness(plan, trials, jobs, rc),
        fold_robustness,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workloads_complete_under_all_policies() {
        let rc = RunnerConfig::quick();
        let fig = robustness(2, 4, &rc);
        // 2 trials + the win-rate row.
        assert_eq!(fig.rows.len(), 3);
        for row in &fig.rows {
            for (_, v) in &row.values {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn policies_win_most_random_workloads() {
        let rc = RunnerConfig::quick();
        let fig = robustness(5, 5, &rc);
        let win_rate = fig
            .rows
            .last()
            .unwrap()
            .get("Window")
            .expect("win-rate row");
        assert!(
            win_rate >= 60.0,
            "Window should beat Linux on most random workloads: {win_rate}%"
        );
    }
}
