//! `experiments audit`: the differential fuzzer and invariant auditor.
//!
//! Three layers, each feeding the next:
//!
//! 1. **Self-checks + preset suite** — the estimator-range harness runs
//!    on synthetic streams, then every preset policy runs audited over
//!    the paper's figure mixes with the full invariant catalog attached
//!    (`busbw-audit`, observing the live run through
//!    `Machine::run_audited`).
//! 2. **Differential fuzzer** — random [`StackSpec`] policy stacks ×
//!    random paper-workload mixes, each cell executed three ways: a
//!    serial audited run, an N-worker run through the job-graph engine,
//!    and a cache-warm re-execution of the same plan. The three must
//!    agree byte-for-byte (codec bytes and the CSV row), the warm pass
//!    must be all cache hits, and the audited run must be invariant-clean.
//! 3. **Shrinker** — any violation sends the cell through greedy
//!    delta-debugging: drop workload instances and reset stack stages
//!    toward the paper default while the failure reproduces, then emit
//!    `repro.json` with a ready-to-paste `#[test]`.

use std::fmt::Write as _;
use std::path::Path;

use busbw_audit::{Auditor, Violation};
use busbw_workloads::{
    mix::{fig2_set_a, fig2_set_b, fig2_set_c},
    paper::{paper_app, PaperApp},
    WorkloadSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::cache::encode_result;
use crate::jobgraph::{Engine, Plan, RunRequest};
use crate::policy::{AdmissionKind, EstimatorKind, PlacerKind, SelectorKind, StackSpec};
use crate::runner::{run_spec, run_spec_hooked, PolicyKind, RunResult, RunnerConfig, TraceMode};

/// One fuzz cell: a policy stack over a workload mix with a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCell {
    /// The four-stage policy stack under test.
    pub stack: StackSpec,
    /// Paper application names composing the mix (every instance
    /// measured).
    pub mix: Vec<&'static str>,
    /// Demand-model / comparator seed.
    pub seed: u64,
    /// Work-volume scale.
    pub scale: f64,
    /// Socket count for the machine topology (1 = the flat default bus;
    /// >1 runs the hierarchical bus with per-level Λ solves).
    pub sockets: usize,
}

/// Build a workload mix from paper application names; `None` if any name
/// is unknown. Every instance is measured, so the run stops when the
/// whole mix finishes.
pub fn mix_from_names(names: &[&str]) -> Option<WorkloadSpec> {
    let apps: Option<Vec<_>> = names
        .iter()
        .map(|n| PaperApp::from_name(n).map(paper_app))
        .collect();
    let apps = apps?;
    if apps.is_empty() {
        return None;
    }
    Some(WorkloadSpec {
        name: names.join("+"),
        measured: (0..apps.len()).collect(),
        apps,
    })
}

/// The `--policy` grammar string for a stack — [`StackSpec::parse`]'s
/// inverse, used by `repro.json` so a reproducer is copy-pasteable.
pub fn spec_string(s: &StackSpec) -> String {
    let est = match s.estimator {
        EstimatorKind::Latest => "latest".into(),
        EstimatorKind::Window(n) => format!("window:{n}"),
        EstimatorKind::Ewma(n) => format!("ewma:{n}"),
        EstimatorKind::Raw => "raw".into(),
        EstimatorKind::Null => "null".into(),
    };
    let adm = match s.admission {
        AdmissionKind::Head => "head",
        AdmissionKind::StrictHead => "strict",
        AdmissionKind::Fcfs => "fcfs",
        AdmissionKind::Widest => "widest",
        AdmissionKind::Open => "open",
    };
    let sel = match s.selector {
        SelectorKind::Fitness => "fitness".into(),
        SelectorKind::Random(seed) => format!("random:{seed}"),
        SelectorKind::Greedy => "greedy".into(),
        SelectorKind::Lookahead => "lookahead".into(),
        SelectorKind::None => "none".into(),
    };
    let plc = match s.placer {
        PlacerKind::Packed => "packed",
        PlacerKind::Scatter => "scatter",
        PlacerKind::Smt => "smt",
        PlacerKind::PackLocal => "pack_local",
        PlacerKind::SpreadSockets => "spread_sockets",
        PlacerKind::Migrate => "migrate",
    };
    format!(
        "estimator={est},admission={adm},selector={sel},placer={plc},quantum={}",
        s.quantum_us / 1000
    )
}

/// Deterministic CSV row for one run — the artifact the differential
/// passes byte-compare (mirrors the figure CSVs' `{:?}` float format).
pub fn csv_line(r: &RunResult) -> String {
    let mut line = format!(
        "{:?},{:?},{:?},{}",
        r.mean_turnaround_us, r.workload_rate, r.saturated_fraction, r.ticks
    );
    for t in &r.turnarounds_us {
        let _ = write!(line, ",{t:?}");
    }
    line
}

fn runner_config(cell: &FuzzCell, trace: TraceMode) -> RunnerConfig {
    let mut rc = RunnerConfig {
        scale: cell.scale,
        seed: cell.seed,
        trace,
        ..RunnerConfig::default()
    };
    if cell.sockets > 1 {
        rc.machine.topology = busbw_sim::TopologyConfig::multi(cell.sockets);
    }
    rc
}

/// Run one cell serially under the full invariant catalog and return
/// every violation (live hooks + post-run trace validation).
pub fn check_cell(cell: &FuzzCell) -> Vec<Violation> {
    let Some(mix) = mix_from_names(&cell.mix) else {
        return vec![Violation {
            invariant: "cache-consistency",
            at_us: 0,
            detail: format!("unknown app name in mix {:?}", cell.mix),
        }];
    };
    let rc = runner_config(cell, TraceMode::Collect);
    let mut auditor = Auditor::with_builtins();
    let result = run_spec_hooked(&mix, PolicyKind::Stack(cell.stack), &rc, Some(&mut auditor));
    auditor.check_events(&result.events);
    auditor.take_violations()
}

/// The byte-identity view of a result: the cache codec's encoding with
/// stage timings stripped. Stage timings are wall-clock observations
/// (nanosecond totals and latency buckets) that the codec intentionally
/// replays on cache hits — they legitimately differ between a fresh run
/// and the run that produced a cached entry, and they never feed figure
/// data, so the differential checker excludes them from identity.
pub(crate) fn canonical_bytes(result: &RunResult) -> Vec<u8> {
    let mut stripped = result.clone();
    stripped.stage_timings = None;
    encode_result(&stripped)
}

/// The full differential check for one cell: audited serial run, then
/// the same cell re-executed with the legacy per-tick inner loop, then
/// through the engine with `workers` threads (serial-solve and
/// batch-solve modes), then a warm re-execution of the same plan —
/// asserting invariant cleanliness, byte-identical codec output,
/// identical CSV rows, and all-hit warm passes.
pub fn check_cell_differential(cell: &FuzzCell, workers: usize) -> Vec<Violation> {
    let mut violations = check_cell(cell);
    let Some(mix) = mix_from_names(&cell.mix) else {
        return violations;
    };
    // The engine passes run untraced (trace wiring is part of the run
    // key); re-run the serial baseline the same way so bytes compare.
    let rc = runner_config(cell, TraceMode::Off);
    let baseline = run_spec_hooked(&mix, PolicyKind::Stack(cell.stack), &rc, None);
    let baseline_bytes = canonical_bytes(&baseline);
    let baseline_csv = csv_line(&baseline);

    let mut auditor = Auditor::with_builtins();

    // Execution-path differential: the event-driven baseline above vs the
    // legacy quantized per-tick loop. `exec` is deliberately absent from
    // the run-cache key, so this equivalence is what makes every cached
    // result valid for both modes.
    let rc_per_tick = RunnerConfig {
        exec: busbw_sim::ExecMode::PerTick,
        ..rc
    };
    let per_tick = run_spec_hooked(&mix, PolicyKind::Stack(cell.stack), &rc_per_tick, None);
    auditor.check_byte_identity_as(
        "exec-path-equivalence",
        &format!("cell {:?}: event-driven vs per-tick", cell.mix),
        &baseline_bytes,
        &canonical_bytes(&per_tick),
    );
    auditor.check_byte_identity_as(
        "exec-path-equivalence",
        &format!("cell {:?}: event-driven vs per-tick CSV row", cell.mix),
        baseline_csv.as_bytes(),
        csv_line(&per_tick).as_bytes(),
    );

    let mut plan = Plan::new();
    let id = plan.cell(RunRequest::spec(mix, PolicyKind::Stack(cell.stack), &rc));
    let mut engine = Engine::ephemeral();

    // Batched-engine differential: the same cell driven through the
    // lockstep SoA batch solver on a fresh engine (its own cache, so the
    // run actually executes batched instead of hitting `engine`'s cache).
    let batched = Engine::ephemeral().execute_batched(&plan, workers);
    auditor.check_byte_identity_as(
        "exec-path-equivalence",
        &format!("cell {:?}: serial vs batched engine", cell.mix),
        &baseline_bytes,
        &canonical_bytes(batched.get(id)),
    );

    let cold = engine.execute(&plan, workers);
    auditor.check_byte_identity(
        &format!("cell {:?}: serial vs {workers}-worker engine", cell.mix),
        &baseline_bytes,
        &canonical_bytes(cold.get(id)),
    );
    auditor.check_byte_identity(
        &format!("cell {:?}: serial vs {workers}-worker CSV row", cell.mix),
        baseline_csv.as_bytes(),
        csv_line(cold.get(id)).as_bytes(),
    );

    let hits_before = engine.stats().cache_hits;
    let warm = engine.execute(&plan, workers);
    if engine.stats().cache_hits != hits_before + plan.len() as u64 {
        violations.push(Violation {
            invariant: "cache-consistency",
            at_us: 0,
            detail: format!(
                "warm pass over {:?} was not all cache hits ({} of {})",
                cell.mix,
                engine.stats().cache_hits - hits_before,
                plan.len()
            ),
        });
    }
    auditor.check_byte_identity(
        &format!("cell {:?}: cold vs cache-warm engine", cell.mix),
        &baseline_bytes,
        &canonical_bytes(warm.get(id)),
    );
    violations.extend(auditor.take_violations());
    violations
}

/// Draw a random policy stack (mirrors the jobgraph property strategy,
/// with quanta restricted to fast round values so cells stay cheap).
fn random_stack(rng: &mut StdRng) -> StackSpec {
    let estimator = match rng.gen_range(0..5u32) {
        0 => EstimatorKind::Latest,
        1 => EstimatorKind::Window(rng.gen_range(1..8usize)),
        2 => EstimatorKind::Ewma(rng.gen_range(1..8usize)),
        3 => EstimatorKind::Raw,
        _ => EstimatorKind::Null,
    };
    let admission = match rng.gen_range(0..5u32) {
        0 => AdmissionKind::Head,
        1 => AdmissionKind::StrictHead,
        2 => AdmissionKind::Fcfs,
        3 => AdmissionKind::Widest,
        _ => AdmissionKind::Open,
    };
    let selector = match rng.gen_range(0..5u32) {
        0 => SelectorKind::Fitness,
        1 => SelectorKind::Random(rng.gen_range(0..1000u64)),
        2 => SelectorKind::Greedy,
        3 => SelectorKind::Lookahead,
        _ => SelectorKind::None,
    };
    let placer = match rng.gen_range(0..6u32) {
        0 => PlacerKind::Packed,
        1 => PlacerKind::Scatter,
        2 => PlacerKind::Smt,
        3 => PlacerKind::PackLocal,
        4 => PlacerKind::SpreadSockets,
        _ => PlacerKind::Migrate,
    };
    StackSpec {
        estimator,
        admission,
        selector,
        placer,
        quantum_us: [20_000, 50_000, 100_000, 200_000, 400_000][rng.gen_range(0..5usize)],
    }
}

/// Draw a random workload mix: 2–4 paper applications, every instance
/// measured.
fn random_mix(rng: &mut StdRng) -> Vec<&'static str> {
    let n = rng.gen_range(2..5usize);
    (0..n)
        .map(|_| PaperApp::ALL[rng.gen_range(0..PaperApp::ALL.len())].name())
        .collect()
}

/// Draw the `i`-th fuzz cell of a seeded campaign.
pub fn fuzz_cell(campaign_seed: u64, i: u64, scale: f64) -> FuzzCell {
    let mut rng = StdRng::seed_from_u64(campaign_seed.wrapping_mul(0x9E3779B97F4A7C15) ^ i);
    FuzzCell {
        stack: random_stack(&mut rng),
        mix: random_mix(&mut rng),
        seed: rng.gen_range(0..1_000_000u64),
        scale,
        // Half the cells stay on the flat default bus, half exercise the
        // hierarchical topology path (2- or 4-socket).
        sockets: [1, 1, 2, 4][rng.gen_range(0..4usize)],
    }
}

/// Greedy delta-debugging: minimize `cell` while `check` keeps failing.
///
/// Tries dropping workload instances one at a time, then resetting each
/// stack stage (and the quantum) to the paper default, repeating to a
/// fixed point. Returns the smallest failing cell and its violations.
pub fn shrink(
    cell: &FuzzCell,
    check: &mut dyn FnMut(&FuzzCell) -> Vec<Violation>,
) -> (FuzzCell, Vec<Violation>) {
    let mut best = cell.clone();
    let mut best_violations = check(&best);
    assert!(
        !best_violations.is_empty(),
        "shrink() requires a failing cell"
    );
    loop {
        let mut improved = false;
        // Workload minimization: drop one instance at a time.
        while best.mix.len() > 1 {
            let mut dropped_one = false;
            for i in 0..best.mix.len() {
                let mut cand = best.clone();
                cand.mix.remove(i);
                let v = check(&cand);
                if !v.is_empty() {
                    best = cand;
                    best_violations = v;
                    improved = true;
                    dropped_one = true;
                    break;
                }
            }
            if !dropped_one {
                break;
            }
        }
        // Config minimization: reset stages toward the paper default.
        let default = StackSpec::default();
        let resets: [&dyn Fn(&mut StackSpec); 5] = [
            &|s| s.estimator = default.estimator,
            &|s| s.admission = default.admission,
            &|s| s.selector = default.selector,
            &|s| s.placer = default.placer,
            &|s| s.quantum_us = default.quantum_us,
        ];
        for reset in resets {
            let mut cand = best.clone();
            reset(&mut cand.stack);
            if cand.stack == best.stack {
                continue;
            }
            let v = check(&cand);
            if !v.is_empty() {
                best = cand;
                best_violations = v;
                improved = true;
            }
        }
        // Topology minimization: collapse to the flat single-socket bus.
        if best.sockets != 1 {
            let mut cand = best.clone();
            cand.sockets = 1;
            let v = check(&cand);
            if !v.is_empty() {
                best = cand;
                best_violations = v;
                improved = true;
            }
        }
        if !improved {
            return (best, best_violations);
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The ready-to-paste regression test for a shrunk failing cell.
pub fn repro_test_snippet(cell: &FuzzCell) -> String {
    format!(
        r#"#[test]
fn audit_repro() {{
    use busbw_experiments::audit::{{check_cell_differential, FuzzCell}};
    use busbw_experiments::policy::StackSpec;
    let cell = FuzzCell {{
        stack: StackSpec::parse("{stack}").unwrap(),
        mix: vec![{mix}],
        seed: {seed},
        scale: {scale:?},
        sockets: {sockets},
    }};
    let violations = check_cell_differential(&cell, 4);
    assert!(violations.is_empty(), "{{violations:?}}");
}}
"#,
        stack = spec_string(&cell.stack),
        mix = cell
            .mix
            .iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", "),
        seed = cell.seed,
        scale = cell.scale,
        sockets = cell.sockets,
    )
}

/// Serialize a shrunk failing cell and its violations as `repro.json`.
pub fn repro_json(cell: &FuzzCell, violations: &[Violation]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"policy\": \"{}\",",
        json_escape(&spec_string(&cell.stack))
    );
    let _ = writeln!(
        out,
        "  \"mix\": [{}],",
        cell.mix
            .iter()
            .map(|m| format!("\"{}\"", json_escape(m)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"seed\": {},", cell.seed);
    let _ = writeln!(out, "  \"scale\": {:?},", cell.scale);
    let _ = writeln!(out, "  \"sockets\": {},", cell.sockets);
    let _ = writeln!(out, "  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < violations.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"invariant\": \"{}\", \"at_us\": {}, \"detail\": \"{}\"}}{comma}",
            json_escape(v.invariant),
            v.at_us,
            json_escape(&v.detail)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"test\": \"{}\"",
        json_escape(&repro_test_snippet(cell))
    );
    out.push_str("}\n");
    out
}

/// Shrink a failing cell and write `repro.json` under `dir`. Returns the
/// shrunk cell.
pub fn shrink_and_write_repro(
    dir: &Path,
    cell: &FuzzCell,
    check: &mut dyn FnMut(&FuzzCell) -> Vec<Violation>,
) -> std::io::Result<FuzzCell> {
    let (shrunk, violations) = shrink(cell, check);
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("repro.json"), repro_json(&shrunk, &violations))?;
    Ok(shrunk)
}

/// What `experiments audit` runs.
pub struct AuditConfig {
    /// Number of fuzz cells (0 = presets and self-checks only).
    pub fuzz: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Work-volume scale for every audited run.
    pub scale: f64,
    /// Workers for the engine passes.
    pub workers: usize,
    /// Where `repro.json` goes on failure.
    pub out: std::path::PathBuf,
}

/// The preset suite: every named policy over one figure mix per §5 set,
/// audited serially. Returns `(label, violations)` per cell.
pub fn preset_suite(scale: f64, seed: u64) -> Vec<(String, Vec<Violation>)> {
    let policies: [PolicyKind; 7] = [
        PolicyKind::Latest,
        PolicyKind::Window,
        PolicyKind::Linux,
        PolicyKind::LinuxO1,
        PolicyKind::RoundRobinGang,
        PolicyKind::RandomGang(7),
        PolicyKind::GreedyPack,
    ];
    let mixes = [
        fig2_set_a(PaperApp::Cg),
        fig2_set_b(PaperApp::LuCb),
        fig2_set_c(PaperApp::Sp),
    ];
    let mut out = Vec::new();
    for policy in policies {
        for mix in &mixes {
            let rc = RunnerConfig {
                scale,
                seed,
                trace: TraceMode::Collect,
                ..RunnerConfig::default()
            };
            let mut auditor = Auditor::with_builtins();
            let result = run_spec_hooked(mix, policy, &rc, Some(&mut auditor));
            auditor.check_events(&result.events);
            out.push((
                format!("{} / {}", policy.label(), mix.name),
                auditor.take_violations(),
            ));
        }
    }
    out
}

/// Oracle-admissibility differential: draw the `i`-th tiny cell of a
/// seeded campaign (first two mix names, scale capped at 0.05 so the
/// branch-and-bound search stays small), solve it with the
/// offline-optimal oracle, and check both halves of the
/// `oracle-admissibility` invariant — the optimal mean turnaround is at
/// most every preset's on the same cell, and the search's root lower
/// bound never exceeds the cost it achieves.
pub fn check_oracle_admissibility(campaign_seed: u64, i: u64, scale: f64) -> Vec<Violation> {
    let cell = fuzz_cell(campaign_seed, i, scale.min(0.05));
    let names: Vec<&'static str> = cell.mix.iter().copied().take(2).collect();
    let spec = mix_from_names(&names).expect("fuzz mixes use paper names");
    let rc = RunnerConfig {
        scale: cell.scale,
        seed: cell.seed,
        trace: TraceMode::Off,
        ..RunnerConfig::default()
    };
    let oracle = crate::regret::oracle_outcome(&spec, &rc);
    let mut out = Vec::new();
    if oracle.report.root_lower_bound_us > oracle.report.best_cost_us {
        out.push(Violation {
            invariant: "oracle-admissibility",
            at_us: 0,
            detail: format!(
                "root lower bound {} µs exceeds achieved cost {} µs on {}",
                oracle.report.root_lower_bound_us, oracle.report.best_cost_us, spec.name
            ),
        });
    }
    for policy in crate::regret::REGRET_PRESETS {
        let heuristic = run_spec(&spec, policy, &rc);
        if oracle.result.mean_turnaround_us > heuristic.mean_turnaround_us + 1e-6 {
            out.push(Violation {
                invariant: "oracle-admissibility",
                at_us: 0,
                detail: format!(
                    "oracle mean turnaround {:.3} µs exceeds {} ({:.3} µs) on {}",
                    oracle.result.mean_turnaround_us,
                    policy.label(),
                    heuristic.mean_turnaround_us,
                    spec.name
                ),
            });
        }
    }
    out
}

/// Run the full audit; returns the process exit code (0 = clean).
pub fn run_audit(cfg: &AuditConfig) -> i32 {
    let mut dirty = 0usize;

    let catalog = Auditor::with_builtins();
    println!("invariant catalog ({} checks):", catalog.catalog().len());
    for (name, paper_ref) in catalog.catalog() {
        println!("  {name:<22} {paper_ref}");
    }

    let mut selfcheck = Auditor::with_builtins();
    selfcheck.self_check(cfg.seed);
    let v = selfcheck.take_violations();
    println!(
        "\nself-check (seed {}): {}",
        cfg.seed,
        if v.is_empty() {
            "clean".into()
        } else {
            format!("{} violations", v.len())
        }
    );
    for violation in &v {
        println!("  {violation}");
    }
    dirty += v.len();

    println!("\npreset suite (scale {}):", cfg.scale);
    for (label, violations) in preset_suite(cfg.scale, cfg.seed) {
        if violations.is_empty() {
            println!("  ok   {label}");
        } else {
            println!("  FAIL {label} ({} violations)", violations.len());
            for violation in &violations {
                println!("       {violation}");
            }
            dirty += violations.len();
        }
    }

    if cfg.fuzz > 0 {
        let oracle_cells = cfg.fuzz.min(3) as u64;
        println!("\noracle-admissibility differential: {oracle_cells} tiny cells");
        for i in 0..oracle_cells {
            let mix: Vec<_> = fuzz_cell(cfg.seed, i, cfg.scale)
                .mix
                .into_iter()
                .take(2)
                .collect();
            let violations = check_oracle_admissibility(cfg.seed, i, cfg.scale);
            if violations.is_empty() {
                println!("  ok   oracle cell {i}: {}", mix.join("+"));
            } else {
                dirty += violations.len();
                println!(
                    "  FAIL oracle cell {i}: {} ({} violations)",
                    mix.join("+"),
                    violations.len()
                );
                for violation in &violations {
                    println!("       {violation}");
                }
            }
        }

        println!(
            "\ndifferential fuzz: {} cells (campaign seed {}, {} workers)",
            cfg.fuzz, cfg.seed, cfg.workers
        );
        for i in 0..cfg.fuzz as u64 {
            let cell = fuzz_cell(cfg.seed, i, cfg.scale);
            let violations = check_cell_differential(&cell, cfg.workers);
            if violations.is_empty() {
                println!(
                    "  ok   cell {i:>3}: {} over {}",
                    spec_string(&cell.stack),
                    cell.mix.join("+")
                );
                continue;
            }
            dirty += violations.len();
            println!(
                "  FAIL cell {i:>3}: {} over {} ({} violations) — shrinking",
                spec_string(&cell.stack),
                cell.mix.join("+"),
                violations.len()
            );
            for violation in &violations {
                println!("       {violation}");
            }
            let mut check = |c: &FuzzCell| check_cell_differential(c, cfg.workers);
            match shrink_and_write_repro(&cfg.out, &cell, &mut check) {
                Ok(shrunk) => println!(
                    "       shrunk to {} over {} — wrote {}",
                    spec_string(&shrunk.stack),
                    shrunk.mix.join("+"),
                    cfg.out.join("repro.json").display()
                ),
                Err(e) => println!("       failed to write repro: {e}"),
            }
        }
    }

    if dirty == 0 {
        println!("\naudit clean: every invariant held");
        0
    } else {
        println!("\naudit FAILED: {dirty} violations");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_audit::invariants::count_by_invariant;
    use busbw_core::pipeline::{
        PAPER_QUANTUM_US, {Placer, PolicyStack, StageCtx},
    };
    use busbw_sim::{Assignment, AuditHook, CpuId, Scheduler, XEON_4WAY};
    use busbw_workloads::build_machine;

    #[test]
    fn mix_roundtrip_and_rejection() {
        let mix = mix_from_names(&["CG", "LU CB"]).expect("known names");
        assert_eq!(mix.apps.len(), 2);
        assert_eq!(mix.measured, vec![0, 1]);
        assert!(mix_from_names(&["not-an-app"]).is_none());
        assert!(mix_from_names(&[]).is_none());
    }

    #[test]
    fn spec_string_roundtrips_through_parse() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let stack = random_stack(&mut rng);
            let reparsed = StackSpec::parse(&spec_string(&stack)).expect("valid grammar");
            assert_eq!(reparsed, stack, "grammar {}", spec_string(&stack));
        }
    }

    #[test]
    fn oracle_differential_is_clean_on_a_tiny_cell() {
        assert_eq!(check_oracle_admissibility(42, 0, 0.04), Vec::new());
    }

    #[test]
    fn fuzz_cells_are_deterministic_per_seed() {
        assert_eq!(fuzz_cell(42, 3, 0.1), fuzz_cell(42, 3, 0.1));
        assert_ne!(fuzz_cell(42, 3, 0.1), fuzz_cell(42, 4, 0.1));
    }

    #[test]
    fn random_cell_is_clean_under_full_differential_check() {
        let cell = fuzz_cell(42, 0, 0.05);
        let violations = check_cell_differential(&cell, 4);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn multi_socket_cell_is_clean_under_full_differential_check() {
        // Pin a hierarchical-topology cell with a socket-aware placer so
        // the five-way differential always covers the per-level Λ path.
        let cell = FuzzCell {
            stack: StackSpec::parse("placer=pack_local").unwrap(),
            mix: vec!["CG", "SP"],
            seed: 7,
            scale: 0.05,
            sockets: 2,
        };
        let violations = check_cell_differential(&cell, 4);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// The seeded fault: a placer that books every admitted thread onto
    /// cpu 0.
    struct DoubleBookPlacer;

    impl Placer for DoubleBookPlacer {
        fn label(&self) -> &'static str {
            "DoubleBook"
        }

        fn place(
            &mut self,
            ctx: &StageCtx<'_, '_>,
            admitted: &[busbw_sim::AppId],
        ) -> Vec<Assignment> {
            let mut out = Vec::new();
            for &app in admitted {
                if let Some(info) = ctx.view.app(app) {
                    for &t in info.threads {
                        out.push(Assignment {
                            thread: t,
                            cpu: CpuId(0),
                        });
                    }
                }
            }
            out
        }
    }

    #[test]
    fn double_booking_placer_fires_the_auditor_end_to_end() {
        use busbw_core::pipeline::{FitnessSelector, HeadOfList, NullEstimator};
        let mix = mix_from_names(&["CG", "LU CB"]).unwrap().scaled(0.05);
        let built = build_machine(&mix, XEON_4WAY, 1);
        let mut stack = PolicyStack::new(
            "double-book",
            PAPER_QUANTUM_US,
            Box::new(NullEstimator),
            Box::new(HeadOfList),
            Box::new(FitnessSelector),
            Box::new(DoubleBookPlacer),
        );
        stack.set_introspect(true);
        let decision = stack.schedule(&built.machine.view());
        let mut auditor = Auditor::with_builtins();
        auditor.on_decision(&built.machine.view(), &decision, stack.stage_snapshot());
        let counts = count_by_invariant(auditor.violations());
        assert!(
            counts.contains_key("no-double-allocation"),
            "expected the double-booking fault to fire, got {counts:?}"
        );
    }

    #[test]
    fn shrinker_minimizes_to_the_failing_core_and_writes_repro() {
        // Synthetic failure oracle: the bug reproduces whenever CG is in
        // the mix AND the selector is Greedy. Everything else is noise
        // the shrinker must strip.
        let mut check = |c: &FuzzCell| -> Vec<Violation> {
            let fails = c.mix.contains(&"CG") && matches!(c.stack.selector, SelectorKind::Greedy);
            if fails {
                vec![Violation {
                    invariant: "bus-capacity",
                    at_us: 7,
                    detail: "synthetic".into(),
                }]
            } else {
                Vec::new()
            }
        };
        let noisy = FuzzCell {
            stack: StackSpec {
                estimator: EstimatorKind::Ewma(3),
                admission: AdmissionKind::Widest,
                selector: SelectorKind::Greedy,
                placer: PlacerKind::Smt,
                quantum_us: 50_000,
            },
            mix: vec!["SP", "CG", "Raytrace", "LU CB"],
            seed: 99,
            scale: 0.1,
            sockets: 4,
        };
        let dir = std::env::temp_dir().join(format!("busbw-audit-repro-{}", std::process::id()));
        let shrunk = shrink_and_write_repro(&dir, &noisy, &mut check).expect("write repro");
        assert_eq!(shrunk.mix, vec!["CG"], "mix fully minimized");
        assert!(matches!(shrunk.stack.selector, SelectorKind::Greedy));
        assert_eq!(shrunk.sockets, 1, "topology collapsed to the flat bus");
        // Every other stage reset to the paper default.
        let default = StackSpec::default();
        assert_eq!(shrunk.stack.estimator, default.estimator);
        assert_eq!(shrunk.stack.admission, default.admission);
        assert_eq!(shrunk.stack.placer, default.placer);
        assert_eq!(shrunk.stack.quantum_us, default.quantum_us);
        let json = std::fs::read_to_string(dir.join("repro.json")).expect("repro.json exists");
        assert!(json.contains("\"invariant\": \"bus-capacity\""), "{json}");
        assert!(json.contains("#[test]"), "{json}");
        assert!(json.contains("selector=greedy"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repro_snippet_policy_string_reparses() {
        let cell = fuzz_cell(7, 0, 0.1);
        let snippet = repro_test_snippet(&cell);
        assert!(snippet.contains("StackSpec::parse"));
        assert!(StackSpec::parse(&spec_string(&cell.stack)).is_ok());
    }
}
