//! Topology figure family: socket-aware placement on multi-socket shapes.
//!
//! The paper's machine is a single shared front-side bus; DESIGN §16
//! generalises it to a two-level hierarchy (per-socket local buses + a
//! cross-socket interconnect). This figure family answers the question
//! the paper could not ask: *once the bus is hierarchical, how much does
//! socket-aware placement matter?*
//!
//! One panel per machine shape — `topo1` (the paper's flat 4-way),
//! `topo2` (2 sockets × 4 cpus) and `topo4` (4 sockets × 2 cpus). Each
//! panel runs the §5 set-C mix (2 × app + 2 × BBMA + 2 × nBBMA) for a
//! representative application subset under the default stack with the
//! topology-oblivious `packed` placer as baseline, and reports the mean
//! turnaround improvement of each socket-aware placer (`pack_local`,
//! `spread_sockets`, `migrate`) over that baseline. Multi-socket panels
//! append the per-level mean bus utilisation (%) of the `pack_local`
//! run — one column per socket bus plus the interconnect — folded from
//! [`RunResult::level_utilization`].

use busbw_metrics::{improvement_pct, ExperimentRow, FigureSummary};
use busbw_sim::{MachineConfig, TopologyConfig};
use busbw_workloads::mix::fig2_set_c;
use busbw_workloads::paper::PaperApp;

use crate::jobgraph::{run_figure, CellId, Executed, Plan, RunRequest};
use crate::policy::StackSpec;
use crate::runner::{PolicyKind, RunnerConfig};

/// The machine shapes of the topology panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoShape {
    /// The paper's flat 4-way SMP (1 socket, degenerate topology).
    Flat,
    /// 2 sockets × 4 cpus sharing one interconnect.
    Dual,
    /// 4 sockets × 2 cpus sharing one interconnect.
    Quad,
}

/// All shapes, panel order.
pub const TOPO_SHAPES: [TopoShape; 3] = [TopoShape::Flat, TopoShape::Dual, TopoShape::Quad];

/// The applications of each panel: one light, one moderate, two
/// bus-bound (the same subset the dynamic figure uses).
pub const TOPO_APPS: [PaperApp; 4] = [PaperApp::Volrend, PaperApp::Bt, PaperApp::Mg, PaperApp::Cg];

/// The socket-aware placers under comparison (spec-grammar names).
pub const TOPO_PLACERS: [&str; 3] = ["pack_local", "spread_sockets", "migrate"];

impl TopoShape {
    /// Socket count of the shape.
    pub fn sockets(self) -> usize {
        match self {
            TopoShape::Flat => 1,
            TopoShape::Dual => 2,
            TopoShape::Quad => 4,
        }
    }

    /// Figure id ("topo1", "topo2", "topo4").
    pub fn id(self) -> &'static str {
        match self {
            TopoShape::Flat => "topo1",
            TopoShape::Dual => "topo2",
            TopoShape::Quad => "topo4",
        }
    }

    /// Panel title.
    pub fn title(self) -> &'static str {
        match self {
            TopoShape::Flat => {
                "1 socket x 4 cpus (flat bus) — placer improvement (%) over packed, set C"
            }
            TopoShape::Dual => {
                "2 sockets x 4 cpus — placer improvement (%) over packed + pack_local level util (%), set C"
            }
            TopoShape::Quad => {
                "4 sockets x 2 cpus — placer improvement (%) over packed + pack_local level util (%), set C"
            }
        }
    }

    /// The shape's machine: `rc`'s machine untouched for [`Flat`]
    /// (keeping the default panel byte-identical to the paper's), 8 cpus
    /// striped over the sockets otherwise.
    ///
    /// [`Flat`]: TopoShape::Flat
    pub fn machine(self, rc: &RunnerConfig) -> MachineConfig {
        match self {
            TopoShape::Flat => rc.machine,
            _ => MachineConfig {
                num_cpus: 8,
                topology: TopologyConfig::multi(self.sockets()),
                ..rc.machine
            },
        }
    }
}

/// Column label of bus level `k`: the interconnect is always the last
/// level the hierarchical bus reports, every earlier one a socket bus.
fn level_label(k: usize, n_levels: usize) -> String {
    if k + 1 == n_levels {
        "util(ic)".into()
    } else {
        format!("util(s{k})")
    }
}

/// The default stack with `placer` swapped in.
fn stack(placer: &str) -> PolicyKind {
    PolicyKind::Stack(StackSpec::parse(&format!("placer={placer}")).expect("known placer"))
}

/// Cell handles for one topology panel: apps in [`TOPO_APPS`] order,
/// the `packed` baseline first then each [`TOPO_PLACERS`] entry.
#[derive(Debug)]
pub struct TopoCells {
    shape: TopoShape,
    cells: Vec<CellId>,
}

/// Declare one topology panel's cells.
pub fn plan_topo(plan: &mut Plan, shape: TopoShape, rc: &RunnerConfig) -> TopoCells {
    let rc_shape = RunnerConfig {
        machine: shape.machine(rc),
        ..*rc
    };
    let mut cells = Vec::with_capacity(TOPO_APPS.len() * (1 + TOPO_PLACERS.len()));
    for app in TOPO_APPS {
        let spec = fig2_set_c(app);
        cells.push(plan.cell(RunRequest::spec(spec.clone(), stack("packed"), &rc_shape)));
        for placer in TOPO_PLACERS {
            cells.push(plan.cell(RunRequest::spec(spec.clone(), stack(placer), &rc_shape)));
        }
    }
    TopoCells { shape, cells }
}

/// Fold one topology panel: improvement % of each socket-aware placer
/// over the `packed` baseline, plus (multi-socket shapes only) the
/// per-level mean utilisation of the `pack_local` run in percent.
pub fn fold_topo(cells: &TopoCells, executed: &Executed) -> FigureSummary {
    let per_app = 1 + TOPO_PLACERS.len();
    let rows = TOPO_APPS
        .iter()
        .zip(cells.cells.chunks_exact(per_app))
        .map(|(&app, ids)| {
            let packed = executed.get(ids[0]);
            let mut values: Vec<(String, f64)> = TOPO_PLACERS
                .iter()
                .enumerate()
                .map(|(i, placer)| {
                    (
                        placer.to_string(),
                        improvement_pct(
                            packed.mean_turnaround_us,
                            executed.get(ids[i + 1]).mean_turnaround_us,
                        ),
                    )
                })
                .collect();
            // TOPO_PLACERS[0] is pack_local: its run supplies the
            // utilisation columns. Flat shapes report no levels.
            let local = executed.get(ids[1]);
            for k in 0..local.n_levels {
                values.push((
                    level_label(k, local.n_levels),
                    100.0 * local.level_utilization[k],
                ));
            }
            ExperimentRow {
                app: app.name().to_string(),
                values,
            }
        })
        .collect();
    FigureSummary {
        id: cells.shape.id().into(),
        title: cells.shape.title().into(),
        rows,
    }
}

/// Regenerate one topology panel.
pub fn topo_panel(shape: TopoShape, rc: &RunnerConfig) -> FigureSummary {
    run_figure(rc, |plan| plan_topo(plan, shape, rc), fold_topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_enum_roundtrips() {
        let rc = RunnerConfig::default();
        assert_eq!(TOPO_SHAPES.map(TopoShape::id), ["topo1", "topo2", "topo4"]);
        assert_eq!(TOPO_SHAPES.map(TopoShape::sockets), [1, 2, 4]);
        // Flat leaves the paper's machine untouched — the degenerate
        // panel runs byte-identical cells to a plain fig2 set-C run.
        let flat = TopoShape::Flat.machine(&rc);
        assert_eq!(flat.num_cpus, rc.machine.num_cpus);
        assert_eq!(flat.topology, rc.machine.topology);
        for shape in [TopoShape::Dual, TopoShape::Quad] {
            let m = shape.machine(&rc);
            assert_eq!(m.num_cpus, 8);
            assert_eq!(m.topology.sockets, shape.sockets());
            assert!(!shape.title().is_empty());
        }
    }

    #[test]
    fn level_labels_tag_interconnect_last() {
        assert_eq!(level_label(0, 3), "util(s0)");
        assert_eq!(level_label(1, 3), "util(s1)");
        assert_eq!(level_label(2, 3), "util(ic)");
    }

    #[test]
    fn dual_socket_panel_reports_per_level_utilization() {
        let rc = RunnerConfig::quick();
        let fig = topo_panel(TopoShape::Dual, &rc);
        assert_eq!(fig.id, "topo2");
        assert_eq!(fig.rows.len(), TOPO_APPS.len());
        for row in &fig.rows {
            // 3 placers + 2 socket buses + interconnect.
            assert_eq!(row.values.len(), TOPO_PLACERS.len() + 3, "{row:?}");
            let labels: Vec<&str> = row.values.iter().map(|(l, _)| l.as_str()).collect();
            assert!(labels.contains(&"util(s0)"), "{labels:?}");
            assert!(labels.contains(&"util(ic)"), "{labels:?}");
            for (label, v) in &row.values {
                assert!(v.is_finite(), "{label}: {v}");
                if label.starts_with("util(") {
                    assert!((0.0..=100.0).contains(v), "{label}: {v}");
                }
            }
        }
    }

    #[test]
    fn flat_panel_has_no_level_columns() {
        let rc = RunnerConfig::quick();
        let fig = topo_panel(TopoShape::Flat, &rc);
        assert_eq!(fig.id, "topo1");
        for row in &fig.rows {
            assert_eq!(row.values.len(), TOPO_PLACERS.len(), "{row:?}");
        }
    }
}
