//! The sweep-wide work-stealing pool.
//!
//! [`steal_map`] executes a batch of independent jobs on OS threads using
//! chunked shared-index stealing: the item range is split into one
//! contiguous chunk per worker, each chunk is drained through its own
//! atomic cursor, and a worker whose chunk runs dry pulls from the other
//! chunks round-robin. Compared to the single global cursor of
//! [`crate::runner::par_map`], ownership keeps most claims uncontended
//! while stealing still guarantees no worker idles before the batch is
//! done — and the steal counter makes the load imbalance observable.
//!
//! Results come back in input order, so the output is **bit-identical**
//! to a serial map for any worker count; parallelism and stealing only
//! change the order work is *done*.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What the pool did while draining one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Jobs executed by the pool (= input length).
    pub executed: u64,
    /// Jobs a worker claimed from a chunk it did not own. Always 0 when
    /// the batch ran serially.
    pub steals: u64,
}

impl StealStats {
    /// Accumulate another batch's stats into this one.
    pub fn merge(&mut self, other: &StealStats) {
        self.executed += other.executed;
        self.steals += other.steals;
    }
}

/// Map `f` over `items` on up to `workers` OS threads with chunked
/// work-stealing, returning results in input order plus steal stats.
///
/// `workers <= 1` (or a single-item batch) degenerates to a plain serial
/// map with no thread machinery.
pub fn steal_map<T, R, F>(items: &[T], workers: usize, f: F) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return (
            items.iter().map(f).collect(),
            StealStats {
                executed: n as u64,
                steals: 0,
            },
        );
    }

    // Contiguous chunk [lo, hi) per worker; chunk `w` starts at its own
    // cursor. Claims are `fetch_add` on the cursor, so an owner and its
    // thieves can never double-claim an index; overshoot past `hi` is
    // harmless (the claimed index is simply invalid and the chunk stays
    // exhausted).
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * n / workers, (w + 1) * n / workers))
        .collect();
    let cursors: Vec<AtomicUsize> = bounds.iter().map(|&(lo, _)| AtomicUsize::new(lo)).collect();
    let steals = AtomicU64::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    // Panic containment: a job that panics must fail the whole batch
    // cleanly — catch the unwind so the worker thread keeps draining the
    // shared cursors (peers would otherwise spin on chunks nobody
    // advances), record the first payload, and re-raise it after every
    // worker has joined.
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|s| {
        for w in 0..workers {
            let bounds = &bounds;
            let cursors = &cursors;
            let steals = &steals;
            let done = &done;
            let f = &f;
            let aborted = &aborted;
            let first_panic = &first_panic;
            s.spawn(move || loop {
                // Own chunk first, then victims in round-robin order.
                let mut claimed = None;
                for k in 0..workers {
                    let c = (w + k) % workers;
                    let i = cursors[c].fetch_add(1, Ordering::Relaxed);
                    if i < bounds[c].1 {
                        if k > 0 {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        claimed = Some(i);
                        break;
                    }
                }
                let Some(i) = claimed else { break };
                if aborted.load(Ordering::Relaxed) {
                    // Drain without executing: the batch is already doomed,
                    // but the cursors must still run dry so every worker
                    // exits its claim loop.
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => done.lock().unwrap_or_else(|e| e.into_inner()).push((i, r)),
                    Err(payload) => {
                        aborted.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    let mut v = done.into_inner().unwrap_or_else(|e| e.into_inner());
    v.sort_by_key(|&(i, _)| i);
    (
        v.into_iter().map(|(_, r)| r).collect(),
        StealStats {
            executed: n as u64,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let (out, stats) = steal_map(&items, 8, |&i| {
            let mut acc = i;
            for _ in 0..(i % 9) * 1500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        let ids: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, items);
        assert_eq!(stats.executed, 64);
    }

    #[test]
    fn serial_degenerate_case_has_no_steals() {
        let items = vec![1, 2, 3];
        let (out, stats) = steal_map(&items, 1, |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(
            stats,
            StealStats {
                executed: 3,
                steals: 0
            }
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let items: Vec<u32> = vec![];
        let (out, stats) = steal_map(&items, 4, |&x| x);
        assert!(out.is_empty());
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn uneven_final_chunk_still_drains_completely() {
        // 7 items over 3 workers: chunks of 2/2/3.
        let items: Vec<u32> = (0..7).collect();
        let (out, _) = steal_map(&items, 3, |&x| x + 100);
        assert_eq!(out, (100..107).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_fails_the_batch_cleanly_and_reraises() {
        // One bad cell out of 64: the call must terminate (no worker left
        // spinning on a stuck cursor, no poisoned-mutex double panic) and
        // re-raise the original payload after all workers joined.
        let items: Vec<u64> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            steal_map(&items, 4, |&i| {
                if i == 13 {
                    panic!("bad cell 13");
                }
                i * 2
            })
        }));
        let payload = result.expect_err("the panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a string");
        assert!(msg.contains("bad cell 13"), "payload was {msg:?}");
    }

    #[test]
    fn panicking_job_in_serial_mode_propagates_too() {
        let items = vec![1u32, 2, 3];
        let result = catch_unwind(AssertUnwindSafe(|| {
            steal_map(&items, 1, |&x| {
                if x == 2 {
                    panic!("serial bad cell");
                }
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stealing_happens_when_one_chunk_is_heavy() {
        // All the work lives in worker 0's chunk; the other workers must
        // steal to contribute. With 4 workers over 32 heavy-then-light
        // items the thieves claim at least one index.
        let items: Vec<u64> = (0..32).collect();
        let (out, stats) = steal_map(&items, 4, |&i| {
            let spin = if i < 8 { 200_000 } else { 10 };
            let mut acc = i;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        assert_eq!(out.len(), 32);
        assert_eq!(stats.executed, 32);
        // Steals are timing-dependent; on a single-core box the first
        // worker may drain everything before the others are scheduled, so
        // only assert the counter is consistent, not that it is nonzero.
        assert!(stats.steals <= 32);
    }
}
