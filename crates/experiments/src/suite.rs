//! The whole-sweep plan behind `experiments all`.
//!
//! Instead of running each figure's private parallel loop back to back —
//! a barrier between every figure, and shared cells (the Figure 2C
//! Linux baselines reappear in three ablations and the baselines figure)
//! re-executed each time — `all` declares every figure's cells on **one**
//! plan and drains the deduplicated set through a single
//! [`Engine::execute`](crate::jobgraph::Engine::execute) call: one
//! work-stealing pool across the whole sweep, no inter-figure barriers,
//! every shared run executed once.
//!
//! Folding is pure and ordered, so the emitted figures are byte-identical
//! to running each figure command on its own.

use busbw_metrics::FigureSummary;

use std::ops::Range;

use crate::ablate::{
    fold_fitness, fold_quantum, fold_smt, fold_stages, fold_window, plan_fitness, plan_quantum,
    plan_smt, plan_stages, plan_window, QuantumCells, SmtCells, StageCells, WindowCells,
};
use crate::baselines::{fold_baselines, plan_baselines, BaselineCells};
use crate::dynamic::{fold_dynamic, plan_dynamic, DynamicCells};
use crate::fig1::{fold_fig1a, fold_fig1b, plan_fig1, Fig1Cells};
use crate::fig2::{fold_fig2, plan_fig2, Fig2Cells, Fig2Set};
use crate::jobgraph::{CellStats, Executed, Plan};
use crate::robustness::{fold_robustness, plan_robustness, RobustnessCells};
use crate::runner::{PolicyKind, RunnerConfig};

/// Trial count of the `robustness` figure in the full sweep.
pub const SUITE_ROBUSTNESS_TRIALS: u64 = 10;
/// Jobs per robustness trial in the full sweep.
pub const SUITE_ROBUSTNESS_JOBS: usize = 5;

/// Cell handles (plus per-figure declare/dedup accounting) for every
/// figure of the full sweep.
#[derive(Debug)]
pub struct SuiteCells {
    fig1: Fig1Cells,
    /// Shared by both Figure 1 panels — they fold one cell set.
    fig1_stats: CellStats,
    fig2: Vec<(Fig2Cells, CellStats)>,
    window: (WindowCells, CellStats),
    quantum: (QuantumCells, CellStats),
    fitness: (Fig2Cells, CellStats),
    smt: (SmtCells, CellStats),
    dynamic: (DynamicCells, CellStats),
    baselines: (BaselineCells, CellStats),
    robustness: (RobustnessCells, CellStats),
    stages: (StageCells, CellStats),
    /// Unique-cell ranges, one per emitted figure in emission order
    /// (both Figure 1 panels share the first range). A cell deduped
    /// against an earlier figure belongs to the range of the figure that
    /// first declared it.
    ranges: Vec<Range<usize>>,
}

/// One folded figure of the sweep, with the declare/dedup numbers that
/// go into its manifest.
#[derive(Debug)]
pub struct SuiteFigure {
    /// The folded figure, ready to emit.
    pub fig: FigureSummary,
    /// Cells this figure declared on the shared plan. Hits against cells
    /// another figure already declared count as `deduped`; the two
    /// Figure 1 panels share one cell set and report the same numbers.
    pub cells: CellStats,
    /// The unique cells this figure first declared, as a
    /// [`CellId`](crate::jobgraph::CellId) index range — feed it to
    /// [`Executed::merged_stage_timings`](crate::jobgraph::Executed::merged_stage_timings)
    /// for the figure's per-stage wall-time histograms.
    pub range: Range<usize>,
}

/// Declare every figure of the full sweep on one shared plan, in the
/// order `experiments all` emits them.
pub fn plan_suite(plan: &mut Plan, rc: &RunnerConfig) -> SuiteCells {
    let mut ranges = Vec::new();

    let mark = plan.checkpoint();
    let fig1 = plan_fig1(plan, rc);
    let fig1_stats = plan.since(mark);
    // Both Figure 1 panels fold the same cell set: one range, twice.
    ranges.push(plan.range_since(mark));
    ranges.push(plan.range_since(mark));

    let fig2 = [Fig2Set::A, Fig2Set::B, Fig2Set::C]
        .into_iter()
        .map(|set| {
            let mark = plan.checkpoint();
            let cells = plan_fig2(plan, set, &[PolicyKind::Latest, PolicyKind::Window], rc);
            ranges.push(plan.range_since(mark));
            (cells, plan.since(mark))
        })
        .collect();

    let mark = plan.checkpoint();
    let window = plan_window(plan, rc);
    let window = (window, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let quantum = plan_quantum(plan, rc);
    let quantum = (quantum, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let fitness = plan_fitness(plan, rc);
    let fitness = (fitness, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let smt = plan_smt(plan, rc);
    let smt = (smt, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let dynamic = plan_dynamic(plan, rc);
    let dynamic = (dynamic, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let baselines = plan_baselines(plan, rc);
    let baselines = (baselines, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let robustness = plan_robustness(plan, SUITE_ROBUSTNESS_TRIALS, SUITE_ROBUSTNESS_JOBS, rc);
    let robustness = (robustness, plan.since(mark));
    ranges.push(plan.range_since(mark));

    let mark = plan.checkpoint();
    let stages = plan_stages(plan, rc);
    let stages = (stages, plan.since(mark));
    ranges.push(plan.range_since(mark));

    SuiteCells {
        fig1,
        fig1_stats,
        fig2,
        window,
        quantum,
        fitness,
        smt,
        dynamic,
        baselines,
        robustness,
        stages,
        ranges,
    }
}

/// Fold every figure of the sweep from the executed cell set, in
/// emission order: `fig1a`, `fig1b`, `fig2a..c`, the ablations,
/// `dynamic`, `baselines`, `robustness`, `ablate-stages`.
pub fn fold_suite(cells: &SuiteCells, executed: &Executed) -> Vec<SuiteFigure> {
    let mut figs: Vec<(FigureSummary, CellStats)> = Vec::new();
    figs.push((fold_fig1a(&cells.fig1, executed), cells.fig1_stats));
    figs.push((fold_fig1b(&cells.fig1, executed), cells.fig1_stats));
    for (c, stats) in &cells.fig2 {
        figs.push((fold_fig2(c, executed), *stats));
    }
    figs.push((fold_window(&cells.window.0, executed), cells.window.1));
    figs.push((fold_quantum(&cells.quantum.0, executed), cells.quantum.1));
    figs.push((fold_fitness(&cells.fitness.0, executed), cells.fitness.1));
    figs.push((fold_smt(&cells.smt.0, executed), cells.smt.1));
    figs.push((fold_dynamic(&cells.dynamic.0, executed), cells.dynamic.1));
    figs.push((
        fold_baselines(&cells.baselines.0, executed),
        cells.baselines.1,
    ));
    figs.push((
        fold_robustness(&cells.robustness.0, executed),
        cells.robustness.1,
    ));
    figs.push((fold_stages(&cells.stages.0, executed), cells.stages.1));
    debug_assert_eq!(figs.len(), cells.ranges.len());
    figs.into_iter()
        .zip(cells.ranges.iter().cloned())
        .map(|((fig, cells), range)| SuiteFigure { fig, cells, range })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobgraph::Engine;
    use crate::runner::effective_workers;

    #[test]
    fn suite_plan_dedups_across_figures() {
        let rc = RunnerConfig::quick();
        let mut plan = Plan::new();
        let cells = plan_suite(&mut plan, &rc);
        assert!(
            (plan.declared() as usize) > plan.len(),
            "cross-figure sharing must dedup cells: declared {} unique {}",
            plan.declared(),
            plan.len()
        );
        // The ablations re-declare Figure 2C cells, so at least the
        // fitness ablation must report dedup.
        assert!(cells.fitness.1.deduped() > 0, "{:?}", cells.fitness.1);
        assert!(cells.baselines.1.deduped() > 0, "{:?}", cells.baselines.1);
    }

    #[test]
    fn suite_figures_match_standalone_runs() {
        // The single-plan sweep must fold byte-identical figures to the
        // per-figure entry points (spot-check two that share cells).
        let rc = RunnerConfig {
            scale: 0.02,
            ..RunnerConfig::default()
        };
        let mut plan = Plan::new();
        let cells = plan_suite(&mut plan, &rc);
        let executed = Engine::ephemeral().execute(&plan, effective_workers(&rc));
        let figs = fold_suite(&cells, &executed);
        let ids: Vec<&str> = figs.iter().map(|f| f.fig.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "fig1a",
                "fig1b",
                "fig2a",
                "fig2b",
                "fig2c",
                "ablate-window",
                "ablate-quantum",
                "ablate-fitness",
                "ablate-smt",
                "dynamic",
                "baselines",
                "robustness",
                "ablate-stages"
            ]
        );
        // Each figure's unique-cell range is attributable: the ranges
        // tile the plan without overlap.
        let mut covered = 0;
        for f in &figs {
            assert!(f.range.start <= f.range.end);
            covered = covered.max(f.range.end);
        }
        assert_eq!(covered, plan.len(), "ranges must cover the whole plan");
        let standalone = crate::fig2::fig2(Fig2Set::C, &rc);
        assert_eq!(format!("{standalone:?}"), format!("{:?}", figs[4].fig));
        let standalone = crate::baselines::baselines(&rc);
        assert_eq!(format!("{standalone:?}"), format!("{:?}", figs[10].fig));
    }
}
