//! Event counters.
//!
//! A [`Counter`] mimics one hardware event counter: a monotone accumulator
//! that can be read destructively (`take_delta`) or non-destructively
//! (`total`). A [`CounterSet`] groups the counters of a single thread, the
//! same granularity at which the `perfctr` driver virtualizes the PMU.

use std::fmt;

/// The hardware events the simulated PMU can count.
///
/// The paper's policies use only [`EventKind::BusTransactions`] (the Pentium 4
/// `IOQ_allocation` / bus-transactions-any event). The others are provided
/// because the simulator produces them for free and extensions (cache-aware
/// ablations, symbiosis metrics) consume them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Transactions issued on the front-side bus (64 bytes each on the
    /// paper's Xeon platform).
    BusTransactions,
    /// Elapsed cycles while the thread was scheduled on a cpu.
    /// (The simulator counts wall-microseconds-on-cpu; at a fixed clock the
    /// two are proportional.)
    CyclesOnCpu,
    /// Virtual progress: microseconds of *useful* work completed. Not
    /// observable on real hardware — exposed for validation and tests only.
    VirtualProgress,
    /// Number of times the thread was placed on a cpu whose cache it did not
    /// already occupy (cold start / migration).
    ColdStarts,
    /// Number of scheduling quanta in which the thread ran at all.
    QuantaRun,
}

impl EventKind {
    /// Every defined event kind, in a fixed order (used for dense storage).
    pub const ALL: [EventKind; 5] = [
        EventKind::BusTransactions,
        EventKind::CyclesOnCpu,
        EventKind::VirtualProgress,
        EventKind::ColdStarts,
        EventKind::QuantaRun,
    ];

    /// Dense index of this event within [`EventKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            EventKind::BusTransactions => 0,
            EventKind::CyclesOnCpu => 1,
            EventKind::VirtualProgress => 2,
            EventKind::ColdStarts => 3,
            EventKind::QuantaRun => 4,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::BusTransactions => "bus_transactions",
            EventKind::CyclesOnCpu => "cycles_on_cpu",
            EventKind::VirtualProgress => "virtual_progress",
            EventKind::ColdStarts => "cold_starts",
            EventKind::QuantaRun => "quanta_run",
        };
        f.write_str(s)
    }
}

/// One monotone event counter.
///
/// `total` only grows (the simulator adds non-negative amounts); a separate
/// high-water mark of what has already been consumed supports
/// read-and-reset semantics without ever rolling the hardware count back —
/// exactly how user-space samples a `perfctr` virtual counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    total: f64,
    consumed: f64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate `amount` events. Negative amounts are a logic error in the
    /// producer and are rejected (counters are monotone).
    ///
    /// # Panics
    /// Panics if `amount` is negative or NaN.
    pub fn add(&mut self, amount: f64) {
        assert!(
            amount >= 0.0 && amount.is_finite(),
            "counter increments must be finite and non-negative, got {amount}"
        );
        self.total += amount;
    }

    /// Total events since creation (never decreases).
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Total events truncated to an integer, as real hardware would report.
    #[inline]
    pub fn total_u64(&self) -> u64 {
        self.total as u64
    }

    /// Events accumulated since the previous `take_delta` call, and mark
    /// them consumed. This is the sampling primitive: the CPU manager calls
    /// it at every sampling point.
    pub fn take_delta(&mut self) -> f64 {
        let d = self.total - self.consumed;
        self.consumed = self.total;
        d
    }

    /// Events accumulated since the previous `take_delta`, without
    /// consuming them.
    #[inline]
    pub fn peek_delta(&self) -> f64 {
        self.total - self.consumed
    }
}

/// All counters belonging to one thread.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counters: [Counter; EventKind::ALL.len()],
}

impl CounterSet {
    /// A fresh set with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared access to a specific counter.
    #[inline]
    pub fn get(&self, kind: EventKind) -> &Counter {
        &self.counters[kind.index()]
    }

    /// Mutable access to a specific counter.
    #[inline]
    pub fn get_mut(&mut self, kind: EventKind) -> &mut Counter {
        &mut self.counters[kind.index()]
    }

    /// Accumulate events of `kind`.
    #[inline]
    pub fn add(&mut self, kind: EventKind, amount: f64) {
        self.get_mut(kind).add(amount);
    }

    /// Iterate `(kind, total)` pairs.
    pub fn totals(&self) -> impl Iterator<Item = (EventKind, f64)> + '_ {
        EventKind::ALL
            .iter()
            .map(move |&k| (k, self.get(k).total()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_and_delta_resets() {
        let mut c = Counter::new();
        c.add(10.0);
        assert_eq!(c.total(), 10.0);
        assert_eq!(c.take_delta(), 10.0);
        assert_eq!(c.take_delta(), 0.0);
        c.add(2.5);
        assert_eq!(c.peek_delta(), 2.5);
        assert_eq!(c.take_delta(), 2.5);
        assert_eq!(c.total(), 12.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_increment_rejected() {
        Counter::new().add(-1.0);
    }

    #[test]
    fn truncated_view_matches_hardware_semantics() {
        let mut c = Counter::new();
        c.add(3.9);
        assert_eq!(c.total_u64(), 3);
    }

    #[test]
    fn counter_set_addresses_each_event_independently() {
        let mut s = CounterSet::new();
        s.add(EventKind::BusTransactions, 100.0);
        s.add(EventKind::CyclesOnCpu, 7.0);
        assert_eq!(s.get(EventKind::BusTransactions).total(), 100.0);
        assert_eq!(s.get(EventKind::CyclesOnCpu).total(), 7.0);
        assert_eq!(s.get(EventKind::VirtualProgress).total(), 0.0);
    }

    #[test]
    fn event_index_is_dense_and_consistent() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
