//! Periodic rate estimation from raw counters.
//!
//! The paper's CPU manager polls every thread's bus-transaction counter
//! **twice per scheduling quantum**, accumulates the deltas, and publishes a
//! transactions/µs rate into the application's shared arena. [`Sampler`]
//! packages that logic: it remembers, per thread, the counter value and
//! timestamp of the previous sample and converts deltas into rates, with an
//! optional smoothing window (the raw material for the Quanta Window
//! policy — although the policy layer keeps its own window over *per-quantum*
//! aggregates, having window support here lets tests cross-validate both).

use std::collections::BTreeMap;

use crate::counter::EventKind;
use crate::registry::{Registry, ThreadKey};

/// Configuration for a [`Sampler`].
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Nominal sampling period in µs (information only; the sampler uses
    /// actual timestamps, so jittered or late samples still produce correct
    /// rates).
    pub period_us: u64,
    /// Number of most recent samples averaged by [`Sampler::windowed_rate`].
    /// `1` reproduces latest-sample behaviour.
    pub window: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        // The paper uses a 200 ms quantum sampled twice -> 100 ms period,
        // and a 5-sample window for the Quanta Window policy.
        Self {
            period_us: 100_000,
            window: 5,
        }
    }
}

/// One rate observation for one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Timestamp (simulated µs) at which the sample was taken.
    pub at_us: u64,
    /// Interval covered by the sample, µs.
    pub interval_us: u64,
    /// Bus transactions observed in the interval.
    pub transactions: f64,
    /// Estimated rate over the interval, tx/µs.
    pub rate_tx_per_us: f64,
}

#[derive(Debug, Default, Clone)]
struct PerThread {
    last_total: f64,
    last_at_us: u64,
    history: Vec<RateSample>, // ring-ish: we truncate from the front
}

/// Converts monotone counters into per-thread bus-transaction rates.
#[derive(Debug, Clone)]
pub struct Sampler {
    cfg: SamplerConfig,
    threads: BTreeMap<ThreadKey, PerThread>,
}

impl Sampler {
    /// Create a sampler with the given configuration.
    pub fn new(cfg: SamplerConfig) -> Self {
        assert!(cfg.window >= 1, "window must be at least 1 sample");
        Self {
            cfg,
            threads: BTreeMap::new(),
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> SamplerConfig {
        self.cfg
    }

    /// Forget a thread (thread exit).
    pub fn forget(&mut self, t: ThreadKey) {
        self.threads.remove(&t);
    }

    /// Take a sample for `t` at simulated time `now_us`.
    ///
    /// The first sample for a thread covers the interval since time 0 (or
    /// since registration if the caller primes with [`Sampler::prime`]).
    /// A zero-length interval yields a zero rate rather than dividing by
    /// zero — the paper's manager can legitimately sample twice at the same
    /// scheduling point when quanta are cut short by job arrival.
    pub fn sample(&mut self, reg: &Registry, t: ThreadKey, now_us: u64) -> RateSample {
        let total = reg.total(t, EventKind::BusTransactions);
        let st = self.threads.entry(t).or_default();
        let interval_us = now_us.saturating_sub(st.last_at_us);
        let transactions = (total - st.last_total).max(0.0);
        let rate = if interval_us == 0 {
            0.0
        } else {
            transactions / interval_us as f64
        };
        let s = RateSample {
            at_us: now_us,
            interval_us,
            transactions,
            rate_tx_per_us: rate,
        };
        st.last_total = total;
        st.last_at_us = now_us;
        st.history.push(s);
        let extra = st.history.len().saturating_sub(self.cfg.window.max(1));
        if extra > 0 {
            st.history.drain(..extra);
        }
        s
    }

    /// Prime a thread's baseline at `now_us` without recording a sample —
    /// used when a thread connects to the CPU manager mid-run so its first
    /// real sample does not cover pre-connection history.
    pub fn prime(&mut self, reg: &Registry, t: ThreadKey, now_us: u64) {
        let total = reg.total(t, EventKind::BusTransactions);
        let st = self.threads.entry(t).or_default();
        st.last_total = total;
        st.last_at_us = now_us;
    }

    /// Most recent sample for `t`, if any.
    pub fn latest(&self, t: ThreadKey) -> Option<RateSample> {
        self.threads.get(&t).and_then(|s| s.history.last().copied())
    }

    /// Mean rate over the last `window` samples (fewer if the thread is
    /// young). Returns `None` if no samples exist. The mean is weighted by
    /// each sample's interval so uneven sampling does not bias the estimate.
    pub fn windowed_rate(&self, t: ThreadKey) -> Option<f64> {
        let st = self.threads.get(&t)?;
        if st.history.is_empty() {
            return None;
        }
        let (tx, us) = st.history.iter().fold((0.0f64, 0u64), |(tx, us), s| {
            (tx + s.transactions, us + s.interval_us)
        });
        if us == 0 {
            Some(0.0)
        } else {
            Some(tx / us as f64)
        }
    }

    /// Number of samples currently held for `t`.
    pub fn history_len(&self, t: ThreadKey) -> usize {
        self.threads.get(&t).map_or(0, |s| s.history.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(t: ThreadKey) -> Registry {
        let mut r = Registry::new();
        r.register(t);
        r
    }

    #[test]
    fn rate_is_delta_over_interval() {
        let t = ThreadKey(1);
        let mut r = reg_with(t);
        let mut s = Sampler::new(SamplerConfig {
            period_us: 100,
            window: 3,
        });
        r.add(t, EventKind::BusTransactions, 200.0);
        let a = s.sample(&r, t, 100);
        assert_eq!(a.rate_tx_per_us, 2.0);
        r.add(t, EventKind::BusTransactions, 50.0);
        let b = s.sample(&r, t, 200);
        assert_eq!(b.rate_tx_per_us, 0.5);
    }

    #[test]
    fn zero_interval_gives_zero_rate_not_nan() {
        let t = ThreadKey(1);
        let mut r = reg_with(t);
        let mut s = Sampler::new(SamplerConfig::default());
        r.add(t, EventKind::BusTransactions, 10.0);
        let a = s.sample(&r, t, 0);
        assert_eq!(a.rate_tx_per_us, 0.0);
        assert!(a.rate_tx_per_us.is_finite());
    }

    #[test]
    fn windowed_rate_is_interval_weighted() {
        let t = ThreadKey(1);
        let mut r = reg_with(t);
        let mut s = Sampler::new(SamplerConfig {
            period_us: 100,
            window: 5,
        });
        // 100 µs at 10 tx/µs, then 900 µs at 0 tx/µs => 1000 tx / 1000 µs = 1.0
        r.add(t, EventKind::BusTransactions, 1000.0);
        s.sample(&r, t, 100);
        s.sample(&r, t, 1000);
        let w = s.windowed_rate(t).unwrap();
        assert!((w - 1.0).abs() < 1e-12, "got {w}");
    }

    #[test]
    fn window_truncates_history() {
        let t = ThreadKey(1);
        let mut r = reg_with(t);
        let mut s = Sampler::new(SamplerConfig {
            period_us: 10,
            window: 2,
        });
        for i in 1..=5u64 {
            r.add(t, EventKind::BusTransactions, 10.0);
            s.sample(&r, t, i * 10);
        }
        assert_eq!(s.history_len(t), 2);
    }

    #[test]
    fn prime_discards_preconnection_history() {
        let t = ThreadKey(1);
        let mut r = reg_with(t);
        let mut s = Sampler::new(SamplerConfig::default());
        r.add(t, EventKind::BusTransactions, 1_000_000.0); // before connecting
        s.prime(&r, t, 500);
        r.add(t, EventKind::BusTransactions, 100.0);
        let a = s.sample(&r, t, 600);
        assert_eq!(a.transactions, 100.0);
        assert_eq!(a.rate_tx_per_us, 1.0);
    }

    #[test]
    fn forget_clears_state() {
        let t = ThreadKey(1);
        let mut r = reg_with(t);
        let mut s = Sampler::new(SamplerConfig::default());
        r.add(t, EventKind::BusTransactions, 10.0);
        s.sample(&r, t, 10);
        s.forget(t);
        assert!(s.latest(t).is_none());
        assert_eq!(s.history_len(t), 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = Sampler::new(SamplerConfig {
            period_us: 1,
            window: 0,
        });
    }
}
