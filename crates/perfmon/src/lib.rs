//! Simulated performance-monitoring counters.
//!
//! The ICPP 2003 paper reads hardware performance-monitoring counters (via
//! Mikael Pettersson's `perfctr` Linux driver) to observe, per thread, the
//! number of **bus transactions** issued since the last read. The scheduling
//! policies never see anything else from the hardware: just monotone event
//! counts keyed by thread, sampled at scheduler-controlled instants.
//!
//! This crate reproduces exactly that contract on top of the simulator:
//!
//! * [`EventKind`] — the event set a Pentium-4-era PMU exposes that the paper
//!   uses (bus transactions) plus a few neighbours useful for extensions.
//! * [`Counter`] — one monotone event counter (read, read-and-reset-delta).
//! * [`CounterSet`] — all counters of one thread (what `perfctr` calls a
//!   per-thread *virtual counter* file).
//! * [`Registry`] — all counter sets on the machine, keyed by an opaque
//!   thread id. The simulator increments counters; schedulers sample them.
//! * [`Sampler`] — periodic rate estimation: turns counter deltas into
//!   transactions/µs rates, the quantity both paper policies consume. The
//!   paper samples **twice per scheduling quantum**; the sampler is
//!   parameterized accordingly.
//!
//! Counts are kept in `f64` internally because the fluid simulator produces
//! fractional transactions per tick; reads expose both the fractional total
//! and a truncated `u64` view (what real hardware would show).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod registry;
pub mod sampler;

pub use counter::{Counter, CounterSet, EventKind};
pub use registry::{Registry, ThreadKey};
pub use sampler::{RateSample, Sampler, SamplerConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_rate_estimation() {
        let mut reg = Registry::new();
        let t = ThreadKey(7);
        reg.register(t);
        // Simulate 1000 µs of a thread issuing 5 tx/µs.
        reg.add(t, EventKind::BusTransactions, 5000.0);
        let mut sampler = Sampler::new(SamplerConfig {
            period_us: 1000,
            window: 1,
        });
        let s = sampler.sample(&reg, t, 1000);
        assert!((s.rate_tx_per_us - 5.0).abs() < 1e-9);
    }
}
