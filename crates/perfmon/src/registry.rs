//! The machine-wide counter registry.
//!
//! The simulator owns a [`Registry`] and accumulates events into it every
//! tick; schedulers and the CPU manager read from it at sampling points.
//! Threads are identified by an opaque [`ThreadKey`] so this crate does not
//! depend on the simulator's thread type.

use crate::counter::{CounterSet, EventKind};

/// Opaque thread identifier. The simulator guarantees uniqueness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadKey(pub u64);

/// All per-thread counter sets on the machine.
///
/// Counter sets live in a dense slot vector indexed by the key's integer
/// value: the simulator hands out small sequential thread ids, so lookups
/// on the per-tick accounting path are a bounds check and an add rather
/// than a tree walk. Iteration is in ascending key order (slot order),
/// which keeps the scheduling policies and every experiment in the
/// reproduction bit-for-bit repeatable across runs.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    slots: Vec<Option<CounterSet>>,
    live: usize,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a thread, creating zeroed counters for it. Registering an
    /// existing thread is a no-op (its counts are preserved), mirroring how
    /// opening an already-open perfctr file does not reset it.
    pub fn register(&mut self, t: ThreadKey) {
        let i = t.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].is_none() {
            self.slots[i] = Some(CounterSet::default());
            self.live += 1;
        }
    }

    /// Remove a thread's counters (thread exit). Returns the final set so
    /// accounting can archive totals.
    pub fn unregister(&mut self, t: ThreadKey) -> Option<CounterSet> {
        let taken = self.slots.get_mut(t.0 as usize).and_then(Option::take);
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Whether `t` has registered counters.
    pub fn contains(&self, t: ThreadKey) -> bool {
        self.slot(t).is_some()
    }

    /// Number of registered threads.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no thread is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn slot(&self, t: ThreadKey) -> Option<&CounterSet> {
        self.slots.get(t.0 as usize).and_then(Option::as_ref)
    }

    /// Accumulate `amount` events of `kind` for thread `t`.
    ///
    /// # Panics
    /// Panics if `t` is not registered — producers must register threads
    /// before counting against them; silently dropping events would corrupt
    /// rate estimates.
    pub fn add(&mut self, t: ThreadKey, kind: EventKind, amount: f64) {
        self.slots
            .get_mut(t.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("thread {t:?} not registered with perfmon"))
            .add(kind, amount);
    }

    /// Shared access to one thread's counters.
    pub fn counters(&self, t: ThreadKey) -> Option<&CounterSet> {
        self.slot(t)
    }

    /// Mutable access to one thread's counters (for destructive sampling).
    pub fn counters_mut(&mut self, t: ThreadKey) -> Option<&mut CounterSet> {
        self.slots.get_mut(t.0 as usize).and_then(Option::as_mut)
    }

    /// Total of `kind` for thread `t`, or 0 if unregistered.
    pub fn total(&self, t: ThreadKey, kind: EventKind) -> f64 {
        self.slot(t).map_or(0.0, |s| s.get(kind).total())
    }

    /// Sum of `kind` across a group of threads — how the CPU manager
    /// accumulates per-application bandwidth from per-thread counters.
    pub fn group_total(&self, threads: &[ThreadKey], kind: EventKind) -> f64 {
        threads.iter().map(|&t| self.total(t, kind)).sum()
    }

    /// Deterministic iteration over all `(thread, counters)` pairs, in
    /// ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadKey, &CounterSet)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (ThreadKey(i as u64), s)))
    }

    /// Sum of `kind` over every registered thread (machine-wide rate
    /// numerator, e.g. for utilization reports).
    pub fn machine_total(&self, kind: EventKind) -> f64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.get(kind).total())
            .sum()
    }

    /// Machine-wide totals for every event kind, as `(snake_case_name,
    /// total)` pairs in [`EventKind::ALL`] order — the shape the metrics
    /// registry's gauges and the run manifest consume.
    pub fn export_totals(&self) -> Vec<(String, f64)> {
        EventKind::ALL
            .iter()
            .map(|&k| (k.to_string(), self.machine_total(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_preserves_counts() {
        let mut r = Registry::new();
        let t = ThreadKey(1);
        r.register(t);
        r.add(t, EventKind::BusTransactions, 42.0);
        r.register(t);
        assert_eq!(r.total(t, EventKind::BusTransactions), 42.0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn counting_against_unregistered_thread_panics() {
        let mut r = Registry::new();
        r.add(ThreadKey(9), EventKind::BusTransactions, 1.0);
    }

    #[test]
    fn group_total_sums_only_named_threads() {
        let mut r = Registry::new();
        for i in 0..4 {
            r.register(ThreadKey(i));
            r.add(
                ThreadKey(i),
                EventKind::BusTransactions,
                10.0 * (i + 1) as f64,
            );
        }
        let g = r.group_total(&[ThreadKey(0), ThreadKey(2)], EventKind::BusTransactions);
        assert_eq!(g, 10.0 + 30.0);
        assert_eq!(r.machine_total(EventKind::BusTransactions), 100.0);
    }

    #[test]
    fn unregister_returns_final_counts() {
        let mut r = Registry::new();
        let t = ThreadKey(3);
        r.register(t);
        r.add(t, EventKind::ColdStarts, 2.0);
        let set = r.unregister(t).expect("was registered");
        assert_eq!(set.get(EventKind::ColdStarts).total(), 2.0);
        assert!(!r.contains(t));
        assert!(r.unregister(t).is_none());
    }

    #[test]
    fn export_totals_covers_every_kind_in_fixed_order() {
        let mut r = Registry::new();
        r.register(ThreadKey(0));
        r.add(ThreadKey(0), EventKind::BusTransactions, 12.5);
        r.add(ThreadKey(0), EventKind::ColdStarts, 2.0);
        let totals = r.export_totals();
        assert_eq!(totals.len(), EventKind::ALL.len());
        assert_eq!(totals[0], ("bus_transactions".to_string(), 12.5));
        assert_eq!(totals[3], ("cold_starts".to_string(), 2.0));
        assert_eq!(totals[1].1, 0.0);
    }

    #[test]
    fn iteration_is_deterministic_and_sorted() {
        let mut r = Registry::new();
        for id in [5u64, 1, 9, 3] {
            r.register(ThreadKey(id));
        }
        let order: Vec<u64> = r.iter().map(|(k, _)| k.0).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }
}
