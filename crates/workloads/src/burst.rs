//! Bursty demand: the Raytrace model.
//!
//! Section 5 of the paper: *"A detailed analysis of Raytrace revealed a
//! highly irregular bus transactions pattern. The sensitivity of 'Latest
//! Quantum' to sudden changes of bandwidth consumption has probably led to
//! this problematic behavior."* The Quanta Window policy exists precisely
//! to smooth such bursts.
//!
//! [`TwoStateBurst`] is a two-state semi-Markov process over **wall time**:
//! the thread alternates between a high-demand and a low-demand state with
//! exponentially distributed sojourn times (seeded, deterministic). Sojourn
//! means are chosen at quantum scale so the burst a policy measures in one
//! quantum is frequently stale by the next — the failure mode that hurts
//! Latest Quantum in Figure 2B.

use busbw_sim::{Demand, DemandModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two-state bursty demand over wall time.
#[derive(Debug, Clone)]
pub struct TwoStateBurst {
    base_rate: f64,
    mu: f64,
    high_scale: f64,
    low_scale: f64,
    mean_high_us: f64,
    mean_low_us: f64,
    rng: StdRng,
    in_high: bool,
    next_switch_us: u64,
}

impl TwoStateBurst {
    /// Build a burst model.
    ///
    /// * `base_rate`, `mu` — as for a constant model.
    /// * `high_scale`/`low_scale` — rate multipliers in the two states.
    /// * `mean_high_us`/`mean_low_us` — mean sojourn times.
    /// * `seed` — RNG seed; identical seeds give identical processes.
    ///
    /// # Panics
    /// Panics if scales are negative or sojourn means are not positive.
    pub fn new(
        base_rate: f64,
        mu: f64,
        high_scale: f64,
        low_scale: f64,
        mean_high_us: f64,
        mean_low_us: f64,
        seed: u64,
    ) -> Self {
        assert!(
            high_scale >= 0.0 && low_scale >= 0.0,
            "scales must be non-negative"
        );
        assert!(
            mean_high_us > 0.0 && mean_low_us > 0.0,
            "sojourn means must be positive"
        );
        let mut s = Self {
            base_rate,
            mu,
            high_scale,
            low_scale,
            mean_high_us,
            mean_low_us,
            rng: StdRng::seed_from_u64(seed),
            in_high: true,
            next_switch_us: 0,
        };
        s.next_switch_us = s.draw_sojourn(0);
        s
    }

    /// A Raytrace-flavoured burst process: ±55 % swings with quantum-scale
    /// sojourns, normalized so the long-run mean rate equals `base_rate`.
    pub fn raytrace(base_rate: f64, mu: f64, seed: u64) -> Self {
        // Mean = (w_h·1.55 + w_l·0.45)·base with w_h = mean_h/(mean_h+mean_l).
        // mean_h = 250 ms, mean_l = 300 ms → w_h = 0.4545,
        // 0.4545·1.55 + 0.5455·0.45 = 0.950 → rescale by 1/0.950.
        let (hs, ls) = (1.55, 0.45);
        let (mh, ml) = (250_000.0, 300_000.0);
        let wh = mh / (mh + ml);
        let mean_scale = wh * hs + (1.0 - wh) * ls;
        Self::new(base_rate / mean_scale, mu, hs, ls, mh, ml, seed)
    }

    fn draw_sojourn(&mut self, from_us: u64) -> u64 {
        let mean = if self.in_high {
            self.mean_high_us
        } else {
            self.mean_low_us
        };
        // Exponential via inverse CDF; clamp u away from 0.
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        let d = -mean * u.ln();
        from_us + d.max(1.0) as u64
    }

    /// Long-run fraction of time in the high state.
    pub fn high_fraction(&self) -> f64 {
        self.mean_high_us / (self.mean_high_us + self.mean_low_us)
    }
}

impl DemandModel for TwoStateBurst {
    fn demand_at(&mut self, _vt_us: f64, wall_us: u64) -> Demand {
        while wall_us >= self.next_switch_us {
            self.in_high = !self.in_high;
            self.next_switch_us = self.draw_sojourn(self.next_switch_us);
        }
        let scale = if self.in_high {
            self.high_scale
        } else {
            self.low_scale
        };
        // The high state is proportionally more memory-bound (more traffic
        // per unit of work ⇒ more stall time), capped at 1.
        let mu = (self.mu * scale).clamp(0.0, 1.0);
        Demand::new(self.base_rate * scale, mu)
    }

    fn mean_rate(&self) -> f64 {
        let wh = self.high_fraction();
        self.base_rate * (wh * self.high_scale + (1.0 - wh) * self.low_scale)
    }

    fn constant_for(&self, _vt_us: f64, wall_us: u64) -> (f64, f64) {
        // This model is driven purely by wall time, so per the trait
        // contract the *virtual* horizon is infinite and only the wall
        // horizon is bounded: constant until the next state switch. If
        // the caller's clock is already past `next_switch_us` (demand_at
        // not yet called for this instant), the horizon collapses to 0 —
        // "don't coarsen" — which is always safe.
        (
            f64::INFINITY,
            self.next_switch_us.saturating_sub(wall_us) as f64,
        )
    }

    fn next_change(&self, _vt_us: f64, _wall_us: u64) -> (f64, f64) {
        // The switch instant is held exactly as an integer; returning it
        // directly avoids the `wall_us + horizon` rounding of the default
        // and lets the event-driven machine compare `now < edge` exactly.
        (f64::INFINITY, self.next_switch_us as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_trace() {
        let mut a = TwoStateBurst::raytrace(10.0, 0.8, 42);
        let mut b = TwoStateBurst::raytrace(10.0, 0.8, 42);
        for t in (0..5_000_000).step_by(10_000) {
            assert_eq!(a.demand_at(0.0, t), b.demand_at(0.0, t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TwoStateBurst::raytrace(10.0, 0.8, 1);
        let mut b = TwoStateBurst::raytrace(10.0, 0.8, 2);
        let mut diff = 0;
        for t in (0..5_000_000).step_by(10_000) {
            if a.demand_at(0.0, t) != b.demand_at(0.0, t) {
                diff += 1;
            }
        }
        assert!(diff > 10, "only {diff} differing samples");
    }

    #[test]
    fn long_run_mean_rate_is_close_to_nominal() {
        let mut m = TwoStateBurst::raytrace(10.0, 0.8, 7);
        let step = 1_000u64;
        let horizon = 400_000_000u64; // 400 s: many sojourns
        let mut acc = 0.0;
        let mut n = 0u64;
        let mut t = 0;
        while t < horizon {
            acc += m.demand_at(0.0, t).rate;
            n += 1;
            t += step;
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 10.0).abs() < 0.8,
            "long-run mean {mean}, expected ~10"
        );
    }

    #[test]
    fn rates_actually_switch_between_two_levels() {
        let mut m = TwoStateBurst::raytrace(10.0, 0.8, 3);
        let mut seen = std::collections::BTreeSet::new();
        for t in (0..20_000_000).step_by(50_000) {
            seen.insert((m.demand_at(0.0, t).rate * 1000.0) as i64);
        }
        assert_eq!(seen.len(), 2, "expected exactly two rate levels: {seen:?}");
    }

    #[test]
    fn mu_follows_burst_state_and_is_clamped() {
        let mut m = TwoStateBurst::new(10.0, 0.9, 1.5, 0.3, 1000.0, 1000.0, 5);
        let mut mus = std::collections::BTreeSet::new();
        for t in (0..2_000_000).step_by(500) {
            let d = m.demand_at(0.0, t);
            assert!((0.0..=1.0).contains(&d.mu));
            mus.insert((d.mu * 1e6) as i64);
        }
        assert_eq!(mus.len(), 2);
    }

    #[test]
    fn wall_clock_can_jump_far_ahead() {
        // A descheduled thread asks about demand long after its last query;
        // the model must catch up through many switches without issue.
        let mut m = TwoStateBurst::raytrace(10.0, 0.8, 11);
        let _ = m.demand_at(0.0, 0);
        let d = m.demand_at(0.0, 3_600_000_000); // one hour later
        assert!(d.rate > 0.0);
    }

    #[test]
    #[should_panic(expected = "sojourn means")]
    fn zero_sojourn_rejected() {
        TwoStateBurst::new(1.0, 0.5, 1.0, 1.0, 0.0, 1.0, 0);
    }

    #[test]
    fn next_change_is_the_exact_switch_instant() {
        let mut m = TwoStateBurst::raytrace(10.0, 0.8, 42);
        let d0 = m.demand_at(0.0, 0);
        let (virt_edge, wall_edge) = m.next_change(0.0, 0);
        assert_eq!(virt_edge, f64::INFINITY);
        let switch = wall_edge as u64;
        // Demand is unchanged strictly before the edge and switched at it.
        assert_eq!(m.demand_at(0.0, switch - 1), d0);
        assert_ne!(m.demand_at(0.0, switch), d0);
        // And the edge agrees with the relative horizon at any earlier
        // wall clock.
        let mut m2 = TwoStateBurst::raytrace(10.0, 0.8, 42);
        let _ = m2.demand_at(0.0, 0);
        let (_, h) = m2.constant_for(0.0, 100);
        assert_eq!(100.0 + h, wall_edge);
    }
}
