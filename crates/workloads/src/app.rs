//! Application specifications.
//!
//! An [`AppSpec`] is the workload-level description of one application
//! *instance*: how many threads, how much work, and how the threads behave
//! on the bus. It compiles down to a [`busbw_sim::AppDescriptor`] — a gang
//! of [`busbw_sim::ThreadSpec`]s with concrete demand models.

use busbw_sim::{AppDescriptor, ConstantDemand, DemandModel, ThreadSpec};
use serde::{Deserialize, Serialize};

use crate::burst::TwoStateBurst;
use crate::phases::CyclicPhases;

/// How an application's bus demand evolves over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Constant rate and memory-boundness for the whole run.
    Constant,
    /// Two-phase oscillation around the base rate over virtual time:
    /// `amplitude` (fraction of base) and `period_us` (virtual µs).
    Oscillating {
        /// Swing around the base rate, in `[0, 1)`.
        amplitude: f64,
        /// Full cycle length in virtual µs.
        period_us: f64,
    },
    /// Seeded two-state bursts over wall time (the Raytrace pattern).
    Bursty,
}

/// One application instance's specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Display name (e.g. `"CG"`, `"BBMA"`).
    pub name: String,
    /// Gang width (the paper runs every application with 2 threads and
    /// every microbenchmark with 1).
    pub nthreads: usize,
    /// Useful work per thread in virtual µs (`INFINITY` = run forever).
    pub work_us_per_thread: f64,
    /// Solo bus-transaction rate per thread, tx/µs.
    pub rate_per_thread: f64,
    /// Memory-boundness in `[0, 1]`.
    pub mu: f64,
    /// Cache sensitivity in `[0, 1]` (speed lost when running cold).
    pub cache_sensitivity: f64,
    /// Rate shape over time.
    pub behavior: Behavior,
    /// Barrier interval in virtual µs (`None` = uncoupled threads).
    /// The paper's applications are OpenMP/Splash-2 codes whose threads
    /// synchronize frequently; microbenchmarks are independent.
    pub barrier_interval_us: Option<f64>,
}

impl AppSpec {
    /// A constant-rate application.
    pub fn constant(
        name: impl Into<String>,
        nthreads: usize,
        work_us_per_thread: f64,
        rate_per_thread: f64,
        mu: f64,
    ) -> Self {
        Self {
            name: name.into(),
            nthreads,
            work_us_per_thread,
            rate_per_thread,
            mu,
            cache_sensitivity: 0.1,
            behavior: Behavior::Constant,
            barrier_interval_us: None,
        }
    }

    /// Couple the gang with barriers every `interval_us` of virtual time.
    pub fn with_barrier_interval(mut self, interval_us: f64) -> Self {
        assert!(interval_us > 0.0, "barrier interval must be positive");
        self.barrier_interval_us = Some(interval_us);
        self
    }

    /// Override the cache sensitivity.
    pub fn with_cache_sensitivity(mut self, s: f64) -> Self {
        self.cache_sensitivity = s;
        self
    }

    /// Override the behaviour.
    pub fn with_behavior(mut self, b: Behavior) -> Self {
        self.behavior = b;
        self
    }

    /// Scale the work volume (shrink for fast tests, grow for long runs).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.work_us_per_thread *= factor;
        self
    }

    /// Cumulative solo rate across the gang, tx/µs — the quantity the
    /// paper's Figure 1A reports per application.
    pub fn cumulative_rate(&self) -> f64 {
        self.rate_per_thread * self.nthreads as f64
    }

    /// Instantiate the demand model for thread `idx` of this app.
    /// `seed` decorrelates bursty instances; constant/oscillating models
    /// ignore it.
    fn model_for_thread(&self, idx: usize, seed: u64) -> Box<dyn DemandModel> {
        match self.behavior {
            Behavior::Constant => Box::new(ConstantDemand::new(self.rate_per_thread, self.mu)),
            Behavior::Oscillating {
                amplitude,
                period_us,
            } => Box::new(CyclicPhases::oscillating(
                self.rate_per_thread,
                self.mu,
                amplitude,
                period_us,
            )),
            Behavior::Bursty => Box::new(TwoStateBurst::raytrace(
                self.rate_per_thread,
                self.mu,
                // Mix in the thread index so gang members burst
                // independently (as real Raytrace worker threads do),
                // while staying deterministic per (seed, idx).
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(idx as u64),
            )),
        }
    }

    /// Compile to a simulator [`AppDescriptor`].
    ///
    /// # Panics
    /// Panics if the spec is degenerate (no threads, non-positive work).
    pub fn descriptor(&self, seed: u64) -> AppDescriptor {
        assert!(self.nthreads > 0, "app {} has no threads", self.name);
        assert!(
            self.work_us_per_thread > 0.0,
            "app {} has non-positive work",
            self.name
        );
        let threads = (0..self.nthreads)
            .map(|i| {
                ThreadSpec::new(self.work_us_per_thread, self.model_for_thread(i, seed))
                    .with_cache_sensitivity(self.cache_sensitivity)
            })
            .collect();
        let desc = AppDescriptor::new(self.name.clone(), threads);
        match self.barrier_interval_us {
            Some(b) => desc.with_barrier_interval(b),
            None => desc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_rate_multiplies_threads() {
        let a = AppSpec::constant("x", 2, 1e6, 5.0, 0.5);
        assert_eq!(a.cumulative_rate(), 10.0);
    }

    #[test]
    fn descriptor_carries_gang_width_and_sensitivity() {
        let a = AppSpec::constant("x", 3, 1e6, 5.0, 0.5).with_cache_sensitivity(0.4);
        let d = a.descriptor(0);
        assert_eq!(d.threads.len(), 3);
        assert_eq!(d.name, "x");
        for t in &d.threads {
            assert_eq!(t.cache_sensitivity, 0.4);
            assert_eq!(t.work_us, 1e6);
        }
    }

    #[test]
    fn scaled_changes_work_only() {
        let a = AppSpec::constant("x", 2, 1e6, 5.0, 0.5).scaled(0.25);
        assert_eq!(a.work_us_per_thread, 250_000.0);
        assert_eq!(a.rate_per_thread, 5.0);
    }

    #[test]
    fn bursty_threads_are_decorrelated_within_a_gang() {
        let a = AppSpec::constant("rt", 2, 1e6, 10.0, 0.8).with_behavior(Behavior::Bursty);
        let mut d = a.descriptor(1);
        let mut t0 = d.threads.remove(0);
        let mut t1 = d.threads.remove(0);
        let mut diff = 0;
        for w in (0..30_000_000u64).step_by(100_000) {
            if t0.model.demand_at(0.0, w) != t1.model.demand_at(0.0, w) {
                diff += 1;
            }
        }
        assert!(diff > 5, "gang members burst in lockstep ({diff} diffs)");
    }

    #[test]
    fn oscillating_behavior_produces_cyclic_model() {
        let a = AppSpec::constant("lu", 1, 1e6, 4.0, 0.3).with_behavior(Behavior::Oscillating {
            amplitude: 0.5,
            period_us: 1000.0,
        });
        let mut d = a.descriptor(0);
        let m = &mut d.threads[0].model;
        let hi = m.demand_at(0.0, 0).rate;
        let lo = m.demand_at(600.0, 0).rate;
        assert!(hi > 5.9 && lo < 2.1, "hi {hi} lo {lo}");
    }

    #[test]
    #[should_panic(expected = "no threads")]
    fn zero_thread_app_rejected() {
        AppSpec::constant("x", 0, 1e6, 1.0, 0.1).descriptor(0);
    }
}
