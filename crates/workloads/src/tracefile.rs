//! Replaying recorded demand traces.
//!
//! Everything else in this crate *models* application behaviour; this
//! module lets a user bring a **measured profile** instead: a sequence of
//! `(duration, rate, mu)` segments — e.g. exported from hardware counters
//! of a real run at the CPU manager's sampling period — replayed over the
//! thread's virtual time (repeating from the start when exhausted, like
//! an iterative application re-entering its phase loop).
//!
//! A tiny CSV form is supported for files produced by spreadsheet or
//! script: one `duration_us,rate,mu` triple per line, `#` comments.

use busbw_sim::{Demand, DemandModel};

/// One trace segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSegment {
    /// Segment length in virtual µs.
    pub duration_us: f64,
    /// Solo bus demand during the segment, tx/µs.
    pub rate: f64,
    /// Memory-boundness during the segment.
    pub mu: f64,
}

/// A demand model that replays a recorded trace cyclically.
///
/// ```
/// use busbw_workloads::tracefile::TraceDemand;
/// use busbw_sim::DemandModel;
/// let mut t = TraceDemand::parse_csv("1000, 2.0, 0.2\n500, 8.0, 0.8").unwrap();
/// assert_eq!(t.demand_at(0.0, 0).rate, 2.0);
/// assert_eq!(t.demand_at(1200.0, 0).rate, 8.0);
/// assert!((t.mean_rate() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TraceDemand {
    segments: Vec<TraceSegment>,
    total_us: f64,
}

impl TraceDemand {
    /// Build from segments.
    ///
    /// # Panics
    /// Panics on an empty trace or invalid segment values.
    pub fn new(segments: Vec<TraceSegment>) -> Self {
        assert!(!segments.is_empty(), "trace must have at least one segment");
        for s in &segments {
            assert!(s.duration_us > 0.0, "segment durations must be positive");
            assert!(s.rate >= 0.0 && s.rate.is_finite(), "bad rate {}", s.rate);
            assert!((0.0..=1.0).contains(&s.mu), "mu out of range: {}", s.mu);
        }
        let total_us = segments.iter().map(|s| s.duration_us).sum();
        Self { segments, total_us }
    }

    /// Parse the CSV form: `duration_us,rate,mu` per line; blank lines and
    /// `#` comments ignored.
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let mut segments = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(format!(
                    "line {}: expected 3 fields, got {}",
                    lineno + 1,
                    parts.len()
                ));
            }
            let parse = |s: &str, what: &str| -> Result<f64, String> {
                s.parse()
                    .map_err(|e| format!("line {}: bad {what} '{s}': {e}", lineno + 1))
            };
            segments.push(TraceSegment {
                duration_us: parse(parts[0], "duration")?,
                rate: parse(parts[1], "rate")?,
                mu: parse(parts[2], "mu")?,
            });
        }
        if segments.is_empty() {
            return Err("trace file contains no segments".into());
        }
        Ok(Self::new(segments))
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the trace has no segments (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// One full replay's length, virtual µs.
    pub fn cycle_us(&self) -> f64 {
        self.total_us
    }

    fn segment_at(&self, vt_us: f64) -> &TraceSegment {
        let mut pos = vt_us.rem_euclid(self.total_us);
        for s in &self.segments {
            if pos < s.duration_us {
                return s;
            }
            pos -= s.duration_us;
        }
        self.segments.last().expect("non-empty")
    }
}

impl DemandModel for TraceDemand {
    fn demand_at(&mut self, vt_us: f64, _wall_us: u64) -> Demand {
        let s = self.segment_at(vt_us);
        Demand::new(s.rate, s.mu)
    }

    fn mean_rate(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.rate * s.duration_us)
            .sum::<f64>()
            / self.total_us
    }

    fn constant_for(&self, vt_us: f64, _wall_us: u64) -> (f64, f64) {
        // Replayed over virtual time only, so per the trait contract the
        // wall horizon is infinite: constant until the current segment's
        // virtual-time edge.
        let mut pos = vt_us.rem_euclid(self.total_us);
        for s in &self.segments {
            if pos < s.duration_us {
                return (s.duration_us - pos, f64::INFINITY);
            }
            pos -= s.duration_us;
        }
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(d: f64, r: f64, m: f64) -> TraceSegment {
        TraceSegment {
            duration_us: d,
            rate: r,
            mu: m,
        }
    }

    #[test]
    fn replays_segments_in_order_and_cycles() {
        let mut t = TraceDemand::new(vec![seg(100.0, 2.0, 0.2), seg(50.0, 8.0, 0.8)]);
        assert_eq!(t.demand_at(0.0, 0).rate, 2.0);
        assert_eq!(t.demand_at(99.0, 0).rate, 2.0);
        assert_eq!(t.demand_at(100.0, 0).rate, 8.0);
        assert_eq!(t.demand_at(149.0, 0).rate, 8.0);
        // Cycles.
        assert_eq!(t.demand_at(150.0, 0).rate, 2.0);
        assert_eq!(t.cycle_us(), 150.0);
    }

    #[test]
    fn mean_rate_is_duration_weighted() {
        let t = TraceDemand::new(vec![seg(100.0, 2.0, 0.2), seg(50.0, 8.0, 0.8)]);
        // (2·100 + 8·50)/150 = 4.0
        assert!((t.mean_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn csv_parses_with_comments_and_blanks() {
        let text = "\n# measured on xeon\n100, 2.0, 0.2\n\n50,8.0,0.8\n";
        let t = TraceDemand::parse_csv(text).expect("parse");
        assert_eq!(t.len(), 2);
        assert!((t.mean_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        assert!(TraceDemand::parse_csv("1,2")
            .unwrap_err()
            .contains("3 fields"));
        assert!(TraceDemand::parse_csv("a,b,c")
            .unwrap_err()
            .contains("bad duration"));
        assert!(TraceDemand::parse_csv("# only comments\n")
            .unwrap_err()
            .contains("no segments"));
    }

    #[test]
    #[should_panic(expected = "mu out of range")]
    fn invalid_mu_rejected() {
        TraceDemand::new(vec![seg(1.0, 1.0, 2.0)]);
    }

    #[test]
    fn runs_inside_the_simulator() {
        use busbw_sim::{AppDescriptor, Machine, StopCondition, ThreadSpec, XEON_4WAY};
        let model = TraceDemand::new(vec![seg(50_000.0, 1.0, 0.1), seg(50_000.0, 9.0, 0.8)]);
        let mut m = Machine::new(XEON_4WAY);
        let app = m.add_app(AppDescriptor::new(
            "traced",
            vec![ThreadSpec::new(300_000.0, Box::new(model))],
        ));
        struct Pin;
        impl busbw_sim::Scheduler for Pin {
            fn schedule(&mut self, v: &busbw_sim::MachineView<'_>) -> busbw_sim::Decision {
                busbw_sim::Decision {
                    assignments: v
                        .threads()
                        .filter(|t| t.is_runnable())
                        .map(|t| busbw_sim::Assignment {
                            thread: t.id,
                            cpu: busbw_sim::CpuId(0),
                        })
                        .collect(),
                    next_resched_in_us: 100_000,
                    sample_period_us: None,
                }
            }
        }
        let out = m.run(&mut Pin, StopCondition::AppsFinished(vec![app]));
        assert!(out.condition_met);
        let report = m.app_report(app).unwrap();
        // Mean rate 5 tx/µs × ~300 ms (plus cold-start boost early on).
        assert!(
            (1_400_000.0..2_100_000.0).contains(&report.transactions),
            "tx {}",
            report.transactions
        );
    }
}
