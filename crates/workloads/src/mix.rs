//! Workload compositions: the exact mixes of the paper's experiments.
//!
//! * Figure 1 (motivation, §3 — no processor sharing):
//!   * solo: one app instance (2 threads) alone;
//!   * `2 Apps`: two instances (4 threads);
//!   * `1 Appl + 2 BBMA`: one instance + two BBMA threads;
//!   * `1 Appl + 2 nBBMA`: one instance + two nBBMA threads.
//! * Figure 2 (evaluation, §5 — multiprogramming degree 2, 8 threads on
//!   4 cpus):
//!   * set A: 2 × app + 4 × BBMA;
//!   * set B: 2 × app + 4 × nBBMA;
//!   * set C: 2 × app + 2 × BBMA + 2 × nBBMA.
//!
//! A [`WorkloadSpec`] lists the application instances and marks which are
//! *measured* (the paper reports the mean turnaround of the application
//! instances; the microbenchmarks run forever as background load).

use busbw_sim::{AppId, Machine, MachineConfig};

use crate::app::AppSpec;
use crate::micro::{bbma, nbbma};
use crate::paper::{paper_app, PaperApp};

/// A composed workload: app specs plus which of them are measured.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Name for reports (e.g. `"2xCG + 4xBBMA"`).
    pub name: String,
    /// The application instances, in arrival order.
    pub apps: Vec<AppSpec>,
    /// Indices into `apps` of the instances whose turnaround is measured.
    pub measured: Vec<usize>,
}

impl WorkloadSpec {
    /// Scale every instance's work volume (for fast tests).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.apps = self
            .apps
            .into_iter()
            .map(|a| {
                if a.work_us_per_thread.is_finite() {
                    a.scaled(factor)
                } else {
                    a
                }
            })
            .collect();
        self
    }

    /// Total number of threads across all instances.
    pub fn total_threads(&self) -> usize {
        self.apps.iter().map(|a| a.nthreads).sum()
    }
}

/// A [`WorkloadSpec`] instantiated on a [`Machine`].
pub struct BuiltWorkload {
    /// The machine, ready to run.
    pub machine: Machine,
    /// App ids in spec order.
    pub app_ids: Vec<AppId>,
    /// Ids of the measured instances.
    pub measured_ids: Vec<AppId>,
}

/// Instantiate a workload on a fresh machine. `seed` feeds the bursty
/// demand models (instance `i` gets `seed + i` so identical specs differ).
pub fn build_machine(spec: &WorkloadSpec, cfg: MachineConfig, seed: u64) -> BuiltWorkload {
    let mut machine = Machine::new(cfg);
    let mut app_ids = Vec::with_capacity(spec.apps.len());
    for (i, a) in spec.apps.iter().enumerate() {
        app_ids.push(machine.add_app(a.descriptor(seed.wrapping_add(i as u64))));
    }
    let measured_ids = spec.measured.iter().map(|&i| app_ids[i]).collect();
    BuiltWorkload {
        machine,
        app_ids,
        measured_ids,
    }
}

/// §3 experiment 1: one instance alone.
pub fn fig1_solo(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("1x{}", app.name()),
        apps: vec![paper_app(app)],
        measured: vec![0],
    }
}

/// §3 experiment 2: two identical instances, 2 threads each.
pub fn fig1_two_instances(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("2x{}", app.name()),
        apps: vec![paper_app(app), paper_app(app)],
        measured: vec![0, 1],
    }
}

/// §3 experiment 3: one instance + two BBMA.
pub fn fig1_with_bbma(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("1x{} + 2xBBMA", app.name()),
        apps: vec![paper_app(app), bbma(), bbma()],
        measured: vec![0],
    }
}

/// §3 experiment 4: one instance + two nBBMA.
pub fn fig1_with_nbbma(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("1x{} + 2xnBBMA", app.name()),
        apps: vec![paper_app(app), nbbma(), nbbma()],
        measured: vec![0],
    }
}

/// §5 set A: 2 × app + 4 × BBMA (8 threads, saturated background).
pub fn fig2_set_a(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("2x{} + 4xBBMA", app.name()),
        apps: vec![
            paper_app(app),
            paper_app(app),
            bbma(),
            bbma(),
            bbma(),
            bbma(),
        ],
        measured: vec![0, 1],
    }
}

/// §5 set B: 2 × app + 4 × nBBMA (8 threads, idle-bus background).
pub fn fig2_set_b(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("2x{} + 4xnBBMA", app.name()),
        apps: vec![
            paper_app(app),
            paper_app(app),
            nbbma(),
            nbbma(),
            nbbma(),
            nbbma(),
        ],
        measured: vec![0, 1],
    }
}

/// §5 set C: 2 × app + 2 × BBMA + 2 × nBBMA (mixed background).
pub fn fig2_set_c(app: PaperApp) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("2x{} + 2xBBMA + 2xnBBMA", app.name()),
        apps: vec![
            paper_app(app),
            paper_app(app),
            bbma(),
            bbma(),
            nbbma(),
            nbbma(),
        ],
        measured: vec![0, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::XEON_4WAY;

    #[test]
    fn fig2_sets_have_multiprogramming_degree_two() {
        // 8 threads on the 4-cpu machine, per §5.
        for mk in [fig2_set_a, fig2_set_b, fig2_set_c] {
            let w = mk(PaperApp::Cg);
            assert_eq!(w.total_threads(), 8, "{}", w.name);
            assert_eq!(w.measured, vec![0, 1]);
        }
    }

    #[test]
    fn fig1_sets_fit_without_processor_sharing() {
        for mk in [
            fig1_solo as fn(PaperApp) -> WorkloadSpec,
            fig1_two_instances,
            fig1_with_bbma,
            fig1_with_nbbma,
        ] {
            let w = mk(PaperApp::Sp);
            assert!(w.total_threads() <= 4, "{}", w.name);
        }
    }

    #[test]
    fn build_machine_registers_all_apps_and_marks_measured() {
        let w = fig2_set_c(PaperApp::Mg);
        let b = build_machine(&w, XEON_4WAY, 1);
        assert_eq!(b.app_ids.len(), 6);
        assert_eq!(b.measured_ids.len(), 2);
        let v = b.machine.view();
        assert_eq!(v.apps().count(), 6);
        assert_eq!(v.threads().count(), 8);
    }

    #[test]
    fn scaling_preserves_infinite_microbenchmarks() {
        let w = fig2_set_a(PaperApp::Cg).scaled(0.1);
        assert_eq!(w.apps[0].work_us_per_thread, 600_000.0);
        assert!(w.apps[2].work_us_per_thread.is_infinite());
    }

    #[test]
    fn identical_instances_get_different_burst_seeds() {
        let w = fig1_two_instances(PaperApp::Raytrace);
        let mut b = build_machine(&w, XEON_4WAY, 9);
        // Extract demand traces via the machine's counters is heavy; just
        // check the descriptors differ by probing fresh descriptors.
        let mut d0 = w.apps[0].descriptor(9);
        let mut d1 = w.apps[1].descriptor(10);
        let mut diff = 0;
        for t in (0..20_000_000u64).step_by(100_000) {
            if d0.threads[0].model.demand_at(0.0, t) != d1.threads[0].model.demand_at(0.0, t) {
                diff += 1;
            }
        }
        assert!(diff > 5, "instances burst in lockstep");
        let _ = &mut b;
    }
}
