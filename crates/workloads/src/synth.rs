//! Synthetic workload generation.
//!
//! §5's evaluation uses fixed compositions around each paper application.
//! The robustness extension draws *random* job populations — "applications
//! of varying bandwidth requirements, from very low to close to the limit
//! of saturation" (§1) — to check that the policies' wins are not an
//! artifact of the hand-picked mixes. Generation is seeded and
//! deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::app::{AppSpec, Behavior};
use crate::paper::DEFAULT_SOLO_WORK_US;

/// Parameters for the generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of application jobs to draw.
    pub jobs: usize,
    /// Per-thread solo rate range (tx/µs).
    pub rate_range: (f64, f64),
    /// Gang width range (inclusive).
    pub width_range: (usize, usize),
    /// Probability a job is bursty (Raytrace-like).
    pub bursty_prob: f64,
    /// Work per thread (virtual µs).
    pub work_us: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            jobs: 4,
            rate_range: (0.2, 12.0),
            width_range: (1, 2),
            bursty_prob: 0.2,
            work_us: DEFAULT_SOLO_WORK_US,
        }
    }
}

/// Memory-boundness correlated with demand, as across the paper's suite:
/// light codes are compute bound, heavy streamers are memory bound.
fn mu_for_rate(rate_per_thread: f64, jitter: f64) -> f64 {
    (0.05 + 0.072 * rate_per_thread + jitter).clamp(0.02, 0.95)
}

/// Draw a random job population (deterministic per seed).
pub fn generate(cfg: &SynthConfig, seed: u64) -> Vec<AppSpec> {
    assert!(cfg.jobs > 0, "need at least one job");
    assert!(
        cfg.rate_range.0 > 0.0 && cfg.rate_range.1 >= cfg.rate_range.0,
        "bad rate range"
    );
    assert!(
        cfg.width_range.0 >= 1 && cfg.width_range.1 >= cfg.width_range.0,
        "bad width range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cfg.jobs)
        .map(|i| {
            let rate = rng.gen_range(cfg.rate_range.0..=cfg.rate_range.1);
            let width = rng.gen_range(cfg.width_range.0..=cfg.width_range.1);
            let jitter = rng.gen_range(-0.05..0.05);
            let bursty = rng.gen_bool(cfg.bursty_prob.clamp(0.0, 1.0));
            let mut spec = AppSpec::constant(
                format!("synth{i}"),
                width,
                cfg.work_us,
                rate,
                mu_for_rate(rate, jitter),
            )
            .with_cache_sensitivity(rng.gen_range(0.02..0.3))
            .with_barrier_interval(100_000.0);
            if bursty {
                spec = spec.with_behavior(Behavior::Bursty);
            }
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg, 5);
        let b = generate(&cfg, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rate_per_thread, y.rate_per_thread);
            assert_eq!(x.nthreads, y.nthreads);
            assert_eq!(x.behavior, y.behavior);
        }
        let c = generate(&cfg, 6);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.rate_per_thread != y.rate_per_thread));
    }

    #[test]
    fn respects_configured_ranges() {
        let cfg = SynthConfig {
            jobs: 50,
            rate_range: (1.0, 3.0),
            width_range: (2, 3),
            bursty_prob: 0.0,
            work_us: 1e6,
        };
        for s in generate(&cfg, 9) {
            assert!((1.0..=3.0).contains(&s.rate_per_thread));
            assert!((2..=3).contains(&s.nthreads));
            assert_eq!(s.behavior, Behavior::Constant);
            assert!((0.0..=1.0).contains(&s.mu));
        }
    }

    #[test]
    fn bursty_probability_one_makes_everything_bursty() {
        let cfg = SynthConfig {
            jobs: 10,
            bursty_prob: 1.0,
            ..SynthConfig::default()
        };
        for s in generate(&cfg, 1) {
            assert_eq!(s.behavior, Behavior::Bursty);
        }
    }

    #[test]
    fn mu_correlates_with_rate() {
        assert!(mu_for_rate(0.3, 0.0) < mu_for_rate(11.0, 0.0));
        assert!(mu_for_rate(100.0, 0.0) <= 0.95);
        assert!(mu_for_rate(0.0, -1.0) >= 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        generate(
            &SynthConfig {
                jobs: 0,
                ..SynthConfig::default()
            },
            0,
        );
    }
}
