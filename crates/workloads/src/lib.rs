//! Application models for the ICPP 2003 reproduction.
//!
//! The paper evaluates with eleven OpenMP codes from Splash-2 and the NAS
//! parallel benchmarks, each hand-optimized for cache locality, plus two
//! microbenchmarks:
//!
//! * **BBMA** — a column-wise array walker with ~0 % L2 hit rate that
//!   issues back-to-back memory accesses (23.6 bus transactions/µs per
//!   instance): the bus saturator.
//! * **nBBMA** — a row-wise walker over half the L2 with ~100 % hit rate
//!   (0.0037 tx/µs): a cpu hog that leaves the bus idle.
//!
//! The scheduling policies never see application *code* — only per-thread
//! bus-transaction rates from the performance counters. So each application
//! is modeled by what the counters would show: its solo transaction rate,
//! its memory-boundness, its cache sensitivity, and the *shape* of its rate
//! over time (constant, phased, or bursty). [`paper`] holds the calibrated
//! table for all eleven applications; [`mix`] builds the exact workload
//! compositions of the paper's Figures 1 and 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod burst;
pub mod micro;
pub mod mix;
pub mod paper;
pub mod phases;
pub mod synth;
pub mod tracefile;

pub use app::{AppSpec, Behavior};
pub use burst::TwoStateBurst;
pub use micro::{bbma, nbbma, BBMA_RATE_TX_PER_US, NBBMA_RATE_TX_PER_US};
pub use mix::{
    build_machine, fig1_solo, fig1_two_instances, fig1_with_bbma, fig1_with_nbbma, fig2_set_a,
    fig2_set_b, fig2_set_c, BuiltWorkload, WorkloadSpec,
};
pub use paper::{paper_app, paper_apps, PaperApp, DEFAULT_SOLO_WORK_US};
pub use phases::{CyclicPhases, Phase};
pub use synth::{generate as generate_synth, SynthConfig};
pub use tracefile::{TraceDemand, TraceSegment};
