//! The paper's two microbenchmarks.
//!
//! **BBMA** (§3): walks a 2×L2-sized array column-wise so every write
//! misses — ~0 % hit rate, back-to-back bus transactions, measured at
//! **23.6 tx/µs** per instance. One thread, runs until stopped.
//!
//! **nBBMA** (§3): walks a ½×L2-sized array row-wise — ~100 % hit rate,
//! **0.0037 tx/µs**, negligible bus load. One thread, runs until stopped.
//!
//! Both are modeled as constant-rate, cache-insensitive (BBMA has no reuse
//! to lose; nBBMA's footprint rebuilds in microseconds), single-threaded,
//! infinite-work applications. A *native* executable equivalent (really
//! walking arrays) lives in `examples/native_microbench.rs` at the
//! workspace root.

use crate::app::AppSpec;

/// BBMA's measured bus-transaction rate (paper §3), tx/µs.
pub const BBMA_RATE_TX_PER_US: f64 = 23.6;

/// nBBMA's measured bus-transaction rate (paper §3), tx/µs.
pub const NBBMA_RATE_TX_PER_US: f64 = 0.0037;

/// The bus-saturating microbenchmark (one instance = one thread).
pub fn bbma() -> AppSpec {
    AppSpec::constant("BBMA", 1, f64::INFINITY, BBMA_RATE_TX_PER_US, 0.98)
        .with_cache_sensitivity(0.0)
}

/// The cache-resident, bus-idle microbenchmark (one instance = one thread).
pub fn nbbma() -> AppSpec {
    AppSpec::constant("nBBMA", 1, f64::INFINITY, NBBMA_RATE_TX_PER_US, 0.01)
        .with_cache_sensitivity(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbma_matches_paper_rate() {
        let b = bbma();
        assert_eq!(b.rate_per_thread, 23.6);
        assert_eq!(b.nthreads, 1);
        assert!(b.work_us_per_thread.is_infinite());
        assert!(b.mu > 0.9, "BBMA is almost fully memory bound");
    }

    #[test]
    fn nbbma_is_negligible_on_the_bus() {
        let n = nbbma();
        assert!(n.rate_per_thread < 0.01);
        assert!(n.mu < 0.05);
        // Two BBMA instances nearly saturate the paper's bus on their
        // own; two nBBMA instances do not register.
        assert!(2.0 * bbma().rate_per_thread > busbw_sim::PAPER_BUS_TX_PER_US * 1.5);
        assert!(2.0 * n.rate_per_thread < 0.01);
    }
}
