//! Cyclic phase profiles.
//!
//! Iterative solvers alternate compute-heavy and communication/memory-heavy
//! phases. The paper calls LU's bus requirements "irregular"; a cyclic
//! profile tied to *virtual* time (progress) reproduces that: the phase a
//! thread is in depends on how far it has gotten, not on the wall clock, so
//! a descheduled thread resumes mid-phase exactly where it stopped.

use busbw_sim::{Demand, DemandModel};

/// One phase of a cyclic profile.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Phase length in virtual µs.
    pub len_us: f64,
    /// Multiplier applied to the base rate during this phase.
    pub rate_scale: f64,
    /// Memory-boundness during this phase.
    pub mu: f64,
}

/// A demand model cycling through phases over virtual time.
#[derive(Debug, Clone)]
pub struct CyclicPhases {
    base_rate: f64,
    phases: Vec<Phase>,
    cycle_len: f64,
}

impl CyclicPhases {
    /// Build a cyclic profile. `base_rate` is in tx/µs; each phase scales
    /// it by its own factor.
    ///
    /// # Panics
    /// Panics on an empty phase list or non-positive phase lengths.
    pub fn new(base_rate: f64, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        for p in &phases {
            assert!(p.len_us > 0.0, "phase lengths must be positive");
            assert!(p.rate_scale >= 0.0, "rate scales must be non-negative");
            assert!((0.0..=1.0).contains(&p.mu), "phase mu must be in [0,1]");
        }
        let cycle_len = phases.iter().map(|p| p.len_us).sum();
        Self {
            base_rate,
            phases,
            cycle_len,
        }
    }

    /// A symmetric two-phase profile oscillating `amplitude` above/below
    /// the base rate, with `period_us` per full cycle. The high phase is
    /// more memory bound than the low phase by the same proportion.
    pub fn oscillating(base_rate: f64, mu: f64, amplitude: f64, period_us: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0,1)"
        );
        let half = period_us / 2.0;
        Self::new(
            base_rate,
            vec![
                Phase {
                    len_us: half,
                    rate_scale: 1.0 + amplitude,
                    mu: (mu * (1.0 + amplitude)).min(1.0),
                },
                Phase {
                    len_us: half,
                    rate_scale: 1.0 - amplitude,
                    mu: (mu * (1.0 - amplitude)).max(0.0),
                },
            ],
        )
    }

    fn phase_at(&self, vt_us: f64) -> &Phase {
        let mut pos = vt_us.rem_euclid(self.cycle_len);
        for p in &self.phases {
            if pos < p.len_us {
                return p;
            }
            pos -= p.len_us;
        }
        // Floating-point edge: land on the last phase.
        self.phases.last().expect("non-empty")
    }
}

impl DemandModel for CyclicPhases {
    fn demand_at(&mut self, vt_us: f64, _wall_us: u64) -> Demand {
        let p = self.phase_at(vt_us);
        Demand::new(self.base_rate * p.rate_scale, p.mu)
    }

    fn mean_rate(&self) -> f64 {
        let weighted: f64 = self.phases.iter().map(|p| p.rate_scale * p.len_us).sum();
        self.base_rate * weighted / self.cycle_len
    }

    fn constant_for(&self, vt_us: f64, _wall_us: u64) -> (f64, f64) {
        // This model is driven purely by virtual time, so per the trait
        // contract the wall horizon is infinite: demand is constant until
        // the current phase's virtual-time edge, no matter how much wall
        // time passes (a descheduled thread stays frozen mid-phase).
        let mut pos = vt_us.rem_euclid(self.cycle_len);
        for p in &self.phases {
            if pos < p.len_us {
                return (p.len_us - pos, f64::INFINITY);
            }
            pos -= p.len_us;
        }
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cycle_over_virtual_time() {
        let mut m = CyclicPhases::new(
            10.0,
            vec![
                Phase {
                    len_us: 100.0,
                    rate_scale: 2.0,
                    mu: 0.9,
                },
                Phase {
                    len_us: 300.0,
                    rate_scale: 0.5,
                    mu: 0.3,
                },
            ],
        );
        assert_eq!(m.demand_at(0.0, 0).rate, 20.0);
        assert_eq!(m.demand_at(99.9, 0).rate, 20.0);
        assert_eq!(m.demand_at(100.0, 0).rate, 5.0);
        assert_eq!(m.demand_at(399.9, 0).rate, 5.0);
        // Wraps.
        assert_eq!(m.demand_at(400.0, 0).rate, 20.0);
        assert_eq!(m.demand_at(450.0, 12345).rate, 20.0);
    }

    #[test]
    fn mean_rate_is_length_weighted() {
        let m = CyclicPhases::new(
            10.0,
            vec![
                Phase {
                    len_us: 100.0,
                    rate_scale: 2.0,
                    mu: 0.9,
                },
                Phase {
                    len_us: 300.0,
                    rate_scale: 0.5,
                    mu: 0.3,
                },
            ],
        );
        // (2.0·100 + 0.5·300)/400 = 0.875 → 8.75 tx/µs
        assert!((m.mean_rate() - 8.75).abs() < 1e-12);
    }

    #[test]
    fn oscillating_profile_preserves_mean() {
        let m = CyclicPhases::oscillating(8.0, 0.5, 0.4, 100_000.0);
        assert!((m.mean_rate() - 8.0).abs() < 1e-9);
        let mut m2 = m.clone();
        let hi = m2.demand_at(0.0, 0);
        let lo = m2.demand_at(60_000.0, 0);
        assert!(hi.rate > lo.rate);
        assert!(hi.mu > lo.mu);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        CyclicPhases::new(1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_phase_rejected() {
        CyclicPhases::new(
            1.0,
            vec![Phase {
                len_us: 0.0,
                rate_scale: 1.0,
                mu: 0.5,
            }],
        );
    }
}
