//! The eleven applications of the paper, calibrated.
//!
//! Figure 1A of the paper gives each application's cumulative solo bus
//! transaction rate when run with two threads, sorted in increasing order:
//! Radiosity, Water-nsqr, Volrend, Barnes, FMM, LU CB, BT, SP, MG,
//! Raytrace, CG — "from 0.48 to 23.31 bus transactions per microsecond".
//!
//! Only the two endpoints are stated numerically in the text; the
//! interior values below are **estimates read off the figure's shape**
//! (monotone, with the four rightmost — SP, MG, Raytrace, CG — high enough
//! that two instances push a ~29.5 tx/µs bus into saturation, per §3).
//! Memory-boundness (`mu`) is chosen so each class reproduces its Figure 1B
//! slowdowns; cache sensitivity encodes §3's observations that LU CB
//! (99.53 % L2 hit rate) and Water-nsqr are "very sensitive to thread
//! migrations among processors". LU and Raytrace get non-constant demand
//! shapes because §4 calls their bus requirements "irregular".
//!
//! Absolute runtimes are not reported in the paper; every application
//! instance gets the same solo work volume ([`DEFAULT_SOLO_WORK_US`]),
//! which only scales experiment duration, not any reported ratio.

use crate::app::{AppSpec, Behavior};

/// Default useful work per thread (virtual µs): 6 simulated seconds.
pub const DEFAULT_SOLO_WORK_US: f64 = 6_000_000.0;

/// Default barrier interval (virtual µs) for the paper applications.
/// OpenMP parallel loops and Splash-2 phases synchronize every few tens of
/// milliseconds of computation at these problem sizes. At 100 ms (one
/// Linux quantum of lead), a thread scheduled without its sibling for one
/// quantum mostly keeps working, but persistent de-coscheduling makes it
/// spin — the gang-scheduling motivation of §4 at realistic strength.
pub const DEFAULT_BARRIER_INTERVAL_US: f64 = 100_000.0;

/// The paper's eleven applications, in Figure 1A order (increasing solo
/// bus-transaction rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PaperApp {
    /// Splash-2 Radiosity — lowest bus demand of the suite.
    Radiosity,
    /// Splash-2 Water-nsquared — low demand, migration sensitive.
    WaterNsqr,
    /// Splash-2 Volrend.
    Volrend,
    /// Splash-2 Barnes.
    Barnes,
    /// Splash-2 FMM.
    Fmm,
    /// NAS LU (cache-blocked) — 99.53 % L2 hit rate, very cache sensitive,
    /// irregular bus pattern.
    LuCb,
    /// NAS BT.
    Bt,
    /// NAS SP — first of the four saturating applications.
    Sp,
    /// NAS MG.
    Mg,
    /// Splash-2 Raytrace — highly irregular, bursty bus pattern.
    Raytrace,
    /// NAS CG — highest bus demand: 23.31 tx/µs with two threads.
    Cg,
}

impl PaperApp {
    /// All eleven, in Figure 1A order.
    pub const ALL: [PaperApp; 11] = [
        PaperApp::Radiosity,
        PaperApp::WaterNsqr,
        PaperApp::Volrend,
        PaperApp::Barnes,
        PaperApp::Fmm,
        PaperApp::LuCb,
        PaperApp::Bt,
        PaperApp::Sp,
        PaperApp::Mg,
        PaperApp::Raytrace,
        PaperApp::Cg,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PaperApp::Radiosity => "Radiosity",
            PaperApp::WaterNsqr => "Water-nsqr",
            PaperApp::Volrend => "Volrend",
            PaperApp::Barnes => "Barnes",
            PaperApp::Fmm => "FMM",
            PaperApp::LuCb => "LU CB",
            PaperApp::Bt => "BT",
            PaperApp::Sp => "SP",
            PaperApp::Mg => "MG",
            PaperApp::Raytrace => "Raytrace",
            PaperApp::Cg => "CG",
        }
    }

    /// Parse a display name (case-insensitive, spaces/dashes ignored).
    pub fn from_name(s: &str) -> Option<Self> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        PaperApp::ALL.into_iter().find(|a| {
            a.name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase()
                == norm
        })
    }

    /// Calibration row: (cumulative 2-thread solo rate tx/µs,
    /// memory-boundness, cache sensitivity, behaviour).
    fn calibration(self) -> (f64, f64, f64, Behavior) {
        match self {
            // (rate_2t, mu, cache_sens, behavior)
            PaperApp::Radiosity => (0.48, 0.04, 0.12, Behavior::Constant),
            PaperApp::WaterNsqr => (1.15, 0.06, 0.45, Behavior::Constant),
            PaperApp::Volrend => (2.40, 0.10, 0.15, Behavior::Constant),
            PaperApp::Barnes => (4.00, 0.16, 0.15, Behavior::Constant),
            PaperApp::Fmm => (6.00, 0.22, 0.15, Behavior::Constant),
            PaperApp::LuCb => (
                7.60,
                0.18,
                0.60,
                Behavior::Oscillating {
                    amplitude: 0.45,
                    period_us: 400_000.0,
                },
            ),
            PaperApp::Bt => (12.00, 0.45, 0.10, Behavior::Constant),
            PaperApp::Sp => (19.50, 0.70, 0.08, Behavior::Constant),
            PaperApp::Mg => (20.50, 0.78, 0.08, Behavior::Constant),
            PaperApp::Raytrace => (21.30, 0.82, 0.10, Behavior::Bursty),
            PaperApp::Cg => (23.31, 0.85, 0.05, Behavior::Constant),
        }
    }
}

/// The [`AppSpec`] for one paper application instance (two threads, as in
/// every experiment of the paper).
pub fn paper_app(which: PaperApp) -> AppSpec {
    let (rate_2t, mu, sens, behavior) = which.calibration();
    AppSpec {
        name: which.name().to_string(),
        nthreads: 2,
        work_us_per_thread: DEFAULT_SOLO_WORK_US,
        rate_per_thread: rate_2t / 2.0,
        mu,
        cache_sensitivity: sens,
        behavior,
        barrier_interval_us: Some(DEFAULT_BARRIER_INTERVAL_US),
    }
}

/// All eleven application specs in Figure 1A order.
pub fn paper_apps() -> Vec<AppSpec> {
    PaperApp::ALL.into_iter().map(paper_app).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_the_paper_text() {
        assert_eq!(paper_app(PaperApp::Radiosity).cumulative_rate(), 0.48);
        assert_eq!(paper_app(PaperApp::Cg).cumulative_rate(), 23.31);
    }

    #[test]
    fn rates_are_sorted_increasing_like_figure_1a() {
        let rates: Vec<f64> = paper_apps().iter().map(|a| a.cumulative_rate()).collect();
        for w in rates.windows(2) {
            assert!(w[0] < w[1], "not increasing: {rates:?}");
        }
    }

    #[test]
    fn top_four_saturate_when_doubled() {
        use busbw_sim::PAPER_BUS_TX_PER_US;
        // §3: two instances of SP, MG, Raytrace, CG push the bus (29.5
        // tx/µs sustained) to or past capacity.
        for a in [PaperApp::Sp, PaperApp::Mg, PaperApp::Raytrace, PaperApp::Cg] {
            let double = 2.0 * paper_app(a).cumulative_rate();
            assert!(
                double > PAPER_BUS_TX_PER_US * 1.25,
                "{}: {double}",
                a.name()
            );
        }
        // While the others do not.
        for a in [PaperApp::Radiosity, PaperApp::Volrend, PaperApp::Fmm] {
            let double = 2.0 * paper_app(a).cumulative_rate();
            assert!(double < PAPER_BUS_TX_PER_US, "{}: {double}", a.name());
        }
    }

    #[test]
    fn migration_sensitive_apps_are_marked() {
        assert!(paper_app(PaperApp::LuCb).cache_sensitivity >= 0.5);
        assert!(paper_app(PaperApp::WaterNsqr).cache_sensitivity >= 0.4);
        assert!(paper_app(PaperApp::Cg).cache_sensitivity < 0.2);
    }

    #[test]
    fn irregular_apps_have_non_constant_behavior() {
        assert_ne!(paper_app(PaperApp::Raytrace).behavior, Behavior::Constant);
        assert_ne!(paper_app(PaperApp::LuCb).behavior, Behavior::Constant);
        assert_eq!(paper_app(PaperApp::Cg).behavior, Behavior::Constant);
    }

    #[test]
    fn every_app_uses_two_threads() {
        for a in paper_apps() {
            assert_eq!(a.nthreads, 2, "{}", a.name);
        }
    }

    #[test]
    fn name_roundtrip() {
        for a in PaperApp::ALL {
            assert_eq!(PaperApp::from_name(a.name()), Some(a));
        }
        assert_eq!(PaperApp::from_name("lucb"), Some(PaperApp::LuCb));
        assert_eq!(PaperApp::from_name("water nsqr"), Some(PaperApp::WaterNsqr));
        assert_eq!(PaperApp::from_name("nosuch"), None);
    }
}
