//! The event bus: a cloneable handle instrumented code emits into.

use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;
use crate::sink::{MemoryHandle, MemorySink, TraceSink};

/// Capacity of the bounded ring of recent events kept by every enabled
/// bus (post-mortem context independent of the sink).
pub const RECENT_CAPACITY: usize = 512;

/// A handle for emitting [`TraceEvent`]s.
///
/// Cloning is cheap (an `Arc` bump) and every clone feeds the same sink,
/// so one bus can be shared by the machine, the scheduler, and the CPU
/// manager of a single run. The disabled bus ([`EventBus::off`], also
/// `Default`) costs one branch per emission site — callers are expected
/// to guard event *construction* with [`EventBus::emits`] (which is also
/// false for an enabled bus whose sink discards, e.g.
/// [`crate::NullSink`]):
///
/// ```
/// # use busbw_trace::{EventBus, TraceEvent};
/// # let tracer = EventBus::off();
/// if tracer.emits() {
///     tracer.emit(TraceEvent::CoarseJump { at_us: 0, dt_us: 500, ticks_covered: 5 });
/// }
/// ```
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    state: Mutex<BusState>,
    /// Sink's [`TraceSink::records`] sampled at construction: false for a
    /// sink that provably discards everything, so hot paths can skip
    /// emission without taking the state lock.
    emits: bool,
}

struct BusState {
    sink: Box<dyn TraceSink>,
    ring: Ring,
}

impl EventBus {
    /// A disabled bus: `enabled()` is false, `emit` is a no-op.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled bus feeding `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        let emits = sink.records();
        Self {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(BusState {
                    sink,
                    ring: Ring::new(RECENT_CAPACITY),
                }),
                emits,
            })),
        }
    }

    /// An enabled bus collecting into memory; returns the read handle.
    pub fn memory() -> (Self, MemoryHandle) {
        let (sink, handle) = MemorySink::new();
        (Self::new(Box::new(sink)), handle)
    }

    /// Whether emissions reach a sink. Emission sites use this to skip
    /// event construction entirely when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether emitted events are observable anywhere: enabled *and* the
    /// sink records ([`TraceSink::records`]). Hot emission sites should
    /// gate on this rather than [`EventBus::enabled`] — a bus over a
    /// [`crate::NullSink`] is enabled but emits nothing, so per-event
    /// construction, locking, and ring bookkeeping can all be skipped.
    #[inline]
    pub fn emits(&self) -> bool {
        matches!(&self.inner, Some(inner) if inner.emits)
    }

    /// Record one event (no-op when disabled or the sink discards — see
    /// [`EventBus::emits`]; a non-recording sink also keeps no ring).
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            if !inner.emits {
                return;
            }
            let mut st = inner.state.lock().expect("trace bus poisoned");
            st.sink.record(&ev);
            st.ring.push(ev);
        }
    }

    /// The most recent events (oldest first), up to [`RECENT_CAPACITY`].
    /// Empty for a disabled bus.
    pub fn recent(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner
                .state
                .lock()
                .expect("trace bus poisoned")
                .ring
                .to_vec(),
            None => Vec::new(),
        }
    }

    /// Flush the sink (e.g. after a run completes).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .expect("trace bus poisoned")
                .sink
                .flush_sink();
        }
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Fixed-capacity ring of the most recent events.
struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    wrapped: bool,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap.min(64)),
            cap: cap.max(1),
            next: 0,
            wrapped: false,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.wrapped = true;
        }
        self.next = (self.next + 1) % self.cap;
    }

    fn to_vec(&self) -> Vec<TraceEvent> {
        if !self.wrapped {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::CoarseJump {
            at_us: t,
            dt_us: 1,
            ticks_covered: 1,
        }
    }

    #[test]
    fn disabled_bus_is_inert() {
        let bus = EventBus::off();
        assert!(!bus.enabled());
        assert!(!bus.emits());
        bus.emit(ev(1));
        assert!(bus.recent().is_empty());
        bus.flush();
    }

    #[test]
    fn null_sink_bus_is_enabled_but_does_not_emit() {
        let bus = EventBus::new(Box::new(crate::NullSink));
        assert!(bus.enabled(), "attached bus must report enabled");
        assert!(!bus.emits(), "discarding sink must not force emission");
        bus.emit(ev(1));
        // Nothing observable anywhere: no ring either.
        assert!(bus.recent().is_empty());
        bus.flush();
    }

    #[test]
    fn recording_sink_bus_emits() {
        let (bus, handle) = EventBus::memory();
        assert!(bus.enabled() && bus.emits());
        bus.emit(ev(3));
        assert_eq!(handle.len(), 1);
        assert_eq!(bus.recent().len(), 1);
    }

    #[test]
    fn clones_share_one_sink() {
        let (bus, handle) = EventBus::memory();
        let clone = bus.clone();
        bus.emit(ev(1));
        clone.emit(ev(2));
        assert_eq!(handle.len(), 2);
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let mut ring = Ring::new(4);
        for t in 0..10 {
            ring.push(ev(t));
        }
        let got: Vec<u64> = ring.to_vec().iter().map(|e| e.at_us()).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn recent_reflects_emissions_before_wrap() {
        let (bus, _handle) = EventBus::memory();
        bus.emit(ev(5));
        let recent = bus.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].at_us(), 5);
    }
}
