//! Run manifests: the machine-readable sidecar written next to each
//! `results/` artifact.

use std::path::Path;

use crate::json::{push_f64, quote};

/// FNV-1a 64-bit hash — the per-figure checksum algorithm. Stable,
/// dependency-free, and fast enough for CSV-sized artifacts.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Checksum record for one produced artifact file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactSum {
    /// Path of the artifact (as written).
    pub path: String,
    /// Size in bytes.
    pub bytes: u64,
    /// FNV-1a 64-bit checksum, lowercase hex.
    pub fnv1a64: String,
}

impl ArtifactSum {
    /// Read `path` and checksum its contents.
    pub fn of_file(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Ok(Self {
            path: path.display().to_string(),
            bytes: data.len() as u64,
            fnv1a64: format!("{:016x}", fnv1a64(&data)),
        })
    }
}

/// Description of the trace stream written alongside a run, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// Path of the JSONL trace file.
    pub path: String,
    /// Number of events written.
    pub events: u64,
}

/// The run manifest. Rendered with [`Manifest::to_json`]; parse it back
/// (or validate it) with [`crate::json::parse`].
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Figure/experiment identifier (e.g. `fig2a`).
    pub id: String,
    /// The full command line that produced the artifact.
    pub command: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Problem-size scale factor.
    pub scale: f64,
    /// Worker threads used by the parallel runner (0 = auto).
    pub workers: usize,
    /// Scheduling policies exercised, in column order.
    pub policies: Vec<String>,
    /// `git describe` of the producing tree.
    pub git_describe: String,
    /// Wall-clock time to produce the artifact, milliseconds.
    pub wall_ms: u64,
    /// Checksums of every artifact file written.
    pub artifacts: Vec<ArtifactSum>,
    /// The trace stream, when `--trace-out` was active.
    pub trace: Option<TraceInfo>,
    /// Metrics-registry snapshot, pre-rendered as a JSON object (see
    /// `busbw-metrics`); `None` renders as `null`.
    pub metrics_json: Option<String>,
}

impl Manifest {
    /// Render the manifest as a JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"id\": {},", quote(&self.id));
        let _ = writeln!(out, "  \"command\": {},", quote(&self.command));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"scale\": ");
        push_f64(&mut out, self.scale);
        out.push_str(",\n");
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        out.push_str("  \"policies\": [");
        for (i, p) in self.policies.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&quote(p));
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"git_describe\": {},", quote(&self.git_describe));
        let _ = writeln!(out, "  \"wall_ms\": {},", self.wall_ms);
        out.push_str("  \"artifacts\": [");
        for (i, a) in self.artifacts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": {}, \"bytes\": {}, \"fnv1a64\": {}}}",
                quote(&a.path),
                a.bytes,
                quote(&a.fnv1a64)
            );
        }
        if self.artifacts.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        match &self.trace {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "  \"trace\": {{\"path\": {}, \"events\": {}}},",
                    quote(&t.path),
                    t.events
                );
            }
            None => out.push_str("  \"trace\": null,\n"),
        }
        match &self.metrics_json {
            Some(m) => {
                let _ = writeln!(out, "  \"metrics\": {m}");
            }
            None => out.push_str("  \"metrics\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_renders_parseable_json() {
        let m = Manifest {
            id: "fig2a".into(),
            command: "experiments fig2a --scale 0.1".into(),
            seed: 42,
            scale: 0.1,
            workers: 4,
            policies: vec!["linux".into(), "latest quantum".into()],
            git_describe: "abc1234-dirty".into(),
            wall_ms: 1234,
            artifacts: vec![ArtifactSum {
                path: "results/fig2a.csv".into(),
                bytes: 100,
                fnv1a64: "00000000deadbeef".into(),
            }],
            trace: Some(TraceInfo {
                path: "t.jsonl".into(),
                events: 77,
            }),
            metrics_json: Some("{\"counters\": {\"ticks\": 10}}".into()),
        };
        let v = parse(&m.to_json()).expect("manifest parses");
        assert_eq!(v.get("id").unwrap().as_str(), Some("fig2a"));
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("policies").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("trace").unwrap().get("events").unwrap().as_f64(),
            Some(77.0)
        );
        assert_eq!(
            v.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("ticks")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
    }

    #[test]
    fn empty_manifest_still_parses() {
        let v = parse(&Manifest::default().to_json()).expect("parses");
        assert_eq!(v.get("trace"), Some(&Value::Null));
        assert_eq!(v.get("metrics"), Some(&Value::Null));
        assert_eq!(v.get("artifacts").unwrap().as_array().unwrap().len(), 0);
    }
}
