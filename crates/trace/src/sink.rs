//! Pluggable trace sinks: null, in-memory, JSONL file.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// Where emitted events go. Implementations receive events one at a
/// time, already serialized order; they must not reorder.
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flush any buffered output (called when the owning bus is
    /// finished; a no-op for unbuffered sinks).
    fn flush_sink(&mut self) {}

    /// Whether recorded events are observable anywhere (default true).
    /// A sink that provably discards everything returns false, letting
    /// the owning bus skip event construction and dispatch entirely on
    /// hot paths ([`crate::EventBus::emits`]).
    fn records(&self) -> bool {
        true
    }
}

/// Discards every event. Exists to exercise the full bus plumbing
/// (construction, attachment, flush) without I/O; hot emission sites may
/// skip it entirely via [`TraceSink::records`], so it measures the
/// *attached-but-silent* configuration, not per-event dispatch.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}

    fn records(&self) -> bool {
        false
    }
}

/// Shared read handle for a [`MemorySink`]'s collected events.
#[derive(Debug, Clone, Default)]
pub struct MemoryHandle {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemoryHandle {
    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace memory poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace memory poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the recorded events, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace memory poisoned"))
    }
}

/// Collects events in memory; tests read them back through the paired
/// [`MemoryHandle`].
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// A fresh sink plus its read handle.
    pub fn new() -> (Self, MemoryHandle) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                events: events.clone(),
            },
            MemoryHandle { events },
        )
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events
            .lock()
            .expect("trace memory poisoned")
            .push(ev.clone());
    }
}

/// Streams events to a file, one JSON object per line (JSONL).
pub struct JsonlSink {
    w: BufWriter<File>,
    line: String,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            w: BufWriter::new(File::create(path)?),
            line: String::with_capacity(128),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.line.clear();
        ev.write_json(&mut self.line);
        self.line.push('\n');
        // Trace output is best-effort: a full disk should not abort the
        // run that the trace exists to explain.
        let _ = self.w.write_all(self.line.as_bytes());
    }

    fn flush_sink(&mut self) {
        let _ = self.w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::CoarseJump {
            at_us: t,
            dt_us: 100,
            ticks_covered: 1,
        }
    }

    #[test]
    fn memory_sink_preserves_order_and_supports_take() {
        let (mut sink, handle) = MemorySink::new();
        for t in [1, 2, 3] {
            sink.record(&ev(t));
        }
        assert_eq!(handle.len(), 3);
        let got = handle.take();
        assert_eq!(got, vec![ev(1), ev(2), ev(3)]);
        assert!(handle.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let dir = std::env::temp_dir().join("busbw-trace-test-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        for t in [10, 20] {
            sink.record(&ev(t));
        }
        sink.flush_sink();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("line parses");
        }
        std::fs::remove_file(&path).ok();
    }
}
