//! Structural validation of a captured trace stream.
//!
//! [`validate_stream`] checks the two stream-level invariants every
//! well-formed per-run trace must satisfy:
//!
//! 1. **Monotonic timestamps** — `at_us` never decreases from one event to
//!    the next, *excluding* the kinds that legitimately carry retrospective
//!    or wall-clock times: `app_finished` / `run_unfinished` report
//!    sub-tick completion times (several apps finishing inside one
//!    coarsened tick are emitted in app-id order with arbitrary finish
//!    times), and `mgr_*` events carry wall-time and report `at_us = 0`.
//! 2. **Balanced stage cycles** — `stage_decision` events appear in strict
//!    estimate→admit→select→place order and the stream never ends with a
//!    reschedule cycle left open. A scheduler that skipped a stage, emitted
//!    one twice, or was torn down mid-decision shows up here.
//!
//! The checks run on raw in-memory event slices (what
//! [`crate::MemorySink`] collects), so auditors can validate a live run
//! without round-tripping through JSONL.

use crate::event::{PipelineStage, TraceEvent};

/// One structural defect found in a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamViolation {
    /// Index of the offending event in the validated slice.
    pub index: usize,
    /// Human-readable description of what was wrong.
    pub detail: String,
}

/// Whether an event participates in the strict-monotonicity check.
///
/// `app_finished` and `run_unfinished` carry retrospective sub-tick
/// completion times (see module docs) and the `mgr_*` kinds carry
/// wall-clock time reported as 0, so none of them constrain — or are
/// constrained by — the stream clock.
fn clocked(ev: &TraceEvent) -> bool {
    !matches!(
        ev,
        TraceEvent::AppFinished { .. }
            | TraceEvent::RunUnfinished { .. }
            | TraceEvent::MgrConnect { .. }
            | TraceEvent::MgrDisconnect { .. }
            | TraceEvent::MgrGate { .. }
            | TraceEvent::MgrSignalReorder { .. }
    )
}

/// Validate a trace stream; returns every violation found (empty = clean).
///
/// Violations carry the event index so a caller can splice the offending
/// window out of a long stream for a bug report.
pub fn validate_stream(events: &[TraceEvent]) -> Vec<StreamViolation> {
    let mut out = Vec::new();
    let mut last_at: Option<u64> = None;
    // Position inside the estimate→admit→select→place cycle: the stage
    // index we expect next (0 when no cycle is open).
    let mut cycle_pos = 0usize;
    let mut cycle_opened_at = 0usize;

    for (i, ev) in events.iter().enumerate() {
        if clocked(ev) {
            let at = ev.at_us();
            if let Some(prev) = last_at {
                if at < prev {
                    out.push(StreamViolation {
                        index: i,
                        detail: format!(
                            "{} at t={at} after clock already reached t={prev}",
                            ev.kind()
                        ),
                    });
                }
            }
            last_at = Some(last_at.map_or(at, |p| p.max(at)));
        }
        if let TraceEvent::StageDecision { stage, .. } = ev {
            if stage.index() != cycle_pos {
                out.push(StreamViolation {
                    index: i,
                    detail: format!(
                        "stage '{}' out of order: expected '{}' (cycle opened at event {})",
                        stage.as_str(),
                        PipelineStage::from_index(cycle_pos)
                            .map_or("<cycle start>", PipelineStage::as_str),
                        cycle_opened_at,
                    ),
                });
            }
            if stage.index() == 0 {
                cycle_opened_at = i;
            }
            // Resync on the observed stage so one slip reports once
            // instead of cascading through the rest of the stream.
            cycle_pos = (stage.index() + 1) % 4;
        }
    }
    if cycle_pos != 0 {
        out.push(StreamViolation {
            index: events.len().saturating_sub(1),
            detail: format!(
                "stream ends mid-cycle: expected '{}' next (cycle opened at event {})",
                PipelineStage::from_index(cycle_pos).map_or("<cycle start>", PipelineStage::as_str),
                cycle_opened_at,
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(at_us: u64, stage: PipelineStage) -> TraceEvent {
        TraceEvent::StageDecision {
            at_us,
            stage,
            items: 0,
        }
    }

    fn bus_solve(at_us: u64) -> TraceEvent {
        TraceEvent::BusSolve {
            at_us,
            lambda: 1.0,
            utilization: 0.0,
            saturated: false,
            requesters: 0,
        }
    }

    fn full_cycle(at_us: u64) -> Vec<TraceEvent> {
        PipelineStage::ALL
            .iter()
            .map(|&s| stage(at_us, s))
            .collect()
    }

    #[test]
    fn clean_stream_passes() {
        let mut ev = full_cycle(0);
        ev.push(bus_solve(100));
        ev.extend(full_cycle(200_000));
        assert!(validate_stream(&ev).is_empty());
    }

    #[test]
    fn decreasing_timestamp_is_flagged() {
        let ev = vec![bus_solve(500), bus_solve(400)];
        let v = validate_stream(&ev);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 1);
        assert!(v[0].detail.contains("t=400"), "{}", v[0].detail);
    }

    #[test]
    fn retrospective_app_finished_is_tolerated() {
        // Two apps finishing inside one coarse tick: emitted in app-id
        // order, finish times out of order, and both behind the clock.
        let ev = vec![
            TraceEvent::CoarseJump {
                at_us: 1_000_000,
                dt_us: 500_000,
                ticks_covered: 5,
            },
            TraceEvent::AppFinished {
                at_us: 800_000,
                app: 0,
                turnaround_us: 800_000,
            },
            TraceEvent::AppFinished {
                at_us: 700_000,
                app: 1,
                turnaround_us: 700_000,
            },
            bus_solve(1_000_000),
        ];
        assert!(validate_stream(&ev).is_empty());
    }

    #[test]
    fn out_of_order_stage_is_flagged_once_and_resyncs() {
        let mut ev = vec![
            stage(0, PipelineStage::Estimate),
            // Select where Admit belongs: one violation …
            stage(0, PipelineStage::Select),
            stage(0, PipelineStage::Place),
        ];
        ev.extend(full_cycle(200_000)); // … then a clean cycle after resync.
        let v = validate_stream(&ev);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].index, 1);
        assert!(v[0].detail.contains("'select'"), "{}", v[0].detail);
    }

    #[test]
    fn dangling_cycle_is_flagged() {
        let ev = vec![
            stage(0, PipelineStage::Estimate),
            stage(0, PipelineStage::Admit),
        ];
        let v = validate_stream(&ev);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("ends mid-cycle"), "{}", v[0].detail);
        assert!(v[0].detail.contains("'select'"), "{}", v[0].detail);
    }

    #[test]
    fn empty_stream_is_clean() {
        assert!(validate_stream(&[]).is_empty());
    }
}
