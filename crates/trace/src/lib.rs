//! Structured observability for the busbw stack: a zero-dependency event
//! bus, pluggable sinks, and machine-readable run manifests.
//!
//! The paper's policies live or die on quantum-scale measurements — per
//! thread bus-transaction rates, the dilation factor Λ, which gang the
//! selection loop admitted and why. End-of-run CSV tables cannot answer
//! "which quantum's selection flipped"; per-decision traces can. This
//! crate provides the plumbing:
//!
//! * [`TraceEvent`] — one enum covering the simulator tick loop
//!   (placements, phase edges, coarsening jumps, bus Λ solves), the
//!   scheduler (gang selections with fitness scores, head-of-list
//!   admissions, demand reconstruction), and the CPU manager
//!   (connect/disconnect, gate transitions, signal-reorder injections).
//!   Every event renders to a single JSONL line.
//! * [`EventBus`] — a cloneable handle instrumented code emits into. A
//!   disabled bus ([`EventBus::off`]) is a single branch on the hot path;
//!   an enabled bus feeds a bounded ring of recent events (post-mortem
//!   context) plus one pluggable [`TraceSink`].
//! * Sinks — [`NullSink`] (overhead measurement), [`MemorySink`]
//!   (in-process inspection for tests), [`JsonlSink`] (streaming file
//!   writer).
//! * [`Manifest`] — the run manifest written next to each `results/`
//!   artifact: seed, scale, policies, git-describe, wall time, per-figure
//!   checksums ([`fnv1a64`]) and an optional metrics snapshot.
//! * [`json`] — a minimal JSON renderer/parser so manifests and traces
//!   can be validated without external crates.
//!
//! Everything here is deterministic: events carry simulated time only, so
//! a run traced with 1 worker and with 4 workers produces byte-identical
//! per-run event streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod event;
pub mod json;
mod manifest;
mod sink;
pub mod validate;

pub use bus::{EventBus, RECENT_CAPACITY};
pub use event::{PipelineStage, TraceEvent};
pub use manifest::{fnv1a64, git_describe, ArtifactSum, Manifest, TraceInfo};
pub use sink::{JsonlSink, MemoryHandle, MemorySink, NullSink, TraceSink};
pub use validate::{validate_stream, StreamViolation};
