//! A minimal JSON renderer and parser.
//!
//! The workspace's vendored `serde` is a derive-only stub and no
//! `serde_json` exists offline, so traces and manifests are rendered by
//! hand and validated with this parser. It supports the full JSON value
//! grammar minus exotic number forms (good enough to round-trip
//! everything this crate emits); it is not a general-purpose JSON
//! library.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced for non-finite floats on the render side).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (keys may repeat; first wins in
    /// [`Value::get`]).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Append `x` to `out` as a JSON number. Non-finite values (which JSON
/// cannot represent) render as `null`.
pub fn push_f64(out: &mut String, x: f64) {
    use std::fmt::Write as _;
    if x.is_finite() {
        // Rust's shortest-roundtrip Display is deterministic, but bare
        // integers ("3") are also valid JSON numbers, so nothing extra
        // is needed.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render `s` as a quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u hex"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // crate; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn quote_round_trips_through_parse() {
        let original = "weird \"stuff\"\t\\ \u{1} ok";
        let quoted = quote(original);
        let v = parse(&quoted).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        s.push(' ');
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null null");
    }
}
