//! The event taxonomy: one enum, one JSONL line per event.

use crate::json::{escape_into, push_f64};

/// One stage of a composable scheduling pipeline (see
/// `busbw-core::pipeline`): the four-step decomposition every reschedule
/// walks through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Bandwidth estimation: settle the finished interval's measurements.
    Estimate,
    /// Admission: the unconditional head-of-list (or FCFS/priority) step.
    Admit,
    /// Selection: fill the remaining processors (fitness, random, …).
    Select,
    /// Placement: map admitted gangs onto cpus.
    Place,
}

impl PipelineStage {
    /// All stages, in pipeline order.
    pub const ALL: [PipelineStage; 4] = [
        PipelineStage::Estimate,
        PipelineStage::Admit,
        PipelineStage::Select,
        PipelineStage::Place,
    ];

    /// Stable lowercase name (matches `busbw_sim::STAGE_NAMES`).
    pub fn as_str(self) -> &'static str {
        match self {
            PipelineStage::Estimate => "estimate",
            PipelineStage::Admit => "admit",
            PipelineStage::Select => "select",
            PipelineStage::Place => "place",
        }
    }

    /// Index in pipeline order (0..4).
    pub fn index(self) -> usize {
        match self {
            PipelineStage::Estimate => 0,
            PipelineStage::Admit => 1,
            PipelineStage::Select => 2,
            PipelineStage::Place => 3,
        }
    }

    /// Inverse of [`PipelineStage::index`].
    pub fn from_index(i: usize) -> Option<PipelineStage> {
        PipelineStage::ALL.get(i).copied()
    }
}

/// One structured trace event.
///
/// Variants cover the three instrumented layers (simulator, scheduler,
/// CPU manager) plus the experiment runner. Events that happen in
/// simulated time carry `at_us`; CPU-manager events happen in wall time
/// (the manager is a real-time component) and sort at time 0.
///
/// Hot-path variants are deliberately `String`-free so constructing one
/// never allocates.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Simulator: a thread was placed on a cpu when a scheduling decision
    /// was applied. `cold` mirrors the cache-warmth test used for the
    /// cold-start counter (warmth < 0.5).
    Placement {
        /// Simulated time, µs.
        at_us: u64,
        /// Target cpu index.
        cpu: usize,
        /// Placed thread id.
        thread: u64,
        /// Owning application id.
        app: u64,
        /// Whether the placement was cache-cold.
        cold: bool,
    },
    /// Simulator: a placed thread's solo demand changed — it crossed a
    /// phase edge in its demand model.
    PhaseEdge {
        /// Simulated time, µs.
        at_us: u64,
        /// The thread whose demand changed.
        thread: u64,
        /// New solo bus demand, tx/µs.
        rate: f64,
        /// New memory-boundness µ ∈ [0, 1].
        mu: f64,
    },
    /// Simulator: the tick loop coarsened — one iteration advanced
    /// several nominal ticks because every input was provably static.
    CoarseJump {
        /// Simulated time at the start of the jump, µs.
        at_us: u64,
        /// Length of the jump, µs.
        dt_us: u64,
        /// Nominal ticks covered by the single iteration.
        ticks_covered: u64,
    },
    /// Simulator: the bus arbitration produced a new dilation factor Λ
    /// (emitted on change, not every tick — memoized solves that reuse
    /// the previous Λ are silent).
    BusSolve {
        /// Simulated time, µs.
        at_us: u64,
        /// Dilation factor Λ (1.0 = unsaturated).
        lambda: f64,
        /// Bus utilization ρ ∈ [0, 1].
        utilization: f64,
        /// Whether demand exceeded effective capacity.
        saturated: bool,
        /// Number of requesting threads.
        requesters: usize,
    },
    /// Simulator: an application's last thread finished.
    AppFinished {
        /// Simulated time, µs.
        at_us: u64,
        /// The finished application.
        app: u64,
        /// Turnaround (finish − arrival), µs.
        turnaround_us: u64,
    },
    /// Scheduler: the head of the circular applications list was admitted
    /// unconditionally (the paper's starvation-freedom rule).
    HeadAdmission {
        /// Simulated time, µs.
        at_us: u64,
        /// Admitted application.
        app: u64,
        /// Gang width (threads admitted).
        width: usize,
    },
    /// Scheduler: the fitness loop admitted a gang.
    GangSelected {
        /// Simulated time, µs.
        at_us: u64,
        /// Admitted application.
        app: u64,
        /// Gang width (threads admitted).
        width: usize,
        /// Fitness score that won the admission.
        fitness: f64,
        /// Available bus bandwidth per unallocated processor at the time
        /// of the decision, tx/µs.
        available_per_proc: f64,
    },
    /// Scheduler: bandwidth demand reconstructed for an application from
    /// measured consumption and mean dilation (demand ≈ consumption × Λ̄).
    Reconstruct {
        /// Simulated time, µs.
        at_us: u64,
        /// The application observed.
        app: u64,
        /// Measured per-thread consumption, tx/µs.
        measured_per_thread: f64,
        /// Mean dilation Λ̄ over the observation interval.
        dilation: f64,
        /// Reconstructed per-thread demand, tx/µs.
        demand_per_thread: f64,
    },
    /// Runner: a measured application had not finished when the run hit
    /// its deadline (hard cap). Replaces the former panic.
    RunUnfinished {
        /// Simulated time at which the run was cut off, µs.
        at_us: u64,
        /// The unfinished application.
        app: u64,
        /// Application name.
        name: String,
        /// Fraction of its total work completed, ∈ [0, 1].
        progress_frac: f64,
    },
    /// CPU manager: a client connected.
    MgrConnect {
        /// Client id.
        client: u64,
        /// Thread gates already registered when the connection was
        /// processed (threads register after the handshake, so usually 0).
        threads: usize,
    },
    /// CPU manager: a client disconnected.
    MgrDisconnect {
        /// Client id.
        client: u64,
    },
    /// CPU manager: a signal gate transitioned (block or unblock
    /// delivered), with the counter pair after the transition.
    MgrGate {
        /// Owning client id.
        client: u64,
        /// Gated thread id.
        thread: u64,
        /// True if the thread should now run (unblocks ≥ blocks).
        resumed: bool,
        /// Block signals delivered so far.
        blocks: u64,
        /// Unblock signals delivered so far.
        unblocks: u64,
    },
    /// CPU manager: a signal pair was injected in reversed order
    /// (unblock before block) to exercise inversion tolerance.
    MgrSignalReorder {
        /// Owning client id.
        client: u64,
        /// Gated thread id.
        thread: u64,
    },
    /// Manager (open system): a client arrived and was admitted by the
    /// managerd accept queue. Unlike the wall-time `Mgr*` events these
    /// happen in the open server's deterministic virtual time.
    ClientArrived {
        /// Virtual arrival time, µs.
        at_us: u64,
        /// Admitted client id.
        client: u64,
        /// Gang width (threads the client will register).
        width: usize,
    },
    /// Manager (open system): a client arrived while the accept queue was
    /// full and was shed by the overload admission control.
    ClientShed {
        /// Virtual arrival time, µs.
        at_us: u64,
        /// Sequential arrival index of the shed client (shed clients
        /// never get a manager id).
        arrival: u64,
        /// Live clients when the shed decision was made.
        live: usize,
    },
    /// Manager (open system): a client completed its work and
    /// disconnected.
    ClientDeparted {
        /// Virtual departure time, µs.
        at_us: u64,
        /// Departing client id.
        client: u64,
        /// Turnaround (departure − arrival), µs.
        turnaround_us: u64,
    },
    /// Simulator: one level of a hierarchical bus topology (a socket's
    /// local bus or the cross-socket interconnect) entered saturation.
    /// Emitted on the transition only, like [`TraceEvent::BusSolve`].
    LevelSaturated {
        /// Simulated time, µs.
        at_us: u64,
        /// Level index: sockets first, the interconnect last.
        level: u64,
        /// The level's utilization at the transition.
        utilization: f64,
        /// The dilation the level imposes on its requesters.
        dilation: f64,
    },
    /// Scheduler: one pipeline stage completed during a reschedule. The
    /// payload is deliberately deterministic (no wall-clock readings) so
    /// merged traces stay invariant under worker counts; stage wall times
    /// live in the metrics registry instead.
    StageDecision {
        /// Simulated time, µs.
        at_us: u64,
        /// Which stage completed.
        stage: PipelineStage,
        /// Items the stage produced (candidates estimated, gangs
        /// admitted/selected, threads placed).
        items: usize,
    },
}

impl TraceEvent {
    /// Short machine-readable kind tag (the JSON `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Placement { .. } => "placement",
            TraceEvent::PhaseEdge { .. } => "phase_edge",
            TraceEvent::CoarseJump { .. } => "coarse_jump",
            TraceEvent::BusSolve { .. } => "bus_solve",
            TraceEvent::AppFinished { .. } => "app_finished",
            TraceEvent::HeadAdmission { .. } => "head_admission",
            TraceEvent::GangSelected { .. } => "gang_selected",
            TraceEvent::Reconstruct { .. } => "reconstruct",
            TraceEvent::RunUnfinished { .. } => "run_unfinished",
            TraceEvent::MgrConnect { .. } => "mgr_connect",
            TraceEvent::MgrDisconnect { .. } => "mgr_disconnect",
            TraceEvent::MgrGate { .. } => "mgr_gate",
            TraceEvent::MgrSignalReorder { .. } => "mgr_signal_reorder",
            TraceEvent::ClientArrived { .. } => "client_arrived",
            TraceEvent::ClientShed { .. } => "client_shed",
            TraceEvent::ClientDeparted { .. } => "client_departed",
            TraceEvent::LevelSaturated { .. } => "level_saturated",
            TraceEvent::StageDecision { .. } => "stage_decision",
        }
    }

    /// Simulated time of the event, µs. Wall-time (CPU manager) events
    /// report 0 so they sort before simulated activity.
    pub fn at_us(&self) -> u64 {
        match *self {
            TraceEvent::Placement { at_us, .. }
            | TraceEvent::PhaseEdge { at_us, .. }
            | TraceEvent::CoarseJump { at_us, .. }
            | TraceEvent::BusSolve { at_us, .. }
            | TraceEvent::AppFinished { at_us, .. }
            | TraceEvent::HeadAdmission { at_us, .. }
            | TraceEvent::GangSelected { at_us, .. }
            | TraceEvent::Reconstruct { at_us, .. }
            | TraceEvent::RunUnfinished { at_us, .. }
            | TraceEvent::ClientArrived { at_us, .. }
            | TraceEvent::ClientShed { at_us, .. }
            | TraceEvent::ClientDeparted { at_us, .. }
            | TraceEvent::LevelSaturated { at_us, .. }
            | TraceEvent::StageDecision { at_us, .. } => at_us,
            TraceEvent::MgrConnect { .. }
            | TraceEvent::MgrDisconnect { .. }
            | TraceEvent::MgrGate { .. }
            | TraceEvent::MgrSignalReorder { .. } => 0,
        }
    }

    /// Append this event as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"ev\":\"{}\",\"t\":{}", self.kind(), self.at_us());
        match self {
            TraceEvent::Placement {
                cpu,
                thread,
                app,
                cold,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"cpu\":{cpu},\"thread\":{thread},\"app\":{app},\"cold\":{cold}"
                );
            }
            TraceEvent::PhaseEdge {
                thread, rate, mu, ..
            } => {
                let _ = write!(out, ",\"thread\":{thread},\"rate\":");
                push_f64(out, *rate);
                out.push_str(",\"mu\":");
                push_f64(out, *mu);
            }
            TraceEvent::CoarseJump {
                dt_us,
                ticks_covered,
                ..
            } => {
                let _ = write!(out, ",\"dt_us\":{dt_us},\"ticks_covered\":{ticks_covered}");
            }
            TraceEvent::BusSolve {
                lambda,
                utilization,
                saturated,
                requesters,
                ..
            } => {
                out.push_str(",\"lambda\":");
                push_f64(out, *lambda);
                out.push_str(",\"rho\":");
                push_f64(out, *utilization);
                let _ = write!(
                    out,
                    ",\"saturated\":{saturated},\"requesters\":{requesters}"
                );
            }
            TraceEvent::AppFinished {
                app, turnaround_us, ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"turnaround_us\":{turnaround_us}");
            }
            TraceEvent::HeadAdmission { app, width, .. } => {
                let _ = write!(out, ",\"app\":{app},\"width\":{width}");
            }
            TraceEvent::GangSelected {
                app,
                width,
                fitness,
                available_per_proc,
                ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"width\":{width},\"fitness\":");
                push_f64(out, *fitness);
                out.push_str(",\"available_per_proc\":");
                push_f64(out, *available_per_proc);
            }
            TraceEvent::Reconstruct {
                app,
                measured_per_thread,
                dilation,
                demand_per_thread,
                ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"measured\":");
                push_f64(out, *measured_per_thread);
                out.push_str(",\"dilation\":");
                push_f64(out, *dilation);
                out.push_str(",\"demand\":");
                push_f64(out, *demand_per_thread);
            }
            TraceEvent::RunUnfinished {
                app,
                name,
                progress_frac,
                ..
            } => {
                let _ = write!(out, ",\"app\":{app},\"name\":\"");
                escape_into(out, name);
                out.push_str("\",\"progress_frac\":");
                push_f64(out, *progress_frac);
            }
            TraceEvent::MgrConnect {
                client, threads, ..
            } => {
                let _ = write!(out, ",\"client\":{client},\"threads\":{threads}");
            }
            TraceEvent::MgrDisconnect { client } => {
                let _ = write!(out, ",\"client\":{client}");
            }
            TraceEvent::MgrGate {
                client,
                thread,
                resumed,
                blocks,
                unblocks,
            } => {
                let _ = write!(
                    out,
                    ",\"client\":{client},\"thread\":{thread},\"resumed\":{resumed},\
                     \"blocks\":{blocks},\"unblocks\":{unblocks}"
                );
            }
            TraceEvent::MgrSignalReorder { client, thread } => {
                let _ = write!(out, ",\"client\":{client},\"thread\":{thread}");
            }
            TraceEvent::ClientArrived { client, width, .. } => {
                let _ = write!(out, ",\"client\":{client},\"width\":{width}");
            }
            TraceEvent::ClientShed { arrival, live, .. } => {
                let _ = write!(out, ",\"arrival\":{arrival},\"live\":{live}");
            }
            TraceEvent::ClientDeparted {
                client,
                turnaround_us,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"client\":{client},\"turnaround_us\":{turnaround_us}"
                );
            }
            TraceEvent::LevelSaturated {
                level,
                utilization,
                dilation,
                ..
            } => {
                let _ = write!(out, ",\"level\":{level},\"rho\":");
                push_f64(out, *utilization);
                out.push_str(",\"lambda\":");
                push_f64(out, *dilation);
            }
            TraceEvent::StageDecision { stage, items, .. } => {
                let _ = write!(out, ",\"stage\":\"{}\",\"items\":{items}", stage.as_str());
            }
        }
        out.push('}');
    }

    /// Render this event as one JSON object string.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn all_variants() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Placement {
                at_us: 100,
                cpu: 2,
                thread: 7,
                app: 3,
                cold: true,
            },
            TraceEvent::PhaseEdge {
                at_us: 200,
                thread: 1,
                rate: 23.6,
                mu: 0.98,
            },
            TraceEvent::CoarseJump {
                at_us: 300,
                dt_us: 1900,
                ticks_covered: 19,
            },
            TraceEvent::BusSolve {
                at_us: 400,
                lambda: 1.65,
                utilization: 1.0,
                saturated: true,
                requesters: 4,
            },
            TraceEvent::AppFinished {
                at_us: 500,
                app: 0,
                turnaround_us: 500,
            },
            TraceEvent::HeadAdmission {
                at_us: 600,
                app: 2,
                width: 4,
            },
            TraceEvent::GangSelected {
                at_us: 700,
                app: 5,
                width: 2,
                fitness: 0.75,
                available_per_proc: 3.5,
            },
            TraceEvent::Reconstruct {
                at_us: 800,
                app: 1,
                measured_per_thread: 4.2,
                dilation: 1.3,
                demand_per_thread: 5.46,
            },
            TraceEvent::RunUnfinished {
                at_us: 900,
                app: 9,
                name: "CG \"quoted\"".into(),
                progress_frac: 0.42,
            },
            TraceEvent::MgrConnect {
                client: 11,
                threads: 4,
            },
            TraceEvent::MgrDisconnect { client: 11 },
            TraceEvent::MgrGate {
                client: 11,
                thread: 3,
                resumed: false,
                blocks: 2,
                unblocks: 1,
            },
            TraceEvent::MgrSignalReorder {
                client: 11,
                thread: 3,
            },
            TraceEvent::ClientArrived {
                at_us: 950,
                client: 12,
                width: 2,
            },
            TraceEvent::ClientShed {
                at_us: 960,
                arrival: 13,
                live: 8,
            },
            TraceEvent::ClientDeparted {
                at_us: 970,
                client: 12,
                turnaround_us: 20,
            },
            TraceEvent::LevelSaturated {
                at_us: 980,
                level: 2,
                utilization: 1.0,
                dilation: 1.4,
            },
            TraceEvent::StageDecision {
                at_us: 1000,
                stage: PipelineStage::Select,
                items: 3,
            },
        ]
    }

    #[test]
    fn every_variant_renders_parseable_json_with_kind_and_time() {
        for ev in all_variants() {
            let line = ev.to_json();
            let v = parse(&line).unwrap_or_else(|e| panic!("bad json {line}: {e}"));
            let Value::Object(fields) = v else {
                panic!("not an object: {line}");
            };
            let kind = fields.iter().find(|(k, _)| k == "ev").expect("ev field");
            assert_eq!(kind.1, Value::String(ev.kind().into()));
            let t = fields.iter().find(|(k, _)| k == "t").expect("t field");
            assert_eq!(t.1, Value::Number(ev.at_us() as f64));
        }
    }

    #[test]
    fn string_fields_are_escaped() {
        let ev = TraceEvent::RunUnfinished {
            at_us: 1,
            app: 0,
            name: "a\"b\\c\nd".into(),
            progress_frac: 0.5,
        };
        let line = ev.to_json();
        assert!(line.contains("a\\\"b\\\\c\\nd"), "{line}");
        parse(&line).expect("escaped json parses");
    }

    #[test]
    fn manager_events_sort_at_time_zero() {
        assert_eq!(TraceEvent::MgrDisconnect { client: 1 }.at_us(), 0);
    }
}
