//! SMT (Hyperthreading) semantics: logical cpus sharing a physical core
//! split its throughput; separate cores do not interact.

use busbw_sim::{
    AppDescriptor, Assignment, ConstantDemand, CpuId, Decision, Machine, MachineView, Scheduler,
    StopCondition, ThreadId, ThreadSpec, XEON_4WAY, XEON_4WAY_HT,
};

struct Fixed(Vec<Assignment>);
impl Scheduler for Fixed {
    fn schedule(&mut self, _v: &MachineView<'_>) -> Decision {
        Decision {
            assignments: self.0.clone(),
            next_resched_in_us: 1_000_000,
            sample_period_us: None,
        }
    }
}

fn two_thread_app(m: &mut Machine) {
    let threads = (0..2)
        .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(0.5, 0.1))))
        .collect();
    m.add_app(AppDescriptor::new("a", threads));
}

fn progress_after(m: &mut Machine, placement: Vec<Assignment>, t_us: u64) -> (f64, f64) {
    m.run(&mut Fixed(placement), StopCondition::At(t_us));
    let v = m.view();
    (
        v.thread(ThreadId(0)).unwrap().progress_us,
        v.thread(ThreadId(1)).unwrap().progress_us,
    )
}

#[test]
fn siblings_on_one_core_split_its_throughput() {
    let mut m = Machine::new(XEON_4WAY_HT);
    two_thread_app(&mut m);
    // cpus 0 and 1 share core 0.
    let (p0, p1) = progress_after(
        &mut m,
        vec![
            Assignment {
                thread: ThreadId(0),
                cpu: CpuId(0),
            },
            Assignment {
                thread: ThreadId(1),
                cpu: CpuId(1),
            },
        ],
        1_000_000,
    );
    // Each sibling runs at ~0.625×.
    assert!((0.60..0.66).contains(&(p0 / 1e6)), "sibling progress {p0}");
    assert!((p0 - p1).abs() < 1e-6);
}

#[test]
fn separate_cores_run_at_full_speed() {
    let mut m = Machine::new(XEON_4WAY_HT);
    two_thread_app(&mut m);
    // cpus 0 and 2 are on different cores.
    let (p0, p1) = progress_after(
        &mut m,
        vec![
            Assignment {
                thread: ThreadId(0),
                cpu: CpuId(0),
            },
            Assignment {
                thread: ThreadId(1),
                cpu: CpuId(2),
            },
        ],
        1_000_000,
    );
    assert!(p0 / 1e6 > 0.98, "full-speed progress {p0}");
    assert!(p1 / 1e6 > 0.98);
}

#[test]
fn lone_thread_on_an_smt_core_is_not_derated() {
    let mut m = Machine::new(XEON_4WAY_HT);
    two_thread_app(&mut m);
    let (p0, _) = progress_after(
        &mut m,
        vec![Assignment {
            thread: ThreadId(0),
            cpu: CpuId(0),
        }],
        500_000,
    );
    assert!(p0 / 5e5 > 0.98, "lone sibling derated: {p0}");
}

#[test]
fn smt_aggregate_beats_time_sharing_one_logical_cpu() {
    // Two threads on two siblings (1.25× aggregate) complete more total
    // work than the same two threads sharing a single cpu (1.0×).
    let mut ht = Machine::new(XEON_4WAY_HT);
    two_thread_app(&mut ht);
    let (a0, a1) = progress_after(
        &mut ht,
        vec![
            Assignment {
                thread: ThreadId(0),
                cpu: CpuId(0),
            },
            Assignment {
                thread: ThreadId(1),
                cpu: CpuId(1),
            },
        ],
        1_000_000,
    );
    let mut solo = Machine::new(XEON_4WAY);
    two_thread_app(&mut solo);
    // Only thread 0 runs (thread 1 waits) — the non-SMT alternative on a
    // fully loaded machine would time-share: aggregate 1.0.
    let (b0, b1) = progress_after(
        &mut solo,
        vec![Assignment {
            thread: ThreadId(0),
            cpu: CpuId(0),
        }],
        1_000_000,
    );
    assert!(
        a0 + a1 > (b0 + b1) * 1.15,
        "SMT aggregate {} vs single-cpu {}",
        a0 + a1,
        b0 + b1
    );
}
