//! Barrier-coupling semantics: gang members may not run ahead of their
//! slowest unfinished sibling by more than the app's barrier interval.

use busbw_perfmon::EventKind;
use busbw_sim::{
    AppDescriptor, Assignment, ConstantDemand, CpuId, Decision, Machine, MachineView, Scheduler,
    StopCondition, ThreadId, ThreadSpec, XEON_4WAY,
};

fn coupled_app(m: &mut Machine, work: f64, interval: f64) -> busbw_sim::AppId {
    let threads = (0..2)
        .map(|_| ThreadSpec::new(work, Box::new(ConstantDemand::new(1.0, 0.2))))
        .collect();
    m.add_app(AppDescriptor::new("pair", threads).with_barrier_interval(interval))
}

/// Runs only thread 0 on cpu 0, forever.
struct OnlyFirst;
impl Scheduler for OnlyFirst {
    fn schedule(&mut self, _v: &MachineView<'_>) -> Decision {
        Decision {
            assignments: vec![Assignment {
                thread: ThreadId(0),
                cpu: CpuId(0),
            }],
            next_resched_in_us: 100_000,
            sample_period_us: None,
        }
    }
}

/// Runs every still-runnable thread on its own cpu.
struct Both;
impl Scheduler for Both {
    fn schedule(&mut self, v: &MachineView<'_>) -> Decision {
        let assignments = v
            .threads()
            .filter(|t| t.is_runnable())
            .enumerate()
            .map(|(i, t)| Assignment {
                thread: t.id,
                cpu: CpuId(i),
            })
            .collect();
        Decision {
            assignments,
            next_resched_in_us: 100_000,
            sample_period_us: None,
        }
    }
}

#[test]
fn lone_gang_member_stalls_at_the_barrier() {
    let mut m = Machine::new(XEON_4WAY);
    coupled_app(&mut m, 1_000_000.0, 50_000.0);
    m.run(&mut OnlyFirst, StopCondition::At(500_000));
    let v = m.view();
    let lead = v.thread(ThreadId(0)).unwrap().progress_us;
    let lag = v.thread(ThreadId(1)).unwrap().progress_us;
    assert_eq!(lag, 0.0, "unscheduled sibling must not progress");
    // The runner got 500 ms of cpu but may only be 50 ms (one barrier
    // interval) ahead of its sibling.
    assert!(
        (49_000.0..51_500.0).contains(&lead),
        "lead thread progressed {lead}, expected ~the barrier interval"
    );
    // The spin time still shows as cpu consumption...
    let cyc = v.registry.total(ThreadId(0).key(), EventKind::CyclesOnCpu);
    assert!(cyc > 450_000.0, "cycles {cyc}");
    // ...but not as useful progress or bus traffic.
    let tx = v
        .registry
        .total(ThreadId(0).key(), EventKind::BusTransactions);
    assert!(tx < 60_000.0 * 1.7, "spinning thread kept issuing: {tx}");
}

#[test]
fn coscheduled_gang_pays_no_barrier_cost() {
    let mut m = Machine::new(XEON_4WAY);
    let app = coupled_app(&mut m, 400_000.0, 50_000.0);
    let out = m.run(&mut Both, StopCondition::AppsFinished(vec![app]));
    assert!(out.condition_met);
    let t = m.turnaround_us(app).unwrap();
    // Identical siblings run in lockstep: the cap never binds.
    assert!(t < 430_000, "turnaround {t}");
}

#[test]
fn stalled_leader_resumes_when_sibling_catches_up() {
    let mut m = Machine::new(XEON_4WAY);
    let app = coupled_app(&mut m, 200_000.0, 50_000.0);
    // Phase 1: only thread 0 → it stalls at 50 ms progress.
    m.run(&mut OnlyFirst, StopCondition::At(300_000));
    // Phase 2: both → they finish together.
    let out = m.run(&mut Both, StopCondition::AppsFinished(vec![app]));
    assert!(out.condition_met);
    let v = m.view();
    let p0 = v.thread(ThreadId(0)).unwrap().progress_us;
    let p1 = v.thread(ThreadId(1)).unwrap().progress_us;
    assert_eq!(p0, 200_000.0);
    assert_eq!(p1, 200_000.0);
}

#[test]
fn uncoupled_apps_are_unaffected() {
    let mut m = Machine::new(XEON_4WAY);
    let threads = (0..2)
        .map(|_| ThreadSpec::new(1_000_000.0, Box::new(ConstantDemand::new(1.0, 0.2))))
        .collect();
    m.add_app(AppDescriptor::new("free", threads)); // no barrier interval
    m.run(&mut OnlyFirst, StopCondition::At(500_000));
    let lead = m.view().thread(ThreadId(0)).unwrap().progress_us;
    assert!(
        lead > 450_000.0,
        "uncoupled thread should run freely: {lead}"
    );
}

#[test]
fn finished_sibling_releases_the_barrier() {
    let mut m = Machine::new(XEON_4WAY);
    // Thread 1 has much less work; once it finishes, thread 0 must be
    // free to run arbitrarily far ahead.
    let threads = vec![
        ThreadSpec::new(600_000.0, Box::new(ConstantDemand::new(1.0, 0.2))),
        ThreadSpec::new(100_000.0, Box::new(ConstantDemand::new(1.0, 0.2))),
    ];
    let app = m.add_app(AppDescriptor::new("skewed", threads).with_barrier_interval(50_000.0));
    let out = m.run(&mut Both, StopCondition::AppsFinished(vec![app]));
    assert!(out.condition_met);
    // Thread 0 needed 600 ms of progress; without release it would cap at
    // 150 ms. Completion proves the barrier lifted at thread 1's exit.
    assert!(m.turnaround_us(app).is_some());
}

#[test]
#[should_panic(expected = "barrier interval must be positive")]
fn zero_barrier_interval_rejected() {
    AppDescriptor::new("x", vec![]).with_barrier_interval(0.0);
}
