//! Machine-level invariants under randomized (but valid) scheduling
//! decisions: whatever a policy does, the simulated physics must hold.

use proptest::prelude::*;

use busbw_perfmon::EventKind;
use busbw_sim::{
    AppDescriptor, Assignment, ConstantDemand, CpuId, Decision, Machine, MachineView, Scheduler,
    StopCondition, ThreadId, ThreadSpec, XEON_4WAY,
};

/// A scheduler that replays a pre-generated list of placements, one per
/// quantum (each placement is a set of (thread index, cpu) pairs that the
/// generator guarantees to be conflict-free).
struct ScriptedScheduler {
    script: Vec<Vec<(u64, usize)>>,
    pos: usize,
    quantum_us: u64,
}

impl Scheduler for ScriptedScheduler {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        let step = self
            .script
            .get(self.pos.min(self.script.len().saturating_sub(1)))
            .cloned()
            .unwrap_or_default();
        self.pos += 1;
        let assignments = step
            .into_iter()
            .filter_map(|(t, c)| {
                let tid = ThreadId(t);
                view.thread(tid)
                    .filter(|info| info.is_runnable())
                    .map(|_| Assignment {
                        thread: tid,
                        cpu: CpuId(c),
                    })
            })
            .collect();
        Decision {
            assignments,
            next_resched_in_us: self.quantum_us,
            sample_period_us: None,
        }
    }
}

/// One conflict-free placement of up to 6 threads on 4 cpus.
fn arb_placement() -> impl Strategy<Value = Vec<(u64, usize)>> {
    // A permutation-based generator: pick a subset of threads and assign
    // them to distinct cpus.
    (proptest::sample::subsequence((0u64..6).collect::<Vec<_>>(), 0..=4)).prop_flat_map(|threads| {
        let n = threads.len();
        proptest::sample::subsequence((0usize..4).collect::<Vec<_>>(), n..=n)
            .prop_map(move |cpus| threads.iter().copied().zip(cpus).collect())
    })
}

fn build_machine() -> Machine {
    let mut m = Machine::new(XEON_4WAY);
    // Three 2-thread apps with varied demands; finite work so some may
    // finish mid-script.
    for (i, (rate, mu)) in [(0.5, 0.1), (6.0, 0.5), (11.8, 0.9)].iter().enumerate() {
        let threads = (0..2)
            .map(|_| ThreadSpec::new(600_000.0, Box::new(ConstantDemand::new(*rate, *mu))))
            .collect();
        m.add_app(AppDescriptor::new(format!("a{i}"), threads));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Virtual progress can never exceed wall-clock cpu time, per thread;
    /// and cpu time can never exceed elapsed time.
    #[test]
    fn progress_bounded_by_cpu_time(script in proptest::collection::vec(arb_placement(), 1..12)) {
        let mut m = build_machine();
        let mut s = ScriptedScheduler { script, pos: 0, quantum_us: 100_000 };
        let out = m.run(&mut s, StopCondition::At(1_200_000));
        prop_assert!(out.condition_met);
        let v = m.view();
        for t in v.threads() {
            let cyc = v.registry.total(t.id.key(), EventKind::CyclesOnCpu);
            let prog = v.registry.total(t.id.key(), EventKind::VirtualProgress);
            prop_assert!(prog <= cyc + 1e-6, "thread {} prog {prog} > cyc {cyc}", t.id);
            prop_assert!(cyc <= 1_200_000.0 + 1e-6);
            prop_assert!((t.progress_us - prog).abs() < 1e-6);
        }
    }

    /// The registry's transaction totals equal the bus accounting, and
    /// the mean bus rate never exceeds nominal capacity.
    #[test]
    fn traffic_accounting_is_consistent(script in proptest::collection::vec(arb_placement(), 1..12)) {
        let mut m = build_machine();
        let mut s = ScriptedScheduler { script, pos: 0, quantum_us: 100_000 };
        let out = m.run(&mut s, StopCondition::At(1_000_000));
        prop_assert!(out.condition_met);
        let from_registry = m.registry().machine_total(EventKind::BusTransactions);
        let from_bus = out.stats.bus.total_transactions;
        prop_assert!((from_registry - from_bus).abs() <= 1e-6 * from_bus.max(1.0));
        prop_assert!(out.stats.mean_bus_rate() <= 29.5 + 1e-9);
    }

    /// Counters are monotone across arbitrary schedules: re-running the
    /// same machine longer never decreases any total.
    #[test]
    fn counters_are_monotone(script in proptest::collection::vec(arb_placement(), 2..10)) {
        let mut m = build_machine();
        let mut s = ScriptedScheduler { script: script.clone(), pos: 0, quantum_us: 100_000 };
        m.run(&mut s, StopCondition::At(400_000));
        let mid: Vec<f64> = (0..6)
            .map(|i| m.registry().total(ThreadId(i).key(), EventKind::BusTransactions))
            .collect();
        let mut s2 = ScriptedScheduler { script, pos: 4, quantum_us: 100_000 };
        m.run(&mut s2, StopCondition::At(900_000));
        for (i, &before) in mid.iter().enumerate() {
            let after = m
                .registry()
                .total(ThreadId(i as u64).key(), EventKind::BusTransactions);
            prop_assert!(after >= before - 1e-9, "thread {i}: {before} -> {after}");
        }
    }

    /// Determinism: identical scripts produce identical final state.
    #[test]
    fn identical_scripts_identical_outcomes(script in proptest::collection::vec(arb_placement(), 1..8)) {
        let run = |script: Vec<Vec<(u64, usize)>>| {
            let mut m = build_machine();
            let mut s = ScriptedScheduler { script, pos: 0, quantum_us: 100_000 };
            m.run(&mut s, StopCondition::At(800_000));
            let v = m.view();
            v.threads().map(|t| t.progress_us).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(script.clone()), run(script));
    }
}
