//! Per-stage wall-time accounting for pipelined schedulers.
//!
//! A composable scheduler (see `busbw-core::pipeline`) runs four stages per
//! reschedule — estimate, admit, select, place. These types let it record
//! how long each stage took without pulling the metrics registry into the
//! simulator: the scheduler accumulates [`StageTimings`] locally and the
//! experiments layer folds them into the registry / run manifests after the
//! run. Wall-clock readings are inherently non-deterministic, so they never
//! feed back into scheduling decisions or simulated state.

use crate::ids::AppId;

/// Canonical stage names, in pipeline order.
pub const STAGE_NAMES: [&str; 4] = ["estimate", "admit", "select", "place"];

/// What a pipelined scheduler decided at each stage of its most recent
/// reschedule — observational introspection for auditors.
///
/// Populated only when a [`crate::machine::Scheduler`] has been switched
/// into introspection mode (see [`crate::machine::Scheduler::set_introspect`]);
/// the normal scheduling path never allocates it, so golden-decision
/// behavior is untouched. Invariant checkers use it to verify stage
/// coherence (selector output ⊆ admission output ⊆ candidates) and gang
/// integrity without re-deriving the pipeline's internal state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Every candidate the estimate stage enumerated, in list order.
    pub candidates: Vec<AppId>,
    /// Jobs the admission stage granted unconditionally (the head set).
    pub admitted_head: Vec<AppId>,
    /// Jobs the selector added beyond the head set (empty for pinned
    /// selections).
    pub selected_extra: Vec<AppId>,
    /// Whether the selector returned a pinned thread→cpu schedule (the
    /// Linux baselines) instead of gangs.
    pub pinned: bool,
    /// The committed set for the quantum, in head-then-extra order (for
    /// pinned selections: first-seen order of the assigned threads' apps).
    pub committed: Vec<AppId>,
}

/// Histogram bucket upper bounds in nanoseconds (log-spaced); one overflow
/// bucket is appended, giving [`StageTiming::buckets`] its 8 slots.
pub const STAGE_BUCKET_BOUNDS_NS: [u64; 7] =
    [250, 1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000];

/// Wall-time accounting for one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Number of times the stage ran.
    pub calls: u64,
    /// Total wall time across all calls, nanoseconds.
    pub total_ns: u64,
    /// Call counts bucketed by duration: `buckets[i]` counts calls taking
    /// ≤ [`STAGE_BUCKET_BOUNDS_NS`]`[i]` ns; the last slot is overflow.
    pub buckets: [u64; 8],
}

impl StageTiming {
    /// Record one call that took `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.calls += 1;
        self.total_ns += ns;
        let i = STAGE_BUCKET_BOUNDS_NS.partition_point(|&b| b < ns);
        self.buckets[i] += 1;
    }

    /// Fold another timing into this one.
    pub fn merge(&mut self, other: &StageTiming) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Wall-time accounting for all four stages of one run, indexed in
/// [`STAGE_NAMES`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Per-stage timings, in [`STAGE_NAMES`] order.
    pub stages: [StageTiming; 4],
}

impl StageTimings {
    /// Fold another run's timings into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        for (a, b) in self.stages.iter_mut().zip(other.stages.iter()) {
            a.merge(b);
        }
    }

    /// Iterate `(stage name, timing)` pairs in pipeline order.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, &StageTiming)> {
        STAGE_NAMES.iter().copied().zip(self.stages.iter())
    }

    /// Whether any stage recorded at least one call.
    pub fn any_calls(&self) -> bool {
        self.stages.iter().any(|s| s.calls > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_buckets_by_bound() {
        let mut t = StageTiming::default();
        t.record_ns(100); // ≤ 250 → bucket 0
        t.record_ns(250); // ≤ 250 → bucket 0
        t.record_ns(251); // ≤ 1000 → bucket 1
        t.record_ns(2_000_000); // overflow → bucket 7
        assert_eq!(t.calls, 4);
        assert_eq!(t.total_ns, 100 + 250 + 251 + 2_000_000);
        assert_eq!(t.buckets[0], 2);
        assert_eq!(t.buckets[1], 1);
        assert_eq!(t.buckets[7], 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = StageTimings::default();
        let mut b = StageTimings::default();
        a.stages[2].record_ns(500);
        b.stages[2].record_ns(700);
        b.stages[0].record_ns(10);
        a.merge(&b);
        assert_eq!(a.stages[2].calls, 2);
        assert_eq!(a.stages[2].total_ns, 1200);
        assert_eq!(a.stages[0].calls, 1);
        assert!(a.any_calls());
        let names: Vec<_> = a.named().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["estimate", "admit", "select", "place"]);
    }
}
