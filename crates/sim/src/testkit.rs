//! Small helpers for driving a [`Machine`](crate::Machine) in tests and
//! experiments.

use crate::machine::{Decision, MachineView, Scheduler};

/// A scheduler that applies one pre-built [`Decision`] and then idles.
///
/// Lets a test (or a step-by-step experiment driver) compute a decision
/// with the policy under test, inspect it, and then advance the machine by
/// exactly one quantum with it:
///
/// ```ignore
/// let d = policy.schedule(&machine.view());
/// machine.run(&mut Replay::new(d), StopCondition::At(machine.now() + 200_000));
/// ```
pub struct Replay {
    decision: Option<Decision>,
    idle_quantum_us: u64,
}

impl Replay {
    /// Replay `decision` once; idle afterwards.
    pub fn new(decision: Decision) -> Self {
        let idle_quantum_us = decision.next_resched_in_us;
        Self {
            decision: Some(decision),
            idle_quantum_us,
        }
    }
}

impl Scheduler for Replay {
    fn schedule(&mut self, _view: &MachineView<'_>) -> Decision {
        self.decision
            .take()
            .unwrap_or(Decision::idle(self.idle_quantum_us))
    }

    fn name(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XEON_4WAY;
    use crate::demand::ConstantDemand;
    use crate::ids::CpuId;
    use crate::machine::{AppDescriptor, Assignment, Machine, StopCondition};
    use crate::thread::ThreadSpec;

    #[test]
    fn replay_applies_once_then_idles() {
        let mut m = Machine::new(XEON_4WAY);
        let _a = m.add_app(AppDescriptor::new(
            "a",
            vec![ThreadSpec::new(
                f64::INFINITY,
                Box::new(ConstantDemand::new(1.0, 0.5)),
            )],
        ));
        let d = Decision {
            assignments: vec![Assignment {
                thread: crate::ids::ThreadId(0),
                cpu: CpuId(0),
            }],
            next_resched_in_us: 100_000,
            sample_period_us: None,
        };
        // One quantum runs the thread; the idle decision then preempts it.
        let out = m.run(&mut Replay::new(d), StopCondition::At(250_000));
        assert!(out.condition_met);
        let progress = m
            .view()
            .thread(crate::ids::ThreadId(0))
            .unwrap()
            .progress_us;
        assert!(
            (90_000.0..130_000.0).contains(&progress),
            "ran ~one quantum, got {progress}"
        );
    }
}
