//! Per-processor cache warmth and affinity effects.
//!
//! The paper's platform has a 256 KB L2 per processor. Two affinity effects
//! matter for the reproduction:
//!
//! 1. A thread placed on a cpu whose cache it does not occupy runs slower
//!    while it rebuilds its working set **and** generates extra bus traffic
//!    doing so. This is why LU CB (99.53 % L2 hit rate) and Water-nsqr are
//!    "very sensitive to thread migrations among processors" (§3), and why
//!    their slowdowns under the BBMA workload exceed what their tiny bus
//!    demand would predict.
//! 2. Threads time-sharing a cpu evict each other, so affinity alone does
//!    not help once multiprogramming forces interleavings.
//!
//! The model: each cpu keeps a *warmth* in `[0, 1]` per thread that has
//! recently run there. Warmth rises exponentially toward 1 with time
//! constant [`CacheConfig::warmup_tau_us`] while the thread runs, and
//! decays with [`CacheConfig::decay_tau_us`] while a *different* thread
//! runs on that cpu (an idle cpu preserves its contents). A thread running
//! with warmth `w` on its cpu:
//!
//! * issues `(1 + cold_demand_boost·(1−w))`× its base demand (refill
//!   traffic), and
//! * runs at `(1 − sensitivity·(1−w))`× speed, where `sensitivity` is a
//!   per-thread parameter (how much of its performance lives in the cache).

use serde::{Deserialize, Serialize};

use crate::ids::{CpuId, ThreadId};

/// Warmth this close to 1 snaps to exactly 1.0 (reached after ~14τ of
/// continuous residency). Without the snap, warmth approaches 1 only in
/// the limit and every tick keeps producing a new f64, which defeats the
/// bus's unchanged-demand-set memo and the machine's tick coarsening; the
/// induced model error is below 1e-6 relative, far under the 0.1-unit
/// precision of the reported tables.
const WARMTH_SNAP: f64 = 1e-6;

/// Cache model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Time constant (µs) for building cache state while running.
    /// ~20 ms: a 256 KB working set streams in well under a quantum, but a
    /// thread bounced every tick never warms up.
    pub warmup_tau_us: f64,
    /// Time constant (µs) for losing cache state while another thread runs
    /// on the same cpu.
    pub decay_tau_us: f64,
    /// Extra demand multiplier at warmth 0 (refill traffic): demand is
    /// `base × (1 + cold_demand_boost × (1 − warmth))`.
    pub cold_demand_boost: f64,
    /// Warmth below which an entry is dropped from tracking.
    pub min_tracked_warmth: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            warmup_tau_us: 20_000.0,
            decay_tau_us: 10_000.0,
            cold_demand_boost: 0.6,
            min_tracked_warmth: 0.01,
        }
    }
}

/// Warmth state of every cpu's cache.
///
/// Thread IDs are dense (sequential from 0), so warmth lives in flat
/// per-cpu `Vec<f64>`s indexed by thread id — `0.0` means "no tracked
/// state", exactly the old untracked case. Lookups on the per-tick hot
/// path are O(1) with no tree walks or per-tick allocation.
#[derive(Debug, Clone)]
pub struct CacheState {
    cfg: CacheConfig,
    /// Per cpu: warmth per thread index; `0.0` = no tracked state.
    per_cpu: Vec<Vec<f64>>,
    // Memoized exponentials: ticks are usually a uniform length, so the
    // two `exp` calls per advance collapse to a compare.
    last_dt_us: f64,
    build: f64,
    decay: f64,
}

impl CacheState {
    /// Cold caches for `num_cpus` processors.
    pub fn new(num_cpus: usize, cfg: CacheConfig) -> Self {
        Self {
            cfg,
            per_cpu: vec![Vec::new(); num_cpus],
            last_dt_us: f64::NAN,
            build: 0.0,
            decay: 1.0,
        }
    }

    /// Warmth of `thread` on `cpu` (0 if it has never run there or its
    /// state fully decayed).
    pub fn warmth(&self, cpu: CpuId, thread: ThreadId) -> f64 {
        self.per_cpu[cpu.0]
            .get(thread.0 as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// Demand multiplier for `thread` running on `cpu` right now.
    pub fn demand_multiplier(&self, cpu: CpuId, thread: ThreadId) -> f64 {
        self.demand_multiplier_for(self.warmth(cpu, thread))
    }

    /// Speed multiplier for `thread` with cache-sensitivity `sensitivity`
    /// running on `cpu` right now.
    pub fn speed_multiplier(&self, cpu: CpuId, thread: ThreadId, sensitivity: f64) -> f64 {
        Self::speed_multiplier_for(self.warmth(cpu, thread), sensitivity)
    }

    /// Warmth plus both derived multipliers in one table lookup:
    /// `(warmth, demand_multiplier, speed_multiplier)`. The per-tick hot
    /// path needs all three; sharing the lookup (and the exact multiplier
    /// expressions, factored out below) keeps the results bit-identical
    /// to three separate calls at a third of the indexing cost.
    #[inline]
    pub fn factors(&self, cpu: CpuId, thread: ThreadId, sensitivity: f64) -> (f64, f64, f64) {
        let w = self.warmth(cpu, thread);
        (
            w,
            self.demand_multiplier_for(w),
            Self::speed_multiplier_for(w, sensitivity),
        )
    }

    #[inline]
    fn demand_multiplier_for(&self, warmth: f64) -> f64 {
        1.0 + self.cfg.cold_demand_boost * (1.0 - warmth)
    }

    #[inline]
    fn speed_multiplier_for(warmth: f64, sensitivity: f64) -> f64 {
        let cold = 1.0 - warmth;
        (1.0 - sensitivity.clamp(0.0, 1.0) * cold).max(0.05)
    }

    /// Advance the cache model by `dt_us` given the current placement
    /// (`running[cpu] = Some(thread)` for occupied cpus).
    pub fn advance(&mut self, running: &[Option<ThreadId>], dt_us: f64) {
        assert_eq!(
            running.len(),
            self.per_cpu.len(),
            "placement width mismatch"
        );
        if dt_us != self.last_dt_us {
            self.last_dt_us = dt_us;
            self.build = 1.0 - (-dt_us / self.cfg.warmup_tau_us).exp();
            self.decay = (-dt_us / self.cfg.decay_tau_us).exp();
        }
        let (build, decay) = (self.build, self.decay);
        let min = self.cfg.min_tracked_warmth;
        for (cpu_idx, occ) in running.iter().enumerate() {
            // Idle cpu: contents persist (no one is evicting).
            let Some(t) = occ else { continue };
            let slots = &mut self.per_cpu[cpu_idx];
            let ti = t.0 as usize;
            if slots.len() <= ti {
                slots.resize(ti + 1, 0.0);
            }
            // Everyone else's footprint decays; entries under the tracking
            // floor are dropped (set to the untracked value 0.0). The
            // occupant is never garbage-collected: its per-tick warmth
            // gain can be below the floor.
            for (i, w) in slots.iter_mut().enumerate() {
                if *w == 0.0 || i == ti {
                    continue;
                }
                *w *= decay;
                if *w < min {
                    *w = 0.0;
                }
            }
            // The occupant warms up, snapping to exactly 1.0 once within
            // WARMTH_SNAP so steady state is a fixed point (see const doc).
            let w = &mut slots[ti];
            *w += (1.0 - *w) * build;
            if *w > 1.0 - WARMTH_SNAP {
                *w = 1.0;
            }
        }
    }

    /// Drop all state belonging to `thread` (thread exit).
    pub fn forget(&mut self, thread: ThreadId) {
        for slots in &mut self.per_cpu {
            if let Some(w) = slots.get_mut(thread.0 as usize) {
                *w = 0.0;
            }
        }
    }

    /// The cpu on which `thread` currently has the warmest state, if any —
    /// what an affinity-aware placement consults.
    pub fn warmest_cpu(&self, thread: ThreadId) -> Option<(CpuId, f64)> {
        self.per_cpu
            .iter()
            .enumerate()
            .filter_map(|(i, slots)| {
                let w = *slots.get(thread.0 as usize)?;
                (w > 0.0).then_some((CpuId(i), w))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Number of cpus modeled.
    pub fn num_cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cpu() -> CacheState {
        CacheState::new(2, CacheConfig::default())
    }

    #[test]
    fn warmth_builds_while_running() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        assert_eq!(c.warmth(CpuId(0), t), 0.0);
        c.advance(&[Some(t), None], 20_000.0); // one time constant
        let w = c.warmth(CpuId(0), t);
        assert!((0.55..0.75).contains(&w), "after 1τ warmth {w}");
        c.advance(&[Some(t), None], 200_000.0);
        assert!(c.warmth(CpuId(0), t) > 0.99);
    }

    #[test]
    fn warmth_decays_under_eviction_but_not_on_idle_cpu() {
        let mut c = two_cpu();
        let (a, b) = (ThreadId(1), ThreadId(2));
        c.advance(&[Some(a), None], 200_000.0);
        let warm = c.warmth(CpuId(0), a);
        // Idle: preserved.
        c.advance(&[None, None], 100_000.0);
        assert_eq!(c.warmth(CpuId(0), a), warm);
        // Evicted by b.
        c.advance(&[Some(b), None], 10_000.0); // one decay τ
        let after = c.warmth(CpuId(0), a);
        assert!(after < warm * 0.45, "decayed {warm} -> {after}");
    }

    #[test]
    fn cold_thread_demands_more_and_runs_slower() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        assert!((c.demand_multiplier(CpuId(0), t) - 1.6).abs() < 1e-12);
        assert!((c.speed_multiplier(CpuId(0), t, 0.5) - 0.5).abs() < 1e-12);
        c.advance(&[Some(t), None], 1_000_000.0);
        assert!(c.demand_multiplier(CpuId(0), t) < 1.001);
        assert!(c.speed_multiplier(CpuId(0), t, 0.5) > 0.999);
    }

    #[test]
    fn speed_multiplier_is_floored() {
        let c = two_cpu();
        // Even a fully cold, fully sensitive thread keeps making progress.
        assert!(c.speed_multiplier(CpuId(0), ThreadId(9), 1.0) >= 0.05);
    }

    #[test]
    fn warmest_cpu_tracks_migrations() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        assert!(c.warmest_cpu(t).is_none());
        c.advance(&[Some(t), None], 50_000.0);
        assert_eq!(c.warmest_cpu(t).unwrap().0, CpuId(0));
        // Migrate and run longer on cpu1; cpu0 state decays only if evicted.
        c.advance(&[Some(ThreadId(2)), Some(t)], 120_000.0);
        assert_eq!(c.warmest_cpu(t).unwrap().0, CpuId(1));
    }

    #[test]
    fn forget_removes_all_state() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        c.advance(&[Some(t), Some(t)], 10_000.0);
        c.forget(t);
        assert!(c.warmest_cpu(t).is_none());
    }

    #[test]
    fn tiny_warmth_entries_are_garbage_collected() {
        let mut c = two_cpu();
        let (a, b) = (ThreadId(1), ThreadId(2));
        c.advance(&[Some(a), None], 5_000.0);
        // Long eviction drives a's entry under the tracking floor.
        c.advance(&[Some(b), None], 1_000_000.0);
        assert_eq!(c.warmth(CpuId(0), a), 0.0);
    }

    #[test]
    fn long_residency_snaps_warmth_to_exactly_one() {
        let mut c = two_cpu();
        let t = ThreadId(0);
        // 500 ms of 100 µs ticks ≈ 25 warm-up time constants.
        for _ in 0..5000 {
            c.advance(&[Some(t), None], 100.0);
        }
        assert_eq!(c.warmth(CpuId(0), t), 1.0);
        assert_eq!(c.demand_multiplier(CpuId(0), t), 1.0);
        // A fixed point: further running changes nothing.
        c.advance(&[Some(t), None], 100.0);
        assert_eq!(c.warmth(CpuId(0), t), 1.0);
    }

    #[test]
    #[should_panic(expected = "placement width")]
    fn wrong_placement_width_panics() {
        two_cpu().advance(&[None], 1.0);
    }
}
