//! Per-processor cache warmth and affinity effects.
//!
//! The paper's platform has a 256 KB L2 per processor. Two affinity effects
//! matter for the reproduction:
//!
//! 1. A thread placed on a cpu whose cache it does not occupy runs slower
//!    while it rebuilds its working set **and** generates extra bus traffic
//!    doing so. This is why LU CB (99.53 % L2 hit rate) and Water-nsqr are
//!    "very sensitive to thread migrations among processors" (§3), and why
//!    their slowdowns under the BBMA workload exceed what their tiny bus
//!    demand would predict.
//! 2. Threads time-sharing a cpu evict each other, so affinity alone does
//!    not help once multiprogramming forces interleavings.
//!
//! The model: each cpu keeps a *warmth* in `[0, 1]` per thread that has
//! recently run there. Warmth rises exponentially toward 1 with time
//! constant [`CacheConfig::warmup_tau_us`] while the thread runs, and
//! decays with [`CacheConfig::decay_tau_us`] while a *different* thread
//! runs on that cpu (an idle cpu preserves its contents). A thread running
//! with warmth `w` on its cpu:
//!
//! * issues `(1 + cold_demand_boost·(1−w))`× its base demand (refill
//!   traffic), and
//! * runs at `(1 − sensitivity·(1−w))`× speed, where `sensitivity` is a
//!   per-thread parameter (how much of its performance lives in the cache).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::{CpuId, ThreadId};

/// Cache model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Time constant (µs) for building cache state while running.
    /// ~20 ms: a 256 KB working set streams in well under a quantum, but a
    /// thread bounced every tick never warms up.
    pub warmup_tau_us: f64,
    /// Time constant (µs) for losing cache state while another thread runs
    /// on the same cpu.
    pub decay_tau_us: f64,
    /// Extra demand multiplier at warmth 0 (refill traffic): demand is
    /// `base × (1 + cold_demand_boost × (1 − warmth))`.
    pub cold_demand_boost: f64,
    /// Warmth below which an entry is dropped from tracking.
    pub min_tracked_warmth: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            warmup_tau_us: 20_000.0,
            decay_tau_us: 10_000.0,
            cold_demand_boost: 0.6,
            min_tracked_warmth: 0.01,
        }
    }
}

/// Warmth state of every cpu's cache.
#[derive(Debug, Clone)]
pub struct CacheState {
    cfg: CacheConfig,
    /// Per cpu: warmth per thread that has state there.
    per_cpu: Vec<BTreeMap<ThreadId, f64>>,
}

impl CacheState {
    /// Cold caches for `num_cpus` processors.
    pub fn new(num_cpus: usize, cfg: CacheConfig) -> Self {
        Self {
            cfg,
            per_cpu: vec![BTreeMap::new(); num_cpus],
        }
    }

    /// Warmth of `thread` on `cpu` (0 if it has never run there or its
    /// state fully decayed).
    pub fn warmth(&self, cpu: CpuId, thread: ThreadId) -> f64 {
        self.per_cpu[cpu.0].get(&thread).copied().unwrap_or(0.0)
    }

    /// Demand multiplier for `thread` running on `cpu` right now.
    pub fn demand_multiplier(&self, cpu: CpuId, thread: ThreadId) -> f64 {
        1.0 + self.cfg.cold_demand_boost * (1.0 - self.warmth(cpu, thread))
    }

    /// Speed multiplier for `thread` with cache-sensitivity `sensitivity`
    /// running on `cpu` right now.
    pub fn speed_multiplier(&self, cpu: CpuId, thread: ThreadId, sensitivity: f64) -> f64 {
        let cold = 1.0 - self.warmth(cpu, thread);
        (1.0 - sensitivity.clamp(0.0, 1.0) * cold).max(0.05)
    }

    /// Advance the cache model by `dt_us` given the current placement
    /// (`running[cpu] = Some(thread)` for occupied cpus).
    pub fn advance(&mut self, running: &[Option<ThreadId>], dt_us: f64) {
        assert_eq!(running.len(), self.per_cpu.len(), "placement width mismatch");
        let build = 1.0 - (-dt_us / self.cfg.warmup_tau_us).exp();
        let decay = (-dt_us / self.cfg.decay_tau_us).exp();
        for (cpu_idx, occ) in running.iter().enumerate() {
            let map = &mut self.per_cpu[cpu_idx];
            match occ {
                Some(t) => {
                    // Occupant warms up; everyone else's footprint decays.
                    let w = map.entry(*t).or_insert(0.0);
                    *w += (1.0 - *w) * build;
                    let min = self.cfg.min_tracked_warmth;
                    map.retain(|other, w| {
                        if other == t {
                            // The occupant is never garbage-collected: its
                            // per-tick warmth gain can be below the floor.
                            return true;
                        }
                        *w *= decay;
                        *w >= min
                    });
                }
                None => {
                    // Idle cpu: contents persist (no one is evicting).
                }
            }
        }
    }

    /// Drop all state belonging to `thread` (thread exit).
    pub fn forget(&mut self, thread: ThreadId) {
        for map in &mut self.per_cpu {
            map.remove(&thread);
        }
    }

    /// The cpu on which `thread` currently has the warmest state, if any —
    /// what an affinity-aware placement consults.
    pub fn warmest_cpu(&self, thread: ThreadId) -> Option<(CpuId, f64)> {
        self.per_cpu
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.get(&thread).map(|&w| (CpuId(i), w)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Number of cpus modeled.
    pub fn num_cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cpu() -> CacheState {
        CacheState::new(2, CacheConfig::default())
    }

    #[test]
    fn warmth_builds_while_running() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        assert_eq!(c.warmth(CpuId(0), t), 0.0);
        c.advance(&[Some(t), None], 20_000.0); // one time constant
        let w = c.warmth(CpuId(0), t);
        assert!((0.55..0.75).contains(&w), "after 1τ warmth {w}");
        c.advance(&[Some(t), None], 200_000.0);
        assert!(c.warmth(CpuId(0), t) > 0.99);
    }

    #[test]
    fn warmth_decays_under_eviction_but_not_on_idle_cpu() {
        let mut c = two_cpu();
        let (a, b) = (ThreadId(1), ThreadId(2));
        c.advance(&[Some(a), None], 200_000.0);
        let warm = c.warmth(CpuId(0), a);
        // Idle: preserved.
        c.advance(&[None, None], 100_000.0);
        assert_eq!(c.warmth(CpuId(0), a), warm);
        // Evicted by b.
        c.advance(&[Some(b), None], 10_000.0); // one decay τ
        let after = c.warmth(CpuId(0), a);
        assert!(after < warm * 0.45, "decayed {warm} -> {after}");
    }

    #[test]
    fn cold_thread_demands_more_and_runs_slower() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        assert!((c.demand_multiplier(CpuId(0), t) - 1.6).abs() < 1e-12);
        assert!((c.speed_multiplier(CpuId(0), t, 0.5) - 0.5).abs() < 1e-12);
        c.advance(&[Some(t), None], 1_000_000.0);
        assert!(c.demand_multiplier(CpuId(0), t) < 1.001);
        assert!(c.speed_multiplier(CpuId(0), t, 0.5) > 0.999);
    }

    #[test]
    fn speed_multiplier_is_floored() {
        let c = two_cpu();
        // Even a fully cold, fully sensitive thread keeps making progress.
        assert!(c.speed_multiplier(CpuId(0), ThreadId(9), 1.0) >= 0.05);
    }

    #[test]
    fn warmest_cpu_tracks_migrations() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        assert!(c.warmest_cpu(t).is_none());
        c.advance(&[Some(t), None], 50_000.0);
        assert_eq!(c.warmest_cpu(t).unwrap().0, CpuId(0));
        // Migrate and run longer on cpu1; cpu0 state decays only if evicted.
        c.advance(&[Some(ThreadId(2)), Some(t)], 120_000.0);
        assert_eq!(c.warmest_cpu(t).unwrap().0, CpuId(1));
    }

    #[test]
    fn forget_removes_all_state() {
        let mut c = two_cpu();
        let t = ThreadId(1);
        c.advance(&[Some(t), Some(t)], 10_000.0);
        c.forget(t);
        assert!(c.warmest_cpu(t).is_none());
    }

    #[test]
    fn tiny_warmth_entries_are_garbage_collected() {
        let mut c = two_cpu();
        let (a, b) = (ThreadId(1), ThreadId(2));
        c.advance(&[Some(a), None], 5_000.0);
        // Long eviction drives a's entry under the tracking floor.
        c.advance(&[Some(b), None], 1_000_000.0);
        assert_eq!(c.warmth(CpuId(0), a), 0.0);
    }

    #[test]
    #[should_panic(expected = "placement width")]
    fn wrong_placement_width_panics() {
        two_cpu().advance(&[None], 1.0);
    }
}
