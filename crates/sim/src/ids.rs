//! Identifier newtypes and time units.
//!
//! Simulated wall-clock time is counted in **microseconds** (`u64`), the
//! natural unit of the paper (bus rates are transactions/µs, quanta are
//! 100 000–200 000 µs). Virtual (useful-work) time is `f64` µs because the
//! fluid model produces fractional progress per tick.

use std::fmt;

/// Simulated wall-clock time in microseconds.
pub type SimTime = u64;

/// A processor (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A simulated kernel thread. Unique for the lifetime of a [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

impl ThreadId {
    /// The perfmon key for this thread (same number space).
    pub fn key(self) -> busbw_perfmon::ThreadKey {
        busbw_perfmon::ThreadKey(self.0)
    }
}

/// An application (a gang of threads scheduled as a unit by the paper's
/// policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u64);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CpuId(2).to_string(), "cpu2");
        assert_eq!(ThreadId(5).to_string(), "tid5");
        assert_eq!(AppId(1).to_string(), "app1");
    }

    #[test]
    fn thread_key_roundtrip() {
        assert_eq!(ThreadId(9).key(), busbw_perfmon::ThreadKey(9));
    }
}
