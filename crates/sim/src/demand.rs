//! The demand model: what a thread asks of the bus.
//!
//! A thread's interaction with the memory subsystem is summarized by two
//! numbers that may vary over its execution:
//!
//! * **`rate`** — the bus-transaction rate (tx/µs) the thread sustains when
//!   running alone at full speed ("solo rate"). This is what Figure 1A of
//!   the paper reports per application (halved per thread).
//! * **`mu`** — memory-boundness: the fraction of the thread's solo
//!   execution time spent waiting on bus transactions. When the bus
//!   dilates memory service by a factor λ, the thread's speed becomes
//!   `1 / ((1 − mu) + mu·λ)`; a pure streaming kernel (`mu = 1`) slows
//!   down by exactly λ, a cache-resident kernel (`mu ≈ 0`) barely notices.
//!
//! Demands are a function of the thread's *virtual* time (progress through
//! its work), so program phases stay attached to the work they belong to
//! regardless of how the scheduler stretches wall-clock execution. Models
//! also receive the wall clock for burst processes that are tied to real
//! time (e.g. the Raytrace-like irregular bursts in `busbw-workloads`).

/// Instantaneous demand of a thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Solo bus-transaction rate, tx/µs. Must be ≥ 0 and finite.
    pub rate: f64,
    /// Memory-boundness in `[0, 1]`.
    pub mu: f64,
}

impl Demand {
    /// A demand with the given rate and memory-boundness.
    ///
    /// # Panics
    /// Panics if `rate` is negative/non-finite or `mu` outside `[0, 1]`.
    pub fn new(rate: f64, mu: f64) -> Self {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "demand rate must be finite and >= 0, got {rate}"
        );
        assert!((0.0..=1.0).contains(&mu), "mu must be in [0,1], got {mu}");
        Self { rate, mu }
    }

    /// Zero demand (idle / pure compute with no bus traffic).
    pub const ZERO: Demand = Demand { rate: 0.0, mu: 0.0 };
}

/// A thread's demand as a function of its progress.
///
/// Implementations live mostly in `busbw-workloads`; the simulator ships
/// only [`ConstantDemand`] so it can be tested standalone.
///
/// `&mut self` lets stateful models (cyclic phase iterators, seeded burst
/// processes) advance their own state. Models must be deterministic given
/// their construction parameters — the whole reproduction depends on
/// repeatable runs.
pub trait DemandModel: Send {
    /// Demand at virtual time `vt_us` (µs of completed useful work), with
    /// the current wall clock `wall_us` available for time-driven burst
    /// processes.
    fn demand_at(&mut self, vt_us: f64, wall_us: u64) -> Demand;

    /// The long-run mean rate of this model, used by tests and reports for
    /// cross-checking (not by any scheduling policy).
    fn mean_rate(&self) -> f64;

    /// How far the demand returned at `(vt_us, wall_us)` stays constant,
    /// as `(virtual_horizon_us, wall_horizon_us)`: the demand is
    /// guaranteed unchanged for virtual times in
    /// `[vt_us, vt_us + virtual_horizon_us)` and wall clocks in
    /// `[wall_us, wall_us + wall_horizon_us)`.
    ///
    /// This powers the machine's tick coarsening: when every placed
    /// thread's demand is provably constant across a window, the simulator
    /// advances it in one jump. The default `(0.0, 0.0)` means "unknown,
    /// never coarsen" and is always safe; `f64::INFINITY` means "constant
    /// forever" in that dimension.
    fn constant_for(&self, _vt_us: f64, _wall_us: u64) -> (f64, f64) {
        (0.0, 0.0)
    }
}

/// The simplest model: fixed demand forever.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDemand(pub Demand);

impl ConstantDemand {
    /// Constant demand with the given rate and memory-boundness.
    pub fn new(rate: f64, mu: f64) -> Self {
        Self(Demand::new(rate, mu))
    }
}

impl DemandModel for ConstantDemand {
    fn demand_at(&mut self, _vt_us: f64, _wall_us: u64) -> Demand {
        self.0
    }

    fn mean_rate(&self) -> f64 {
        self.0.rate
    }

    fn constant_for(&self, _vt_us: f64, _wall_us: u64) -> (f64, f64) {
        (f64::INFINITY, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_constant() {
        let mut m = ConstantDemand::new(5.0, 0.5);
        assert_eq!(m.demand_at(0.0, 0), m.demand_at(1e9, 77));
        assert_eq!(m.mean_rate(), 5.0);
    }

    #[test]
    #[should_panic(expected = "mu must be in")]
    fn mu_out_of_range_rejected() {
        Demand::new(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn negative_rate_rejected() {
        Demand::new(-1.0, 0.5);
    }
}
