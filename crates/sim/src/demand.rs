//! The demand model: what a thread asks of the bus.
//!
//! A thread's interaction with the memory subsystem is summarized by two
//! numbers that may vary over its execution:
//!
//! * **`rate`** — the bus-transaction rate (tx/µs) the thread sustains when
//!   running alone at full speed ("solo rate"). This is what Figure 1A of
//!   the paper reports per application (halved per thread).
//! * **`mu`** — memory-boundness: the fraction of the thread's solo
//!   execution time spent waiting on bus transactions. When the bus
//!   dilates memory service by a factor λ, the thread's speed becomes
//!   `1 / ((1 − mu) + mu·λ)`; a pure streaming kernel (`mu = 1`) slows
//!   down by exactly λ, a cache-resident kernel (`mu ≈ 0`) barely notices.
//!
//! Demands are a function of the thread's *virtual* time (progress through
//! its work), so program phases stay attached to the work they belong to
//! regardless of how the scheduler stretches wall-clock execution. Models
//! also receive the wall clock for burst processes that are tied to real
//! time (e.g. the Raytrace-like irregular bursts in `busbw-workloads`).

/// Instantaneous demand of a thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Solo bus-transaction rate, tx/µs. Must be ≥ 0 and finite.
    pub rate: f64,
    /// Memory-boundness in `[0, 1]`.
    pub mu: f64,
}

impl Demand {
    /// A demand with the given rate and memory-boundness.
    ///
    /// # Panics
    /// Panics if `rate` is negative/non-finite or `mu` outside `[0, 1]`.
    pub fn new(rate: f64, mu: f64) -> Self {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "demand rate must be finite and >= 0, got {rate}"
        );
        assert!((0.0..=1.0).contains(&mu), "mu must be in [0,1], got {mu}");
        Self { rate, mu }
    }

    /// Zero demand (idle / pure compute with no bus traffic).
    pub const ZERO: Demand = Demand { rate: 0.0, mu: 0.0 };
}

/// A thread's demand as a function of its progress.
///
/// Implementations live mostly in `busbw-workloads`; the simulator ships
/// only [`ConstantDemand`] so it can be tested standalone.
///
/// `&mut self` lets stateful models (cyclic phase iterators, seeded burst
/// processes) advance their own state. Models must be deterministic given
/// their construction parameters — the whole reproduction depends on
/// repeatable runs. Determinism includes **query-frequency invariance**:
/// `demand_at` must depend only on the query point `(vt_us, wall_us)`,
/// never on how often or at which intermediate instants it was queried —
/// stateful models must catch up lazily (as the burst process does by
/// replaying state switches up to `wall_us`). The event-driven execution
/// mode relies on this: it provably skips redundant queries inside a
/// constant region, so a model whose answers drifted with query cadence
/// would diverge between the per-tick and event-driven paths.
pub trait DemandModel: Send {
    /// Demand at virtual time `vt_us` (µs of completed useful work), with
    /// the current wall clock `wall_us` available for time-driven burst
    /// processes.
    fn demand_at(&mut self, vt_us: f64, wall_us: u64) -> Demand;

    /// The long-run mean rate of this model, used by tests and reports for
    /// cross-checking (not by any scheduling policy).
    fn mean_rate(&self) -> f64;

    /// How far the demand returned at `(vt_us, wall_us)` stays constant,
    /// as `(virtual_horizon_us, wall_horizon_us)`: the demand is
    /// guaranteed unchanged for virtual times in
    /// `[vt_us, vt_us + virtual_horizon_us)` and wall clocks in
    /// `[wall_us, wall_us + wall_horizon_us)`.
    ///
    /// This powers the machine's tick coarsening: when every placed
    /// thread's demand is provably constant across a window, the simulator
    /// advances it in one jump. The default `(0.0, 0.0)` means "unknown,
    /// never coarsen" and is always safe; `f64::INFINITY` means "constant
    /// forever" in that dimension.
    ///
    /// **Contract (both horizons, always).** The two dimensions are
    /// independent and *both* must be honest: a model driven purely by
    /// virtual time (phase and trace profiles) reports its real virtual
    /// horizon and `f64::INFINITY` for the wall horizon, a model driven
    /// purely by wall time (burst processes) reports `f64::INFINITY` for
    /// the virtual horizon and its real wall horizon. Returning `0.0` in a
    /// dimension the model does not track is *wrong* — it would merely
    /// disable coarsening — but returning a horizon longer than the model
    /// can guarantee is a correctness bug: the simulator integrates
    /// straight through the window without re-querying.
    fn constant_for(&self, _vt_us: f64, _wall_us: u64) -> (f64, f64) {
        (0.0, 0.0)
    }

    /// Absolute next-change prediction: the earliest virtual time and wall
    /// clock at which the demand returned at `(vt_us, wall_us)` may
    /// change, as `(virtual_edge_us, wall_edge_us)`. `f64::INFINITY` in a
    /// dimension means "never changes along that axis".
    ///
    /// The event-driven machine keeps a thread's demand cached until its
    /// progress or the wall clock crosses these edges. The default derives
    /// the edges from [`DemandModel::constant_for`] — so a model with the
    /// default `(0.0, 0.0)` horizon yields edges at "now", the cache is
    /// invalid immediately, and event prediction degrades gracefully to
    /// per-tick re-querying. Models that know their exact switch instants
    /// (e.g. a wall-time burst process holding the next switch as an
    /// integer) should override this to avoid the rounding of
    /// `now + horizon` and return the exact edge.
    fn next_change(&self, vt_us: f64, wall_us: u64) -> (f64, f64) {
        let (virt_h, wall_h) = self.constant_for(vt_us, wall_us);
        (vt_us + virt_h, wall_us as f64 + wall_h)
    }
}

/// The simplest model: fixed demand forever.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDemand(pub Demand);

impl ConstantDemand {
    /// Constant demand with the given rate and memory-boundness.
    pub fn new(rate: f64, mu: f64) -> Self {
        Self(Demand::new(rate, mu))
    }
}

impl DemandModel for ConstantDemand {
    fn demand_at(&mut self, _vt_us: f64, _wall_us: u64) -> Demand {
        self.0
    }

    fn mean_rate(&self) -> f64 {
        self.0.rate
    }

    fn constant_for(&self, _vt_us: f64, _wall_us: u64) -> (f64, f64) {
        (f64::INFINITY, f64::INFINITY)
    }

    fn next_change(&self, _vt_us: f64, _wall_us: u64) -> (f64, f64) {
        (f64::INFINITY, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_constant() {
        let mut m = ConstantDemand::new(5.0, 0.5);
        assert_eq!(m.demand_at(0.0, 0), m.demand_at(1e9, 77));
        assert_eq!(m.mean_rate(), 5.0);
        assert_eq!(m.next_change(123.0, 456), (f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn default_next_change_degrades_to_edges_at_now() {
        // A model that cannot look ahead keeps the default (0, 0) horizon;
        // its predicted edges must then sit exactly at the query point so
        // any cached demand is invalid immediately.
        struct Opaque;
        impl DemandModel for Opaque {
            fn demand_at(&mut self, _vt_us: f64, _wall_us: u64) -> Demand {
                Demand::ZERO
            }
            fn mean_rate(&self) -> f64 {
                0.0
            }
        }
        assert_eq!(Opaque.constant_for(10.0, 20), (0.0, 0.0));
        assert_eq!(Opaque.next_change(10.0, 20), (10.0, 20.0));
    }

    #[test]
    #[should_panic(expected = "mu must be in")]
    fn mu_out_of_range_rejected() {
        Demand::new(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn negative_rate_rejected() {
        Demand::new(-1.0, 0.5);
    }
}
