//! Discrete-time SMP simulator substrate for the ICPP 2003 reproduction.
//!
//! The paper ran on a dedicated 4-processor Hyperthreaded Xeon SMP
//! (1.4 GHz, 256 KB L2 per cpu, 400 MHz front-side bus; 3.2 GB/s theoretical
//! and 1797 MB/s ≈ **29.5 bus transactions/µs** sustained as measured with
//! STREAM; 64 bytes per transaction). This crate substitutes that machine
//! with a deterministic fluid simulator:
//!
//! * [`bus`] — the shared front-side bus. Demand beyond sustained capacity
//!   dilates every thread's memory phases by a common factor λ (solved so
//!   issued traffic exactly equals effective capacity), and contention
//!   below saturation costs a mild queueing penalty. Per-master arbitration
//!   overhead shrinks effective capacity as more processors contend,
//!   matching the paper's observation that "contention and arbitration
//!   contribute to bandwidth consumption" even below the raw limit.
//! * [`cache`] — per-cpu cache warmth: threads build state while running
//!   and lose it to eviction; cold threads run slower and fetch more,
//!   reproducing the paper's affinity effects (LU CB's and Water-nsqr's
//!   migration sensitivity).
//! * [`thread`], [`demand`] — the thread execution model: work measured in
//!   *virtual microseconds*; a [`demand::DemandModel`] maps virtual time to
//!   (solo bus demand, memory-boundness).
//! * [`machine`] — the SMP itself: tick loop, scheduler callbacks, quantum
//!   and sampling timers, precise completion times.
//! * [`stats`] — per-run accounting (saturation residency, peak pressure).
//!
//! Schedulers (the paper's contribution, crate `busbw-core`) plug in through
//! the [`machine::Scheduler`] trait and observe the machine only through
//! [`machine::MachineView`] — which exposes exactly what a user-level CPU
//! manager could see on the real machine: thread states, processor counts,
//! and the performance-monitoring counters of crate `busbw-perfmon`.
//!
//! Everything is deterministic: the simulator itself uses no randomness, and
//! iteration orders are fixed, so every experiment is bit-for-bit
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod demand;
pub mod ids;
pub mod machine;
pub mod prof;
pub mod stage;
pub mod stats;
pub mod testkit;
pub mod thread;
pub mod trace;

pub use bus::{
    solve_lambda, BatchSolver, BusModel, BusOutcome, BusRequest, BusShare, FsbBus, HierarchicalBus,
    LevelOutcome, MaxMinFairBus, ProportionalBus, SolveJob, UnlimitedBus, MAX_BUS_LEVELS,
};
pub use cache::{CacheConfig, CacheState};
pub use config::{
    BusConfig, MachineConfig, TopologyConfig, PAPER_BUS_TX_PER_US, SINGLE_SOCKET, XEON_4WAY,
    XEON_4WAY_HT,
};
pub use demand::{ConstantDemand, Demand, DemandModel};
pub use ids::{AppId, CpuId, SimTime, ThreadId};
pub use machine::{
    AppDescriptor, AppInfo, AppReport, Assignment, AuditHook, Decision, ExecMode, Machine,
    MachineView, RunCursor, RunOutcome, Scheduler, StepEvent, StopCondition, ThreadInfo,
};
pub use prof::{Phase, PhaseSet, PhaseStat, PhaseTimer, PHASE_BUCKET_BOUNDS_NS};
pub use stage::{StageSnapshot, StageTiming, StageTimings, STAGE_BUCKET_BOUNDS_NS, STAGE_NAMES};
pub use stats::{BusPressureStats, LevelPressureStats, RunStats, TickDtHist};
pub use thread::{ThreadSpec, ThreadState};
pub use trace::{QuantumRecord, ScheduleTrace, Traced};
