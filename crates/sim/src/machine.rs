//! The simulated SMP: cpus, bus, caches, threads, and the tick loop.
//!
//! A [`Machine`] hosts applications (gangs of threads) and drives time
//! forward in fixed ticks. A [`Scheduler`] — the pluggable policy layer —
//! is consulted:
//!
//! * at time 0 and whenever its requested quantum expires,
//! * immediately (at the next tick boundary) when an application finishes,
//!   so freed processors are not left idle for the rest of a quantum,
//! * at its requested sampling period ([`Scheduler::on_sample`]), which the
//!   paper's CPU manager uses to poll performance counters twice per
//!   quantum.
//!
//! The scheduler sees the machine only through [`MachineView`]: thread and
//! application states plus the `busbw-perfmon` counter registry — the same
//! information a user-level CPU manager has on real hardware. It returns a
//! [`Decision`]: a complete placement of threads onto cpus for the next
//! interval.
//!
//! Timers fire at tick granularity (default 100 µs), three orders of
//! magnitude below the paper's quanta.

use busbw_perfmon::{EventKind, Registry};
use busbw_trace::{EventBus, TraceEvent};

use crate::bus::{BusModel, BusOutcome, BusRequest, LevelOutcome, SolveJob, MAX_BUS_LEVELS};
use crate::cache::CacheState;
use crate::config::MachineConfig;
use crate::ids::{AppId, CpuId, SimTime, ThreadId};
use crate::prof::{Phase, PhaseSet, PhaseTimer};
use crate::stage::StageSnapshot;
use crate::stats::RunStats;
use crate::thread::{SimThread, ThreadSpec, ThreadState};

/// An application to place on the machine: a named gang of threads.
pub struct AppDescriptor {
    /// Human-readable name (used in reports).
    pub name: String,
    /// The gang's threads.
    pub threads: Vec<ThreadSpec>,
    /// Barrier interval in virtual µs: threads synchronize this often, so
    /// no thread's progress may exceed the slowest unfinished sibling's
    /// progress by more than this. A thread at the limit spin-waits —
    /// burning its processor without progress or bus traffic, exactly what
    /// an OpenMP barrier does when a sibling is descheduled. `None`
    /// disables coupling (independent threads, e.g. microbenchmarks).
    pub barrier_interval_us: Option<f64>,
}

impl AppDescriptor {
    /// Build a descriptor with uncoupled threads.
    pub fn new(name: impl Into<String>, threads: Vec<ThreadSpec>) -> Self {
        Self {
            name: name.into(),
            threads,
            barrier_interval_us: None,
        }
    }

    /// Couple the gang with barriers every `interval_us` of virtual time.
    ///
    /// # Panics
    /// Panics if `interval_us` is not positive.
    pub fn with_barrier_interval(mut self, interval_us: f64) -> Self {
        assert!(interval_us > 0.0, "barrier interval must be positive");
        self.barrier_interval_us = Some(interval_us);
        self
    }
}

pub(crate) struct AppRecord {
    pub name: String,
    pub threads: Vec<ThreadId>,
    pub arrived_at: SimTime,
    pub finished_at: Option<SimTime>,
    pub barrier_interval_us: Option<f64>,
}

/// One thread-to-cpu placement in a [`Decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The thread to run.
    pub thread: ThreadId,
    /// The cpu to run it on.
    pub cpu: CpuId,
}

/// A scheduler's answer: the complete placement for the next interval.
///
/// Threads not mentioned in `assignments` are preempted (set to `Ready`).
#[derive(Debug, Clone)]
pub struct Decision {
    /// Placements; at most one thread per cpu, one cpu per thread.
    pub assignments: Vec<Assignment>,
    /// Microseconds until the next [`Scheduler::schedule`] call (the
    /// scheduling quantum). Must be positive.
    pub next_resched_in_us: u64,
    /// If set, [`Scheduler::on_sample`] is invoked at this period until the
    /// next reschedule. The paper samples twice per quantum.
    pub sample_period_us: Option<u64>,
}

impl Decision {
    /// An idle decision: run nothing, re-ask after `quantum_us`.
    pub fn idle(quantum_us: u64) -> Self {
        Self {
            assignments: Vec::new(),
            next_resched_in_us: quantum_us,
            sample_period_us: None,
        }
    }
}

/// Read-only information about one thread, as exposed to schedulers.
#[derive(Debug, Clone, Copy)]
pub struct ThreadInfo {
    /// Thread id.
    pub id: ThreadId,
    /// Owning application.
    pub app: AppId,
    /// Current scheduling state.
    pub state: ThreadState,
    /// Last cpu the thread ran on (affinity hint), if any.
    pub last_cpu: Option<CpuId>,
    /// Completed useful work, virtual µs.
    pub progress_us: f64,
    /// Total work, virtual µs (`INFINITY` for run-forever threads).
    pub work_us: f64,
}

impl ThreadInfo {
    /// Whether the thread still wants cpu time.
    pub fn is_runnable(&self) -> bool {
        self.state.is_runnable()
    }
}

/// Read-only information about one application.
#[derive(Debug, Clone)]
pub struct AppInfo<'a> {
    /// Application id.
    pub id: AppId,
    /// Name given at creation.
    pub name: &'a str,
    /// The gang's threads.
    pub threads: &'a [ThreadId],
    /// Wall time the app was added.
    pub arrived_at: SimTime,
    /// Wall time the app finished, if it has.
    pub finished_at: Option<SimTime>,
}

impl AppInfo<'_> {
    /// Whether any thread still wants cpu time.
    pub fn is_live(&self) -> bool {
        self.finished_at.is_none()
    }

    /// Number of threads in the gang.
    pub fn width(&self) -> usize {
        self.threads.len()
    }
}

/// The scheduler's window into the machine.
pub struct MachineView<'a> {
    /// Current simulated time, µs.
    pub now: SimTime,
    /// Number of processors.
    pub num_cpus: usize,
    /// Nominal sustained bus capacity, tx/µs — the paper's policies need
    /// this to compute available bandwidth per unallocated processor.
    pub bus_capacity: f64,
    /// The performance-counter registry (what a perfctr client reads).
    pub registry: &'a Registry,
    /// Hardware threads per physical core (1 = no SMT). Placement stages
    /// need this to prefer spreading gangs across idle cores.
    pub smt_threads_per_core: usize,
    /// Number of sockets in the bus topology (1 = one shared bus).
    pub sockets: usize,
    /// Logical cpus per socket (contiguous blocks, cpu 0 on socket 0).
    pub cpus_per_socket: usize,
    /// Per-level bus state from the most recent arbitration — sockets
    /// first, the cross-socket interconnect last. Empty for single-level
    /// bus models; socket-aware placement stages read it to find
    /// saturated local buses.
    pub bus_levels: &'a [LevelOutcome],
    /// Time-integral of bus dilation (µs·Λ) — the simulated IOQ-occupancy
    /// PMU reading; see [`Machine`] internals.
    pub dilation_integral: f64,
    threads: &'a [SimThread],
    apps: &'a [AppRecord],
    cache: &'a CacheState,
}

impl<'a> MachineView<'a> {
    /// Iterate all threads (id order).
    pub fn threads(&self) -> impl Iterator<Item = ThreadInfo> + '_ {
        self.threads.iter().map(thread_info)
    }

    /// Look up one thread.
    pub fn thread(&self, id: ThreadId) -> Option<ThreadInfo> {
        self.threads.get(id.0 as usize).map(thread_info)
    }

    /// Iterate all applications (deterministic id order).
    pub fn apps(&self) -> impl Iterator<Item = AppInfo<'_>> + '_ {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, r)| app_info(AppId(i as u64), r))
    }

    /// Look up one application.
    pub fn app(&self, id: AppId) -> Option<AppInfo<'_>> {
        self.apps.get(id.0 as usize).map(|r| app_info(id, r))
    }

    /// Cache warmth of `thread` on `cpu` — affinity information, the
    /// equivalent of the kernel's affinity links.
    pub fn warmth(&self, cpu: CpuId, thread: ThreadId) -> f64 {
        self.cache.warmth(cpu, thread)
    }

    /// The cpu where `thread` has the warmest cache state, if any.
    pub fn warmest_cpu(&self, thread: ThreadId) -> Option<(CpuId, f64)> {
        self.cache.warmest_cpu(thread)
    }

    /// The physical core a cpu (hardware thread) belongs to.
    pub fn core_of(&self, cpu: CpuId) -> usize {
        cpu.0 / self.smt_threads_per_core.max(1)
    }

    /// The socket a cpu belongs to.
    pub fn socket_of(&self, cpu: CpuId) -> usize {
        (cpu.0 / self.cpus_per_socket.max(1)).min(self.sockets.max(1) - 1)
    }

    /// The socket where `thread`'s memory lives (first-touch), if it has
    /// ever been placed.
    pub fn home_socket(&self, thread: ThreadId) -> Option<usize> {
        self.threads
            .get(thread.0 as usize)
            .and_then(|t| t.home_socket)
    }

    /// All applications that still have runnable work, in id order.
    pub fn live_apps(&self) -> Vec<AppId> {
        self.apps
            .iter()
            .enumerate()
            .filter(|(_, r)| r.finished_at.is_none())
            .map(|(i, _)| AppId(i as u64))
            .collect()
    }
}

fn thread_info(t: &SimThread) -> ThreadInfo {
    ThreadInfo {
        id: t.id,
        app: t.app,
        state: t.state,
        last_cpu: t.last_cpu,
        progress_us: t.progress_us,
        work_us: t.work_us,
    }
}

fn app_info(id: AppId, r: &AppRecord) -> AppInfo<'_> {
    AppInfo {
        id,
        name: &r.name,
        threads: &r.threads,
        arrived_at: r.arrived_at,
        finished_at: r.finished_at,
    }
}

/// A scheduling policy driving a [`Machine`].
pub trait Scheduler {
    /// Produce the placement for the next interval.
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision;

    /// Called at the sampling period requested by the last [`Decision`].
    fn on_sample(&mut self, view: &MachineView<'_>) {
        let _ = view;
    }

    /// Called once at the start of every [`Machine::run`] with the
    /// machine's trace bus, so schedulers that emit structured events
    /// share the machine's sink. The default ignores it.
    fn attach_tracer(&mut self, tracer: &EventBus) {
        let _ = tracer;
    }

    /// Display name for reports.
    fn name(&self) -> &str {
        "scheduler"
    }

    /// Per-stage wall-time accounting, for schedulers built as a policy
    /// pipeline. Monolithic schedulers return `None` (the default).
    fn stage_timings(&self) -> Option<&crate::stage::StageTimings> {
        None
    }

    /// Ask the scheduler to (stop) recording a [`StageSnapshot`] per
    /// reschedule. [`Machine::run_audited`] switches this on exactly when
    /// an audit hook is attached; schedulers without stage structure
    /// ignore it (the default).
    fn set_introspect(&mut self, on: bool) {
        let _ = on;
    }

    /// The stage snapshot of the most recent [`Scheduler::schedule`] call,
    /// if the scheduler is pipelined and introspection is on. Monolithic
    /// schedulers return `None` (the default).
    fn stage_snapshot(&self) -> Option<&StageSnapshot> {
        None
    }
}

/// Observer attached to [`Machine::run_audited`]'s hook points.
///
/// The hooks are purely observational — the machine never reads anything
/// back — and both fire on the hot path, so implementations should do
/// cheap bookkeeping and defer reporting to after the run. When no hook
/// is attached the cost is a single `Option` branch per decision/tick.
pub trait AuditHook {
    /// A scheduling decision was produced and is about to be applied.
    /// `snapshot` is the scheduler's stage introspection, when available
    /// (pipelined schedulers under [`Scheduler::set_introspect`]).
    fn on_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        snapshot: Option<&StageSnapshot>,
    );

    /// A tick advanced the machine: `issued_tx` bus transactions were
    /// issued over `dt_us` starting at `now`, against a bus whose nominal
    /// sustained capacity is `capacity_tx_per_us`.
    fn on_tick(&mut self, now: SimTime, dt_us: u64, issued_tx: f64, capacity_tx_per_us: f64);

    /// Per-level topology pressure for the tick (sockets first, the
    /// cross-socket interconnect last). Fires only for hierarchical bus
    /// models — the default ignores it, so hooks written against the
    /// single-bus machine need no changes.
    fn on_levels(&mut self, now: SimTime, dt_us: u64, levels: &[LevelOutcome]) {
        let _ = (now, dt_us, levels);
    }
}

/// When a [`Machine::run`] should stop.
#[derive(Debug, Clone)]
pub enum StopCondition {
    /// Stop at the given absolute simulated time.
    At(SimTime),
    /// Stop when all the listed applications have finished.
    AppsFinished(Vec<AppId>),
    /// Stop when every application with finite work has finished.
    AllFiniteAppsFinished,
}

/// Why a run stopped, plus accounting.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Time at which the run stopped.
    pub stopped_at: SimTime,
    /// Whether the stop condition was met (vs. hitting the hard cap).
    pub condition_met: bool,
    /// Accounting for the run.
    pub stats: RunStats,
}

/// Aggregated per-application accounting, assembled from the counters.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// The application.
    pub app: AppId,
    /// Its display name.
    pub name: String,
    /// Gang width.
    pub threads: usize,
    /// Arrival time, µs.
    pub arrived_at_us: SimTime,
    /// Completion time, µs (if finished).
    pub finished_at_us: Option<SimTime>,
    /// Turnaround, µs (if finished).
    pub turnaround_us: Option<SimTime>,
    /// Σ cpu time consumed across threads, µs.
    pub cpu_time_us: f64,
    /// Σ useful progress across threads, virtual µs.
    pub progress_us: f64,
    /// Σ bus transactions issued.
    pub transactions: f64,
    /// Σ cache-cold placements.
    pub cold_starts: f64,
    /// Σ quanta in which threads were placed.
    pub quanta_run: f64,
}

impl AppReport {
    /// Useful progress per cpu-µs consumed: 1.0 = never slowed by the
    /// bus, caches, SMT sharing, or barrier spins.
    pub fn efficiency(&self) -> f64 {
        if self.cpu_time_us == 0.0 {
            0.0
        } else {
            self.progress_us / self.cpu_time_us
        }
    }

    /// Mean bus transaction rate while on cpu, tx/µs.
    pub fn rate_on_cpu(&self) -> f64 {
        if self.cpu_time_us == 0.0 {
            0.0
        } else {
            self.transactions / self.cpu_time_us
        }
    }
}

/// Per-tick scratch buffers, reused across ticks so the hot path makes no
/// allocations. All vectors are CPU- or thread-indexed and fully rewritten
/// (or cleared) at the start of every tick; `f64::INFINITY` in
/// `barrier_cap` means "no cap". Taken out of the machine with
/// `std::mem::take` for the duration of a tick to keep borrows simple.
#[derive(Debug)]
struct TickScratch {
    /// Occupant per cpu.
    placement: Vec<Option<ThreadId>>,
    /// Barrier progress cap per thread index (`INFINITY` = uncapped).
    barrier_cap: Vec<f64>,
    /// Cache×SMT speed factor per thread index (valid for placed threads).
    cache_speed: Vec<f64>,
    /// Busy hardware threads per physical core.
    busy_per_core: Vec<usize>,
    /// Bus requests, one per occupied cpu (cpu order).
    reqs: Vec<BusRequest>,
    /// Parallel to `reqs`: is the requester spin-waiting at its barrier?
    req_spin: Vec<bool>,
    /// Parallel to `reqs`: demand-constant horizons (virtual µs, wall µs).
    /// Only populated by the full rebuild path; the replay fast path
    /// leaves them stale, which is safe because it refuses exactly the
    /// ticks whose commit would read them (the coarsening gate).
    req_virt_h: Vec<f64>,
    req_wall_h: Vec<f64>,
    /// Were all placed, non-spinning threads at full cache warmth this
    /// tick? Feeds the coarsening gate in the commit phase.
    all_warm: bool,
    /// Arbitration result (shares reused tick to tick).
    outcome: BusOutcome,
}

impl Default for TickScratch {
    fn default() -> Self {
        Self {
            placement: Vec::new(),
            barrier_cap: Vec::new(),
            cache_speed: Vec::new(),
            busy_per_core: Vec::new(),
            reqs: Vec::new(),
            req_spin: Vec::new(),
            req_virt_h: Vec::new(),
            req_wall_h: Vec::new(),
            all_warm: true,
            outcome: BusOutcome::empty(0.0),
        }
    }
}

/// Execution mode of the inner loop.
///
/// Both modes produce bit-identical results — the audit fuzzer checks the
/// full run codec byte-for-byte — they differ only in how much work each
/// simulated tick costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Event-driven (the default): between demand-change events the
    /// machine replays the previous tick's request build from a cache
    /// keyed on the next predicted event (barrier spin flips, demand
    /// phase edges via [`crate::demand::DemandModel::next_change`],
    /// wall-clock switch
    /// points, placements, completions), skipping placement scans and
    /// demand-model queries whose answers provably cannot have changed.
    #[default]
    EventDriven,
    /// The legacy path: rebuild everything from scratch every tick. Kept
    /// as the differential baseline for the audit fuzzer.
    PerTick,
}

/// The event-driven replay cache: a validated snapshot of the last full
/// request build, plus the predicted invalidation edges.
///
/// One entry per bus request, in placement (cpu) order. The cached
/// quantities are exactly those whose recomputation the fast path skips:
/// the pre-boost demand `(rate, µ)` (demand-model queries), the SMT
/// factor (placement scan), and the spin flag. Quantities that evolve
/// every tick — cache warmth boosts and speed multipliers — are *not*
/// cached; the fast path recomputes them with the identical expressions,
/// so the rebuilt requests are bit-identical to what the full path would
/// produce. Any observable change (progress crossing a predicted demand
/// edge, the wall clock crossing a switch point, a spin flag flipping, a
/// new placement, a thread finishing, a tracer change) invalidates the
/// snapshot and the next tick takes the full rebuild path, which
/// repopulates it.
#[derive(Debug, Default)]
struct ReplayCache {
    valid: bool,
    /// Cpu index per request.
    cpu: Vec<usize>,
    /// Thread index per request.
    tid: Vec<usize>,
    /// Pre-boost demand rate per request.
    rate: Vec<f64>,
    /// Demand memory-boundness per request.
    mu: Vec<f64>,
    /// Replay is valid only while `progress < vt_guard` (virtual µs).
    vt_guard: Vec<f64>,
    /// … and while `now < wall_guard` (wall µs).
    wall_guard: Vec<f64>,
    /// Spin flag per request at snapshot time.
    spin: Vec<bool>,
    /// Thread cache sensitivity per request.
    sens: Vec<f64>,
    /// SMT speed factor per request (placement-static).
    smt: Vec<f64>,
    /// Executing socket per request (placement-static).
    socket: Vec<usize>,
    /// Interconnect traffic fraction per request (placement-static:
    /// depends only on the home socket, fixed at first placement, and
    /// the executing socket).
    remote: Vec<f64>,
}

impl ReplayCache {
    fn clear(&mut self) {
        self.valid = false;
        self.cpu.clear();
        self.tid.clear();
        self.rate.clear();
        self.mu.clear();
        self.vt_guard.clear();
        self.wall_guard.clear();
        self.spin.clear();
        self.sens.clear();
        self.smt.clear();
        self.socket.clear();
        self.remote.clear();
    }
}

/// Pull a predicted change edge strictly below itself by a relative +
/// absolute margin. The margins dwarf the few-ulp rounding of
/// `now + horizon` style edge arithmetic, so a cached demand is never
/// replayed *past* its true change point — at worst the fast path gives
/// up one tick early and the full rebuild re-queries the model (which is
/// always byte-safe). Integer-valued edges (the burst process's switch
/// instant) lose nothing: for integers `now < edge − ε ⇔ now < edge`
/// whenever ε < 1.
#[inline]
fn guard_edge(edge: f64) -> f64 {
    if edge.is_finite() {
        edge - (1e-9 + 1e-12 * edge.abs())
    } else {
        edge
    }
}

/// Loop state of a stepped run (see [`Machine::run_begin`]).
///
/// Opaque to drivers: park it between [`Machine::run_step`] calls and
/// read [`RunCursor::pending_requests`] while a solve is outstanding.
#[derive(Debug)]
pub struct RunCursor {
    stop: StopCondition,
    stats: RunStats,
    started_at: SimTime,
    cap_at: SimTime,
    next_resched: SimTime,
    sample_period: Option<u64>,
    next_sample: Option<SimTime>,
    resched_requested: bool,
    pending: Option<PendingTick>,
}

impl RunCursor {
    /// The bus requests of the tick parked behind a
    /// [`StepEvent::NeedSolve`] — the solver lane's input vector.
    ///
    /// # Panics
    /// Panics if no solve is pending.
    pub fn pending_requests(&self) -> &[BusRequest] {
        &self.pending.as_ref().expect("no solve pending").s.reqs
    }
}

/// A prepared tick parked while its Λ solve runs out-of-line.
#[derive(Debug)]
struct PendingTick {
    s: Box<TickScratch>,
    dt_limit: u64,
}

/// Why [`Machine::run_step`] returned control.
//
// `Done` carries the whole `RunOutcome` (whose `RunStats` now embeds the
// fixed per-level arrays) by value: exactly one `StepEvent` is live per
// stepped run, so the size gap to `NeedSolve` costs nothing, while boxing
// would put an allocation on every run completion.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum StepEvent {
    /// The run hit a saturated-bus tick whose Λ the bus model memo could
    /// not answer: solve for [`RunCursor::pending_requests`] with these
    /// parameters (any way that is bit-equal to
    /// [`crate::bus::solve_lambda`]) and resume with
    /// [`Machine::run_step_complete`].
    NeedSolve(SolveJob),
    /// The run finished; the cursor is spent.
    Done(RunOutcome),
}

/// The simulated SMP.
///
/// Thread and application IDs are handed out sequentially from 0, so both
/// live in dense `Vec`s indexed by id — every hot-path lookup is O(1).
pub struct Machine {
    cfg: MachineConfig,
    bus: Box<dyn BusModel>,
    cache: CacheState,
    threads: Vec<SimThread>,
    apps: Vec<AppRecord>,
    registry: Registry,
    now: SimTime,
    hard_cap_us: SimTime,
    /// Time-integral of the bus dilation factor Λ (µs·Λ). The simulated
    /// analogue of the Pentium-4 IOQ-occupancy PMU events: lets a
    /// user-level manager estimate how much the bus dilated memory
    /// phases over an interval (Λ̄ = Δintegral / Δt).
    dilation_integral: f64,
    /// Reusable per-tick buffers, boxed so moving them in and out of a
    /// tick (or a parked [`PendingTick`]) is a pointer swap rather than a
    /// structural copy. `None` only while a tick is in flight.
    scratch: Option<Box<TickScratch>>,
    /// Indices into `apps` of applications with a barrier interval — the
    /// only ones the per-tick barrier-cap pass must visit.
    barrier_apps: Vec<usize>,
    /// Inner-loop execution mode (event-driven by default).
    exec: ExecMode,
    /// Event-driven replay snapshot (see [`ReplayCache`]).
    replay: ReplayCache,
    /// Ticks served by the replay fast path (diagnostics only — not part
    /// of [`RunStats`], so both execution modes stay codec-identical).
    replay_ticks: u64,
    /// Structured-trace emission handle (disabled by default; a disabled
    /// bus costs one branch per emission site).
    tracer: EventBus,
    /// Last `(rate, mu)` the tracer saw per thread — phase-edge
    /// detection state, maintained only while tracing is enabled.
    traced_demand: Vec<(f64, f64)>,
    /// Last dilation Λ emitted as a `BusSolve` event.
    traced_dilation: f64,
    /// Last per-level saturation state emitted as `LevelSaturated`
    /// events — edge detection, maintained only while tracing.
    traced_level_sat: [bool; MAX_BUS_LEVELS],
    /// Phase-attribution profiler (disabled by default; one branch per
    /// phase boundary when off). Observational only — never part of the
    /// run codec, so profiled runs stay byte-identical.
    prof: PhaseTimer,
}

impl Machine {
    /// A machine with the given configuration: the default
    /// [`crate::bus::FsbBus`] model for single-socket topologies, a
    /// [`crate::bus::HierarchicalBus`] when the topology has more than
    /// one socket. (The single-socket hierarchical bus is bit-identical
    /// to `FsbBus` — a differential test pins it — but the flat model
    /// stays the default so the committed artifact corpus is untouched.)
    pub fn new(cfg: MachineConfig) -> Self {
        let bus: Box<dyn BusModel> = if cfg.topology.sockets > 1 {
            Box::new(crate::bus::HierarchicalBus::new(cfg.bus, cfg.topology))
        } else {
            Box::new(crate::bus::FsbBus::new(cfg.bus))
        };
        Self::with_bus(cfg, bus)
    }

    /// A machine with a custom bus model (ablations, tests).
    pub fn with_bus(cfg: MachineConfig, bus: Box<dyn BusModel>) -> Self {
        assert!(cfg.num_cpus > 0, "need at least one cpu");
        assert!(cfg.tick_us > 0, "tick must be positive");
        assert!(cfg.topology.sockets >= 1, "need at least one socket");
        Self {
            cache: CacheState::new(cfg.num_cpus, cfg.cache),
            cfg,
            bus,
            threads: Vec::new(),
            apps: Vec::new(),
            registry: Registry::new(),
            now: 0,
            hard_cap_us: 1_000_000_000, // 1000 simulated seconds
            dilation_integral: 0.0,
            scratch: Some(Box::default()),
            barrier_apps: Vec::new(),
            exec: ExecMode::default(),
            replay: ReplayCache::default(),
            replay_ticks: 0,
            tracer: EventBus::off(),
            traced_demand: Vec::new(),
            traced_dilation: 0.0,
            traced_level_sat: [false; MAX_BUS_LEVELS],
            prof: PhaseTimer::new(),
        }
    }

    /// Switch phase-attribution profiling on or off (see [`crate::prof`]).
    /// Purely observational: toggling it cannot change any simulated
    /// quantity (a proptest in the experiments crate pins byte identity).
    pub fn set_profiling(&mut self, on: bool) {
        self.prof.set_enabled(on);
    }

    /// The per-phase wall-time profile recorded so far.
    pub fn phase_profile(&self) -> &PhaseSet {
        self.prof.set()
    }

    /// Take the recorded phase profile, leaving an empty one (the enable
    /// flag is preserved).
    pub fn take_phase_profile(&mut self) -> PhaseSet {
        self.prof.take()
    }

    /// Attach a structured-trace bus. Placements, phase edges,
    /// coarsening jumps, bus Λ solves, and app completions are emitted
    /// into it; pass [`EventBus::off`] to detach.
    pub fn set_tracer(&mut self, tracer: EventBus) {
        self.tracer = tracer;
        self.traced_demand.clear();
        self.traced_dilation = 0.0;
        self.traced_level_sat = [false; MAX_BUS_LEVELS];
        // Phase-edge detection restarts from NaN sentinels; the next tick
        // must take the full path so re-observed demands emit.
        self.replay.valid = false;
    }

    /// Select the inner-loop execution mode (see [`ExecMode`]). Takes
    /// effect from the next tick; both modes produce bit-identical runs.
    pub fn set_exec_mode(&mut self, exec: ExecMode) {
        self.exec = exec;
        self.replay.valid = false;
    }

    /// The current inner-loop execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Ticks served by the event-driven replay fast path so far (0 in
    /// [`ExecMode::PerTick`]). Diagnostics for benches; not part of the
    /// run statistics.
    pub fn replay_ticks(&self) -> u64 {
        self.replay_ticks
    }

    /// The attached trace bus (disabled unless [`Machine::set_tracer`]
    /// was called).
    pub fn tracer(&self) -> &EventBus {
        &self.tracer
    }

    /// Λ-solve memoization counters `(hits, misses)` of the bus model,
    /// if it keeps a memo (the default [`crate::bus::FsbBus`] does).
    pub fn bus_memo_stats(&self) -> Option<(u64, u64)> {
        self.bus.memo_stats()
    }

    /// Change the safety cap on any single `run` call (simulated µs of
    /// absolute time beyond which the run aborts with
    /// `condition_met = false`).
    pub fn set_hard_cap_us(&mut self, cap: SimTime) {
        self.hard_cap_us = cap;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add an application; its threads become runnable immediately.
    pub fn add_app(&mut self, desc: AppDescriptor) -> AppId {
        assert!(!desc.threads.is_empty(), "an app needs at least one thread");
        let app_id = AppId(self.apps.len() as u64);
        let mut tids = Vec::with_capacity(desc.threads.len());
        for spec in desc.threads {
            let tid = ThreadId(self.threads.len() as u64);
            self.registry.register(tid.key());
            self.threads.push(SimThread::new(tid, app_id, spec));
            tids.push(tid);
        }
        if desc.barrier_interval_us.is_some() {
            self.barrier_apps.push(self.apps.len());
        }
        self.apps.push(AppRecord {
            name: desc.name,
            threads: tids,
            arrived_at: self.now,
            finished_at: None,
            barrier_interval_us: desc.barrier_interval_us,
        });
        self.replay.valid = false;
        app_id
    }

    /// The scheduler-facing view of the current state.
    pub fn view(&self) -> MachineView<'_> {
        MachineView {
            now: self.now,
            num_cpus: self.cfg.num_cpus,
            bus_capacity: self.bus.nominal_capacity(),
            registry: &self.registry,
            smt_threads_per_core: self.cfg.smt_threads_per_core,
            sockets: self.cfg.topology.sockets.max(1),
            cpus_per_socket: self.cfg.cpus_per_socket(),
            bus_levels: self.bus.levels(),
            dilation_integral: self.dilation_integral,
            threads: &self.threads,
            apps: &self.apps,
            cache: &self.cache,
        }
    }

    /// Turnaround time of a finished app (finish − arrival), if finished.
    pub fn turnaround_us(&self, app: AppId) -> Option<SimTime> {
        let r = self.apps.get(app.0 as usize)?;
        r.finished_at.map(|f| f - r.arrived_at)
    }

    /// Total bus transactions issued by an app so far.
    pub fn app_transactions(&self, app: AppId) -> f64 {
        let Some(r) = self.apps.get(app.0 as usize) else {
            return 0.0;
        };
        r.threads
            .iter()
            .map(|t| self.registry.total(t.key(), EventKind::BusTransactions))
            .sum()
    }

    /// The perfmon registry (read access for reports/tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A per-application accounting report (see [`AppReport`]).
    pub fn app_report(&self, app: AppId) -> Option<AppReport> {
        let rec = self.apps.get(app.0 as usize)?;
        let mut r = AppReport {
            app,
            name: rec.name.clone(),
            threads: rec.threads.len(),
            arrived_at_us: rec.arrived_at,
            finished_at_us: rec.finished_at,
            turnaround_us: rec.finished_at.map(|f| f - rec.arrived_at),
            cpu_time_us: 0.0,
            progress_us: 0.0,
            transactions: 0.0,
            cold_starts: 0.0,
            quanta_run: 0.0,
        };
        for t in &rec.threads {
            let k = t.key();
            r.cpu_time_us += self.registry.total(k, EventKind::CyclesOnCpu);
            r.progress_us += self.registry.total(k, EventKind::VirtualProgress);
            r.transactions += self.registry.total(k, EventKind::BusTransactions);
            r.cold_starts += self.registry.total(k, EventKind::ColdStarts);
            r.quanta_run += self.registry.total(k, EventKind::QuantaRun);
        }
        Some(r)
    }

    /// Drive the machine under `sched` until `stop` (or the hard cap).
    pub fn run(&mut self, sched: &mut dyn Scheduler, stop: StopCondition) -> RunOutcome {
        self.run_audited(sched, stop, None)
    }

    /// [`Machine::run`] with an optional [`AuditHook`] observing every
    /// scheduling decision (before it is applied, so a violating decision
    /// is recorded even if `apply` rejects it) and every tick's issued bus
    /// traffic. With `hook = None` this *is* `run`: the only overhead is
    /// one `Option` branch per decision and per tick.
    ///
    /// Implemented on top of the stepped API ([`Machine::run_begin`] /
    /// [`Machine::run_step`] / [`Machine::run_step_complete`]) so the
    /// serial path and the batched engine drive the *same* loop — any
    /// drift between them would be a compile error, not a silent
    /// divergence.
    pub fn run_audited(
        &mut self,
        sched: &mut dyn Scheduler,
        stop: StopCondition,
        mut hook: Option<&mut (dyn AuditHook + '_)>,
    ) -> RunOutcome {
        let mut cur = self.run_begin(sched, stop, hook.is_some());
        loop {
            match self.run_step(sched, &mut cur, hook.as_deref_mut()) {
                StepEvent::NeedSolve(job) => {
                    let tok = self.prof.begin();
                    let lambda =
                        crate::bus::solve_lambda(cur.pending_requests(), job.cap, job.warm);
                    self.prof.end(Phase::Solve, tok);
                    self.run_step_complete(&mut cur, lambda, hook.as_deref_mut());
                }
                StepEvent::Done(out) => return out,
            }
        }
    }

    /// Start a stepped run: the cursor carries all loop state between
    /// [`Machine::run_step`] calls, so many machines can be advanced in
    /// lockstep by one driver (the batched sweep engine).
    pub fn run_begin(
        &mut self,
        sched: &mut dyn Scheduler,
        stop: StopCondition,
        introspect: bool,
    ) -> RunCursor {
        sched.attach_tracer(&self.tracer);
        sched.set_introspect(introspect);
        let started_at = self.now;
        RunCursor {
            stop,
            stats: RunStats::default(),
            started_at,
            cap_at: started_at.saturating_add(self.hard_cap_us),
            next_resched: self.now, // schedule immediately
            sample_period: None,
            next_sample: None,
            resched_requested: false,
            pending: None,
        }
    }

    /// Advance the run until it either finishes or hits a tick whose bus
    /// arbitration needs an iterative Λ solve. In the latter case the
    /// prepared tick parks in the cursor and `NeedSolve` carries the
    /// [`SolveJob`]; obtain λ (via [`crate::bus::solve_lambda`] or a
    /// [`crate::bus::BatchSolver`] lane over
    /// [`RunCursor::pending_requests`]) and resume with
    /// [`Machine::run_step_complete`].
    ///
    /// # Panics
    /// Panics if a previous `NeedSolve` has not been completed.
    pub fn run_step(
        &mut self,
        sched: &mut dyn Scheduler,
        cur: &mut RunCursor,
        mut hook: Option<&mut (dyn AuditHook + '_)>,
    ) -> StepEvent {
        assert!(
            cur.pending.is_none(),
            "run_step called with an unresolved solve pending"
        );
        loop {
            if self.stop_met(&cur.stop) {
                return StepEvent::Done(self.finish_run(cur, true));
            }
            if self.now >= cur.cap_at {
                return StepEvent::Done(self.finish_run(cur, false));
            }

            // Sampling fires before rescheduling so a sample landing on the
            // quantum boundary (the paper's second sample per quantum) is
            // visible to the scheduling decision it precedes.
            if let (Some(ns), Some(p)) = (cur.next_sample, cur.sample_period) {
                if self.now >= ns {
                    sched.on_sample(&self.view());
                    cur.stats.sample_calls += 1;
                    cur.next_sample = Some(self.now + p.max(self.cfg.tick_us));
                }
            }

            if self.now >= cur.next_resched || cur.resched_requested {
                let tok = self.prof.begin();
                let decision = sched.schedule(&self.view());
                assert!(
                    decision.next_resched_in_us > 0,
                    "scheduler must request a positive quantum"
                );
                if let Some(h) = hook.as_deref_mut() {
                    h.on_decision(&self.view(), &decision, sched.stage_snapshot());
                }
                self.apply(&decision, &mut cur.stats);
                self.prof.end(Phase::Schedule, tok);
                cur.stats.schedule_calls += 1;
                cur.next_resched = self.now + decision.next_resched_in_us;
                cur.sample_period = decision.sample_period_us;
                cur.next_sample = cur
                    .sample_period
                    .map(|p| self.now + p.max(self.cfg.tick_us));
                cur.resched_requested = false;
            }

            // The window until the next timer (reschedule, sample, timed
            // stop, hard cap). A tick never crosses it; within it the
            // machine is free to coarsen — advance multiple nominal ticks
            // in one jump — when the tick's inputs are provably static.
            let mut dt_limit = cur.next_resched.saturating_sub(self.now).max(1);
            if let Some(ns) = cur.next_sample {
                dt_limit = dt_limit.min(ns.saturating_sub(self.now).max(1));
            }
            if let StopCondition::At(t) = cur.stop {
                dt_limit = dt_limit.min(t.saturating_sub(self.now).max(1));
            }
            dt_limit = dt_limit.min(cur.cap_at.saturating_sub(self.now).max(1));

            // The scratch is moved out for the duration of the tick so the
            // borrow checker sees the buffers and `self` as disjoint; the
            // box makes the move a pointer swap.
            let mut s = self.scratch.take().expect("tick scratch in flight");
            match self.tick_prepare(dt_limit, &mut cur.stats, &mut s) {
                Some(job) => {
                    cur.pending = Some(PendingTick { s, dt_limit });
                    return StepEvent::NeedSolve(job);
                }
                None => {
                    let app_finished =
                        self.tick_commit(dt_limit, &mut cur.stats, &mut s, hook.as_deref_mut());
                    self.scratch = Some(s);
                    if app_finished {
                        cur.resched_requested = true;
                    }
                }
            }
        }
    }

    /// Complete the solve a [`StepEvent::NeedSolve`] asked for and commit
    /// the parked tick. `lambda_sat` must be bit-equal to
    /// [`crate::bus::solve_lambda`] on the pending job — a
    /// [`crate::bus::BatchSolver`] lane satisfies this by construction.
    pub fn run_step_complete(
        &mut self,
        cur: &mut RunCursor,
        lambda_sat: f64,
        hook: Option<&mut (dyn AuditHook + '_)>,
    ) {
        let mut p = cur.pending.take().expect("no solve pending");
        self.bus
            .finish_solve(&p.s.reqs, lambda_sat, &mut p.s.outcome);
        let app_finished = self.tick_commit(p.dt_limit, &mut cur.stats, &mut p.s, hook);
        self.scratch = Some(p.s);
        if app_finished {
            cur.resched_requested = true;
        }
    }

    fn finish_run(&mut self, cur: &mut RunCursor, condition_met: bool) -> RunOutcome {
        cur.stats.elapsed_us = self.now - cur.started_at;
        RunOutcome {
            stopped_at: self.now,
            condition_met,
            stats: std::mem::take(&mut cur.stats),
        }
    }

    fn stop_met(&self, stop: &StopCondition) -> bool {
        match stop {
            StopCondition::At(t) => self.now >= *t,
            StopCondition::AppsFinished(ids) => ids.iter().all(|id| {
                self.apps
                    .get(id.0 as usize)
                    .is_some_and(|r| r.finished_at.is_some())
            }),
            StopCondition::AllFiniteAppsFinished => self.apps.iter().all(|r| {
                r.finished_at.is_some()
                    || r.threads
                        .iter()
                        .all(|t| self.threads[t.0 as usize].work_us.is_infinite())
            }),
        }
    }

    /// Validate and apply a scheduling decision.
    fn apply(&mut self, d: &Decision, stats: &mut RunStats) {
        // Placement changes (even re-placements of the same set: the
        // preempt/place cycle below re-runs cold-start accounting).
        self.replay.valid = false;
        let mut cpu_used = vec![false; self.cfg.num_cpus];
        let mut seen = std::collections::BTreeSet::new();
        for a in &d.assignments {
            assert!(
                a.cpu.0 < self.cfg.num_cpus,
                "assignment to nonexistent {}",
                a.cpu
            );
            assert!(!cpu_used[a.cpu.0], "two threads assigned to {}", a.cpu);
            cpu_used[a.cpu.0] = true;
            assert!(seen.insert(a.thread), "thread {} assigned twice", a.thread);
            let t = self
                .threads
                .get(a.thread.0 as usize)
                .unwrap_or_else(|| panic!("assignment of unknown thread {}", a.thread));
            assert!(
                t.state.is_runnable(),
                "assignment of finished thread {}",
                a.thread
            );
        }

        // Preempt everyone, then place the assigned set.
        for t in self.threads.iter_mut() {
            if let ThreadState::Running(_) = t.state {
                t.state = ThreadState::Ready;
            }
        }
        for a in &d.assignments {
            let warmth = self.cache.warmth(a.cpu, a.thread);
            let socket = self.cfg.socket_of(a.cpu.0);
            let t = self
                .threads
                .get_mut(a.thread.0 as usize)
                .expect("validated above");
            let app = t.app;
            t.state = ThreadState::Running(a.cpu);
            if t.home_socket.is_none() {
                // First-touch: the thread's memory lives where it first ran.
                t.home_socket = Some(socket);
            }
            stats.placements += 1;
            if warmth < 0.5 {
                stats.cold_placements += 1;
                self.registry
                    .add(a.thread.key(), EventKind::ColdStarts, 1.0);
            }
            if t.last_cpu != Some(a.cpu) {
                t.last_cpu = Some(a.cpu);
            }
            self.registry.add(a.thread.key(), EventKind::QuantaRun, 1.0);
            if self.tracer.emits() {
                self.tracer.emit(TraceEvent::Placement {
                    at_us: self.now,
                    cpu: a.cpu.0,
                    thread: a.thread.0,
                    app: app.0,
                    cold: warmth < 0.5,
                });
            }
        }
    }

    /// First half of a tick: build the bus-request vector (replaying the
    /// cached build when provably unchanged) and start arbitration.
    /// Returns `Some(job)` when the bus needs an out-of-line Λ solve —
    /// complete it (bit-equal to [`crate::bus::solve_lambda`]), feed λ to
    /// [`crate::bus::BusModel::finish_solve`], then call
    /// [`Machine::tick_commit`]. Returns `None` when arbitration finished
    /// inline (memo hit, unsaturated, or idle).
    fn tick_prepare(
        &mut self,
        dt_limit: u64,
        stats: &mut RunStats,
        s: &mut TickScratch,
    ) -> Option<SolveJob> {
        stats.ticks += 1;
        let n_threads = self.threads.len();
        let trace_on = self.tracer.emits();
        if trace_on && self.traced_demand.len() < n_threads {
            // NaN sentinels make the first observed demand of every
            // thread register as a phase edge.
            self.traced_demand.resize(n_threads, (f64::NAN, f64::NAN));
        }

        // Barrier caps: a thread may not run ahead of its slowest
        // unfinished sibling by more than the app's barrier interval.
        // Threads at their cap spin-wait: they hold the cpu but demand no
        // bus bandwidth and make no progress. (Computed before the replay
        // attempt — the spin guards need fresh caps.)
        let tok = self.prof.begin();
        if self.barrier_apps.is_empty() {
            // No app has barriers: the caps are all-INFINITY and only the
            // vector's length can go stale.
            if s.barrier_cap.len() != n_threads {
                s.barrier_cap.clear();
                s.barrier_cap.resize(n_threads, f64::INFINITY);
            }
        } else {
            s.barrier_cap.clear();
            s.barrier_cap.resize(n_threads, f64::INFINITY);
            for &ai in &self.barrier_apps {
                let rec = &self.apps[ai];
                let interval = rec
                    .barrier_interval_us
                    .expect("barrier_apps holds only apps with an interval");
                let min_progress = rec
                    .threads
                    .iter()
                    .map(|t| &self.threads[t.0 as usize])
                    .filter(|t| t.state != ThreadState::Finished)
                    .map(|t| t.progress_us)
                    .fold(f64::INFINITY, f64::min);
                if min_progress.is_finite() {
                    for t in &rec.threads {
                        s.barrier_cap[t.0 as usize] = min_progress + interval;
                    }
                }
            }
        }

        self.prof.end(Phase::Barrier, tok);

        // Event-driven fast path: if every cached request is still inside
        // its predicted-constant region, rebuild the request vector from
        // the snapshot without touching placement scans or demand models.
        if self.exec == ExecMode::EventDriven && self.replay.valid {
            let tok = self.prof.begin();
            let replayed = self.try_replay(dt_limit, s);
            self.prof.end(Phase::Replay, tok);
            if replayed {
                self.replay_ticks += 1;
                let tok = self.prof.begin();
                let job = self.bus.begin(&s.reqs, &mut s.outcome);
                self.prof.end(Phase::Solve, tok);
                return job;
            }
        }

        // Current placement.
        let tok = self.prof.begin();
        s.placement.clear();
        s.placement.resize(self.cfg.num_cpus, None);
        for t in &self.threads {
            if let ThreadState::Running(c) = t.state {
                s.placement[c.0] = Some(t.id);
            }
        }

        // SMT: count busy hardware threads per physical core; siblings
        // sharing a core split its (slightly super-unit) throughput.
        let cores = self.cfg.num_cpus / self.cfg.smt_threads_per_core.max(1);
        s.busy_per_core.clear();
        s.busy_per_core.resize(cores.max(1), 0);
        for (cpu_idx, occ) in s.placement.iter().enumerate() {
            if occ.is_some() {
                s.busy_per_core[self.cfg.core_of(cpu_idx)] += 1;
            }
        }

        self.prof.end(Phase::Placement, tok);

        // Collect demands (with cache-cold boosts) plus the per-request
        // metadata the coarsening gate needs, re-arming the replay
        // snapshot as we go (event-driven mode only).
        let tok = self.prof.begin();
        let record = self.exec == ExecMode::EventDriven;
        self.replay.clear();
        s.reqs.clear();
        s.req_spin.clear();
        s.req_virt_h.clear();
        s.req_wall_h.clear();
        s.cache_speed.clear();
        s.cache_speed.resize(n_threads, 0.0);
        let mut all_warm = true;
        for (cpu_idx, occ) in s.placement.iter().enumerate() {
            let Some(tid) = occ else { continue };
            let cpu = CpuId(cpu_idx);
            let ti = tid.0 as usize;
            let spinning = self.threads[ti].progress_us >= s.barrier_cap[ti];
            let smt = self
                .cfg
                .smt_speed_factor(s.busy_per_core[self.cfg.core_of(cpu_idx)]);
            let sens = self.threads[ti].cache_sensitivity;
            let (boost, spd) = if spinning {
                (1.0, 0.0)
            } else {
                // One fused warmth lookup feeds the boost, the speed
                // factor, and the staticness check (identical expressions
                // to the separate accessors).
                let (w, boost, spd) = self.cache.factors(cpu, *tid, sens);
                if w != 1.0 {
                    // Warmth below its fixed point still moves every tick,
                    // so demand boosts and cache speeds are not static.
                    all_warm = false;
                }
                (boost, spd)
            };
            let t = &mut self.threads[ti];
            let (d, cs, virt_h, wall_h, edge_v, edge_w) = if spinning {
                // Spin-wait on a cached flag: no bus traffic, no progress.
                // The demand model is never queried while spinning, so the
                // snapshot needs no demand edges either — spin-flip guards
                // cover invalidation.
                (
                    crate::demand::Demand::ZERO,
                    0.0,
                    f64::INFINITY,
                    f64::INFINITY,
                    f64::INFINITY,
                    f64::INFINITY,
                )
            } else {
                let d = t.model.demand_at(t.progress_us, self.now);
                let (virt_h, wall_h) = t.model.constant_for(t.progress_us, self.now);
                let (edge_v, edge_w) = t.model.next_change(t.progress_us, self.now);
                (d, spd * smt, virt_h, wall_h, edge_v, edge_w)
            };
            if trace_on && !spinning {
                let cur = (d.rate, d.mu);
                if self.traced_demand[ti] != cur {
                    self.traced_demand[ti] = cur;
                    self.tracer.emit(TraceEvent::PhaseEdge {
                        at_us: self.now,
                        thread: tid.0,
                        rate: d.rate,
                        mu: d.mu,
                    });
                }
            }
            let socket = self.cfg.socket_of(cpu_idx);
            // Spinners issue no traffic, so they are charged to no
            // interconnect; placed threads cross it by the topology's
            // remote share (0.0 on single-socket machines).
            let remote = if spinning {
                0.0
            } else {
                let home = self.threads[ti].home_socket.unwrap_or(socket);
                self.cfg.topology.remote_share(home, socket)
            };
            s.reqs.push(BusRequest {
                thread: *tid,
                rate: d.rate * boost,
                mu: d.mu,
                socket,
                remote,
            });
            s.req_spin.push(spinning);
            s.req_virt_h.push(virt_h);
            s.req_wall_h.push(wall_h);
            s.cache_speed[ti] = cs;
            if record {
                self.replay.cpu.push(cpu_idx);
                self.replay.tid.push(ti);
                self.replay.rate.push(d.rate);
                self.replay.mu.push(d.mu);
                self.replay.vt_guard.push(guard_edge(edge_v));
                self.replay.wall_guard.push(guard_edge(edge_w));
                self.replay.spin.push(spinning);
                self.replay.sens.push(sens);
                self.replay.smt.push(smt);
                self.replay.socket.push(socket);
                self.replay.remote.push(remote);
            }
        }
        s.all_warm = all_warm;
        self.replay.valid = record;
        self.prof.end(Phase::Demand, tok);

        let tok = self.prof.begin();
        let job = self.bus.begin(&s.reqs, &mut s.outcome);
        self.prof.end(Phase::Solve, tok);
        job
    }

    /// Attempt the event-driven fast path: verify each snapshot guard and
    /// rebuild `s.reqs`/`s.req_spin`/`s.cache_speed` bit-identically to
    /// what the full build would produce, in a single fused pass (one
    /// warmth lookup per request feeds the guard and both multipliers).
    /// Returns false when any guard fails; the scratch may then hold a
    /// partial rebuild, which is safe because the full path clears and
    /// rewrites every buffer it reads.
    fn try_replay(&mut self, dt_limit: u64, s: &mut TickScratch) -> bool {
        let r = &self.replay;
        let n = r.cpu.len();
        let mut all_warm = true;
        s.reqs.clear();
        s.req_spin.clear();
        for i in 0..n {
            let ti = r.tid[i];
            let t = &self.threads[ti];
            // A spin flip (either direction) changes the request shape.
            let spin_now = t.progress_us >= s.barrier_cap[ti];
            if spin_now != r.spin[i] {
                return false;
            }
            if spin_now {
                // Identical to the full path's spin request: ZERO demand,
                // unit boost (0.0 · 1.0 = 0.0 exactly), zero cache speed,
                // no interconnect share.
                s.reqs.push(BusRequest {
                    thread: ThreadId(ti as u64),
                    rate: 0.0,
                    mu: 0.0,
                    socket: r.socket[i],
                    remote: 0.0,
                });
                s.req_spin.push(true);
                s.cache_speed[ti] = 0.0;
            } else {
                // Strictly inside the guarded-constant region in both
                // dimensions, else the demand model must be re-queried.
                if !(t.progress_us < r.vt_guard[i] && (self.now as f64) < r.wall_guard[i]) {
                    return false;
                }
                // Warmth-dependent factors are recomputed with the exact
                // expressions of the full path; only the demand query and
                // placement scan are skipped.
                let tid = ThreadId(ti as u64);
                let (w, boost, spd) = self.cache.factors(CpuId(r.cpu[i]), tid, r.sens[i]);
                if w != 1.0 {
                    all_warm = false;
                }
                s.reqs.push(BusRequest {
                    thread: tid,
                    rate: r.rate[i] * boost,
                    mu: r.mu[i],
                    socket: r.socket[i],
                    remote: r.remote[i],
                });
                s.req_spin.push(false);
                s.cache_speed[ti] = spd * r.smt[i];
            }
        }
        // The coarsening window scan in the commit phase reads the
        // per-request horizons, which replay leaves stale. Its gate is
        // exactly `non-empty ∧ all_warm ∧ wide window`; refuse those ticks
        // so the full path recomputes fresh horizons (and coarsens, which
        // amortizes the rebuild anyway).
        if n > 0 && all_warm && dt_limit > 2 * self.cfg.tick_us {
            return false;
        }
        s.all_warm = all_warm;
        true
    }

    /// Second half of a tick: choose the (possibly coarsened) step width,
    /// integrate progress, caches, and bus accounting over it, and detect
    /// completions. Requires `s.outcome` to hold finished arbitration for
    /// `s.reqs`. Returns true if any application finished.
    fn tick_commit(
        &mut self,
        dt_limit: u64,
        stats: &mut RunStats,
        s: &mut TickScratch,
        hook: Option<&mut (dyn AuditHook + '_)>,
    ) -> bool {
        let commit_tok = self.prof.begin();
        let trace_on = self.tracer.emits();
        let tick_started_at = self.now;
        let bus_capacity = self.bus.nominal_capacity();
        let all_warm = s.all_warm;
        if trace_on && !s.reqs.is_empty() && s.outcome.dilation != self.traced_dilation {
            // Emitted on Λ change only: memoized re-solves that reuse the
            // previous dilation stay silent, keeping trace volume
            // proportional to decisions rather than ticks.
            let tt = self.prof.begin();
            self.traced_dilation = s.outcome.dilation;
            self.tracer.emit(TraceEvent::BusSolve {
                at_us: self.now,
                lambda: s.outcome.dilation,
                utilization: s.outcome.utilization,
                saturated: s.outcome.saturated,
                requesters: s.reqs.len(),
            });
            self.prof.end(Phase::Trace, tt);
        }
        let outcome = &s.outcome;

        // Event-driven tick coarsening. Baseline: one nominal tick,
        // clipped by the timer window.
        let tick_us = self.cfg.tick_us;
        let mut dt = tick_us.min(dt_limit);
        if s.reqs.is_empty() {
            // Nothing is placed: nothing progresses, no bus traffic,
            // caches idle — jump straight to the next timer.
            dt = dt_limit;
        } else if all_warm && dt_limit > 2 * tick_us {
            // Find the widest window over which this tick's inputs are
            // provably static: demands constant (model horizons), no
            // thread completing, crossing its barrier cap, or leaving its
            // spin, caches at their fixed point. Then jump (k−1)·tick —
            // the one-tick margin keeps every bound *strictly* unreached,
            // and stepping in whole ticks keeps the tick grid phase (and
            // therefore the fine-grained path's sampling instants) intact.
            let mut window = dt_limit as f64;
            let mut vmax = 0.0f64; // fastest non-spinning placed thread
            for (i, share) in outcome.shares.iter().enumerate() {
                if !s.req_spin[i] {
                    let sp = share.speed * s.cache_speed[share.thread.0 as usize];
                    if sp > vmax {
                        vmax = sp;
                    }
                }
            }
            for (i, share) in outcome.shares.iter().enumerate() {
                let ti = share.thread.0 as usize;
                let t = &self.threads[ti];
                if s.req_spin[i] {
                    // The spinner must stay spinning across the jump: its
                    // cap rises at most at the fastest sibling's speed.
                    if vmax > 0.0 {
                        let slack = (t.progress_us - s.barrier_cap[ti]).max(0.0);
                        window = window.min(slack / vmax);
                    }
                } else {
                    let speed = share.speed * s.cache_speed[ti];
                    if speed > 0.0 {
                        window = window.min(t.remaining_us() / speed);
                        let cap = s.barrier_cap[ti];
                        if cap.is_finite() {
                            window = window.min((cap - t.progress_us).max(0.0) / speed);
                        }
                        window = window.min(s.req_virt_h[i] / speed);
                    }
                    window = window.min(s.req_wall_h[i]);
                }
            }
            let k = (window / tick_us as f64).floor() as u64;
            if k >= 3 {
                dt = ((k - 1) * tick_us).min(dt_limit);
            }
        }
        stats.tick_dt_hist.record(dt.div_ceil(tick_us));
        if trace_on && dt > tick_us {
            self.tracer.emit(TraceEvent::CoarseJump {
                at_us: self.now,
                dt_us: dt,
                ticks_covered: dt.div_ceil(tick_us),
            });
        }
        let dt_f = dt as f64;

        // Progress threads and count events.
        let mut any_thread_finished = false;
        let mut issued_this_tick = 0.0f64;
        for share in &outcome.shares {
            let ti = share.thread.0 as usize;
            let cs = s.cache_speed[ti];
            let mut speed = share.speed * cs;
            let mut issue = share.issue_rate * cs;
            let t = &mut self.threads[ti];
            // Clamp progress at the barrier cap: if this tick would cross
            // it, the overshoot is converted to spinning (no further
            // progress or traffic within the tick; exact at 100 µs scale).
            let cap = s.barrier_cap[ti];
            if cap.is_finite() {
                let ahead = (cap - t.progress_us).max(0.0);
                if speed * dt_f > ahead {
                    let frac = ahead / (speed * dt_f).max(1e-12);
                    speed *= frac;
                    issue *= frac;
                }
            }
            let remaining = t.remaining_us();
            // Portion of the tick actually used (threads that finish
            // mid-tick stop consuming cpu and bus).
            let used = if speed * dt_f >= remaining {
                (remaining / speed.max(1e-12)).min(dt_f)
            } else {
                dt_f
            };
            t.progress_us = (t.progress_us + speed * used).min(t.work_us);
            let key = share.thread.key();
            issued_this_tick += issue * used;
            // One slot lookup feeds all three event counters.
            let counters = self
                .registry
                .counters_mut(key)
                .unwrap_or_else(|| panic!("thread {key:?} not registered with perfmon"));
            counters.add(EventKind::BusTransactions, issue * used);
            counters.add(EventKind::CyclesOnCpu, used);
            counters.add(EventKind::VirtualProgress, speed * used);
            if t.progress_us >= t.work_us {
                t.state = ThreadState::Finished;
                t.finished_at = Some(self.now + used.ceil() as u64);
                any_thread_finished = true;
            }
        }

        // Cache dynamics.
        self.cache.advance(&s.placement, dt_f);

        // Bus accounting (actual issued traffic: cache/SMT factors,
        // barrier clamps, and mid-tick completions all reduce what the
        // arbiter granted — the machine-level total must match the
        // per-thread counters exactly).
        stats.bus.total_transactions += issued_this_tick;
        stats.bus.total_demanded += outcome.total_demand * dt_f;
        stats.bus.utilization_integral += outcome.utilization * dt_f;
        if outcome.saturated {
            stats.bus.saturated_us += dt_f;
        }
        if outcome.dilation > stats.bus.peak_dilation {
            stats.bus.peak_dilation = outcome.dilation;
        }
        self.dilation_integral += outcome.dilation.max(1.0) * dt_f;

        // Per-level topology accounting. Single-level bus models report
        // no levels, so the flat default machine's stats (and run codec)
        // are untouched. The snapshot is copied out of the bus model
        // first; levels beyond the array cap fold into the last slot.
        let mut level_buf = [LevelOutcome::default(); MAX_BUS_LEVELS];
        let mut n_levels = 0usize;
        for (k, l) in self.bus.levels().iter().enumerate() {
            let slot = k.min(MAX_BUS_LEVELS - 1);
            let b = &mut level_buf[slot];
            b.demand += l.demand;
            b.issued += l.issued;
            b.effective_capacity += l.effective_capacity;
            b.utilization = b.utilization.max(l.utilization);
            b.dilation = b.dilation.max(l.dilation);
            b.saturated |= l.saturated;
            n_levels = slot + 1;
        }
        if n_levels > 0 {
            stats.n_levels = n_levels;
            for (k, l) in level_buf[..n_levels].iter().enumerate() {
                let st = &mut stats.levels[k];
                st.total_issued += l.issued * dt_f;
                st.total_demanded += l.demand * dt_f;
                st.utilization_integral += l.utilization * dt_f;
                if l.saturated {
                    st.saturated_us += dt_f;
                }
                if l.dilation > st.peak_dilation {
                    st.peak_dilation = l.dilation;
                }
                if trace_on && l.saturated != self.traced_level_sat[k] {
                    // Edge-triggered, like `BusSolve`: one event per
                    // entry into saturation keeps trace volume bounded.
                    self.traced_level_sat[k] = l.saturated;
                    if l.saturated {
                        self.tracer.emit(TraceEvent::LevelSaturated {
                            at_us: tick_started_at,
                            level: k as u64,
                            utilization: l.utilization,
                            dilation: l.dilation,
                        });
                    }
                }
            }
        }

        if let Some(h) = hook {
            let tt = self.prof.begin();
            h.on_tick(tick_started_at, dt, issued_this_tick, bus_capacity);
            if n_levels > 0 {
                h.on_levels(tick_started_at, dt, &level_buf[..n_levels]);
            }
            self.prof.end(Phase::Trace, tt);
        }

        self.now += dt;

        // App completion.
        let mut any_app_finished = false;
        if any_thread_finished {
            // A finished thread leaves its cpu, changing the request
            // shape; the snapshot is dead.
            self.replay.valid = false;
            for (i, rec) in self.apps.iter_mut().enumerate() {
                if rec.finished_at.is_none()
                    && rec
                        .threads
                        .iter()
                        .all(|t| self.threads[t.0 as usize].state == ThreadState::Finished)
                {
                    let finish = rec
                        .threads
                        .iter()
                        .filter_map(|t| self.threads[t.0 as usize].finished_at)
                        .max()
                        .unwrap_or(self.now);
                    rec.finished_at = Some(finish);
                    any_app_finished = true;
                    if trace_on {
                        self.tracer.emit(TraceEvent::AppFinished {
                            at_us: finish,
                            app: i as u64,
                            turnaround_us: finish - rec.arrived_at,
                        });
                    }
                }
            }
        }
        self.prof.end(Phase::Commit, commit_tok);
        any_app_finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XEON_4WAY;
    use crate::demand::ConstantDemand;

    /// Run every runnable thread on the lowest free cpu, forever.
    struct GreedyScheduler {
        quantum: u64,
    }

    impl Scheduler for GreedyScheduler {
        fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
            let mut assignments = Vec::new();
            let mut cpu = 0;
            for t in view.threads() {
                if t.is_runnable() && cpu < view.num_cpus {
                    assignments.push(Assignment {
                        thread: t.id,
                        cpu: CpuId(cpu),
                    });
                    cpu += 1;
                }
            }
            Decision {
                assignments,
                next_resched_in_us: self.quantum,
                sample_period_us: None,
            }
        }
        fn name(&self) -> &str {
            "greedy"
        }
    }

    fn light_thread(work_us: f64) -> ThreadSpec {
        ThreadSpec::new(work_us, Box::new(ConstantDemand::new(0.1, 0.05)))
    }

    #[test]
    fn single_light_app_finishes_in_about_its_work_time() {
        let mut m = Machine::new(XEON_4WAY);
        let app = m.add_app(AppDescriptor::new("solo", vec![light_thread(100_000.0)]));
        let mut s = GreedyScheduler { quantum: 200_000 };
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![app]));
        assert!(out.condition_met);
        let t = m.turnaround_us(app).unwrap();
        // Light demand, alone: negligible dilation.
        assert!((100_000..=103_000).contains(&t), "turnaround {t}");
    }

    #[test]
    fn unassigned_threads_make_no_progress() {
        let mut m = Machine::new(XEON_4WAY);
        let app = m.add_app(AppDescriptor::new("idle", vec![light_thread(1000.0)]));
        struct NullSched;
        impl Scheduler for NullSched {
            fn schedule(&mut self, _v: &MachineView<'_>) -> Decision {
                Decision::idle(100_000)
            }
        }
        let out = m.run(&mut NullSched, StopCondition::At(500_000));
        assert!(out.condition_met);
        assert!(m.turnaround_us(app).is_none());
        let v = m.view();
        let ti = v.thread(ThreadId(0)).unwrap();
        assert_eq!(ti.progress_us, 0.0);
    }

    #[test]
    fn two_streamers_on_shared_bus_slow_down() {
        let mut m = Machine::new(XEON_4WAY);
        let mk = || {
            AppDescriptor::new(
                "stream",
                vec![ThreadSpec::new(
                    500_000.0,
                    Box::new(ConstantDemand::new(23.6, 0.98)),
                )],
            )
        };
        let a = m.add_app(mk());
        let b = m.add_app(mk());
        let mut s = GreedyScheduler { quantum: 200_000 };
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![a, b]));
        assert!(out.condition_met);
        let ta = m.turnaround_us(a).unwrap() as f64;
        // Two 23.6 tx/µs streamers on a ~28.6 effective bus: each gets
        // about half, so ~1.65× dilation expected.
        assert!(ta > 700_000.0, "turnaround {ta}");
        assert!(out.stats.saturated_fraction() > 0.9);
    }

    #[test]
    fn counters_track_issued_traffic() {
        let mut m = Machine::new(XEON_4WAY);
        let app = m.add_app(AppDescriptor::new(
            "counted",
            vec![ThreadSpec::new(
                100_000.0,
                Box::new(ConstantDemand::new(5.0, 0.5)),
            )],
        ));
        let mut s = GreedyScheduler { quantum: 200_000 };
        m.run(&mut s, StopCondition::AppsFinished(vec![app]));
        let tx = m.app_transactions(app);
        // 5 tx/µs × ~100k µs ≈ 500k transactions, plus cache-cold refill
        // traffic early in the run (≈ 0.6 boost decaying over the 20 ms
        // warm-up constant ≈ +60k).
        assert!((450_000.0..620_000.0).contains(&tx), "tx {tx}");
    }

    #[test]
    fn app_finish_triggers_immediate_reschedule() {
        let mut m = Machine::new(XEON_4WAY);
        let short = m.add_app(AppDescriptor::new("short", vec![light_thread(10_000.0)]));
        let long = m.add_app(AppDescriptor::new("long", vec![light_thread(300_000.0)]));
        let mut s = GreedyScheduler { quantum: 1_000_000 }; // huge quantum
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![short, long]));
        assert!(out.condition_met);
        // Despite the 1 s quantum, the machine rescheduled when `short`
        // finished, so more than one schedule call happened.
        assert!(out.stats.schedule_calls >= 2);
        let t = m.turnaround_us(long).unwrap();
        assert!(t < 320_000, "long turnaround {t}");
    }

    #[test]
    fn hard_cap_stops_unfinishable_runs() {
        let mut m = Machine::new(XEON_4WAY);
        let forever = m.add_app(AppDescriptor::new(
            "forever",
            vec![ThreadSpec::new(
                f64::INFINITY,
                Box::new(ConstantDemand::new(1.0, 0.5)),
            )],
        ));
        m.set_hard_cap_us(1_000_000);
        let mut s = GreedyScheduler { quantum: 100_000 };
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![forever]));
        assert!(!out.condition_met);
        assert_eq!(out.stopped_at, 1_000_000);
    }

    #[test]
    fn all_finite_apps_stop_condition_ignores_infinite_apps() {
        let mut m = Machine::new(XEON_4WAY);
        let _inf = m.add_app(AppDescriptor::new(
            "micro",
            vec![ThreadSpec::new(
                f64::INFINITY,
                Box::new(ConstantDemand::new(0.1, 0.1)),
            )],
        ));
        let fin = m.add_app(AppDescriptor::new("fin", vec![light_thread(50_000.0)]));
        let mut s = GreedyScheduler { quantum: 100_000 };
        let out = m.run(&mut s, StopCondition::AllFiniteAppsFinished);
        assert!(out.condition_met);
        assert!(m.turnaround_us(fin).is_some());
    }

    #[test]
    fn sampling_callbacks_fire_at_requested_period() {
        struct SamplingSched {
            samples: u64,
        }
        impl Scheduler for SamplingSched {
            fn schedule(&mut self, _v: &MachineView<'_>) -> Decision {
                Decision {
                    assignments: vec![],
                    next_resched_in_us: 200_000,
                    sample_period_us: Some(100_000),
                }
            }
            fn on_sample(&mut self, _v: &MachineView<'_>) {
                self.samples += 1;
            }
        }
        let mut m = Machine::new(XEON_4WAY);
        let mut s = SamplingSched { samples: 0 };
        let out = m.run(&mut s, StopCondition::At(1_000_000));
        assert!(out.condition_met);
        // 2 samples per 200 ms quantum over 1 s ≈ 10 (boundary effects ±1).
        assert!((8..=11).contains(&s.samples), "samples {}", s.samples);
        assert_eq!(out.stats.sample_calls, s.samples);
    }

    #[test]
    #[should_panic(expected = "two threads assigned")]
    fn double_cpu_assignment_panics() {
        let mut m = Machine::new(XEON_4WAY);
        m.add_app(AppDescriptor::new(
            "a",
            vec![light_thread(1000.0), light_thread(1000.0)],
        ));
        struct BadSched;
        impl Scheduler for BadSched {
            fn schedule(&mut self, _v: &MachineView<'_>) -> Decision {
                Decision {
                    assignments: vec![
                        Assignment {
                            thread: ThreadId(0),
                            cpu: CpuId(0),
                        },
                        Assignment {
                            thread: ThreadId(1),
                            cpu: CpuId(0),
                        },
                    ],
                    next_resched_in_us: 1000,
                    sample_period_us: None,
                }
            }
        }
        m.run(&mut BadSched, StopCondition::At(1000));
    }

    #[test]
    fn cold_placements_are_counted() {
        let mut m = Machine::new(XEON_4WAY);
        m.add_app(AppDescriptor::new(
            "a",
            vec![light_thread(400_000.0), light_thread(400_000.0)],
        ));
        // Swap the two threads between cpu0 and cpu1 every 5 ms: each stint
        // is too short to warm up (τ_build = 20 ms) and each thread evicts
        // the other's state, so every placement stays cold.
        struct Swapper {
            flip: bool,
        }
        impl Scheduler for Swapper {
            fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
                self.flip = !self.flip;
                let ts: Vec<_> = view.threads().filter(|t| t.is_runnable()).collect();
                let assignments = ts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Assignment {
                        thread: t.id,
                        cpu: CpuId((i + self.flip as usize) % 2),
                    })
                    .collect();
                Decision {
                    assignments,
                    next_resched_in_us: 5_000,
                    sample_period_us: None,
                }
            }
        }
        let out = m.run(&mut Swapper { flip: false }, StopCondition::At(100_000));
        assert!(out.condition_met);
        assert!(
            out.stats.cold_placement_fraction() > 0.8,
            "cold fraction {}",
            out.stats.cold_placement_fraction()
        );
        let cold = m.registry().total(ThreadId(0).key(), EventKind::ColdStarts);
        assert!(cold >= 10.0, "cold starts {cold}");
    }

    #[test]
    fn tick_coarsening_reduces_tick_count_for_static_runs() {
        // A solo constant-demand thread warms its cache in ~276 ms (the
        // point where warmth snaps to exactly 1.0); from then on every
        // tick's inputs are static and the loop jumps in near-quantum
        // strides. 1 s of work at 100 µs ticks would be 10 000 fine
        // ticks; coarsening must cut that well below half.
        let mut m = Machine::new(XEON_4WAY);
        let app = m.add_app(AppDescriptor::new("solo", vec![light_thread(1_000_000.0)]));
        let mut s = GreedyScheduler { quantum: 200_000 };
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![app]));
        assert!(out.condition_met);
        let t = m.turnaround_us(app).unwrap();
        assert!((1_000_000..=1_030_000).contains(&t), "turnaround {t}");
        assert!(
            out.stats.ticks < 5_000,
            "expected coarsened run, got {} ticks",
            out.stats.ticks
        );
    }

    #[test]
    fn trace_events_cover_placements_coarsening_and_completion() {
        let mut m = Machine::new(XEON_4WAY);
        let (bus, handle) = busbw_trace::EventBus::memory();
        m.set_tracer(bus);
        let app = m.add_app(AppDescriptor::new("solo", vec![light_thread(300_000.0)]));
        let mut s = GreedyScheduler { quantum: 100_000 };
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![app]));
        assert!(out.condition_met);
        let events = handle.events();
        let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
        // Every placement recorded in stats has a matching event.
        assert_eq!(count("placement") as u64, out.stats.placements);
        // The first demand observation registers as a phase edge.
        assert_eq!(count("phase_edge"), 1);
        // A constant-demand solo run coarsens after cache warm-up.
        assert!(count("coarse_jump") > 0, "no coarse jumps traced");
        // Exactly one app finished.
        assert_eq!(count("app_finished"), 1);
        let fin = events
            .iter()
            .find(|e| e.kind() == "app_finished")
            .expect("app_finished present");
        if let busbw_trace::TraceEvent::AppFinished { turnaround_us, .. } = fin {
            assert_eq!(*turnaround_us, m.turnaround_us(app).unwrap());
        }
        // Histogram totals match iteration count.
        assert_eq!(out.stats.tick_dt_hist.total(), out.stats.ticks);
        // Events arrive in nondecreasing simulated-time order.
        assert!(events.windows(2).all(|w| w[0].at_us() <= w[1].at_us()));
    }

    #[test]
    fn detached_tracer_emits_nothing_and_changes_nothing() {
        let run = |traced: bool| {
            let mut m = Machine::new(XEON_4WAY);
            if traced {
                m.set_tracer(busbw_trace::EventBus::new(Box::new(busbw_trace::NullSink)));
            }
            let app = m.add_app(AppDescriptor::new("solo", vec![light_thread(200_000.0)]));
            let mut s = GreedyScheduler { quantum: 100_000 };
            m.run(&mut s, StopCondition::AppsFinished(vec![app]));
            m.turnaround_us(app).unwrap()
        };
        // Tracing must not perturb the simulation.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn coarsened_run_matches_fine_grained_turnaround() {
        // Same scenario with coarsening implicitly disabled by a bursty
        // wall-clock horizon would diverge; instead compare against the
        // nominal analytic expectation: solo light demand ⇒ speed ≈ 1.0
        // after warm-up, so progress accounting across coarse jumps must
        // agree with fine ticks to within the cold-start transient.
        let mut m = Machine::new(XEON_4WAY);
        let app = m.add_app(AppDescriptor::new("solo", vec![light_thread(500_000.0)]));
        // 1 ms quanta: dt_limit ≤ 10 ticks, so jumps are small but the
        // grid phase must still line up with quantum boundaries exactly.
        let mut s = GreedyScheduler { quantum: 1_000 };
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![app]));
        assert!(out.condition_met);
        let t = m.turnaround_us(app).unwrap();
        assert!((500_000..=515_000).contains(&t), "turnaround {t}");
    }

    /// Virtual-time two-phase square wave with honest horizons.
    struct TwoPhase;
    impl crate::demand::DemandModel for TwoPhase {
        fn demand_at(&mut self, vt_us: f64, _wall_us: u64) -> crate::demand::Demand {
            if vt_us.rem_euclid(40_000.0) < 25_000.0 {
                crate::demand::Demand::new(20.0, 0.9)
            } else {
                crate::demand::Demand::new(1.0, 0.1)
            }
        }
        fn mean_rate(&self) -> f64 {
            (20.0 * 25_000.0 + 1.0 * 15_000.0) / 40_000.0
        }
        fn constant_for(&self, vt_us: f64, _wall_us: u64) -> (f64, f64) {
            let pos = vt_us.rem_euclid(40_000.0);
            let h = if pos < 25_000.0 {
                25_000.0 - pos
            } else {
                40_000.0 - pos
            };
            (h, f64::INFINITY)
        }
    }

    /// Wall-clock square wave with exact integer switch edges.
    struct WallSquare;
    impl crate::demand::DemandModel for WallSquare {
        fn demand_at(&mut self, _vt_us: f64, wall_us: u64) -> crate::demand::Demand {
            if (wall_us / 30_000).is_multiple_of(2) {
                crate::demand::Demand::new(15.0, 0.8)
            } else {
                crate::demand::Demand::new(2.0, 0.2)
            }
        }
        fn mean_rate(&self) -> f64 {
            8.5
        }
        fn constant_for(&self, _vt_us: f64, wall_us: u64) -> (f64, f64) {
            (f64::INFINITY, (30_000 - wall_us % 30_000) as f64)
        }
        fn next_change(&self, _vt_us: f64, wall_us: u64) -> (f64, f64) {
            (f64::INFINITY, (wall_us - wall_us % 30_000 + 30_000) as f64)
        }
    }

    /// A mix exercising every replay guard: virtual-time phase edges,
    /// wall-clock switches, a barrier gang that spins, saturated and
    /// unsaturated bus regimes, cache warm-up and coarsened jumps.
    fn mixed_machine() -> Machine {
        mixed_machine_with(XEON_4WAY)
    }

    fn mixed_machine_with(cfg: crate::config::MachineConfig) -> Machine {
        let mut m = Machine::new(cfg);
        m.add_app(AppDescriptor::new(
            "phase",
            vec![ThreadSpec::new(900_000.0, Box::new(TwoPhase))],
        ));
        m.add_app(AppDescriptor::new(
            "wall",
            vec![ThreadSpec::new(900_000.0, Box::new(WallSquare))],
        ));
        let mut gang = AppDescriptor::new(
            "gang",
            vec![
                ThreadSpec::new(700_000.0, Box::new(ConstantDemand::new(6.0, 0.9))),
                ThreadSpec::new(700_000.0, Box::new(ConstantDemand::new(6.0, 0.1))),
            ],
        );
        gang.barrier_interval_us = Some(5_000.0);
        m.add_app(gang);
        m
    }

    #[test]
    fn event_driven_and_per_tick_runs_are_bit_identical() {
        let run = |exec: ExecMode| {
            let mut m = mixed_machine();
            m.set_exec_mode(exec);
            let mut s = GreedyScheduler { quantum: 30_000 };
            let out = m.run(&mut s, StopCondition::At(1_500_000));
            let progress: Vec<u64> = m
                .view()
                .threads()
                .map(|t| t.progress_us.to_bits())
                .collect();
            // Debug formatting of f64 round-trips the exact value, so a
            // string compare of the stats is a bit compare.
            (format!("{out:?}"), progress, m.bus_memo_stats())
        };
        let ed = run(ExecMode::EventDriven);
        let pt = run(ExecMode::PerTick);
        assert_eq!(ed.0, pt.0, "run stats diverged between exec modes");
        assert_eq!(ed.1, pt.1, "thread progress diverged between exec modes");
        assert_eq!(ed.2, pt.2, "bus memo behaviour diverged between exec modes");
    }

    /// Two sockets of four cpus each over the paper's bus parameters.
    fn two_socket_cfg() -> crate::config::MachineConfig {
        crate::config::MachineConfig {
            num_cpus: 8,
            topology: crate::config::TopologyConfig::multi(2),
            ..XEON_4WAY
        }
    }

    #[test]
    fn single_socket_machine_reports_no_levels() {
        let m = Machine::new(XEON_4WAY);
        let v = m.view();
        assert_eq!(v.sockets, 1);
        assert_eq!(v.cpus_per_socket, 4);
        assert_eq!(v.socket_of(CpuId(3)), 0);
        assert!(v.bus_levels.is_empty());
    }

    #[test]
    fn multi_socket_machine_populates_level_stats() {
        let mut m = Machine::new(two_socket_cfg());
        for _ in 0..4 {
            m.add_app(AppDescriptor::new(
                "stream",
                vec![ThreadSpec::new(
                    300_000.0,
                    Box::new(ConstantDemand::new(12.0, 0.9)),
                )],
            ));
        }
        {
            let v = m.view();
            assert_eq!(v.sockets, 2);
            assert_eq!(v.cpus_per_socket, 4);
            assert_eq!(v.socket_of(CpuId(5)), 1);
        }
        let mut s = GreedyScheduler { quantum: 100_000 };
        let out = m.run(&mut s, StopCondition::AllFiniteAppsFinished);
        assert!(out.condition_met);
        // Sockets 0 and 1 plus the interconnect.
        assert_eq!(out.stats.n_levels, 3);
        // Greedy packs all four streamers onto socket 0: 48 tx/µs of
        // demand against a ~26 tx/µs local bus saturates it, while
        // socket 1's bus sees nothing. The interconnect carries the
        // coherence share (25%) of everything, staying clear.
        assert!(out.stats.levels[0].saturated_us > 0.0);
        assert_eq!(out.stats.levels[1].total_demanded, 0.0);
        assert!(out.stats.levels[2].total_demanded > 0.0);
        assert_eq!(out.stats.levels[2].saturated_us, 0.0);
        assert!(out.stats.levels[0].peak_dilation > 1.0);
        let elapsed = out.stats.elapsed_us;
        assert!(out.stats.levels[0].mean_utilization(elapsed) > 0.5);
        // The post-run view exposes the last arbitration's levels.
        assert_eq!(m.view().bus_levels.len(), 3);
    }

    #[test]
    fn migration_off_home_socket_charges_full_interconnect_traffic() {
        // One streamer homed on socket 0 (first touch at cpu 0), then
        // migrated to socket 1 halfway: all its traffic must cross the
        // interconnect after the move, not just the coherence share.
        struct MigrateAt {
            at: SimTime,
        }
        impl Scheduler for MigrateAt {
            fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
                let cpu = if view.now >= self.at {
                    CpuId(4)
                } else {
                    CpuId(0)
                };
                let assignments = view
                    .threads()
                    .filter(|t| t.is_runnable())
                    .map(|t| Assignment { thread: t.id, cpu })
                    .collect();
                Decision {
                    assignments,
                    next_resched_in_us: 50_000,
                    sample_period_us: None,
                }
            }
        }
        let mut m = Machine::new(two_socket_cfg());
        m.add_app(AppDescriptor::new(
            "roam",
            vec![ThreadSpec::new(
                f64::INFINITY,
                Box::new(ConstantDemand::new(10.0, 0.9)),
            )],
        ));
        let out = m.run(&mut MigrateAt { at: 200_000 }, StopCondition::At(400_000));
        assert!(out.condition_met);
        assert_eq!(m.view().home_socket(ThreadId(0)), Some(0));
        let local = out.stats.levels[0].total_demanded + out.stats.levels[1].total_demanded;
        let inter = out.stats.levels[2].total_demanded;
        // Half the run at the 25% coherence share, half at 100% remote:
        // the interconnect carries ≈ 62.5% of the local demand — far
        // above the never-migrated 25%.
        assert!(inter > 0.5 * local, "interconnect {inter} vs local {local}");
        assert!(out.stats.levels[1].total_demanded > 0.0);
    }

    #[test]
    fn zero_demand_gang_stays_homeless_and_off_the_interconnect() {
        // A zero-demand gang placed on a remote socket, next to a thread
        // that is never placed at all: the never-placed thread keeps
        // `home_socket = None` (first touch never happens), the homeless
        // fallback charges the current socket (remote share 0), and no
        // bus level sees any traffic.
        struct PinFirst;
        impl Scheduler for PinFirst {
            fn schedule(&mut self, _view: &MachineView<'_>) -> Decision {
                Decision {
                    assignments: vec![Assignment {
                        thread: ThreadId(0),
                        cpu: CpuId(4),
                    }],
                    next_resched_in_us: 50_000,
                    sample_period_us: None,
                }
            }
        }
        let mut m = Machine::new(two_socket_cfg());
        m.add_app(AppDescriptor::new(
            "idle",
            vec![ThreadSpec::new(
                f64::INFINITY,
                Box::new(ConstantDemand::new(0.0, 0.9)),
            )],
        ));
        m.add_app(AppDescriptor::new(
            "benched",
            vec![ThreadSpec::new(
                f64::INFINITY,
                Box::new(ConstantDemand::new(0.0, 0.9)),
            )],
        ));
        let out = m.run(&mut PinFirst, StopCondition::At(400_000));
        assert!(out.condition_met);
        assert_eq!(m.view().home_socket(ThreadId(0)), Some(1));
        assert_eq!(m.view().home_socket(ThreadId(1)), None);
        for (k, level) in out.stats.levels.iter().enumerate() {
            assert_eq!(level.total_demanded, 0.0, "level {k} saw traffic");
            assert_eq!(level.total_issued, 0.0, "level {k} issued traffic");
        }
    }

    #[test]
    fn multi_socket_exec_modes_are_bit_identical() {
        let run = |exec: ExecMode| {
            let mut m = mixed_machine_with(two_socket_cfg());
            m.set_exec_mode(exec);
            let mut s = GreedyScheduler { quantum: 30_000 };
            let out = m.run(&mut s, StopCondition::At(1_500_000));
            let progress: Vec<u64> = m
                .view()
                .threads()
                .map(|t| t.progress_us.to_bits())
                .collect();
            (format!("{out:?}"), progress, m.bus_memo_stats())
        };
        let ed = run(ExecMode::EventDriven);
        let pt = run(ExecMode::PerTick);
        assert_eq!(ed.0, pt.0, "run stats diverged between exec modes");
        assert_eq!(ed.1, pt.1, "thread progress diverged between exec modes");
        assert_eq!(ed.2, pt.2, "bus memo behaviour diverged between exec modes");
    }

    #[test]
    fn replay_fast_path_actually_engages() {
        // Short quanta keep `dt_limit ≤ 2·tick`, so the coarsening bail
        // never triggers and steady regions must replay. Each 2-tick
        // quantum costs one full rebuild (the reschedule invalidates the
        // snapshot), so the ceiling is 50%; anything near it means the
        // steady regions replayed.
        let mut m = mixed_machine();
        let mut s = GreedyScheduler { quantum: 200 };
        let out = m.run(&mut s, StopCondition::At(400_000));
        assert!(
            m.replay_ticks() * 5 >= out.stats.ticks * 2,
            "replay served {} of {} ticks",
            m.replay_ticks(),
            out.stats.ticks
        );
        // And never in the per-tick mode.
        let mut m2 = mixed_machine();
        m2.set_exec_mode(ExecMode::PerTick);
        m2.run(
            &mut GreedyScheduler { quantum: 200 },
            StopCondition::At(400_000),
        );
        assert_eq!(m2.replay_ticks(), 0);
    }
}
