//! Phase-attributed self-profiling for the tick engine.
//!
//! The tick loop is a handful of phases — scheduler decisions, barrier
//! caps, the event-driven replay attempt, placement scans, demand-model
//! queries, the Λ solve, and the commit/integration step — and a tick
//! budget in the hundred-nanosecond range. Attributing wall time to those
//! phases is what turns "the engine is slow" into "62 % of the tick is
//! demand re-evaluation". A [`PhaseTimer`] owned by the machine records a
//! ns/call histogram per [`Phase`]; the `bench profile` subcommand folds
//! the result into the `busbw-metrics` registry and prints the breakdown.
//!
//! Design constraints, in priority order:
//!
//! 1. **Byte-identity neutral.** The timer observes wall clocks only; it
//!    never reads or writes simulation state, and nothing it records
//!    enters the run codec. A profiled run is byte-identical to an
//!    unprofiled one (pinned by a proptest in the experiments crate).
//! 2. **Free when disabled.** [`PhaseTimer::begin`] compiles to a single
//!    well-predicted branch returning `None`; [`PhaseTimer::end`] to the
//!    matching branch on the token. No clock is read, nothing allocates.
//! 3. **Nestable and re-entrant.** Tokens are plain values: begin/end
//!    pairs may nest (an inner phase inside an outer one — durations are
//!    *inclusive* per phase) and interleave freely. Dropping a token
//!    without `end` simply records nothing.
//!
//! Timing granularity: `Instant::now()` costs ~20–40 ns on current
//! hardware, comparable to the cheapest phases it measures. Per-phase
//! *shares* remain faithful (every phase pays the same constant), but
//! absolute ns/call for sub-100 ns phases read high; the breakdown table
//! reports calls and totals so the skew is visible rather than hidden.

use std::time::Instant;

/// One engine phase, in tick-loop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Scheduler consultation: `Scheduler::schedule` plus applying the
    /// returned decision (placement validation, preempt/place cycle).
    Schedule = 0,
    /// Barrier-cap rebuild at the top of every tick.
    Barrier = 1,
    /// The event-driven replay attempt: guard checks plus, when they
    /// pass, the snapshot-based request rebuild.
    Replay = 2,
    /// Placement scan and SMT busy-count rebuild (full path only).
    Placement = 3,
    /// Demand evaluation: demand-model queries, cache warmth multipliers,
    /// and the request-vector build (full path only).
    Demand = 4,
    /// Bus arbitration: the memo probe and, on a miss, the saturated-Λ
    /// Newton solve (inline or out-of-line via a solver lane).
    Solve = 5,
    /// Tick commit: coarsening-window scan, progress integration, cache
    /// advance, bus accounting, and completion detection.
    Commit = 6,
    /// Trace/audit emission: structured-trace events and audit-hook
    /// callbacks (only timed while a tracer or hook is attached).
    Trace = 7,
    /// Run-codec work: encoding/decoding results through the content-
    /// addressed cache. Never recorded by the machine itself — the
    /// experiments layer times its codec with the same `PhaseSet` so one
    /// table covers the whole pipeline.
    Codec = 8,
}

impl Phase {
    /// Number of phases (array size for [`PhaseSet`]).
    pub const COUNT: usize = 9;

    /// All phases, in tick-loop order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Schedule,
        Phase::Barrier,
        Phase::Replay,
        Phase::Placement,
        Phase::Demand,
        Phase::Solve,
        Phase::Commit,
        Phase::Trace,
        Phase::Codec,
    ];

    /// Stable snake_case name (metric keys, JSON fields).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Schedule => "schedule",
            Phase::Barrier => "barrier",
            Phase::Replay => "replay",
            Phase::Placement => "placement",
            Phase::Demand => "demand",
            Phase::Solve => "solve",
            Phase::Commit => "commit",
            Phase::Trace => "trace",
            Phase::Codec => "codec",
        }
    }
}

/// Histogram bucket upper bounds in ns, log-spaced. The low end is finer
/// than the scheduler-stage histograms because engine phases sit in the
/// tens-of-ns range once the tick path is allocation-free.
pub const PHASE_BUCKET_BOUNDS_NS: [u64; 7] = [64, 256, 1_024, 4_096, 16_384, 131_072, 1_048_576];

/// Call count, total ns, and a log-bucketed ns/call histogram for one
/// phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of recorded begin/end pairs.
    pub calls: u64,
    /// Σ duration, ns (inclusive of nested phases).
    pub total_ns: u64,
    /// Histogram: `buckets[i]` counts durations ≤ `PHASE_BUCKET_BOUNDS_NS[i]`
    /// (last bucket = overflow).
    pub buckets: [u64; PHASE_BUCKET_BOUNDS_NS.len() + 1],
}

impl PhaseStat {
    /// Record one duration. Zero-duration phases are legal and land in
    /// the first bucket.
    pub fn record_ns(&mut self, ns: u64) {
        self.calls += 1;
        self.total_ns += ns;
        let i = PHASE_BUCKET_BOUNDS_NS.partition_point(|&b| ns > b);
        self.buckets[i] += 1;
    }

    /// Mean ns per call (0 when never called).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }

    /// Fold another stat into this one.
    pub fn merge(&mut self, other: &PhaseStat) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Per-phase stats for a whole run (or several, after merging).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSet {
    stats: [PhaseStat; Phase::COUNT],
}

impl PhaseSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration against `phase`.
    pub fn record_ns(&mut self, phase: Phase, ns: u64) {
        self.stats[phase as usize].record_ns(ns);
    }

    /// The stats of one phase.
    pub fn stat(&self, phase: Phase) -> &PhaseStat {
        &self.stats[phase as usize]
    }

    /// Fold another set into this one (cross-run aggregation).
    pub fn merge(&mut self, other: &PhaseSet) {
        for (a, b) in self.stats.iter_mut().zip(other.stats.iter()) {
            a.merge(b);
        }
    }

    /// `(name, stat)` pairs in tick-loop order, recorded phases only.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, &PhaseStat)> {
        Phase::ALL
            .iter()
            .map(move |&p| (p.name(), self.stat(p)))
            .filter(|(_, s)| s.calls > 0)
    }

    /// Σ total_ns across phases (inclusive — nested phases double-count).
    pub fn grand_total_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.total_ns).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.calls == 0)
    }
}

/// Opaque begin token: `Some(start)` while profiling, `None` when off.
pub type PhaseToken = Option<Instant>;

/// The engine's phase profiler: an enable flag plus a [`PhaseSet`].
///
/// See the module docs for the begin/end token protocol and the disabled
/// cost model.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    enabled: bool,
    set: PhaseSet,
}

impl PhaseTimer {
    /// A disabled timer with empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch profiling on or off. Already-recorded stats are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether begin/end pairs currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start timing a phase. One branch when disabled.
    #[inline]
    pub fn begin(&self) -> PhaseToken {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish timing: record the elapsed ns against `phase`. Tokens from
    /// a disabled `begin` record nothing, so toggling mid-run is safe.
    #[inline]
    pub fn end(&mut self, phase: Phase, token: PhaseToken) {
        if let Some(t0) = token {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.set.record_ns(phase, ns);
        }
    }

    /// The recorded stats.
    pub fn set(&self) -> &PhaseSet {
        &self.set
    }

    /// Take the recorded stats, leaving an empty set (enable flag kept).
    pub fn take(&mut self) -> PhaseSet {
        std::mem::take(&mut self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = PhaseTimer::new();
        let tok = t.begin();
        assert!(tok.is_none());
        t.end(Phase::Solve, tok);
        assert!(t.set().is_empty());
    }

    #[test]
    fn enabled_timer_counts_calls_and_time() {
        let mut t = PhaseTimer::new();
        t.set_enabled(true);
        for _ in 0..5 {
            let tok = t.begin();
            t.end(Phase::Demand, tok);
        }
        let s = t.set().stat(Phase::Demand);
        assert_eq!(s.calls, 5);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        assert!(t.set().stat(Phase::Solve).calls == 0);
    }

    #[test]
    fn nested_phases_record_inclusively() {
        let mut t = PhaseTimer::new();
        t.set_enabled(true);
        let outer = t.begin();
        let inner = t.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end(Phase::Solve, inner);
        t.end(Phase::Commit, outer);
        let solve = *t.set().stat(Phase::Solve);
        let commit = *t.set().stat(Phase::Commit);
        assert_eq!(solve.calls, 1);
        assert_eq!(commit.calls, 1);
        // The outer span contains the inner one.
        assert!(commit.total_ns >= solve.total_ns);
        assert!(solve.total_ns >= 2_000_000);
    }

    #[test]
    fn interleaved_reentrant_tokens_are_independent() {
        let mut t = PhaseTimer::new();
        t.set_enabled(true);
        // Two overlapping begin tokens for the *same* phase, ended out of
        // order — each records exactly once.
        let a = t.begin();
        let b = t.begin();
        t.end(Phase::Replay, a);
        t.end(Phase::Replay, b);
        assert_eq!(t.set().stat(Phase::Replay).calls, 2);
    }

    #[test]
    fn zero_duration_phase_lands_in_first_bucket() {
        let mut s = PhaseStat::default();
        s.record_ns(0);
        assert_eq!(s.calls, 1);
        assert_eq!(s.total_ns, 0);
        assert_eq!(s.buckets[0], 1);
        // Bucket edges are inclusive on the left bound's upper edge.
        s.record_ns(PHASE_BUCKET_BOUNDS_NS[0]);
        assert_eq!(s.buckets[0], 2);
        s.record_ns(PHASE_BUCKET_BOUNDS_NS[0] + 1);
        assert_eq!(s.buckets[1], 1);
    }

    #[test]
    fn overflow_bucket_catches_huge_durations() {
        let mut s = PhaseStat::default();
        s.record_ns(u64::MAX / 2);
        assert_eq!(*s.buckets.last().unwrap(), 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = PhaseSet::new();
        let mut b = PhaseSet::new();
        a.record_ns(Phase::Demand, 100);
        b.record_ns(Phase::Demand, 50);
        b.record_ns(Phase::Codec, 7);
        a.merge(&b);
        assert_eq!(a.stat(Phase::Demand).calls, 2);
        assert_eq!(a.stat(Phase::Demand).total_ns, 150);
        assert_eq!(a.stat(Phase::Codec).calls, 1);
        assert_eq!(a.named().count(), 2);
    }

    #[test]
    fn toggling_mid_run_is_safe() {
        let mut t = PhaseTimer::new();
        t.set_enabled(true);
        let tok = t.begin();
        t.set_enabled(false);
        // Token predates the toggle: still records (it carries its own
        // clock), matching the documented token-value semantics.
        t.end(Phase::Barrier, tok);
        assert_eq!(t.set().stat(Phase::Barrier).calls, 1);
        // New tokens after the toggle are inert.
        let tok = t.begin();
        t.end(Phase::Barrier, tok);
        assert_eq!(t.set().stat(Phase::Barrier).calls, 1);
    }

    #[test]
    fn take_resets_stats_but_keeps_enablement() {
        let mut t = PhaseTimer::new();
        t.set_enabled(true);
        let tok = t.begin();
        t.end(Phase::Schedule, tok);
        let set = t.take();
        assert_eq!(set.stat(Phase::Schedule).calls, 1);
        assert!(t.set().is_empty());
        assert!(t.is_enabled());
    }
}
