//! Machine configuration, calibrated to the paper's platform.

use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;

/// The paper's measured sustained front-side-bus capacity: 29.5 bus
/// transactions per µs (1797 MB/s at 64 B/tx, STREAM on all four
/// processors). Single-sourced here — workloads, invariants, and tests
/// that reason about "the paper's bus" reference this constant rather
/// than re-hardcoding the literal.
pub const PAPER_BUS_TX_PER_US: f64 = 29.5;

/// Front-side-bus parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BusConfig {
    /// Sustained capacity in bus transactions per µs. The paper measures
    /// 29.5 tx/µs with STREAM on all four processors (1797 MB/s at 64 B/tx).
    pub capacity_tx_per_us: f64,
    /// Bytes moved per transaction (64 on the paper's Xeon).
    pub bytes_per_tx: f64,
    /// Per-additional-master arbitration overhead: with `n` active masters,
    /// effective capacity is `capacity × (1 − arbitration_per_master·(n−1))`
    /// (floored at 50 % of nominal). Models the paper's note that
    /// "contention and arbitration contribute to bandwidth consumption and
    /// eventually bus saturation" even below the raw limit.
    pub arbitration_per_master: f64,
    /// A thread counts as an active master if its demand exceeds this
    /// (tx/µs). Keeps nBBMA-like threads from charging arbitration cost.
    pub active_master_threshold: f64,
    /// Sub-saturation queueing penalty coefficient κ: every thread's memory
    /// phases are dilated by an extra `κ·ρ^p` where ρ is bus utilization.
    pub queueing_coeff: f64,
    /// Queueing penalty exponent `p` (convex: contention only bites as the
    /// bus approaches saturation).
    pub queueing_exponent: f64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            capacity_tx_per_us: PAPER_BUS_TX_PER_US,
            bytes_per_tx: 64.0,
            arbitration_per_master: 0.03,
            active_master_threshold: 0.5,
            queueing_coeff: 0.35,
            queueing_exponent: 3.0,
        }
    }
}

impl BusConfig {
    /// Effective capacity with `n_masters` active bus masters.
    pub fn effective_capacity(&self, n_masters: usize) -> f64 {
        let n = n_masters.max(1) as f64;
        let derate = 1.0 - self.arbitration_per_master * (n - 1.0);
        self.capacity_tx_per_us * derate.max(0.5)
    }

    /// Sustained bandwidth in MB/s implied by this configuration.
    pub fn sustained_mb_per_s(&self) -> f64 {
        // tx/µs × bytes/tx = bytes/µs = MB/s.
        self.capacity_tx_per_us * self.bytes_per_tx
    }
}

/// Bus topology: N sockets, each with its own local bus (parameterized
/// by [`BusConfig`]), joined by a shared cross-socket interconnect. A
/// memory transaction charges every level it crosses: the full rate on
/// the local bus of the socket it executes on, plus its remote fraction
/// on the interconnect. `sockets == 1` is the paper's machine — one
/// shared FSB, no interconnect traffic at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of sockets. Logical cpus are striped contiguously:
    /// socket `k` hosts cpus `k·(num_cpus/sockets) ..`.
    pub sockets: usize,
    /// Capacity of the cross-socket interconnect in tx/µs. Inert when
    /// `sockets == 1` (no transaction ever crosses).
    pub interconnect_tx_per_us: f64,
    /// Fraction of a thread's traffic that crosses the interconnect when
    /// it runs on its *home* socket (remote pages, coherence). A thread
    /// migrated off its home socket sends **all** of its traffic across.
    pub remote_fraction: f64,
}

/// The degenerate single-socket topology: the paper's machine. The
/// interconnect fields are inert at one socket but hold the same sane
/// values [`TopologyConfig::multi`] uses, so raising `sockets` alone
/// yields a working machine.
pub const SINGLE_SOCKET: TopologyConfig = TopologyConfig {
    sockets: 1,
    interconnect_tx_per_us: 44.25,
    remote_fraction: 0.25,
};

impl Default for TopologyConfig {
    fn default() -> Self {
        SINGLE_SOCKET
    }
}

impl TopologyConfig {
    /// A multi-socket topology with the default interconnect: 1.5× the
    /// paper's bus (44.25 tx/µs — cross-socket links carry more than one
    /// local bus but far less than the sum of all of them) and a 25 %
    /// home-socket remote-traffic fraction.
    pub const fn multi(sockets: usize) -> Self {
        TopologyConfig {
            sockets,
            ..SINGLE_SOCKET
        }
    }

    /// The remote-traffic fraction for a thread whose home socket is
    /// `home`, executing on `exec`. Zero on a single-socket machine
    /// (nothing to cross), the configured fraction at home, and 1.0 when
    /// migrated off-home (every access crosses back).
    pub fn remote_share(&self, home: usize, exec: usize) -> f64 {
        if self.sockets <= 1 {
            0.0
        } else if home == exec {
            self.remote_fraction
        } else {
            1.0
        }
    }
}

/// Whole-machine configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of *logical* processors exposed to the scheduler. With
    /// `smt_threads_per_core = 1` (the paper's configuration — it disables
    /// hyperthreading because the perfctr driver of the day could not
    /// virtualize counters across sibling hardware threads) this equals
    /// the physical core count.
    pub num_cpus: usize,
    /// Simulation tick in µs. Smaller = finer bus/cache dynamics; 100 µs is
    /// 1/1000 of the paper's smallest quantum and resolves every effect the
    /// policies can observe.
    pub tick_us: u64,
    /// Hardware threads per physical core. Logical cpus `k·t .. k·t+t-1`
    /// share core `k`. 1 disables SMT.
    pub smt_threads_per_core: usize,
    /// Aggregate speedup of one core when *all* of its hardware threads
    /// are busy, relative to one thread alone (the classic HT figure is
    /// ~1.25: each of two busy siblings runs at ~0.625×). Ignored when
    /// `smt_threads_per_core` is 1.
    pub smt_core_speedup: f64,
    /// Bus parameters. On a multi-socket topology these describe each
    /// *local* (per-socket) bus.
    pub bus: BusConfig,
    /// Bus topology (sockets + interconnect). Defaults to the paper's
    /// single shared FSB; absent in serialized configs from before the
    /// topology existed.
    #[serde(default)]
    pub topology: TopologyConfig,
    /// Cache/affinity parameters.
    pub cache: CacheConfig,
}

impl MachineConfig {
    /// The physical core hosting a logical cpu index.
    pub fn core_of(&self, cpu: usize) -> usize {
        cpu / self.smt_threads_per_core.max(1)
    }

    /// Logical cpus per socket (cpus are striped contiguously).
    pub fn cpus_per_socket(&self) -> usize {
        self.num_cpus.div_ceil(self.topology.sockets.max(1)).max(1)
    }

    /// The socket hosting a logical cpu index.
    pub fn socket_of(&self, cpu: usize) -> usize {
        (cpu / self.cpus_per_socket()).min(self.topology.sockets.max(1) - 1)
    }

    /// Per-thread speed factor when `busy` hardware threads share a core.
    pub fn smt_speed_factor(&self, busy: usize) -> f64 {
        if busy <= 1 || self.smt_threads_per_core <= 1 {
            1.0
        } else {
            // The core's aggregate throughput scales from 1 (one busy
            // thread) to `smt_core_speedup` (all busy), interpolated
            // linearly in the number of busy siblings, split evenly.
            let t = self.smt_threads_per_core as f64;
            let busy = busy as f64;
            let aggregate = 1.0 + (self.smt_core_speedup - 1.0) * (busy - 1.0) / (t - 1.0);
            aggregate / busy
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        XEON_4WAY
    }
}

/// The paper's platform: 4-way Xeon, 29.5 tx/µs sustained bus.
pub const XEON_4WAY: MachineConfig = MachineConfig {
    num_cpus: 4,
    tick_us: 100,
    smt_threads_per_core: 1,
    smt_core_speedup: 1.0,
    bus: BusConfig {
        capacity_tx_per_us: PAPER_BUS_TX_PER_US,
        bytes_per_tx: 64.0,
        arbitration_per_master: 0.03,
        active_master_threshold: 0.5,
        queueing_coeff: 0.35,
        queueing_exponent: 3.0,
    },
    topology: SINGLE_SOCKET,
    cache: CacheConfig {
        warmup_tau_us: 20_000.0,
        decay_tau_us: 10_000.0,
        cold_demand_boost: 0.6,
        min_tracked_warmth: 0.01,
    },
};

/// The same machine with Hyperthreading enabled: 8 logical cpus on 4
/// physical cores, ~1.25× aggregate core speedup — the configuration the
/// paper could *not* measure (perfctr limitation) but lists as future
/// work.
pub const XEON_4WAY_HT: MachineConfig = MachineConfig {
    num_cpus: 8,
    smt_threads_per_core: 2,
    smt_core_speedup: 1.25,
    ..XEON_4WAY
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_constants_match_paper() {
        let c = XEON_4WAY;
        assert_eq!(c.num_cpus, 4);
        assert!((c.bus.capacity_tx_per_us - 29.5).abs() < 1e-12);
        // 29.5 tx/µs × 64 B = 1888 MB/s ≈ the measured 1797 MB/s sustained
        // (the paper's two numbers are themselves ~5 % apart; we keep the
        // transaction-rate calibration since that is what the policies see).
        let mb = c.bus.sustained_mb_per_s();
        assert!((1700.0..2000.0).contains(&mb), "got {mb}");
    }

    #[test]
    fn arbitration_derates_capacity_monotonically() {
        let b = BusConfig::default();
        let mut prev = f64::INFINITY;
        for n in 1..=8 {
            let c = b.effective_capacity(n);
            assert!(c <= prev);
            assert!(c >= 0.5 * b.capacity_tx_per_us);
            prev = c;
        }
        assert_eq!(b.effective_capacity(0), b.effective_capacity(1));
    }

    #[test]
    fn smt_speed_factors() {
        let ht = XEON_4WAY_HT;
        assert_eq!(ht.core_of(0), 0);
        assert_eq!(ht.core_of(1), 0);
        assert_eq!(ht.core_of(2), 1);
        assert_eq!(ht.smt_speed_factor(1), 1.0);
        // Both siblings busy: 1.25 aggregate → 0.625 each.
        assert!((ht.smt_speed_factor(2) - 0.625).abs() < 1e-12);
        // Non-SMT machine never derates.
        assert_eq!(XEON_4WAY.smt_speed_factor(2), 1.0);
    }

    #[test]
    fn socket_mapping_stripes_contiguously() {
        let mut c = XEON_4WAY;
        assert_eq!(c.topology.sockets, 1);
        assert_eq!(c.cpus_per_socket(), 4);
        for cpu in 0..4 {
            assert_eq!(c.socket_of(cpu), 0);
        }
        c.num_cpus = 8;
        c.topology = TopologyConfig::multi(2);
        assert_eq!(c.cpus_per_socket(), 4);
        assert_eq!(c.socket_of(0), 0);
        assert_eq!(c.socket_of(3), 0);
        assert_eq!(c.socket_of(4), 1);
        assert_eq!(c.socket_of(7), 1);
        // Out-of-range cpus clamp to the last socket rather than panic.
        assert_eq!(c.socket_of(99), 1);
    }

    #[test]
    fn remote_share_degenerates_at_one_socket() {
        let single = SINGLE_SOCKET;
        assert_eq!(single.remote_share(0, 0), 0.0);
        let multi = TopologyConfig::multi(2);
        assert!((multi.remote_share(0, 0) - multi.remote_fraction).abs() < 1e-15);
        assert_eq!(multi.remote_share(0, 1), 1.0);
        assert!((multi.interconnect_tx_per_us - 1.5 * PAPER_BUS_TX_PER_US).abs() < 1e-12);
    }

    #[test]
    fn arbitration_floor_holds_for_many_masters() {
        let b = BusConfig {
            arbitration_per_master: 0.2,
            ..BusConfig::default()
        };
        assert_eq!(b.effective_capacity(100), 0.5 * b.capacity_tx_per_us);
    }
}
