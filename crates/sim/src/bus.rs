//! The shared front-side bus.
//!
//! All results in the paper flow from one physical fact: the bus serves at
//! most ~29.5 transactions/µs, and threads that collectively demand more
//! stall each other. This module turns a set of per-thread demands into
//! per-thread *speeds* and *issue rates* for one simulation tick.
//!
//! The default model, [`FsbBus`], works in terms of a **uniform memory
//! dilation factor Λ**: every thread's memory phases take Λ× longer than
//! solo. Given demands `d_i` and memory-boundness `µ_i`, a thread's speed is
//!
//! ```text
//! s_i = 1 / ((1 − µ_i) + µ_i·Λ)          (Amdahl-style dilation)
//! issue_i = d_i · s_i                     (traffic tracks progress)
//! ```
//!
//! * Below saturation Λ = 1 + κ·ρ^p — a mild convex queueing penalty in the
//!   bus-utilization ρ (the paper's Fig. 1B shows moderate applications
//!   losing a few percent when sharing an unsaturated bus).
//! * At saturation Λ is the root of `Σ d_i / ((1−µ_i) + µ_i·Λ) = C_eff`,
//!   so aggregate issued traffic exactly equals effective capacity: the
//!   bus is conserved, and bandwidth is shared in proportion to demand —
//!   the behaviour of a round-robin arbiter among continuously-stalled
//!   masters, and the regime in which the paper measures 2–3× slowdowns
//!   for memory-intensive applications running against BBMA.
//! * `C_eff` shrinks slightly per active master (arbitration overhead),
//!   see [`crate::BusConfig::effective_capacity`].
//!
//! Two alternative arbiters ([`MaxMinFairBus`], [`ProportionalBus`]) and a
//! null model ([`UnlimitedBus`]) exist for ablations and testing.

use crate::config::BusConfig;
use crate::ids::ThreadId;

/// One thread's demand presented to the bus for a tick.
///
/// `PartialEq` compares the raw fields bitwise-style (`f64` equality);
/// [`FsbBus`] uses it to detect an unchanged demand set and skip the Λ
/// solve entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusRequest {
    /// The requesting thread.
    pub thread: ThreadId,
    /// Effective solo demand for this tick, tx/µs (cache-cold boosts
    /// already applied by the machine).
    pub rate: f64,
    /// Memory-boundness in `[0, 1]`.
    pub mu: f64,
}

/// The bus's answer for one thread.
#[derive(Debug, Clone, Copy)]
pub struct BusShare {
    /// The thread.
    pub thread: ThreadId,
    /// Speed factor in `(0, 1]` relative to solo execution.
    pub speed: f64,
    /// Transactions/µs actually issued (`rate × speed`).
    pub issue_rate: f64,
}

/// The bus's answer for a whole tick.
#[derive(Debug, Clone)]
pub struct BusOutcome {
    /// Per-thread shares, in the order of the requests.
    pub shares: Vec<BusShare>,
    /// Σ demands, tx/µs.
    pub total_demand: f64,
    /// Σ issued, tx/µs.
    pub total_issued: f64,
    /// Effective capacity after arbitration derating, tx/µs.
    pub effective_capacity: f64,
    /// The uniform memory-dilation factor Λ applied (1 = uncontended).
    pub dilation: f64,
    /// Utilization ρ = min(total_demand / effective_capacity, 1).
    pub utilization: f64,
    /// Whether demand exceeded effective capacity.
    pub saturated: bool,
}

impl BusOutcome {
    /// An outcome with no requests (idle bus).
    pub fn empty(capacity: f64) -> Self {
        Self {
            shares: Vec::new(),
            total_demand: 0.0,
            total_issued: 0.0,
            effective_capacity: capacity,
            dilation: 1.0,
            utilization: 0.0,
            saturated: false,
        }
    }

    /// Reset to the idle state in place, keeping the `shares` allocation.
    fn reset(&mut self, capacity: f64) {
        self.shares.clear();
        self.total_demand = 0.0;
        self.total_issued = 0.0;
        self.effective_capacity = capacity;
        self.dilation = 1.0;
        self.utilization = 0.0;
        self.saturated = false;
    }
}

/// A bus arbitration model.
///
/// `&mut self` lets models keep scratch buffers and memoized solver state
/// between ticks. Models must stay deterministic: the same sequence of
/// calls since construction must yield the same outcomes, which the
/// machine's run-to-run reproducibility depends on. (Warm-started solvers
/// may give ulp-level different answers for the same request set under a
/// different call history; that is fine, history replays identically.)
pub trait BusModel: Send {
    /// Resolve one tick's demands into `out`, reusing its allocations.
    /// Implementations must fully overwrite `out` (including clearing
    /// `shares`).
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome);

    /// Resolve one tick's demands into a fresh outcome (convenience).
    fn arbitrate(&mut self, reqs: &[BusRequest]) -> BusOutcome {
        let mut out = BusOutcome::empty(self.nominal_capacity());
        self.arbitrate_into(reqs, &mut out);
        out
    }

    /// Nominal (single-master) sustained capacity, tx/µs.
    fn nominal_capacity(&self) -> f64;

    /// Memoization counters `(hits, misses)` for models that cache their
    /// Λ solve, `None` for models without a memo. Lets run manifests
    /// report the memo hit rate without downcasting through
    /// `Box<dyn BusModel>`.
    fn memo_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Amdahl-style dilation speed at dilation Λ.
#[inline]
fn dilated_speed(mu: f64, lambda: f64) -> f64 {
    1.0 / ((1.0 - mu) + mu * lambda)
}

/// Memoized result of one [`FsbBus`] arbitration: everything that is
/// expensive to recompute, keyed by the exact request sequence.
#[derive(Debug, Clone, Default)]
struct FsbMemo {
    valid: bool,
    reqs: Vec<BusRequest>,
    cap: f64,
    total_demand: f64,
    utilization: f64,
    saturated: bool,
    lambda: f64,
}

/// The default front-side-bus model described in the module docs.
///
/// Between ticks the bus keeps the previous request set and its solved Λ:
/// an identical request sequence (the common case once caches are warm and
/// demands are phase-constant) reuses the previous solution outright, and
/// a changed set warm-starts the root solve from the previous Λ.
#[derive(Debug, Clone)]
pub struct FsbBus {
    cfg: BusConfig,
    memo: FsbMemo,
    memo_hits: u64,
    memo_misses: u64,
}

impl FsbBus {
    /// A bus with the given configuration.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            memo: FsbMemo::default(),
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Arbitrations answered from the unchanged-demand-set memo.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Arbitrations that ran the full solve.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Solve `Σ d_i/((1−µ_i)+µ_i·λ) = cap` for the saturation dilation
    /// λ ≥ 1.
    ///
    /// The left side `f(λ)` is strictly decreasing and convex in λ for any
    /// thread with µ > 0, so Newton's method started left of the root
    /// converges monotonically (tangents of a convex function never
    /// overshoot the root from the left) and quadratically — typically
    /// 3–6 iterations, fewer when `warm` (the previous tick's λ) is still
    /// left of the root. Threads with µ = 0 contribute a constant; if they
    /// alone exceed capacity (physically inconsistent input) the maximum
    /// dilation is returned and conservation is best-effort.
    fn solve_lambda(reqs: &[BusRequest], cap: f64, warm: f64) -> f64 {
        const LAMBDA_MAX: f64 = 1e9;
        // f(λ) = Σ dᵢ/(aᵢ + bᵢλ) − cap and its derivative.
        let f_and_slope = |lambda: f64| -> (f64, f64) {
            let mut f = -cap;
            let mut fp = 0.0;
            for r in reqs {
                let denom = (1.0 - r.mu) + r.mu * lambda;
                let term = r.rate / denom;
                f += term;
                fp -= term * r.mu / denom;
            }
            (f, fp)
        };
        let mut lambda = if warm > 1.0 && warm.is_finite() && f_and_slope(warm).0 > 0.0 {
            warm
        } else {
            1.0
        };
        for _ in 0..64 {
            let (f, fp) = f_and_slope(lambda);
            if f <= 0.0 {
                // At (or an ulp past) the root.
                break;
            }
            if fp >= 0.0 {
                // Demand is λ-insensitive (all µ = 0) yet above capacity.
                return LAMBDA_MAX;
            }
            let next = lambda - f / fp;
            if next > LAMBDA_MAX {
                return LAMBDA_MAX;
            }
            // Converged to machine precision (also catches a NaN step,
            // which compares as not-greater).
            if next.partial_cmp(&lambda) != Some(std::cmp::Ordering::Greater) {
                break;
            }
            lambda = next;
        }
        lambda
    }
}

impl BusModel for FsbBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        if reqs.is_empty() {
            out.reset(self.cfg.capacity_tx_per_us);
            return;
        }
        if !(self.memo.valid && self.memo.reqs == reqs) {
            // Full solve; remember everything for the next tick.
            self.memo_misses += 1;
            let n_masters = reqs
                .iter()
                .filter(|r| r.rate > self.cfg.active_master_threshold)
                .count();
            let cap = self.cfg.effective_capacity(n_masters);
            let total_demand: f64 = reqs.iter().map(|r| r.rate).sum();
            let utilization = (total_demand / cap).min(1.0);
            let saturated = total_demand > cap;
            let lambda_sat = if saturated {
                Self::solve_lambda(reqs, cap, self.memo.lambda)
            } else {
                1.0
            };
            // Below saturation the queueing term provides the (small,
            // convex) contention penalty; at deep saturation λ_sat
            // dominates and taking the max keeps aggregate issued traffic
            // exactly at capacity instead of wasting it.
            let queueing = self.cfg.queueing_coeff * utilization.powf(self.cfg.queueing_exponent);
            self.memo.reqs.clear();
            self.memo.reqs.extend_from_slice(reqs);
            self.memo.cap = cap;
            self.memo.total_demand = total_demand;
            self.memo.utilization = utilization;
            self.memo.saturated = saturated;
            self.memo.lambda = lambda_sat.max(1.0 + queueing);
            self.memo.valid = true;
        } else {
            self.memo_hits += 1;
        }
        let lambda = self.memo.lambda;
        out.shares.clear();
        let mut total_issued = 0.0;
        for r in reqs {
            let speed = dilated_speed(r.mu, lambda);
            let issue_rate = r.rate * speed;
            total_issued += issue_rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        out.total_demand = self.memo.total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = self.memo.cap;
        out.dilation = lambda;
        out.utilization = self.memo.utilization;
        out.saturated = self.memo.saturated;
    }

    fn nominal_capacity(&self) -> f64 {
        self.cfg.capacity_tx_per_us
    }

    fn memo_stats(&self) -> Option<(u64, u64)> {
        Some((self.memo_hits, self.memo_misses))
    }
}

/// Classic max-min fair arbitration (ablation alternative).
///
/// Small demands are fully satisfied; the surplus is split equally among
/// larger ones. Compared with [`FsbBus`], this under-penalizes heavy
/// streamers (they keep an equal absolute share rather than a
/// demand-proportional one), which is why the paper-calibrated default is
/// the proportional model — but a max-min arbiter is what an idealized
/// per-request round-robin with single outstanding misses would give, so it
/// is worth keeping for sensitivity studies.
#[derive(Debug, Clone, Default)]
pub struct MaxMinFairBus {
    cfg: BusConfig,
    // Scratch reused across ticks to keep the hot path allocation-free.
    demands: Vec<f64>,
    grants: Vec<f64>,
}

impl MaxMinFairBus {
    /// A max-min bus with the given configuration.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            demands: Vec::new(),
            grants: Vec::new(),
        }
    }

    /// Max-min allocation of `cap` over `demands`. Returns grants.
    pub fn max_min(demands: &[f64], cap: f64) -> Vec<f64> {
        let mut grants = vec![0.0f64; demands.len()];
        let mut remaining_cap = cap;
        let mut unsatisfied: Vec<usize> = (0..demands.len()).collect();
        // Iteratively give everyone the fair share or their demand,
        // whichever is smaller; redistribute the slack.
        while !unsatisfied.is_empty() && remaining_cap > 1e-12 {
            let fair = remaining_cap / unsatisfied.len() as f64;
            let mut satisfied_any = false;
            let mut still = Vec::with_capacity(unsatisfied.len());
            for &i in &unsatisfied {
                let want = demands[i] - grants[i];
                if want <= fair {
                    grants[i] = demands[i];
                    remaining_cap -= want;
                    satisfied_any = true;
                } else {
                    still.push(i);
                }
            }
            if !satisfied_any {
                // Nobody can be fully satisfied: split equally and stop.
                let fair = remaining_cap / still.len() as f64;
                for &i in &still {
                    grants[i] += fair;
                }
                remaining_cap = 0.0;
                still.clear();
            }
            unsatisfied = still;
        }
        grants
    }
}

impl BusModel for MaxMinFairBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        if reqs.is_empty() {
            out.reset(self.cfg.capacity_tx_per_us);
            return;
        }
        let n_masters = reqs
            .iter()
            .filter(|r| r.rate > self.cfg.active_master_threshold)
            .count();
        let cap = self.cfg.effective_capacity(n_masters);
        self.demands.clear();
        self.demands.extend(reqs.iter().map(|r| r.rate));
        let total_demand: f64 = self.demands.iter().sum();
        self.grants = Self::max_min(&self.demands, cap);
        let saturated = total_demand > cap;
        out.shares.clear();
        let mut total_issued = 0.0;
        for (r, &g) in reqs.iter().zip(&self.grants) {
            let lambda_i = if g >= r.rate || r.rate <= 0.0 {
                1.0
            } else {
                r.rate / g.max(1e-12)
            };
            let speed = dilated_speed(r.mu, lambda_i);
            // Traffic tracks progress but can never exceed the grant.
            let issue_rate = (r.rate * speed).min(g.max(r.rate.min(g)));
            total_issued += issue_rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        out.total_demand = total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = cap;
        out.dilation = if saturated { total_demand / cap } else { 1.0 };
        out.utilization = (total_demand / cap).min(1.0);
        out.saturated = saturated;
    }

    fn nominal_capacity(&self) -> f64 {
        self.cfg.capacity_tx_per_us
    }
}

/// Pure proportional sharing with no arbitration derate and no queueing —
/// the textbook version of [`FsbBus`] (equivalent to Λ = max(1, ΣD/C) with
/// every µ = 1). Useful as an analytical reference in tests.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalBus {
    /// Capacity in tx/µs.
    pub capacity: f64,
}

impl BusModel for ProportionalBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        if reqs.is_empty() {
            out.reset(self.capacity);
            return;
        }
        let total_demand: f64 = reqs.iter().map(|r| r.rate).sum();
        let lambda = (total_demand / self.capacity).max(1.0);
        out.shares.clear();
        let mut total_issued = 0.0;
        for r in reqs {
            let speed = dilated_speed(r.mu, lambda);
            let issue_rate = r.rate * speed;
            total_issued += issue_rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        out.total_demand = total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = self.capacity;
        out.dilation = lambda;
        out.utilization = (total_demand / self.capacity).min(1.0);
        out.saturated = total_demand > self.capacity;
    }

    fn nominal_capacity(&self) -> f64 {
        self.capacity
    }
}

/// A bus with infinite capacity: every thread runs at solo speed.
/// For unit-testing schedulers in isolation from contention.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnlimitedBus;

impl BusModel for UnlimitedBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        out.reset(f64::INFINITY);
        let mut total = 0.0;
        for r in reqs {
            total += r.rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed: 1.0,
                issue_rate: r.rate,
            });
        }
        out.total_demand = total;
        out.total_issued = total;
    }

    fn nominal_capacity(&self) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, rate: f64, mu: f64) -> BusRequest {
        BusRequest {
            thread: ThreadId(id),
            rate,
            mu,
        }
    }

    fn default_fsb() -> FsbBus {
        FsbBus::new(BusConfig::default())
    }

    #[test]
    fn empty_request_set_is_trivial() {
        let out = default_fsb().arbitrate(&[]);
        assert_eq!(out.total_issued, 0.0);
        assert!(!out.saturated);
        assert!(out.shares.is_empty());
    }

    #[test]
    fn single_light_thread_runs_at_nearly_full_speed() {
        let out = default_fsb().arbitrate(&[req(0, 1.0, 0.2)]);
        assert!(!out.saturated);
        assert!(out.shares[0].speed > 0.999, "speed {}", out.shares[0].speed);
        assert!((out.shares[0].issue_rate - 1.0).abs() < 1e-2);
    }

    #[test]
    fn saturation_conserves_capacity_exactly_for_memory_bound_threads() {
        // Four pure streamers demanding 2× capacity.
        let mut bus = default_fsb();
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 1.0)).collect();
        let out = bus.arbitrate(&reqs);
        assert!(out.saturated);
        let cap = out.effective_capacity;
        assert!(
            (out.total_issued - cap).abs() < 1e-6 * cap,
            "issued {} vs cap {cap}",
            out.total_issued
        );
    }

    #[test]
    fn proportional_sharing_under_saturation() {
        // Equal µ ⇒ issue rates proportional to demands.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[req(0, 20.0, 1.0), req(1, 10.0, 1.0)]);
        assert!(out.saturated);
        let r0 = out.shares[0].issue_rate;
        let r1 = out.shares[1].issue_rate;
        assert!((r0 / r1 - 2.0).abs() < 1e-9, "ratio {}", r0 / r1);
    }

    #[test]
    fn low_mu_thread_is_nearly_immune_to_saturation() {
        // An nBBMA-like thread next to two heavy streamers.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[req(0, 23.6, 1.0), req(1, 23.6, 1.0), req(2, 0.004, 0.01)]);
        assert!(out.saturated);
        assert!(out.shares[2].speed > 0.97, "speed {}", out.shares[2].speed);
        // While the streamers are heavily dilated.
        assert!(out.shares[0].speed < 0.7);
    }

    #[test]
    fn cg_with_two_bbma_slows_two_to_three_fold() {
        // The paper's headline motivation: a memory-intensive app
        // (CG: ~11.7 tx/µs/thread, µ high) against two BBMA streamers
        // suffers a 2–3× slowdown.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[
            req(0, 11.65, 0.85),
            req(1, 11.65, 0.85),
            req(2, 23.6, 0.98),
            req(3, 23.6, 0.98),
        ]);
        let slowdown = 1.0 / out.shares[0].speed;
        assert!(
            (1.9..3.2).contains(&slowdown),
            "CG slowdown under BBMA pressure was {slowdown}"
        );
    }

    #[test]
    fn two_instances_of_heavy_app_lose_forty_to_seventy_percent() {
        // Fig 1B dark-gray shape: 2 instances × 2 threads of SP/MG/CG-class
        // applications degrade 41–61 %.
        let mut bus = default_fsb();
        for (rate, mu) in [(8.5, 0.75), (9.75, 0.8), (11.65, 0.85)] {
            let reqs: Vec<_> = (0..4).map(|i| req(i, rate, mu)).collect();
            let out = bus.arbitrate(&reqs);
            let slowdown = 1.0 / out.shares[0].speed;
            assert!(
                (1.25..1.95).contains(&slowdown),
                "rate {rate}: slowdown {slowdown}"
            );
        }
    }

    #[test]
    fn subsaturation_queueing_penalty_is_small_and_convex() {
        let mut bus = default_fsb();
        // Utilization ~40 %: negligible penalty.
        let low = bus.arbitrate(&[req(0, 6.0, 0.8), req(1, 6.0, 0.8)]);
        assert!(!low.saturated);
        assert!(low.shares[0].speed > 0.97);
        // Utilization ~90 %: a few percent.
        let high = bus.arbitrate(&[req(0, 13.0, 0.8), req(1, 13.0, 0.8)]);
        assert!(high.shares[0].speed < low.shares[0].speed);
        assert!(high.shares[0].speed > 0.75);
    }

    #[test]
    fn dilation_reduces_to_one_when_idle() {
        let out = default_fsb().arbitrate(&[req(0, 0.0, 0.0)]);
        assert!((out.dilation - 1.0).abs() < 1e-9);
        assert_eq!(out.shares[0].speed, 1.0);
    }

    #[test]
    fn lambda_solver_handles_mu_zero_threads() {
        // µ=0 threads contribute constant traffic; solver must not hang.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[req(0, 40.0, 1.0), req(1, 2.0, 0.0)]);
        assert!(out.saturated);
        assert!(out.total_issued <= out.effective_capacity + 2.0 + 1e-6);
    }

    #[test]
    fn max_min_allocation_properties() {
        let demands = vec![1.0, 5.0, 20.0, 30.0];
        let grants = MaxMinFairBus::max_min(&demands, 29.5);
        // Grants never exceed demands.
        for (g, d) in grants.iter().zip(&demands) {
            assert!(g <= d);
        }
        // Capacity fully used when total demand exceeds it.
        let total: f64 = grants.iter().sum();
        assert!((total - 29.5).abs() < 1e-9);
        // Small demand fully satisfied.
        assert!((grants[0] - 1.0).abs() < 1e-9);
        // The two large demands get equal shares.
        assert!((grants[2] - grants[3]).abs() < 1e-9);
    }

    #[test]
    fn max_min_under_capacity_grants_everything() {
        let demands = vec![3.0, 4.0];
        let grants = MaxMinFairBus::max_min(&demands, 29.5);
        assert_eq!(grants, demands);
    }

    #[test]
    fn unlimited_bus_never_slows_anyone() {
        let out = UnlimitedBus.arbitrate(&[req(0, 1e6, 1.0)]);
        assert_eq!(out.shares[0].speed, 1.0);
        assert!(!out.saturated);
    }

    #[test]
    fn proportional_bus_matches_fsb_without_overheads() {
        let cfg = BusConfig {
            arbitration_per_master: 0.0,
            queueing_coeff: 0.0,
            ..BusConfig::default()
        };
        let mut fsb = FsbBus::new(cfg);
        let mut prop = ProportionalBus {
            capacity: cfg.capacity_tx_per_us,
        };
        let reqs = [req(0, 25.0, 1.0), req(1, 25.0, 1.0)];
        let a = fsb.arbitrate(&reqs);
        let b = prop.arbitrate(&reqs);
        for (x, y) in a.shares.iter().zip(&b.shares) {
            assert!((x.speed - y.speed).abs() < 1e-9);
        }
    }

    #[test]
    fn unchanged_demand_set_reuses_memo_bit_identically() {
        let mut bus = default_fsb();
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 0.9)).collect();
        let a = bus.arbitrate(&reqs);
        assert_eq!((bus.memo_misses(), bus.memo_hits()), (1, 0));
        let b = bus.arbitrate(&reqs);
        assert_eq!((bus.memo_misses(), bus.memo_hits()), (1, 1));
        assert_eq!(a.dilation.to_bits(), b.dilation.to_bits());
        assert_eq!(a.total_issued.to_bits(), b.total_issued.to_bits());
        for (x, y) in a.shares.iter().zip(&b.shares) {
            assert_eq!(x.speed.to_bits(), y.speed.to_bits());
            assert_eq!(x.issue_rate.to_bits(), y.issue_rate.to_bits());
        }
        // Any change to the demand set falls back to the full solve.
        let mut reqs2 = reqs.clone();
        reqs2[0].rate += 1.0;
        bus.arbitrate(&reqs2);
        assert_eq!((bus.memo_misses(), bus.memo_hits()), (2, 1));
    }

    #[test]
    fn warm_started_solve_matches_cold_solve() {
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 0.9)).collect();
        let mut warm = default_fsb();
        // Seed the memo with a different saturated set so the next solve
        // warm-starts from its λ.
        warm.arbitrate(&[req(9, 40.0, 1.0), req(10, 40.0, 1.0)]);
        let w = warm.arbitrate(&reqs);
        let c = default_fsb().arbitrate(&reqs);
        assert!(
            (w.dilation - c.dilation).abs() <= 1e-12 * c.dilation,
            "warm {} vs cold {}",
            w.dilation,
            c.dilation
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_reqs() -> impl Strategy<Value = Vec<BusRequest>> {
            prop::collection::vec((0.0f64..40.0, 0.01f64..1.0), 1..12).prop_map(|v| {
                v.into_iter()
                    .enumerate()
                    .map(|(i, (rate, mu))| BusRequest {
                        thread: ThreadId(i as u64),
                        rate,
                        mu,
                    })
                    .collect()
            })
        }

        proptest! {
            /// The bus never creates bandwidth: total issued ≤ effective
            /// capacity (within solver tolerance) whenever saturated, and
            /// ≤ total demand always.
            #[test]
            fn conservation(reqs in arb_reqs()) {
                let out = FsbBus::new(BusConfig::default()).arbitrate(&reqs);
                prop_assert!(out.total_issued <= out.total_demand + 1e-9);
                if out.saturated {
                    prop_assert!(out.total_issued <= out.effective_capacity * (1.0 + 1e-6));
                }
            }

            /// Speeds are in (0, 1] and issue rates are rate×speed.
            #[test]
            fn speeds_bounded(reqs in arb_reqs()) {
                let out = FsbBus::new(BusConfig::default()).arbitrate(&reqs);
                for (r, s) in reqs.iter().zip(&out.shares) {
                    prop_assert!(s.speed > 0.0 && s.speed <= 1.0 + 1e-12);
                    prop_assert!((s.issue_rate - r.rate * s.speed).abs() < 1e-9);
                }
            }

            /// More memory-bound threads are hurt at least as much by the
            /// same dilation.
            #[test]
            fn monotone_in_mu(rate in 1.0f64..30.0, mu_lo in 0.0f64..0.5, extra in 0.0f64..0.5) {
                let mut bus = FsbBus::new(BusConfig::default());
                let mu_hi = (mu_lo + extra).min(1.0);
                let heavy = [
                    BusRequest { thread: ThreadId(0), rate, mu: mu_lo },
                    BusRequest { thread: ThreadId(1), rate, mu: mu_hi },
                    BusRequest { thread: ThreadId(2), rate: 25.0, mu: 1.0 },
                    BusRequest { thread: ThreadId(3), rate: 25.0, mu: 1.0 },
                ];
                let out = bus.arbitrate(&heavy);
                prop_assert!(out.shares[0].speed >= out.shares[1].speed - 1e-12);
            }

            /// Max-min grants: feasible, capped by demand, work-conserving.
            #[test]
            fn max_min_invariants(demands in prop::collection::vec(0.0f64..50.0, 1..10), cap in 1.0f64..60.0) {
                let grants = MaxMinFairBus::max_min(&demands, cap);
                let total_d: f64 = demands.iter().sum();
                let total_g: f64 = grants.iter().sum();
                for (g, d) in grants.iter().zip(&demands) {
                    prop_assert!(*g <= d + 1e-9);
                    prop_assert!(*g >= -1e-12);
                }
                prop_assert!(total_g <= cap + 1e-9);
                // Work conserving: uses min(cap, total demand).
                prop_assert!((total_g - total_d.min(cap)).abs() < 1e-6);
            }

            /// Below saturation every arbiter agrees with [`FsbBus`] up to
            /// the sub-saturation queueing term κ·ρ^p (the alternatives
            /// model no queueing, so their speeds sit exactly at 1 while
            /// FsbBus sits at 1/(1+µκρ^p) ≥ 1 − κρ^p).
            #[test]
            fn arbiters_agree_below_saturation(reqs in arb_reqs()) {
                let cfg = BusConfig::default();
                let fsb = FsbBus::new(cfg).arbitrate(&reqs);
                if !fsb.saturated && fsb.utilization <= 0.9 {
                    let tol =
                        cfg.queueing_coeff * fsb.utilization.powf(cfg.queueing_exponent) + 1e-9;
                    let mm = MaxMinFairBus::new(cfg).arbitrate(&reqs);
                    let pr = ProportionalBus {
                        capacity: cfg.capacity_tx_per_us,
                    }
                    .arbitrate(&reqs);
                    for alt in [&mm, &pr] {
                        for (f, a) in fsb.shares.iter().zip(&alt.shares) {
                            prop_assert!(
                                (f.speed - a.speed).abs() <= tol,
                                "fsb {} vs alt {} (tol {tol})",
                                f.speed,
                                a.speed
                            );
                        }
                    }
                }
            }

            /// Max-min fair never issues more than effective capacity,
            /// saturated or not: each thread's traffic is capped by its
            /// grant and grants sum to ≤ capacity.
            #[test]
            fn max_min_bus_never_exceeds_capacity(reqs in arb_reqs()) {
                let out = MaxMinFairBus::new(BusConfig::default()).arbitrate(&reqs);
                prop_assert!(
                    out.total_issued <= out.effective_capacity + 1e-9,
                    "issued {} vs cap {}",
                    out.total_issued,
                    out.effective_capacity
                );
            }

            /// Proportional sharing conserves capacity for fully
            /// memory-bound threads (µ = 1 ⇒ issue = rate/λ, Σ = min(ΣD, C)).
            #[test]
            fn proportional_bus_full_mu_never_exceeds_capacity(mut reqs in arb_reqs()) {
                for r in &mut reqs {
                    r.mu = 1.0;
                }
                let cap = BusConfig::default().capacity_tx_per_us;
                let out = ProportionalBus { capacity: cap }.arbitrate(&reqs);
                prop_assert!(
                    out.total_issued <= cap + 1e-9,
                    "issued {} vs cap {cap}",
                    out.total_issued
                );
            }
        }
    }
}
