//! The shared front-side bus.
//!
//! All results in the paper flow from one physical fact: the bus serves at
//! most ~29.5 transactions/µs, and threads that collectively demand more
//! stall each other. This module turns a set of per-thread demands into
//! per-thread *speeds* and *issue rates* for one simulation tick.
//!
//! The default model, [`FsbBus`], works in terms of a **uniform memory
//! dilation factor Λ**: every thread's memory phases take Λ× longer than
//! solo. Given demands `d_i` and memory-boundness `µ_i`, a thread's speed is
//!
//! ```text
//! s_i = 1 / ((1 − µ_i) + µ_i·Λ)          (Amdahl-style dilation)
//! issue_i = d_i · s_i                     (traffic tracks progress)
//! ```
//!
//! * Below saturation Λ = 1 + κ·ρ^p — a mild convex queueing penalty in the
//!   bus-utilization ρ (the paper's Fig. 1B shows moderate applications
//!   losing a few percent when sharing an unsaturated bus).
//! * At saturation Λ is the root of `Σ d_i / ((1−µ_i) + µ_i·Λ) = C_eff`,
//!   so aggregate issued traffic exactly equals effective capacity: the
//!   bus is conserved, and bandwidth is shared in proportion to demand —
//!   the behaviour of a round-robin arbiter among continuously-stalled
//!   masters, and the regime in which the paper measures 2–3× slowdowns
//!   for memory-intensive applications running against BBMA.
//! * `C_eff` shrinks slightly per active master (arbitration overhead),
//!   see [`crate::BusConfig::effective_capacity`].
//!
//! Two alternative arbiters ([`MaxMinFairBus`], [`ProportionalBus`]) and a
//! null model ([`UnlimitedBus`]) exist for ablations and testing.

use crate::config::{BusConfig, TopologyConfig};
use crate::ids::ThreadId;

/// One thread's demand presented to the bus for a tick.
///
/// `PartialEq` compares the raw fields bitwise-style (`f64` equality);
/// [`FsbBus`] uses it to detect an unchanged demand set and skip the Λ
/// solve entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusRequest {
    /// The requesting thread.
    pub thread: ThreadId,
    /// Effective solo demand for this tick, tx/µs (cache-cold boosts
    /// already applied by the machine).
    pub rate: f64,
    /// Memory-boundness in `[0, 1]`.
    pub mu: f64,
    /// The socket the thread is executing on this tick. Single-level
    /// models ([`FsbBus`] and the ablation arbiters) ignore it; a
    /// [`HierarchicalBus`] charges this socket's local bus.
    pub socket: usize,
    /// Fraction of this thread's traffic that also crosses the
    /// cross-socket interconnect (see
    /// [`crate::config::TopologyConfig::remote_share`]). 0 on a
    /// single-socket machine.
    pub remote: f64,
}

/// The bus's answer for one thread.
#[derive(Debug, Clone, Copy)]
pub struct BusShare {
    /// The thread.
    pub thread: ThreadId,
    /// Speed factor in `(0, 1]` relative to solo execution.
    pub speed: f64,
    /// Transactions/µs actually issued (`rate × speed`).
    pub issue_rate: f64,
}

/// The bus's answer for a whole tick.
#[derive(Debug, Clone)]
pub struct BusOutcome {
    /// Per-thread shares, in the order of the requests.
    pub shares: Vec<BusShare>,
    /// Σ demands, tx/µs.
    pub total_demand: f64,
    /// Σ issued, tx/µs.
    pub total_issued: f64,
    /// Effective capacity after arbitration derating, tx/µs.
    pub effective_capacity: f64,
    /// The uniform memory-dilation factor Λ applied (1 = uncontended).
    pub dilation: f64,
    /// Utilization ρ = min(total_demand / effective_capacity, 1).
    pub utilization: f64,
    /// Whether demand exceeded effective capacity.
    pub saturated: bool,
}

impl BusOutcome {
    /// An outcome with no requests (idle bus).
    pub fn empty(capacity: f64) -> Self {
        Self {
            shares: Vec::new(),
            total_demand: 0.0,
            total_issued: 0.0,
            effective_capacity: capacity,
            dilation: 1.0,
            utilization: 0.0,
            saturated: false,
        }
    }

    /// Reset to the idle state in place, keeping the `shares` allocation.
    fn reset(&mut self, capacity: f64) {
        self.shares.clear();
        self.total_demand = 0.0;
        self.total_issued = 0.0;
        self.effective_capacity = capacity;
        self.dilation = 1.0;
        self.utilization = 0.0;
        self.saturated = false;
    }
}

/// The state of one topology level (a socket's local bus, or the
/// cross-socket interconnect) after an arbitration. Exposed by
/// [`BusModel::levels`] so the machine can account per-level pressure
/// without downcasting the boxed model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelOutcome {
    /// Σ demand charged to this level, tx/µs (interconnect demand is
    /// already scaled by each request's remote fraction).
    pub demand: f64,
    /// Σ traffic actually issued through this level, tx/µs.
    pub issued: f64,
    /// Effective capacity of this level for this request set, tx/µs.
    pub effective_capacity: f64,
    /// The dilation Λ this level imposes on the requests crossing it.
    pub dilation: f64,
    /// Utilization ρ = min(demand / effective_capacity, 1).
    pub utilization: f64,
    /// Whether demand charged to this level exceeded its capacity.
    pub saturated: bool,
}

/// The largest number of topology levels tracked per-level in fixed-size
/// accounting ([`crate::stats::RunStats`] arrays): 4 sockets + the
/// interconnect. Wider topologies still simulate correctly; levels past
/// this many fold into the last accounting slot.
pub const MAX_BUS_LEVELS: usize = 5;

/// A bus arbitration model.
///
/// `&mut self` lets models keep scratch buffers and memoized solver state
/// between ticks. Models must stay deterministic: the same sequence of
/// calls since construction must yield the same outcomes, which the
/// machine's run-to-run reproducibility depends on. (Warm-started solvers
/// may give ulp-level different answers for the same request set under a
/// different call history; that is fine, history replays identically.)
pub trait BusModel: Send {
    /// Resolve one tick's demands into `out`, reusing its allocations.
    /// Implementations must fully overwrite `out` (including clearing
    /// `shares`).
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome);

    /// Resolve one tick's demands into a fresh outcome (convenience).
    fn arbitrate(&mut self, reqs: &[BusRequest]) -> BusOutcome {
        let mut out = BusOutcome::empty(self.nominal_capacity());
        self.arbitrate_into(reqs, &mut out);
        out
    }

    /// Split-phase arbitration, part 1: do everything *except* the
    /// iterative Λ solve. When the request set needs one, the pending
    /// problem is returned as a [`SolveJob`] and `out` is left incomplete
    /// until [`BusModel::finish_solve`] is called with the solution —
    /// which the caller may obtain either from [`solve_lambda`] directly
    /// or from a [`BatchSolver`] lane shared with other machines.
    ///
    /// The default implementation simply runs [`BusModel::arbitrate_into`]
    /// and reports that no solve is pending, so models without an
    /// iterative solve need not opt in.
    fn begin(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) -> Option<SolveJob> {
        self.arbitrate_into(reqs, out);
        None
    }

    /// Split-phase arbitration, part 2: complete the outcome with the
    /// solved saturation dilation. Only called after [`BusModel::begin`]
    /// returned a [`SolveJob`], with `lambda_sat` equal (bit-for-bit) to
    /// what [`solve_lambda`] yields on that job; models whose `begin`
    /// never returns a job never see this call.
    fn finish_solve(&mut self, reqs: &[BusRequest], lambda_sat: f64, out: &mut BusOutcome) {
        let _ = (reqs, lambda_sat, out);
        unreachable!("finish_solve called on a bus model whose begin() never requests a solve");
    }

    /// Nominal (single-master) sustained capacity, tx/µs.
    fn nominal_capacity(&self) -> f64;

    /// Memoization counters `(hits, misses)` for models that cache their
    /// Λ solve, `None` for models without a memo. Lets run manifests
    /// report the memo hit rate without downcasting through
    /// `Box<dyn BusModel>`.
    fn memo_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Per-level outcomes of the most recent arbitration, in a fixed
    /// order (sockets 0.., then the interconnect last). Single-level
    /// models return the empty slice, which the machine reads as "no
    /// per-level accounting".
    fn levels(&self) -> &[LevelOutcome] {
        &[]
    }
}

/// Amdahl-style dilation speed at dilation Λ.
#[inline]
fn dilated_speed(mu: f64, lambda: f64) -> f64 {
    1.0 / ((1.0 - mu) + mu * lambda)
}

/// Ceiling on the saturation dilation: returned when the request set is
/// physically inconsistent (λ-insensitive demand above capacity) or the
/// Newton step diverges past any meaningful dilation.
const LAMBDA_MAX: f64 = 1e9;

/// One pending saturated-Λ root solve, extracted by [`BusModel::begin`]:
/// everything [`solve_lambda`] needs besides the request slice itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveJob {
    /// Effective bus capacity for this request set, tx/µs.
    pub cap: f64,
    /// Warm-start λ — the owning model's previous solution (≤ 1 or
    /// non-finite values fall back to the cold start at λ = 1).
    pub warm: f64,
}

/// Solve `Σ d_i/((1−µ_i)+µ_i·λ) = cap` for the saturation dilation λ ≥ 1.
///
/// The left side `f(λ)` is strictly decreasing and convex in λ for any
/// thread with µ > 0, so Newton's method started left of the root
/// converges monotonically (tangents of a convex function never overshoot
/// the root from the left) and quadratically — typically 3–6 iterations,
/// fewer when `warm` (the previous tick's λ) is still left of the root.
///
/// Edge cases, each pinned by a unit test below:
/// * **Empty or all-zero-rate request sets** never exceed capacity, so
///   `f(1) ≤ 0` and the cold start λ = 1 is returned unchanged.
/// * **All-µ = 0 demand above capacity** is λ-insensitive (`f' = 0`
///   everywhere): no dilation can shed it, so [`LAMBDA_MAX`] is returned
///   and conservation is best-effort.
/// * **Exactly saturated** demand (`Σ dᵢ = cap` at λ = 1) has its root at
///   the left boundary: the first iteration sees `f(1) = 0` and returns
///   λ = 1 without stepping.
/// * **A single fully memory-bound thread** (µ = 1, rate = k·cap)
///   degenerates to `d/λ = cap` with the exact root λ = k; Newton reaches
///   it in one step from any warm start left of the root.
///
/// Bit-determinism: the result depends only on `(reqs, cap, warm)` — the
/// request iteration order and every arithmetic operation are fixed — so
/// a [`BatchSolver`] lane running the same op sequence reproduces this
/// function bit-for-bit.
pub fn solve_lambda(reqs: &[BusRequest], cap: f64, warm: f64) -> f64 {
    let n = reqs.len();
    if n <= SOLVE_INLINE_LANES {
        // Hot sizes (one request per cpu) are unpacked once into dense
        // stack lanes with the `1 − µ` term hoisted out of the Newton
        // evaluations. Bit-identical to the general path: the same
        // subtraction, performed once instead of once per evaluation.
        let mut rate = [0.0f64; SOLVE_INLINE_LANES];
        let mut mu = [0.0f64; SOLVE_INLINE_LANES];
        let mut one_minus_mu = [0.0f64; SOLVE_INLINE_LANES];
        for (i, r) in reqs.iter().enumerate() {
            rate[i] = r.rate;
            mu[i] = r.mu;
            one_minus_mu[i] = 1.0 - r.mu;
        }
        newton(
            |lambda| lanes_f_and_slope(&rate[..n], &mu[..n], &one_minus_mu[..n], cap, lambda),
            warm,
        )
    } else {
        newton(
            |lambda| {
                let mut f = -cap;
                let mut fp = 0.0;
                for r in reqs {
                    let denom = (1.0 - r.mu) + r.mu * lambda;
                    let term = r.rate / denom;
                    f += term;
                    fp -= term * r.mu / denom;
                }
                (f, fp)
            },
            warm,
        )
    }
}

/// Request sets up to this size solve over stack-allocated SoA lanes; one
/// request per cpu means real machines sit far below it.
const SOLVE_INLINE_LANES: usize = 16;

/// The shared Newton iteration of [`solve_lambda`] and (lane by lane)
/// [`BatchSolver::solve_all`]: `eval` returns `(f, f')` at a trial λ.
///
/// The accepted-warm-start evaluation is reused for the first iteration —
/// the values are the ones the first loop pass would recompute at the same
/// λ, so the iterate sequence (and thus the result) is unchanged while the
/// hot path saves one full evaluation per warm-started solve.
fn newton(mut eval: impl FnMut(f64) -> (f64, f64), warm: f64) -> f64 {
    let mut lambda = 1.0;
    let mut cached = None;
    if warm > 1.0 && warm.is_finite() {
        let e = eval(warm);
        if e.0 > 0.0 {
            lambda = warm;
            cached = Some(e);
        }
    }
    for _ in 0..64 {
        let (f, fp) = match cached.take() {
            Some(e) => e,
            None => eval(lambda),
        };
        if f <= 0.0 {
            // At (or an ulp past) the root.
            break;
        }
        if fp >= 0.0 {
            // Demand is λ-insensitive (all µ = 0) yet above capacity.
            return LAMBDA_MAX;
        }
        let next = lambda - f / fp;
        if next > LAMBDA_MAX {
            return LAMBDA_MAX;
        }
        // Converged to machine precision (also catches a NaN step,
        // which compares as not-greater).
        if next.partial_cmp(&lambda) != Some(std::cmp::Ordering::Greater) {
            break;
        }
        lambda = next;
    }
    lambda
}

/// Memoized result of one [`FsbBus`] arbitration: everything that is
/// expensive to recompute, keyed by the exact request sequence.
#[derive(Debug, Clone, Default)]
struct FsbMemo {
    valid: bool,
    reqs: Vec<BusRequest>,
    cap: f64,
    total_demand: f64,
    utilization: f64,
    saturated: bool,
    lambda: f64,
}

/// The default front-side-bus model described in the module docs.
///
/// Between ticks the bus keeps the previous request set and its solved Λ:
/// an identical request sequence (the common case once caches are warm and
/// demands are phase-constant) reuses the previous solution outright, and
/// a changed set warm-starts the root solve from the previous Λ.
#[derive(Debug, Clone)]
pub struct FsbBus {
    cfg: BusConfig,
    memo: FsbMemo,
    memo_hits: u64,
    memo_misses: u64,
    // Memoized queueing power: `powf` costs as much as a whole Newton
    // evaluation and every saturated miss computes it at utilization
    // exactly 1.0 (ρ is clamped), so one (input, output) pair answers
    // nearly every call on the hot path.
    pow_u: f64,
    pow_v: f64,
}

impl FsbBus {
    /// A bus with the given configuration.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            memo: FsbMemo::default(),
            memo_hits: 0,
            memo_misses: 0,
            pow_u: f64::NAN,
            pow_v: f64::NAN,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Arbitrations answered from the unchanged-demand-set memo.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Arbitrations that ran the full solve.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Finish a miss: fold `lambda_sat` with the queueing term into the
    /// memo (marking it valid) and fill the outcome.
    fn complete(&mut self, reqs: &[BusRequest], lambda_sat: f64, out: &mut BusOutcome) {
        // Below saturation the queueing term provides the (small,
        // convex) contention penalty; at deep saturation λ_sat
        // dominates and taking the max keeps aggregate issued traffic
        // exactly at capacity instead of wasting it.
        let u = self.memo.utilization;
        if u != self.pow_u {
            // Miss: compute and remember. The exponent is fixed per bus,
            // so the pair keys on utilization alone; the reused value is
            // the exact `powf` result, keeping the fold bit-identical.
            self.pow_u = u;
            self.pow_v = u.powf(self.cfg.queueing_exponent);
        }
        let queueing = self.cfg.queueing_coeff * self.pow_v;
        self.memo.lambda = lambda_sat.max(1.0 + queueing);
        self.memo.valid = true;
        self.fill_outcome(reqs, out);
    }

    /// Rebuild `out` (shares and aggregates) from the memoized solution.
    fn fill_outcome(&self, reqs: &[BusRequest], out: &mut BusOutcome) {
        let lambda = self.memo.lambda;
        out.shares.clear();
        let mut total_issued = 0.0;
        for r in reqs {
            let speed = dilated_speed(r.mu, lambda);
            let issue_rate = r.rate * speed;
            total_issued += issue_rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        out.total_demand = self.memo.total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = self.memo.cap;
        out.dilation = lambda;
        out.utilization = self.memo.utilization;
        out.saturated = self.memo.saturated;
    }
}

impl BusModel for FsbBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        if let Some(job) = self.begin(reqs, out) {
            let lambda_sat = solve_lambda(reqs, job.cap, job.warm);
            self.finish_solve(reqs, lambda_sat, out);
        }
    }

    fn begin(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) -> Option<SolveJob> {
        if reqs.is_empty() {
            out.reset(self.cfg.capacity_tx_per_us);
            return None;
        }
        if self.memo.valid && self.memo.reqs == reqs {
            self.memo_hits += 1;
            self.fill_outcome(reqs, out);
            return None;
        }
        // Full solve; remember everything for the next tick. One fused
        // pass counts active masters and sums demand (the sum's addition
        // order is the request order either way).
        self.memo_misses += 1;
        let mut n_masters = 0usize;
        let mut total_demand = 0.0f64;
        for r in reqs {
            if r.rate > self.cfg.active_master_threshold {
                n_masters += 1;
            }
            total_demand += r.rate;
        }
        let cap = self.cfg.effective_capacity(n_masters);
        let utilization = (total_demand / cap).min(1.0);
        let saturated = total_demand > cap;
        // The warm start is the *previous* solution; read it before the
        // memo is repurposed for the new request set.
        let warm = self.memo.lambda;
        self.memo.reqs.clear();
        self.memo.reqs.extend_from_slice(reqs);
        self.memo.cap = cap;
        self.memo.total_demand = total_demand;
        self.memo.utilization = utilization;
        self.memo.saturated = saturated;
        self.memo.valid = false;
        if saturated {
            return Some(SolveJob { cap, warm });
        }
        self.complete(reqs, 1.0, out);
        None
    }

    fn finish_solve(&mut self, reqs: &[BusRequest], lambda_sat: f64, out: &mut BusOutcome) {
        self.complete(reqs, lambda_sat, out);
    }

    fn nominal_capacity(&self) -> f64 {
        self.cfg.capacity_tx_per_us
    }

    fn memo_stats(&self) -> Option<(u64, u64)> {
        Some((self.memo_hits, self.memo_misses))
    }
}

/// Evaluate f(λ) = Σ dᵢ/(aᵢ + bᵢλ) − cap and its derivative over one SoA
/// lane whose `1 − µ` terms are precomputed. Same iteration order and op
/// sequence as the general path inside [`solve_lambda`] (the hoisted
/// subtraction yields the identical value), so the two are bit-identical.
/// Dense `f64` lanes with no per-element branches keep the loop open to
/// autovectorization.
#[inline]
fn lanes_f_and_slope(
    rate: &[f64],
    mu: &[f64],
    one_minus_mu: &[f64],
    cap: f64,
    lambda: f64,
) -> (f64, f64) {
    let mut f = -cap;
    let mut fp = 0.0;
    for ((d, m), a) in rate.iter().zip(mu.iter()).zip(one_minus_mu.iter()) {
        let denom = a + m * lambda;
        let term = d / denom;
        f += term;
        fp -= term * m / denom;
    }
    (f, fp)
}

/// A batch of independent saturated-Λ solves in structure-of-arrays form.
///
/// Hundreds of sweep cells run the same machine model over disjoint
/// request sets; each saturated tick of each cell is one [`SolveJob`].
/// Instead of solving them one call at a time, the batched engine
/// ([`Engine::execute_batched`] in the experiments crate) collects one
/// pending job per machine into a `BatchSolver` and runs a single
/// Newton-iteration stream across all lanes: the per-lane `(rate, µ)`
/// vectors are laid out back to back in two flat `f64` arrays, the outer
/// loop advances every still-active lane by one Newton step per pass, and
/// the inner residual loop is a branch-free multiply/divide chain over
/// contiguous lanes the compiler can auto-vectorize.
///
/// Two guarantees hold by construction:
/// * **Bit identity** — each lane performs exactly the op sequence of
///   [`solve_lambda`] on its own slice (same start-point rule, same
///   termination tests in the same order), so `lambda(lane)` equals the
///   scalar result bit-for-bit. A proptest below pins this.
/// * **Warm-start isolation** — each lane carries the warm start of the
///   machine that spawned it; lanes never contaminate each other's
///   Newton chains.
///
/// Identical problems are deduplicated through a cross-batch memo keyed
/// by the full problem content `(cap, warm, rates, µs)` — the "shared
/// warm-start memo": a sweep whose cells revisit the same saturated
/// demand mix (the common case across seeds and policies) solves each
/// distinct problem once per engine rather than once per cell.
#[derive(Debug, Default)]
pub struct BatchSolver {
    /// All lanes' demand rates, concatenated.
    rate: Vec<f64>,
    /// All lanes' memory-boundness values, concatenated (parallel to
    /// `rate`).
    mu: Vec<f64>,
    /// All lanes' `1 − µ` terms, concatenated (parallel to `rate`),
    /// hoisted out of the Newton evaluations.
    one_minus_mu: Vec<f64>,
    /// Per-lane offset into the flat arrays.
    off: Vec<usize>,
    /// Per-lane request count.
    len: Vec<usize>,
    /// Per-lane effective capacity.
    cap: Vec<f64>,
    /// Per-lane warm start.
    warm: Vec<f64>,
    /// Per-lane solution (valid after [`BatchSolver::solve_all`]).
    lambda: Vec<f64>,
    /// Per-lane content key for the memo.
    key: Vec<(u64, u64)>,
    /// Still-iterating mask during `solve_all`.
    active: Vec<bool>,
    /// Within-batch aliases: lane i copies lane `alias[i]`'s solution.
    alias: Vec<Option<usize>>,
    /// Cross-batch solution memo: problem content → λ. Survives
    /// [`BatchSolver::clear`] so later batches reuse earlier solves.
    memo: std::collections::HashMap<(u64, u64), f64>,
    /// Lanes answered from the memo (for diagnostics and tests).
    memo_hits: u64,
    /// Lanes that ran Newton iterations.
    solves: u64,
}

impl BatchSolver {
    /// An empty batch with an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all lanes, keeping the cross-batch memo and allocations.
    pub fn clear(&mut self) {
        self.rate.clear();
        self.mu.clear();
        self.one_minus_mu.clear();
        self.off.clear();
        self.len.clear();
        self.cap.clear();
        self.warm.clear();
        self.lambda.clear();
        self.key.clear();
        self.active.clear();
        self.alias.clear();
    }

    /// Number of queued lanes.
    pub fn lanes(&self) -> usize {
        self.off.len()
    }

    /// True when no lane is queued.
    pub fn is_empty(&self) -> bool {
        self.off.is_empty()
    }

    /// Lanes answered from the cross-batch memo so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Lanes that ran the Newton stream so far.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Queue one solve; returns the lane index to pass to
    /// [`BatchSolver::lambda`] after [`BatchSolver::solve_all`].
    pub fn push_lane(&mut self, reqs: &[BusRequest], job: SolveJob) -> usize {
        let lane = self.off.len();
        self.off.push(self.rate.len());
        self.len.push(reqs.len());
        for r in reqs {
            self.rate.push(r.rate);
            self.mu.push(r.mu);
            self.one_minus_mu.push(1.0 - r.mu);
        }
        self.cap.push(job.cap);
        self.warm.push(job.warm);
        self.lambda.push(1.0);
        self.key.push(lane_key(reqs, job));
        lane
    }

    /// Solve every queued lane. One outer pass advances each still-active
    /// lane by one Newton step; lanes retire individually on the same
    /// conditions as [`solve_lambda`].
    pub fn solve_all(&mut self) {
        let n = self.off.len();
        self.active.clear();
        self.active.resize(n, false);
        self.alias.clear();
        self.alias.resize(n, None);
        let mut pending: std::collections::HashMap<(u64, u64), usize> =
            std::collections::HashMap::new();
        // Start-point selection, scalar rule per lane; memo short-circuit.
        for i in 0..n {
            if let Some(&l) = self.memo.get(&self.key[i]) {
                self.lambda[i] = l;
                self.memo_hits += 1;
                continue;
            }
            // Identical problem already queued in this batch: solve once,
            // copy the bits afterwards.
            if let Some(&first) = pending.get(&self.key[i]) {
                self.alias[i] = Some(first);
                self.memo_hits += 1;
                continue;
            }
            pending.insert(self.key[i], i);
            self.solves += 1;
            let (rate, mu, a) = self.lane(i);
            let warm = self.warm[i];
            self.lambda[i] = if warm > 1.0
                && warm.is_finite()
                && lanes_f_and_slope(rate, mu, a, self.cap[i], warm).0 > 0.0
            {
                warm
            } else {
                1.0
            };
            self.active[i] = true;
        }
        // The shared iteration stream: 64 passes max, exactly the scalar
        // iteration budget.
        for _ in 0..64 {
            let mut any = false;
            for i in 0..n {
                if !self.active[i] {
                    continue;
                }
                let (o, l) = (self.off[i], self.len[i]);
                let (f, fp) = lanes_f_and_slope(
                    &self.rate[o..o + l],
                    &self.mu[o..o + l],
                    &self.one_minus_mu[o..o + l],
                    self.cap[i],
                    self.lambda[i],
                );
                if f <= 0.0 {
                    self.active[i] = false;
                    continue;
                }
                if fp >= 0.0 {
                    self.lambda[i] = LAMBDA_MAX;
                    self.active[i] = false;
                    continue;
                }
                let next = self.lambda[i] - f / fp;
                if next > LAMBDA_MAX {
                    self.lambda[i] = LAMBDA_MAX;
                    self.active[i] = false;
                    continue;
                }
                if next.partial_cmp(&self.lambda[i]) != Some(std::cmp::Ordering::Greater) {
                    self.active[i] = false;
                    continue;
                }
                self.lambda[i] = next;
                any = true;
            }
            if !any {
                break;
            }
        }
        for i in 0..n {
            if let Some(first) = self.alias[i] {
                self.lambda[i] = self.lambda[first];
            }
            self.memo.insert(self.key[i], self.lambda[i]);
        }
    }

    /// The solution of one lane (call after [`BatchSolver::solve_all`]).
    pub fn lambda(&self, lane: usize) -> f64 {
        self.lambda[lane]
    }

    fn lane(&self, i: usize) -> (&[f64], &[f64], &[f64]) {
        let (o, l) = (self.off[i], self.len[i]);
        (
            &self.rate[o..o + l],
            &self.mu[o..o + l],
            &self.one_minus_mu[o..o + l],
        )
    }
}

/// Content key of one solve problem: two independent 64-bit hashes over
/// the bit patterns of `(cap, warm, rate₀, µ₀, rate₁, µ₁, …)`. Thread ids
/// are deliberately excluded — they do not enter the root solve. Two
/// hashes make an accidental collision (which would silently alias two
/// different problems in the memo) astronomically unlikely.
fn lane_key(reqs: &[BusRequest], job: SolveJob) -> (u64, u64) {
    let mut a: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
    let mut b: u64 = 0x9e3779b97f4a7c15; // splitmix64 increment
    let mut mix = |word: u64| {
        a = (a ^ word).wrapping_mul(0x100000001b3);
        b = b.wrapping_add(word);
        let mut z = b;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        b = z ^ (z >> 31);
    };
    mix(job.cap.to_bits());
    mix(job.warm.to_bits());
    for r in reqs {
        mix(r.rate.to_bits());
        mix(r.mu.to_bits());
    }
    (a, b)
}

/// A multi-socket bus topology: N sockets, each with its own local bus
/// (parameterized by the same [`BusConfig`] as [`FsbBus`]), joined by a
/// shared cross-socket interconnect.
///
/// A request charges every level it crosses: its full rate on the local
/// bus of the socket it executes on, and `remote × rate` on the
/// interconnect. Λ is solved **per level** — each level is literally an
/// [`FsbBus`] (same arbitration derate, saturated [`solve_lambda`] root
/// with a per-level warm-start memo, sub-saturation queueing penalty; the
/// interconnect level zeroes the per-master derate, a point-to-point link
/// does not re-arbitrate per master) — and a thread's grant is the min
/// across the levels it touches: its effective dilation is
/// `max(Λ_local(socket), Λ_interconnect if remote > 0)`.
///
/// **Degenerate case**: at one socket every request is local (the machine
/// derives `remote = 0`), level 0 receives exactly the request sequence a
/// bare [`FsbBus`] would, and the final per-thread speeds re-run the same
/// `dilated_speed` fold — so the outcome is bit-identical to [`FsbBus`],
/// memo behaviour included. A differential test below pins this; the
/// machine still instantiates the bare [`FsbBus`] for single-socket
/// configs, so the equivalence is a proven invariant rather than a
/// load-bearing path.
#[derive(Debug)]
pub struct HierarchicalBus {
    cfg: BusConfig,
    topo: TopologyConfig,
    /// One solver per level: sockets `0..N`, then the interconnect.
    level_bus: Vec<FsbBus>,
    /// Per-socket request scratch, rebuilt each arbitration.
    local: Vec<Vec<BusRequest>>,
    /// Interconnect request scratch (rates pre-scaled by `remote`).
    inter: Vec<BusRequest>,
    /// Per-level outcome scratch.
    level_out: Vec<BusOutcome>,
    /// Per-level summaries of the last arbitration (sockets, then
    /// interconnect), exposed through [`BusModel::levels`].
    levels: Vec<LevelOutcome>,
}

impl HierarchicalBus {
    /// A hierarchical bus over `topo` whose per-socket local buses use
    /// `cfg` (the interconnect inherits the queueing shape but uses the
    /// topology's capacity and no per-master derate).
    pub fn new(cfg: BusConfig, topo: TopologyConfig) -> Self {
        let sockets = topo.sockets.max(1);
        let inter_cfg = BusConfig {
            capacity_tx_per_us: topo.interconnect_tx_per_us,
            arbitration_per_master: 0.0,
            ..cfg
        };
        let mut level_bus: Vec<FsbBus> = (0..sockets).map(|_| FsbBus::new(cfg)).collect();
        level_bus.push(FsbBus::new(inter_cfg));
        let n_levels = sockets + 1;
        Self {
            cfg,
            topo,
            level_bus,
            local: vec![Vec::new(); sockets],
            inter: Vec::new(),
            level_out: (0..n_levels)
                .map(|_| BusOutcome::empty(cfg.capacity_tx_per_us))
                .collect(),
            levels: vec![LevelOutcome::default(); n_levels],
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &TopologyConfig {
        &self.topo
    }

    /// Number of levels: sockets + 1 (interconnect last).
    pub fn n_levels(&self) -> usize {
        self.level_bus.len()
    }
}

impl BusModel for HierarchicalBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        let sockets = self.local.len();
        for l in &mut self.local {
            l.clear();
        }
        self.inter.clear();
        for r in reqs {
            self.local[r.socket.min(sockets - 1)].push(*r);
            if r.remote > 0.0 {
                self.inter.push(BusRequest {
                    rate: r.rate * r.remote,
                    ..*r
                });
            }
        }
        // Solve each level independently (sockets in index order, then
        // the interconnect) — fixed iteration order keeps the model
        // deterministic and each level's FsbBus memo coherent.
        for k in 0..sockets {
            let (bus, slot) = (&mut self.level_bus[k], &mut self.level_out[k]);
            bus.arbitrate_into(&self.local[k], slot);
            self.levels[k] = LevelOutcome {
                demand: slot.total_demand,
                issued: 0.0, // re-folded below at the final per-thread speeds
                effective_capacity: slot.effective_capacity,
                dilation: slot.dilation,
                utilization: slot.utilization,
                saturated: slot.saturated,
            };
        }
        {
            let (bus, slot) = (&mut self.level_bus[sockets], &mut self.level_out[sockets]);
            bus.arbitrate_into(&self.inter, slot);
            self.levels[sockets] = LevelOutcome {
                demand: slot.total_demand,
                issued: 0.0,
                effective_capacity: slot.effective_capacity,
                dilation: slot.dilation,
                utilization: slot.utilization,
                saturated: slot.saturated,
            };
        }
        let lambda_inter = self.levels[sockets].dilation;
        // Final fold, in request order: each thread is dilated by the
        // worst level it touches, and issued traffic is re-attributed to
        // every level it crosses at that final speed.
        out.shares.clear();
        let mut total_demand = 0.0;
        let mut total_issued = 0.0;
        for r in reqs {
            let socket = r.socket.min(sockets - 1);
            let mut lambda = self.levels[socket].dilation;
            if r.remote > 0.0 && lambda_inter > lambda {
                lambda = lambda_inter;
            }
            let speed = dilated_speed(r.mu, lambda);
            let issue_rate = r.rate * speed;
            total_demand += r.rate;
            total_issued += issue_rate;
            self.levels[socket].issued += issue_rate;
            if r.remote > 0.0 {
                self.levels[sockets].issued += issue_rate * r.remote;
            }
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        // Whole-machine summary: capacity is the sum of the local-bus
        // ceilings (the interconnect constrains a subset, it adds no
        // issue capacity); dilation/utilization/saturation report the
        // bottleneck level.
        let mut cap = 0.0;
        let mut dilation = 1.0f64;
        let mut utilization = 0.0f64;
        let mut saturated = false;
        for (k, lvl) in self.levels.iter().enumerate() {
            if k < sockets {
                cap += lvl.effective_capacity;
            }
            dilation = dilation.max(lvl.dilation);
            utilization = utilization.max(lvl.utilization);
            saturated |= lvl.saturated;
        }
        out.total_demand = total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = cap;
        out.dilation = dilation;
        out.utilization = utilization;
        out.saturated = saturated;
    }

    fn nominal_capacity(&self) -> f64 {
        self.cfg.capacity_tx_per_us * self.local.len() as f64
    }

    fn memo_stats(&self) -> Option<(u64, u64)> {
        let mut hits = 0;
        let mut misses = 0;
        for b in &self.level_bus {
            hits += b.memo_hits();
            misses += b.memo_misses();
        }
        Some((hits, misses))
    }

    fn levels(&self) -> &[LevelOutcome] {
        &self.levels
    }
}

/// Classic max-min fair arbitration (ablation alternative).
///
/// Small demands are fully satisfied; the surplus is split equally among
/// larger ones. Compared with [`FsbBus`], this under-penalizes heavy
/// streamers (they keep an equal absolute share rather than a
/// demand-proportional one), which is why the paper-calibrated default is
/// the proportional model — but a max-min arbiter is what an idealized
/// per-request round-robin with single outstanding misses would give, so it
/// is worth keeping for sensitivity studies.
#[derive(Debug, Clone, Default)]
pub struct MaxMinFairBus {
    cfg: BusConfig,
    // Scratch reused across ticks to keep the hot path allocation-free.
    demands: Vec<f64>,
    grants: Vec<f64>,
}

impl MaxMinFairBus {
    /// A max-min bus with the given configuration.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            demands: Vec::new(),
            grants: Vec::new(),
        }
    }

    /// Max-min allocation of `cap` over `demands`. Returns grants.
    pub fn max_min(demands: &[f64], cap: f64) -> Vec<f64> {
        let mut grants = vec![0.0f64; demands.len()];
        let mut remaining_cap = cap;
        let mut unsatisfied: Vec<usize> = (0..demands.len()).collect();
        // Iteratively give everyone the fair share or their demand,
        // whichever is smaller; redistribute the slack.
        while !unsatisfied.is_empty() && remaining_cap > 1e-12 {
            let fair = remaining_cap / unsatisfied.len() as f64;
            let mut satisfied_any = false;
            let mut still = Vec::with_capacity(unsatisfied.len());
            for &i in &unsatisfied {
                let want = demands[i] - grants[i];
                if want <= fair {
                    grants[i] = demands[i];
                    remaining_cap -= want;
                    satisfied_any = true;
                } else {
                    still.push(i);
                }
            }
            if !satisfied_any {
                // Nobody can be fully satisfied: split equally and stop.
                let fair = remaining_cap / still.len() as f64;
                for &i in &still {
                    grants[i] += fair;
                }
                remaining_cap = 0.0;
                still.clear();
            }
            unsatisfied = still;
        }
        grants
    }
}

impl BusModel for MaxMinFairBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        if reqs.is_empty() {
            out.reset(self.cfg.capacity_tx_per_us);
            return;
        }
        let n_masters = reqs
            .iter()
            .filter(|r| r.rate > self.cfg.active_master_threshold)
            .count();
        let cap = self.cfg.effective_capacity(n_masters);
        self.demands.clear();
        self.demands.extend(reqs.iter().map(|r| r.rate));
        let total_demand: f64 = self.demands.iter().sum();
        self.grants = Self::max_min(&self.demands, cap);
        let saturated = total_demand > cap;
        out.shares.clear();
        let mut total_issued = 0.0;
        for (r, &g) in reqs.iter().zip(&self.grants) {
            let lambda_i = if g >= r.rate || r.rate <= 0.0 {
                1.0
            } else {
                r.rate / g.max(1e-12)
            };
            let speed = dilated_speed(r.mu, lambda_i);
            // Traffic tracks progress but can never exceed the grant.
            let issue_rate = (r.rate * speed).min(g.max(r.rate.min(g)));
            total_issued += issue_rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        out.total_demand = total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = cap;
        out.dilation = if saturated { total_demand / cap } else { 1.0 };
        out.utilization = (total_demand / cap).min(1.0);
        out.saturated = saturated;
    }

    fn nominal_capacity(&self) -> f64 {
        self.cfg.capacity_tx_per_us
    }
}

/// Pure proportional sharing with no arbitration derate and no queueing —
/// the textbook version of [`FsbBus`] (equivalent to Λ = max(1, ΣD/C) with
/// every µ = 1). Useful as an analytical reference in tests.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalBus {
    /// Capacity in tx/µs.
    pub capacity: f64,
}

impl BusModel for ProportionalBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        if reqs.is_empty() {
            out.reset(self.capacity);
            return;
        }
        let total_demand: f64 = reqs.iter().map(|r| r.rate).sum();
        let lambda = (total_demand / self.capacity).max(1.0);
        out.shares.clear();
        let mut total_issued = 0.0;
        for r in reqs {
            let speed = dilated_speed(r.mu, lambda);
            let issue_rate = r.rate * speed;
            total_issued += issue_rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed,
                issue_rate,
            });
        }
        out.total_demand = total_demand;
        out.total_issued = total_issued;
        out.effective_capacity = self.capacity;
        out.dilation = lambda;
        out.utilization = (total_demand / self.capacity).min(1.0);
        out.saturated = total_demand > self.capacity;
    }

    fn nominal_capacity(&self) -> f64 {
        self.capacity
    }
}

/// A bus with infinite capacity: every thread runs at solo speed.
/// For unit-testing schedulers in isolation from contention.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnlimitedBus;

impl BusModel for UnlimitedBus {
    fn arbitrate_into(&mut self, reqs: &[BusRequest], out: &mut BusOutcome) {
        out.reset(f64::INFINITY);
        let mut total = 0.0;
        for r in reqs {
            total += r.rate;
            out.shares.push(BusShare {
                thread: r.thread,
                speed: 1.0,
                issue_rate: r.rate,
            });
        }
        out.total_demand = total;
        out.total_issued = total;
    }

    fn nominal_capacity(&self) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PAPER_BUS_TX_PER_US;

    fn req(id: u64, rate: f64, mu: f64) -> BusRequest {
        BusRequest {
            thread: ThreadId(id),
            rate,
            mu,
            socket: 0,
            remote: 0.0,
        }
    }

    fn default_fsb() -> FsbBus {
        FsbBus::new(BusConfig::default())
    }

    #[test]
    fn empty_request_set_is_trivial() {
        let out = default_fsb().arbitrate(&[]);
        assert_eq!(out.total_issued, 0.0);
        assert!(!out.saturated);
        assert!(out.shares.is_empty());
    }

    #[test]
    fn single_light_thread_runs_at_nearly_full_speed() {
        let out = default_fsb().arbitrate(&[req(0, 1.0, 0.2)]);
        assert!(!out.saturated);
        assert!(out.shares[0].speed > 0.999, "speed {}", out.shares[0].speed);
        assert!((out.shares[0].issue_rate - 1.0).abs() < 1e-2);
    }

    #[test]
    fn saturation_conserves_capacity_exactly_for_memory_bound_threads() {
        // Four pure streamers demanding 2× capacity.
        let mut bus = default_fsb();
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 1.0)).collect();
        let out = bus.arbitrate(&reqs);
        assert!(out.saturated);
        let cap = out.effective_capacity;
        assert!(
            (out.total_issued - cap).abs() < 1e-6 * cap,
            "issued {} vs cap {cap}",
            out.total_issued
        );
    }

    #[test]
    fn proportional_sharing_under_saturation() {
        // Equal µ ⇒ issue rates proportional to demands.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[req(0, 20.0, 1.0), req(1, 10.0, 1.0)]);
        assert!(out.saturated);
        let r0 = out.shares[0].issue_rate;
        let r1 = out.shares[1].issue_rate;
        assert!((r0 / r1 - 2.0).abs() < 1e-9, "ratio {}", r0 / r1);
    }

    #[test]
    fn low_mu_thread_is_nearly_immune_to_saturation() {
        // An nBBMA-like thread next to two heavy streamers.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[req(0, 23.6, 1.0), req(1, 23.6, 1.0), req(2, 0.004, 0.01)]);
        assert!(out.saturated);
        assert!(out.shares[2].speed > 0.97, "speed {}", out.shares[2].speed);
        // While the streamers are heavily dilated.
        assert!(out.shares[0].speed < 0.7);
    }

    #[test]
    fn cg_with_two_bbma_slows_two_to_three_fold() {
        // The paper's headline motivation: a memory-intensive app
        // (CG: ~11.7 tx/µs/thread, µ high) against two BBMA streamers
        // suffers a 2–3× slowdown.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[
            req(0, 11.65, 0.85),
            req(1, 11.65, 0.85),
            req(2, 23.6, 0.98),
            req(3, 23.6, 0.98),
        ]);
        let slowdown = 1.0 / out.shares[0].speed;
        assert!(
            (1.9..3.2).contains(&slowdown),
            "CG slowdown under BBMA pressure was {slowdown}"
        );
    }

    #[test]
    fn two_instances_of_heavy_app_lose_forty_to_seventy_percent() {
        // Fig 1B dark-gray shape: 2 instances × 2 threads of SP/MG/CG-class
        // applications degrade 41–61 %.
        let mut bus = default_fsb();
        for (rate, mu) in [(8.5, 0.75), (9.75, 0.8), (11.65, 0.85)] {
            let reqs: Vec<_> = (0..4).map(|i| req(i, rate, mu)).collect();
            let out = bus.arbitrate(&reqs);
            let slowdown = 1.0 / out.shares[0].speed;
            assert!(
                (1.25..1.95).contains(&slowdown),
                "rate {rate}: slowdown {slowdown}"
            );
        }
    }

    #[test]
    fn subsaturation_queueing_penalty_is_small_and_convex() {
        let mut bus = default_fsb();
        // Utilization ~40 %: negligible penalty.
        let low = bus.arbitrate(&[req(0, 6.0, 0.8), req(1, 6.0, 0.8)]);
        assert!(!low.saturated);
        assert!(low.shares[0].speed > 0.97);
        // Utilization ~90 %: a few percent.
        let high = bus.arbitrate(&[req(0, 13.0, 0.8), req(1, 13.0, 0.8)]);
        assert!(high.shares[0].speed < low.shares[0].speed);
        assert!(high.shares[0].speed > 0.75);
    }

    #[test]
    fn dilation_reduces_to_one_when_idle() {
        let out = default_fsb().arbitrate(&[req(0, 0.0, 0.0)]);
        assert!((out.dilation - 1.0).abs() < 1e-9);
        assert_eq!(out.shares[0].speed, 1.0);
    }

    #[test]
    fn lambda_solver_handles_mu_zero_threads() {
        // µ=0 threads contribute constant traffic; solver must not hang.
        let mut bus = default_fsb();
        let out = bus.arbitrate(&[req(0, 40.0, 1.0), req(1, 2.0, 0.0)]);
        assert!(out.saturated);
        assert!(out.total_issued <= out.effective_capacity + 2.0 + 1e-6);
    }

    #[test]
    fn max_min_allocation_properties() {
        let demands = vec![1.0, 5.0, 20.0, 30.0];
        let grants = MaxMinFairBus::max_min(&demands, PAPER_BUS_TX_PER_US);
        // Grants never exceed demands.
        for (g, d) in grants.iter().zip(&demands) {
            assert!(g <= d);
        }
        // Capacity fully used when total demand exceeds it.
        let total: f64 = grants.iter().sum();
        assert!((total - PAPER_BUS_TX_PER_US).abs() < 1e-9);
        // Small demand fully satisfied.
        assert!((grants[0] - 1.0).abs() < 1e-9);
        // The two large demands get equal shares.
        assert!((grants[2] - grants[3]).abs() < 1e-9);
    }

    #[test]
    fn max_min_under_capacity_grants_everything() {
        let demands = vec![3.0, 4.0];
        let grants = MaxMinFairBus::max_min(&demands, PAPER_BUS_TX_PER_US);
        assert_eq!(grants, demands);
    }

    #[test]
    fn unlimited_bus_never_slows_anyone() {
        let out = UnlimitedBus.arbitrate(&[req(0, 1e6, 1.0)]);
        assert_eq!(out.shares[0].speed, 1.0);
        assert!(!out.saturated);
    }

    #[test]
    fn proportional_bus_matches_fsb_without_overheads() {
        let cfg = BusConfig {
            arbitration_per_master: 0.0,
            queueing_coeff: 0.0,
            ..BusConfig::default()
        };
        let mut fsb = FsbBus::new(cfg);
        let mut prop = ProportionalBus {
            capacity: cfg.capacity_tx_per_us,
        };
        let reqs = [req(0, 25.0, 1.0), req(1, 25.0, 1.0)];
        let a = fsb.arbitrate(&reqs);
        let b = prop.arbitrate(&reqs);
        for (x, y) in a.shares.iter().zip(&b.shares) {
            assert!((x.speed - y.speed).abs() < 1e-9);
        }
    }

    #[test]
    fn unchanged_demand_set_reuses_memo_bit_identically() {
        let mut bus = default_fsb();
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 0.9)).collect();
        let a = bus.arbitrate(&reqs);
        assert_eq!((bus.memo_misses(), bus.memo_hits()), (1, 0));
        let b = bus.arbitrate(&reqs);
        assert_eq!((bus.memo_misses(), bus.memo_hits()), (1, 1));
        assert_eq!(a.dilation.to_bits(), b.dilation.to_bits());
        assert_eq!(a.total_issued.to_bits(), b.total_issued.to_bits());
        for (x, y) in a.shares.iter().zip(&b.shares) {
            assert_eq!(x.speed.to_bits(), y.speed.to_bits());
            assert_eq!(x.issue_rate.to_bits(), y.issue_rate.to_bits());
        }
        // Any change to the demand set falls back to the full solve.
        let mut reqs2 = reqs.clone();
        reqs2[0].rate += 1.0;
        bus.arbitrate(&reqs2);
        assert_eq!((bus.memo_misses(), bus.memo_hits()), (2, 1));
    }

    #[test]
    fn warm_started_solve_matches_cold_solve() {
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 0.9)).collect();
        let mut warm = default_fsb();
        // Seed the memo with a different saturated set so the next solve
        // warm-starts from its λ.
        warm.arbitrate(&[req(9, 40.0, 1.0), req(10, 40.0, 1.0)]);
        let w = warm.arbitrate(&reqs);
        let c = default_fsb().arbitrate(&reqs);
        assert!(
            (w.dilation - c.dilation).abs() <= 1e-12 * c.dilation,
            "warm {} vs cold {}",
            w.dilation,
            c.dilation
        );
    }

    // --- solve_lambda edge cases ------------------------------------

    #[test]
    fn solve_lambda_empty_and_zero_rate_requests_stay_at_unity() {
        assert_eq!(solve_lambda(&[], PAPER_BUS_TX_PER_US, 0.0), 1.0);
        assert_eq!(
            solve_lambda(&[req(0, 0.0, 0.7)], PAPER_BUS_TX_PER_US, 0.0),
            1.0
        );
        // A stale warm start must not leak through: f(warm) ≤ 0 rejects it.
        assert_eq!(
            solve_lambda(&[req(0, 0.0, 0.7)], PAPER_BUS_TX_PER_US, 5.0),
            1.0
        );
    }

    #[test]
    fn solve_lambda_all_zero_mu_above_capacity_returns_lambda_max() {
        // λ-insensitive demand above capacity: no root exists, the solver
        // must give up at the ceiling instead of looping or dividing by a
        // zero slope.
        let reqs = [req(0, 20.0, 0.0), req(1, 15.0, 0.0)];
        assert_eq!(solve_lambda(&reqs, PAPER_BUS_TX_PER_US, 0.0), 1e9);
        // Same with a (useless) warm start.
        assert_eq!(solve_lambda(&reqs, PAPER_BUS_TX_PER_US, 3.0), 1e9);
        // Below capacity the same requests are trivially unsaturated.
        assert_eq!(solve_lambda(&reqs, 40.0, 0.0), 1.0);
    }

    #[test]
    fn solve_lambda_exactly_saturated_root_is_at_the_left_boundary() {
        // Σ dᵢ at λ = 1 equals capacity exactly: f(1) = 0, so the solver
        // must return 1.0 without stepping (stepping would overshoot and
        // under-issue).
        let cap = PAPER_BUS_TX_PER_US;
        assert_eq!(solve_lambda(&[req(0, cap, 0.5)], cap, 0.0), 1.0);
        let half = cap / 2.0;
        assert_eq!(
            solve_lambda(&[req(0, half, 1.0), req(1, half, 0.3)], cap, 0.0),
            1.0
        );
    }

    #[test]
    fn solve_lambda_single_thread_degenerate_root() {
        // One fully memory-bound thread: d/λ = cap has the exact root
        // λ = d/cap. Newton on f(λ) = d/λ − cap from the left converges to
        // it; the residual at the returned λ must be ≤ 0 (never
        // over-issues).
        let cap = PAPER_BUS_TX_PER_US;
        for k in [1.5, 2.0, 7.0, 250.0] {
            let reqs = [req(0, k * cap, 1.0)];
            let lambda = solve_lambda(&reqs, cap, 0.0);
            assert!(
                (lambda - k).abs() < 1e-9 * k,
                "k={k}: λ={lambda}, expected ≈{k}"
            );
            let issued = reqs[0].rate * dilated_speed(1.0, lambda);
            assert!(
                issued <= cap * (1.0 + 1e-12),
                "over-issue: {issued} > {cap}"
            );
        }
    }

    #[test]
    fn split_phase_begin_finish_matches_arbitrate_into() {
        // The split API must be bit-identical to the one-shot call,
        // including the memo counters.
        let reqs: Vec<_> = (0..4).map(|i| req(i, 15.0, 0.9)).collect();
        let light = [req(0, 1.0, 0.2)];
        let mut one_shot = default_fsb();
        let mut split = default_fsb();
        for set in [&reqs[..], &light[..], &reqs[..], &reqs[..]] {
            let a = one_shot.arbitrate(set);
            let mut b = BusOutcome::empty(split.nominal_capacity());
            if let Some(job) = split.begin(set, &mut b) {
                let lambda = solve_lambda(set, job.cap, job.warm);
                split.finish_solve(set, lambda, &mut b);
            }
            assert_eq!(a.dilation.to_bits(), b.dilation.to_bits());
            assert_eq!(a.total_issued.to_bits(), b.total_issued.to_bits());
            assert_eq!(a.shares.len(), b.shares.len());
            for (x, y) in a.shares.iter().zip(&b.shares) {
                assert_eq!(x.speed.to_bits(), y.speed.to_bits());
            }
        }
        assert_eq!(one_shot.memo_stats(), split.memo_stats());
    }

    #[test]
    fn unsaturated_begin_needs_no_solve() {
        let mut bus = default_fsb();
        let mut out = BusOutcome::empty(bus.nominal_capacity());
        assert!(bus.begin(&[req(0, 1.0, 0.2)], &mut out).is_none());
        assert_eq!(bus.memo_stats(), Some((0, 1)));
        assert!(!out.saturated);
    }

    // --- BatchSolver ------------------------------------------------

    #[test]
    fn batch_solver_matches_scalar_bitwise() {
        let lanes: Vec<(Vec<BusRequest>, SolveJob)> = vec![
            (
                (0..4).map(|i| req(i, 15.0, 1.0)).collect(),
                SolveJob {
                    cap: 26.8,
                    warm: 0.0,
                },
            ),
            (
                vec![req(0, 20.0, 0.9), req(1, 12.0, 0.4)],
                SolveJob {
                    cap: 28.6,
                    warm: 2.5,
                },
            ),
            (
                vec![req(0, 35.0, 0.0)], // λ-insensitive: hits LAMBDA_MAX
                SolveJob {
                    cap: PAPER_BUS_TX_PER_US,
                    warm: 0.0,
                },
            ),
            (
                vec![req(0, 59.0, 1.0)], // degenerate single-thread root
                SolveJob {
                    cap: PAPER_BUS_TX_PER_US,
                    warm: 1.7,
                },
            ),
        ];
        let mut batch = BatchSolver::new();
        for (reqs, job) in &lanes {
            batch.push_lane(reqs, *job);
        }
        batch.solve_all();
        for (i, (reqs, job)) in lanes.iter().enumerate() {
            let scalar = solve_lambda(reqs, job.cap, job.warm);
            assert_eq!(
                batch.lambda(i).to_bits(),
                scalar.to_bits(),
                "lane {i}: batch {} vs scalar {scalar}",
                batch.lambda(i)
            );
        }
    }

    #[test]
    fn batch_memo_dedups_identical_lanes_across_batches() {
        let reqs: Vec<_> = (0..3).map(|i| req(i, 18.0, 0.8)).collect();
        let job = SolveJob {
            cap: 27.7,
            warm: 0.0,
        };
        let mut batch = BatchSolver::new();
        batch.push_lane(&reqs, job);
        batch.push_lane(&reqs, job); // same problem, same batch
        batch.solve_all();
        let first = batch.lambda(0);
        assert_eq!(first.to_bits(), batch.lambda(1).to_bits());
        assert_eq!(batch.solves(), 1, "identical lane must be memoized");
        assert_eq!(batch.memo_hits(), 1);
        // Next batch: the memo survives clear().
        batch.clear();
        assert!(batch.is_empty());
        let lane = batch.push_lane(&reqs, job);
        batch.solve_all();
        assert_eq!(batch.lambda(lane).to_bits(), first.to_bits());
        assert_eq!(batch.solves(), 1);
        assert_eq!(batch.memo_hits(), 2);
        // A different warm start is a *different* problem (the start point
        // can change the converged bits) and must not alias.
        batch.clear();
        batch.push_lane(
            &reqs,
            SolveJob {
                cap: 27.7,
                warm: 1.3,
            },
        );
        batch.solve_all();
        assert_eq!(batch.solves(), 2);
    }

    // --- HierarchicalBus --------------------------------------------

    fn hreq(id: u64, rate: f64, mu: f64, socket: usize, remote: f64) -> BusRequest {
        BusRequest {
            thread: ThreadId(id),
            rate,
            mu,
            socket,
            remote,
        }
    }

    #[test]
    fn hierarchical_single_socket_is_bit_identical_to_fsb() {
        // The degenerate 1-socket topology must reproduce FsbBus
        // byte-for-byte across a history exercising every path: a
        // saturated solve, a memo hit, an unsaturated set, an empty
        // tick, and a warm-started re-solve.
        let mut fsb = default_fsb();
        let mut hier = HierarchicalBus::new(BusConfig::default(), SINGLE_SOCKET_TOPO);
        let sat: Vec<_> = (0..4).map(|i| req(i, 15.0, 0.9)).collect();
        let light = [req(0, 1.0, 0.2)];
        let sat2: Vec<_> = (0..4).map(|i| req(i, 16.0, 0.95)).collect();
        for set in [&sat[..], &sat[..], &light[..], &[][..], &sat2[..]] {
            let a = fsb.arbitrate(set);
            let b = hier.arbitrate(set);
            assert_eq!(a.dilation.to_bits(), b.dilation.to_bits());
            assert_eq!(a.total_demand.to_bits(), b.total_demand.to_bits());
            assert_eq!(a.total_issued.to_bits(), b.total_issued.to_bits());
            assert_eq!(
                a.effective_capacity.to_bits(),
                b.effective_capacity.to_bits()
            );
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(a.saturated, b.saturated);
            assert_eq!(a.shares.len(), b.shares.len());
            for (x, y) in a.shares.iter().zip(&b.shares) {
                assert_eq!(x.thread, y.thread);
                assert_eq!(x.speed.to_bits(), y.speed.to_bits());
                assert_eq!(x.issue_rate.to_bits(), y.issue_rate.to_bits());
            }
        }
        assert_eq!(fsb.memo_stats(), hier.memo_stats());
        // 2 levels reported (socket 0 + idle interconnect).
        assert_eq!(hier.levels().len(), 2);
    }

    const SINGLE_SOCKET_TOPO: TopologyConfig = crate::config::SINGLE_SOCKET;

    #[test]
    fn hierarchical_isolates_sockets_without_remote_traffic() {
        // Streamers saturate socket 0's local bus; a light thread on
        // socket 1 with no remote traffic is untouched by them.
        let mut bus = HierarchicalBus::new(BusConfig::default(), TopologyConfig::multi(2));
        let out = bus.arbitrate(&[
            hreq(0, 23.6, 0.98, 0, 0.0),
            hreq(1, 23.6, 0.98, 0, 0.0),
            hreq(2, 1.0, 0.2, 1, 0.0),
        ]);
        let lv = bus.levels();
        assert_eq!(lv.len(), 3);
        assert!(lv[0].saturated, "socket 0 must saturate: {lv:?}");
        assert!(!lv[1].saturated);
        assert!(!lv[2].saturated);
        assert_eq!(lv[2].demand, 0.0);
        assert!(out.shares[0].speed < 0.7, "streamer dilated");
        assert!(out.shares[2].speed > 0.99, "remote socket isolated");
        // Aggregate capacity spans both local buses.
        assert!(out.effective_capacity > PAPER_BUS_TX_PER_US);
    }

    #[test]
    fn hierarchical_interconnect_constrains_remote_traffic() {
        // Both sockets are below local capacity, but every thread sends
        // all of its traffic across the interconnect (migrated off-home):
        // the interconnect is the bottleneck and dilates everyone.
        let topo = TopologyConfig::multi(2);
        let mut bus = HierarchicalBus::new(BusConfig::default(), topo);
        let all_remote: Vec<_> = (0..4)
            .map(|i| hreq(i, 13.0, 0.9, (i as usize) % 2, 1.0))
            .collect();
        let out = bus.arbitrate(&all_remote);
        let lv = bus.levels();
        assert!(!lv[0].saturated && !lv[1].saturated, "{lv:?}");
        assert!(lv[2].saturated, "interconnect must saturate: {lv:?}");
        assert!(out.saturated);
        assert!(out.dilation > 1.05);
        for s in &out.shares {
            assert!(s.speed < 0.95, "remote thread dilated: {}", s.speed);
        }
        // The same demands kept home (remote fraction 0.25) clear the
        // interconnect and run faster.
        let mut home_bus = HierarchicalBus::new(BusConfig::default(), topo);
        let home: Vec<_> = (0..4)
            .map(|i| hreq(i, 13.0, 0.9, (i as usize) % 2, topo.remote_fraction))
            .collect();
        let home_out = home_bus.arbitrate(&home);
        assert!(!home_bus.levels()[2].saturated);
        for (h, r) in home_out.shares.iter().zip(&out.shares) {
            assert!(h.speed > r.speed, "home {} vs remote {}", h.speed, r.speed);
        }
    }

    #[test]
    fn hierarchical_levels_conserve_capacity() {
        // Per-level issued traffic never exceeds that level's effective
        // capacity, even with mixed home/remote saturating demand.
        let mut bus = HierarchicalBus::new(BusConfig::default(), TopologyConfig::multi(2));
        let reqs: Vec<_> = (0..8)
            .map(|i| {
                let sock = (i as usize) / 4;
                let remote = if i % 3 == 0 { 1.0 } else { 0.25 };
                hreq(i, 14.0, 0.9, sock, remote)
            })
            .collect();
        let out = bus.arbitrate(&reqs);
        for (k, lv) in bus.levels().iter().enumerate() {
            assert!(
                lv.issued <= lv.effective_capacity * (1.0 + 1e-6),
                "level {k}: issued {} vs cap {}",
                lv.issued,
                lv.effective_capacity
            );
        }
        assert!(out.total_issued <= out.effective_capacity * (1.0 + 1e-6));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_reqs() -> impl Strategy<Value = Vec<BusRequest>> {
            prop::collection::vec((0.0f64..40.0, 0.01f64..1.0), 1..12).prop_map(|v| {
                v.into_iter()
                    .enumerate()
                    .map(|(i, (rate, mu))| BusRequest {
                        thread: ThreadId(i as u64),
                        rate,
                        mu,
                        socket: 0,
                        remote: 0.0,
                    })
                    .collect()
            })
        }

        proptest! {
            /// Every BatchSolver lane reproduces the scalar solver
            /// bit-for-bit, across random request sets, capacities, and
            /// warm starts (including nonsense warm starts ≤ 1).
            #[test]
            fn batch_lanes_are_bitwise_equal_to_scalar(
                sets in prop::collection::vec(
                    (arb_reqs(), 5.0f64..40.0, 0.0f64..6.0), 1..8),
            ) {
                let mut batch = BatchSolver::new();
                for (reqs, cap, warm) in &sets {
                    batch.push_lane(reqs, SolveJob { cap: *cap, warm: *warm });
                }
                batch.solve_all();
                for (i, (reqs, cap, warm)) in sets.iter().enumerate() {
                    let scalar = solve_lambda(reqs, *cap, *warm);
                    prop_assert_eq!(
                        batch.lambda(i).to_bits(), scalar.to_bits(),
                        "lane {}: batch {} vs scalar {}", i, batch.lambda(i), scalar);
                }
            }

            /// The bus never creates bandwidth: total issued ≤ effective
            /// capacity (within solver tolerance) whenever saturated, and
            /// ≤ total demand always.
            #[test]
            fn conservation(reqs in arb_reqs()) {
                let out = FsbBus::new(BusConfig::default()).arbitrate(&reqs);
                prop_assert!(out.total_issued <= out.total_demand + 1e-9);
                if out.saturated {
                    prop_assert!(out.total_issued <= out.effective_capacity * (1.0 + 1e-6));
                }
            }

            /// Speeds are in (0, 1] and issue rates are rate×speed.
            #[test]
            fn speeds_bounded(reqs in arb_reqs()) {
                let out = FsbBus::new(BusConfig::default()).arbitrate(&reqs);
                for (r, s) in reqs.iter().zip(&out.shares) {
                    prop_assert!(s.speed > 0.0 && s.speed <= 1.0 + 1e-12);
                    prop_assert!((s.issue_rate - r.rate * s.speed).abs() < 1e-9);
                }
            }

            /// More memory-bound threads are hurt at least as much by the
            /// same dilation.
            #[test]
            fn monotone_in_mu(rate in 1.0f64..30.0, mu_lo in 0.0f64..0.5, extra in 0.0f64..0.5) {
                let mut bus = FsbBus::new(BusConfig::default());
                let mu_hi = (mu_lo + extra).min(1.0);
                let heavy = [
                    BusRequest { thread: ThreadId(0), rate, mu: mu_lo, socket: 0, remote: 0.0 },
                    BusRequest { thread: ThreadId(1), rate, mu: mu_hi, socket: 0, remote: 0.0 },
                    BusRequest { thread: ThreadId(2), rate: 25.0, mu: 1.0, socket: 0, remote: 0.0 },
                    BusRequest { thread: ThreadId(3), rate: 25.0, mu: 1.0, socket: 0, remote: 0.0 },
                ];
                let out = bus.arbitrate(&heavy);
                prop_assert!(out.shares[0].speed >= out.shares[1].speed - 1e-12);
            }

            /// Max-min grants: feasible, capped by demand, work-conserving.
            #[test]
            fn max_min_invariants(demands in prop::collection::vec(0.0f64..50.0, 1..10), cap in 1.0f64..60.0) {
                let grants = MaxMinFairBus::max_min(&demands, cap);
                let total_d: f64 = demands.iter().sum();
                let total_g: f64 = grants.iter().sum();
                for (g, d) in grants.iter().zip(&demands) {
                    prop_assert!(*g <= d + 1e-9);
                    prop_assert!(*g >= -1e-12);
                }
                prop_assert!(total_g <= cap + 1e-9);
                // Work conserving: uses min(cap, total demand).
                prop_assert!((total_g - total_d.min(cap)).abs() < 1e-6);
            }

            /// Below saturation every arbiter agrees with [`FsbBus`] up to
            /// the sub-saturation queueing term κ·ρ^p (the alternatives
            /// model no queueing, so their speeds sit exactly at 1 while
            /// FsbBus sits at 1/(1+µκρ^p) ≥ 1 − κρ^p).
            #[test]
            fn arbiters_agree_below_saturation(reqs in arb_reqs()) {
                let cfg = BusConfig::default();
                let fsb = FsbBus::new(cfg).arbitrate(&reqs);
                if !fsb.saturated && fsb.utilization <= 0.9 {
                    let tol =
                        cfg.queueing_coeff * fsb.utilization.powf(cfg.queueing_exponent) + 1e-9;
                    let mm = MaxMinFairBus::new(cfg).arbitrate(&reqs);
                    let pr = ProportionalBus {
                        capacity: cfg.capacity_tx_per_us,
                    }
                    .arbitrate(&reqs);
                    for alt in [&mm, &pr] {
                        for (f, a) in fsb.shares.iter().zip(&alt.shares) {
                            prop_assert!(
                                (f.speed - a.speed).abs() <= tol,
                                "fsb {} vs alt {} (tol {tol})",
                                f.speed,
                                a.speed
                            );
                        }
                    }
                }
            }

            /// Max-min fair never issues more than effective capacity,
            /// saturated or not: each thread's traffic is capped by its
            /// grant and grants sum to ≤ capacity.
            #[test]
            fn max_min_bus_never_exceeds_capacity(reqs in arb_reqs()) {
                let out = MaxMinFairBus::new(BusConfig::default()).arbitrate(&reqs);
                prop_assert!(
                    out.total_issued <= out.effective_capacity + 1e-9,
                    "issued {} vs cap {}",
                    out.total_issued,
                    out.effective_capacity
                );
            }

            /// Proportional sharing conserves capacity for fully
            /// memory-bound threads (µ = 1 ⇒ issue = rate/λ, Σ = min(ΣD, C)).
            #[test]
            fn proportional_bus_full_mu_never_exceeds_capacity(mut reqs in arb_reqs()) {
                for r in &mut reqs {
                    r.mu = 1.0;
                }
                let cap = BusConfig::default().capacity_tx_per_us;
                let out = ProportionalBus { capacity: cap }.arbitrate(&reqs);
                prop_assert!(
                    out.total_issued <= cap + 1e-9,
                    "issued {} vs cap {cap}",
                    out.total_issued
                );
            }
        }
    }
}
