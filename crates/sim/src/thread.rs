//! Simulated threads: specification and runtime state.

use crate::demand::DemandModel;
use crate::ids::{AppId, CpuId, SimTime, ThreadId};

/// How a thread is created: its work volume and demand behaviour.
pub struct ThreadSpec {
    /// Total useful work in virtual µs. `f64::INFINITY` makes a
    /// run-forever thread (the microbenchmarks in the paper's workloads run
    /// until the measured applications finish).
    pub work_us: f64,
    /// The demand model (solo bus rate + memory-boundness over time).
    pub model: Box<dyn DemandModel>,
    /// Cache sensitivity in `[0, 1]`: how much speed the thread loses when
    /// running fully cold (see [`crate::cache`]). LU CB-class codes are
    /// high; streaming microbenchmarks are 0.
    pub cache_sensitivity: f64,
}

impl ThreadSpec {
    /// A thread with the given work and model, zero cache sensitivity.
    pub fn new(work_us: f64, model: Box<dyn DemandModel>) -> Self {
        Self {
            work_us,
            model,
            cache_sensitivity: 0.0,
        }
    }

    /// Set the cache sensitivity.
    pub fn with_cache_sensitivity(mut self, s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "cache sensitivity must be in [0,1]"
        );
        self.cache_sensitivity = s;
        self
    }
}

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable but not placed on a cpu.
    Ready,
    /// Executing on the given cpu.
    Running(CpuId),
    /// All work complete.
    Finished,
}

impl ThreadState {
    /// The cpu this thread occupies, if running.
    pub fn cpu(self) -> Option<CpuId> {
        match self {
            ThreadState::Running(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the thread can be placed on a cpu.
    pub fn is_runnable(self) -> bool {
        matches!(self, ThreadState::Ready | ThreadState::Running(_))
    }
}

/// Runtime state of one simulated thread (internal to the machine).
pub(crate) struct SimThread {
    pub id: ThreadId,
    pub app: AppId,
    pub work_us: f64,
    pub model: Box<dyn DemandModel>,
    pub cache_sensitivity: f64,
    /// Completed useful work, virtual µs.
    pub progress_us: f64,
    pub state: ThreadState,
    /// Last cpu the thread ran on (affinity hint).
    pub last_cpu: Option<CpuId>,
    /// The socket this thread's memory lives on: fixed at first
    /// placement (first-touch allocation). Traffic from other sockets
    /// crosses the interconnect in full; even at home a configured
    /// fraction does (see [`crate::config::TopologyConfig`]).
    pub home_socket: Option<usize>,
    /// Wall time at which the thread finished, if it has.
    pub finished_at: Option<SimTime>,
}

impl SimThread {
    pub fn new(id: ThreadId, app: AppId, spec: ThreadSpec) -> Self {
        assert!(spec.work_us > 0.0, "thread work must be positive");
        Self {
            id,
            app,
            work_us: spec.work_us,
            model: spec.model,
            cache_sensitivity: spec.cache_sensitivity,
            progress_us: 0.0,
            state: ThreadState::Ready,
            last_cpu: None,
            home_socket: None,
            finished_at: None,
        }
    }

    /// Remaining useful work, virtual µs.
    pub fn remaining_us(&self) -> f64 {
        (self.work_us - self.progress_us).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::ConstantDemand;

    #[test]
    fn state_helpers() {
        assert!(ThreadState::Ready.is_runnable());
        assert!(ThreadState::Running(CpuId(1)).is_runnable());
        assert!(!ThreadState::Finished.is_runnable());
        assert_eq!(ThreadState::Running(CpuId(2)).cpu(), Some(CpuId(2)));
        assert_eq!(ThreadState::Ready.cpu(), None);
    }

    #[test]
    fn spec_builder_validates_sensitivity() {
        let s = ThreadSpec::new(10.0, Box::new(ConstantDemand::new(1.0, 0.5)))
            .with_cache_sensitivity(0.3);
        assert_eq!(s.cache_sensitivity, 0.3);
    }

    #[test]
    #[should_panic(expected = "cache sensitivity")]
    fn out_of_range_sensitivity_panics() {
        let _ = ThreadSpec::new(10.0, Box::new(ConstantDemand::new(1.0, 0.5)))
            .with_cache_sensitivity(1.5);
    }

    #[test]
    fn remaining_work_never_negative() {
        let mut t = SimThread::new(
            ThreadId(0),
            AppId(0),
            ThreadSpec::new(5.0, Box::new(ConstantDemand::new(0.0, 0.0))),
        );
        t.progress_us = 7.0;
        assert_eq!(t.remaining_us(), 0.0);
    }
}
