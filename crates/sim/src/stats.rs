//! Run-level accounting produced by the machine.

use serde::{Deserialize, Serialize};

use crate::bus::MAX_BUS_LEVELS;
use crate::ids::SimTime;

/// Time-weighted statistics about bus pressure over a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BusPressureStats {
    /// Integral of issued transactions (tx), i.e. total bus traffic.
    pub total_transactions: f64,
    /// Integral of demanded transactions (tx) — what threads would have
    /// issued uncontended.
    pub total_demanded: f64,
    /// Wall µs during which demand exceeded effective capacity.
    pub saturated_us: f64,
    /// Peak instantaneous dilation factor Λ observed.
    pub peak_dilation: f64,
    /// Time-integral of utilization (divide by elapsed for the mean).
    pub utilization_integral: f64,
}

/// Time-weighted pressure of one topology level (a socket's local bus or
/// the cross-socket interconnect). All-zero for levels that do not exist
/// on the configured machine.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LevelPressureStats {
    /// Integral of traffic issued through this level (tx).
    pub total_issued: f64,
    /// Integral of demand charged to this level (tx).
    pub total_demanded: f64,
    /// Wall µs during which this level's demand exceeded its capacity.
    pub saturated_us: f64,
    /// Time-integral of this level's utilization.
    pub utilization_integral: f64,
    /// Peak instantaneous dilation this level imposed.
    pub peak_dilation: f64,
}

impl LevelPressureStats {
    /// Mean utilization of this level over `elapsed_us` of wall time.
    pub fn mean_utilization(&self, elapsed_us: SimTime) -> f64 {
        if elapsed_us == 0 {
            0.0
        } else {
            self.utilization_integral / elapsed_us as f64
        }
    }

    /// Fraction of `elapsed_us` this level spent saturated.
    pub fn saturated_fraction(&self, elapsed_us: SimTime) -> f64 {
        if elapsed_us == 0 {
            0.0
        } else {
            self.saturated_us / elapsed_us as f64
        }
    }
}

/// Histogram of per-iteration time advances, in nominal ticks — the
/// observability layer's tick-time histogram. With event-driven tick
/// coarsening an iteration can cover many nominal ticks; the bucket
/// spread shows how much of a run executed coarsened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickDtHist {
    /// Log₂-spaced bucket counts: iterations covering 1, 2–3, 4–7, …,
    /// 64–127, and ≥128 nominal ticks.
    pub buckets: [u64; 8],
}

impl TickDtHist {
    /// Record one iteration that covered `ticks_covered` nominal ticks.
    #[inline]
    pub fn record(&mut self, ticks_covered: u64) {
        let idx = 63 - ticks_covered.max(1).leading_zeros() as usize;
        self.buckets[idx.min(self.buckets.len() - 1)] += 1;
    }

    /// Total iterations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Accumulate another histogram into this one.
    pub fn merge(&mut self, other: &TickDtHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Inclusive lower bound (in nominal ticks) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        1u64 << i
    }
}

/// Statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall µs simulated.
    pub elapsed_us: SimTime,
    /// Tick-loop iterations executed. With event-driven tick coarsening a
    /// single iteration can advance many nominal tick lengths, so this can
    /// be far below `elapsed_us / tick_us`.
    pub ticks: u64,
    /// Number of scheduler invocations.
    pub schedule_calls: u64,
    /// Number of sampling callbacks delivered.
    pub sample_calls: u64,
    /// Number of thread-to-cpu placements that were cold (warmth < 0.5).
    pub cold_placements: u64,
    /// Number of placements total.
    pub placements: u64,
    /// Bus pressure accounting (whole-machine aggregate).
    pub bus: BusPressureStats,
    /// Topology levels with live per-level accounting: 0 for
    /// single-level bus models, sockets + 1 for a hierarchical bus
    /// (capped at [`MAX_BUS_LEVELS`]).
    pub n_levels: usize,
    /// Per-level pressure, sockets first and the interconnect last;
    /// levels past [`MAX_BUS_LEVELS`] fold into the final slot.
    pub levels: [LevelPressureStats; MAX_BUS_LEVELS],
    /// Distribution of per-iteration advances (tick-time histogram).
    pub tick_dt_hist: TickDtHist,
}

impl RunStats {
    /// Mean achieved bus transaction rate over the run, tx/µs.
    pub fn mean_bus_rate(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.bus.total_transactions / self.elapsed_us as f64
        }
    }

    /// Fraction of wall time the bus spent saturated.
    pub fn saturated_fraction(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.bus.saturated_us / self.elapsed_us as f64
        }
    }

    /// Mean bus utilization over the run.
    pub fn mean_utilization(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.bus.utilization_integral / self.elapsed_us as f64
        }
    }

    /// Fraction of placements that were cache-cold.
    pub fn cold_placement_fraction(&self) -> f64 {
        if self.placements == 0 {
            0.0
        } else {
            self.cold_placements as f64 / self.placements as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_elapsed_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.mean_bus_rate(), 0.0);
        assert_eq!(s.saturated_fraction(), 0.0);
        assert_eq!(s.mean_utilization(), 0.0);
        assert_eq!(s.cold_placement_fraction(), 0.0);
    }

    #[test]
    fn tick_dt_hist_buckets_by_log2_and_merges() {
        let mut h = TickDtHist::default();
        h.record(1); // bucket 0
        h.record(3); // bucket 1
        h.record(4); // bucket 2
        h.record(200); // clamped to the last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
        assert_eq!(h.total(), 4);
        let mut m = TickDtHist::default();
        m.merge(&h);
        m.merge(&h);
        assert_eq!(m.total(), 8);
        assert_eq!(TickDtHist::bucket_lo(3), 8);
    }

    #[test]
    fn level_pressure_derived_rates() {
        let lv = LevelPressureStats {
            total_issued: 100.0,
            total_demanded: 150.0,
            saturated_us: 500.0,
            utilization_integral: 750.0,
            peak_dilation: 2.0,
        };
        assert_eq!(lv.mean_utilization(0), 0.0);
        assert_eq!(lv.saturated_fraction(0), 0.0);
        assert!((lv.mean_utilization(1000) - 0.75).abs() < 1e-12);
        assert!((lv.saturated_fraction(1000) - 0.5).abs() < 1e-12);
        let s = RunStats::default();
        assert_eq!(s.n_levels, 0);
        assert_eq!(s.levels.len(), MAX_BUS_LEVELS);
    }

    #[test]
    fn derived_rates() {
        let s = RunStats {
            elapsed_us: 1000,
            bus: BusPressureStats {
                total_transactions: 2950.0,
                saturated_us: 250.0,
                utilization_integral: 800.0,
                ..Default::default()
            },
            cold_placements: 1,
            placements: 4,
            ..Default::default()
        };
        assert!((s.mean_bus_rate() - 2.95).abs() < 1e-12);
        assert!((s.saturated_fraction() - 0.25).abs() < 1e-12);
        assert!((s.mean_utilization() - 0.8).abs() < 1e-12);
        assert!((s.cold_placement_fraction() - 0.25).abs() < 1e-12);
    }
}
