//! Schedule tracing: record what a scheduler decided, render it as a
//! text Gantt chart.
//!
//! [`Traced`] wraps any [`Scheduler`] and records every decision
//! (timestamp + per-cpu placement, resolved to application names). The
//! recorded [`ScheduleTrace`] renders as a compact timeline — the
//! quickest way to *see* gang scheduling, rotation, and the difference
//! between the paper's policies and a time-sharing baseline.

use std::collections::BTreeMap;

use crate::ids::{AppId, CpuId, SimTime, ThreadId};
use crate::machine::{Decision, MachineView, Scheduler};

/// One recorded scheduling decision.
#[derive(Debug, Clone)]
pub struct QuantumRecord {
    /// When the decision was taken (µs).
    pub at_us: SimTime,
    /// Placements: (cpu, thread, owning app).
    pub placements: Vec<(CpuId, ThreadId, AppId)>,
}

/// A full recording of a run's scheduling decisions.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    records: Vec<QuantumRecord>,
    app_names: BTreeMap<AppId, String>,
    num_cpus: usize,
}

impl ScheduleTrace {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded decisions.
    pub fn records(&self) -> &[QuantumRecord] {
        &self.records
    }

    /// Which app occupied `cpu` at simulated time `t_us`, if any.
    pub fn occupant_at(&self, cpu: CpuId, t_us: SimTime) -> Option<AppId> {
        let idx = self.records.partition_point(|r| r.at_us <= t_us);
        let rec = self.records.get(idx.checked_sub(1)?)?;
        rec.placements
            .iter()
            .find(|(c, _, _)| *c == cpu)
            .map(|&(_, _, a)| a)
    }

    /// Fraction of decisions in which `app` had at least one thread
    /// placed.
    pub fn run_fraction(&self, app: AppId) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let n = self
            .records
            .iter()
            .filter(|r| r.placements.iter().any(|&(_, _, a)| a == app))
            .count();
        n as f64 / self.records.len() as f64
    }

    /// Render a text Gantt chart: one row per cpu, one column per
    /// `bucket_us` of simulated time, cells keyed by a per-app letter.
    /// Includes a legend. Idle cells render as '·'.
    pub fn render_gantt(&self, bucket_us: SimTime) -> String {
        assert!(bucket_us > 0, "bucket must be positive");
        if self.records.is_empty() {
            return String::from("(empty trace)\n");
        }
        let end = self.records.last().map(|r| r.at_us).unwrap_or(0) + bucket_us;
        let buckets = ((end / bucket_us) as usize).min(400);
        // Stable letter per app in id order.
        let letters: BTreeMap<AppId, char> = self
            .app_names
            .keys()
            .enumerate()
            .map(|(i, &a)| {
                let c = if i < 26 {
                    (b'A' + i as u8) as char
                } else {
                    (b'a' + (i - 26) as u8 % 26) as char
                };
                (a, c)
            })
            .collect();
        let mut out = String::new();
        for cpu in 0..self.num_cpus {
            out.push_str(&format!("cpu{cpu} |"));
            for b in 0..buckets {
                let t = b as SimTime * bucket_us;
                let cell = self
                    .occupant_at(CpuId(cpu), t)
                    .and_then(|a| letters.get(&a).copied())
                    .unwrap_or('·');
                out.push(cell);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "      +{} ({} ms/col)\n",
            "-".repeat(buckets),
            bucket_us / 1000
        ));
        for (app, name) in &self.app_names {
            out.push_str(&format!("  {} = {} ({})\n", letters[app], name, app));
        }
        out
    }
}

/// A scheduler wrapper that records every decision.
pub struct Traced<S> {
    inner: S,
    trace: ScheduleTrace,
}

impl<S: Scheduler> Traced<S> {
    /// Wrap a scheduler.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            trace: ScheduleTrace::default(),
        }
    }

    /// The recording so far.
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Unwrap, returning the inner scheduler and the recording.
    pub fn into_parts(self) -> (S, ScheduleTrace) {
        (self.inner, self.trace)
    }
}

impl<S: Scheduler> Scheduler for Traced<S> {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        let d = self.inner.schedule(view);
        self.trace.num_cpus = view.num_cpus;
        for app in view.apps() {
            self.trace
                .app_names
                .entry(app.id)
                .or_insert_with(|| app.name.to_string());
        }
        let placements = d
            .assignments
            .iter()
            .filter_map(|a| view.thread(a.thread).map(|t| (a.cpu, a.thread, t.app)))
            .collect();
        self.trace.records.push(QuantumRecord {
            at_us: view.now,
            placements,
        });
        d
    }

    fn on_sample(&mut self, view: &MachineView<'_>) {
        self.inner.on_sample(view);
    }

    fn attach_tracer(&mut self, tracer: &busbw_trace::EventBus) {
        self.inner.attach_tracer(tracer);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XEON_4WAY;
    use crate::demand::ConstantDemand;
    use crate::machine::{AppDescriptor, Assignment, Machine, StopCondition};
    use crate::thread::ThreadSpec;

    /// Alternates two single-thread apps on cpu0.
    struct Alternator {
        flip: bool,
    }
    impl Scheduler for Alternator {
        fn schedule(&mut self, _v: &MachineView<'_>) -> Decision {
            self.flip = !self.flip;
            Decision {
                assignments: vec![Assignment {
                    thread: ThreadId(u64::from(self.flip)),
                    cpu: CpuId(0),
                }],
                next_resched_in_us: 100_000,
                sample_period_us: None,
            }
        }
    }

    fn machine() -> Machine {
        let mut m = Machine::new(XEON_4WAY);
        for name in ["first", "second"] {
            m.add_app(AppDescriptor::new(
                name,
                vec![ThreadSpec::new(
                    f64::INFINITY,
                    Box::new(ConstantDemand::new(0.5, 0.1)),
                )],
            ));
        }
        m
    }

    #[test]
    fn records_every_decision() {
        let mut m = machine();
        let mut s = Traced::new(Alternator { flip: false });
        m.run(&mut s, StopCondition::At(1_000_000));
        assert_eq!(s.trace().len(), 10);
        // Alternation is visible in the record stream.
        let apps: Vec<AppId> = s
            .trace()
            .records()
            .iter()
            .map(|r| r.placements[0].2)
            .collect();
        assert_eq!(apps[0], AppId(1));
        assert_eq!(apps[1], AppId(0));
        assert_eq!(apps[2], AppId(1));
    }

    #[test]
    fn run_fraction_reflects_alternation() {
        let mut m = machine();
        let mut s = Traced::new(Alternator { flip: false });
        m.run(&mut s, StopCondition::At(2_000_000));
        let f0 = s.trace().run_fraction(AppId(0));
        let f1 = s.trace().run_fraction(AppId(1));
        assert!((f0 - 0.5).abs() < 0.11, "{f0}");
        assert!((f1 - 0.5).abs() < 0.11, "{f1}");
    }

    #[test]
    fn occupant_lookup_uses_latest_decision() {
        let mut m = machine();
        let mut s = Traced::new(Alternator { flip: false });
        m.run(&mut s, StopCondition::At(500_000));
        // First decision (at t=0) put app1 ("second") on cpu0.
        assert_eq!(s.trace().occupant_at(CpuId(0), 50_000), Some(AppId(1)));
        assert_eq!(s.trace().occupant_at(CpuId(0), 150_000), Some(AppId(0)));
        // cpu3 was never used.
        assert_eq!(s.trace().occupant_at(CpuId(3), 150_000), None);
    }

    #[test]
    fn gantt_renders_rows_legend_and_idle_cells() {
        let mut m = machine();
        let mut s = Traced::new(Alternator { flip: false });
        m.run(&mut s, StopCondition::At(600_000));
        let g = s.trace().render_gantt(100_000);
        assert!(g.contains("cpu0 |"));
        assert!(g.contains("cpu3 |"));
        assert!(g.contains("A = first"));
        assert!(g.contains("B = second"));
        // cpu3 idle the whole time.
        let cpu3_row = g.lines().find(|l| l.starts_with("cpu3")).unwrap();
        assert!(cpu3_row.contains("··"));
        // cpu0 shows both letters.
        let cpu0_row = g.lines().find(|l| l.starts_with("cpu0")).unwrap();
        assert!(cpu0_row.contains('A') && cpu0_row.contains('B'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = ScheduleTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.render_gantt(1000), "(empty trace)\n");
    }
}
