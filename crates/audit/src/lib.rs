//! Runtime invariant auditor for the busbw simulator.
//!
//! The paper's whole argument rests on the simulator and schedulers
//! honoring a handful of structural properties — gang co-scheduling
//! (§3: "all threads of an application execute together"), processor
//! exclusivity, the sustained bus-bandwidth ceiling (§2: 29.5
//! transactions/µs measured with STREAM), and estimates that stay inside
//! the measurements that produced them (§4, Equations 1–2). This crate
//! turns each property into an executable [`Invariant`] and composes them
//! into an [`Auditor`] that plugs into the live simulation through
//! [`busbw_sim::AuditHook`] (see `Machine::run_audited`).
//!
//! The catalog ([`Auditor::with_builtins`]):
//!
//! | name | checked where | property |
//! |------|---------------|----------|
//! | `no-double-allocation` | every decision | one thread per cpu, one cpu per thread |
//! | `cpu-bounds` | every decision | cpu ids in range, allocations ≤ machine cpus |
//! | `gang-integrity` | every decision | committed gangs run whole (paper §3) |
//! | `stage-coherence` | every decision | place output ⊆ select output ⊆ admit output ⊆ candidates |
//! | `bus-capacity` | every tick | issued traffic ≤ sustained capacity × dt (paper §2) |
//! | `monotonic-trace` | post-run events | trace clock monotone, stage cycles balanced |
//! | `estimator-range` | self-check | estimate within min/max of its own samples (paper §4) |
//! | `manager-arena-coherence` | self-check | seqlock arena publishes are torn-write-free on the real `core::manager` path (paper §4) |
//! | `manager-lifecycle` | post-run events | open-serve departures match admitted arrivals, turnarounds consistent |
//! | `cache-consistency` | differential runs | equal run keys ⇒ byte-equal results |
//! | `exec-path-equivalence` | differential runs | per-tick, event-driven, and batched executions byte-agree |
//! | `topology-capacity` | every tick (per level) | no bus level issues past its effective capacity (DESIGN §16) |
//! | `oracle-admissibility` | differential runs | offline optimal ≤ every heuristic on the same cell, bound ≤ achieved cost (DESIGN §17) |
//!
//! The decision hook fires *before* the machine applies the decision, so
//! a violating schedule is recorded as a structured [`Violation`] even
//! when `Machine::apply` would also reject it with a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;

pub use invariants::{builtin_invariants, check_arena_coherence, check_estimator_range};

use busbw_sim::{AuditHook, Decision, LevelOutcome, MachineView, SimTime, StageSnapshot};
use busbw_trace::TraceEvent;

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that fired (stable, kebab-case).
    pub invariant: &'static str,
    /// Simulated time of the offending observation, µs (0 when the check
    /// is not tied to a simulated instant, e.g. self-checks).
    pub at_us: u64,
    /// Human-readable description of what was wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] t={}µs: {}",
            self.invariant, self.at_us, self.detail
        )
    }
}

/// One executable structural property of the simulation.
///
/// Implementations are stateful (e.g. the bus-capacity check carries no
/// state, but a windowed check could); each hook appends any violations
/// it finds to `out`. All hooks default to no-ops so an invariant only
/// implements the observation points it cares about.
pub trait Invariant: Send {
    /// Stable kebab-case name (the [`Violation::invariant`] tag).
    fn name(&self) -> &'static str;

    /// Where the property comes from in the paper (or the codebase).
    fn paper_ref(&self) -> &'static str;

    /// Check one scheduling decision, before the machine applies it.
    fn check_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        snapshot: Option<&StageSnapshot>,
        out: &mut Vec<Violation>,
    ) {
        let _ = (view, decision, snapshot, out);
    }

    /// Check one simulator tick's bus accounting.
    fn check_tick(
        &mut self,
        now: SimTime,
        dt_us: u64,
        issued_tx: f64,
        capacity_tx_per_us: f64,
        out: &mut Vec<Violation>,
    ) {
        let _ = (now, dt_us, issued_tx, capacity_tx_per_us, out);
    }

    /// Check one tick's per-level bus accounting (hierarchical
    /// topologies only; flat buses report no levels).
    fn check_levels(
        &mut self,
        now: SimTime,
        dt_us: u64,
        levels: &[LevelOutcome],
        out: &mut Vec<Violation>,
    ) {
        let _ = (now, dt_us, levels, out);
    }

    /// Check a completed run's collected trace stream.
    fn check_events(&mut self, events: &[TraceEvent], out: &mut Vec<Violation>) {
        let _ = (events, out);
    }

    /// Self-contained check needing no live run (e.g. driving the
    /// estimators with synthetic sample streams).
    fn self_check(&mut self, seed: u64, out: &mut Vec<Violation>) {
        let _ = (seed, out);
    }
}

/// A set of [`Invariant`]s observing one run (or one differential batch),
/// accumulating every violation found.
///
/// Plug it into a live run via [`busbw_sim::AuditHook`]:
/// `machine.run_audited(&mut sched, stop, Some(&mut auditor))`.
pub struct Auditor {
    invariants: Vec<Box<dyn Invariant>>,
    violations: Vec<Violation>,
}

impl Auditor {
    /// An auditor over a custom invariant set.
    pub fn new(invariants: Vec<Box<dyn Invariant>>) -> Self {
        Self {
            invariants,
            violations: Vec::new(),
        }
    }

    /// An auditor over the full built-in catalog (see module docs).
    pub fn with_builtins() -> Self {
        Self::new(builtin_invariants())
    }

    /// `(name, paper_ref)` for every installed invariant.
    pub fn catalog(&self) -> Vec<(&'static str, &'static str)> {
        self.invariants
            .iter()
            .map(|i| (i.name(), i.paper_ref()))
            .collect()
    }

    /// Run every invariant's post-run trace-stream check.
    pub fn check_events(&mut self, events: &[TraceEvent]) {
        for inv in &mut self.invariants {
            inv.check_events(events, &mut self.violations);
        }
    }

    /// Run every invariant's self-contained check.
    pub fn self_check(&mut self, seed: u64) {
        for inv in &mut self.invariants {
            inv.self_check(seed, &mut self.violations);
        }
    }

    /// Differential check: two executions that shared a run key must have
    /// produced byte-identical artifacts. `what` labels the artifact
    /// (e.g. `"fig2a csv, serial vs 4 workers"`). Fires as
    /// `cache-consistency`; use [`Auditor::check_byte_identity_as`] to
    /// attribute a divergence to another differential invariant.
    pub fn check_byte_identity(&mut self, what: &str, baseline: &[u8], other: &[u8]) {
        self.check_byte_identity_as("cache-consistency", what, baseline, other);
    }

    /// [`Auditor::check_byte_identity`] attributed to a named differential
    /// invariant (e.g. `exec-path-equivalence` for per-tick vs
    /// event-driven vs batched-engine executions of one run key).
    pub fn check_byte_identity_as(
        &mut self,
        invariant: &'static str,
        what: &str,
        baseline: &[u8],
        other: &[u8],
    ) {
        if baseline == other {
            return;
        }
        let diverge = baseline
            .iter()
            .zip(other.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| baseline.len().min(other.len()));
        self.violations.push(Violation {
            invariant,
            at_us: 0,
            detail: format!(
                "{what}: byte divergence at offset {diverge} (lengths {} vs {})",
                baseline.len(),
                other.len()
            ),
        });
    }

    /// Everything observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether nothing fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Drain the accumulated violations, leaving the auditor reusable.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }
}

impl AuditHook for Auditor {
    fn on_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        snapshot: Option<&StageSnapshot>,
    ) {
        for inv in &mut self.invariants {
            inv.check_decision(view, decision, snapshot, &mut self.violations);
        }
    }

    fn on_tick(&mut self, now: SimTime, dt_us: u64, issued_tx: f64, capacity_tx_per_us: f64) {
        for inv in &mut self.invariants {
            inv.check_tick(
                now,
                dt_us,
                issued_tx,
                capacity_tx_per_us,
                &mut self.violations,
            );
        }
    }

    fn on_levels(&mut self, now: SimTime, dt_us: u64, levels: &[LevelOutcome]) {
        for inv in &mut self.invariants {
            inv.check_levels(now, dt_us, levels, &mut self.violations);
        }
    }
}
