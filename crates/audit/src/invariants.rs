//! The built-in invariant catalog.
//!
//! Each type here is one executable property; see the crate docs for the
//! table mapping names to paper sections. All of them are pure observers:
//! none mutates the machine, the scheduler, or the trace stream.

use std::collections::{BTreeMap, BTreeSet};

use busbw_core::estimator::{
    BandwidthEstimator, EwmaEstimator, LatestQuantumEstimator, QuantaWindowEstimator,
};
use busbw_core::manager::{AppRuntime, ArenaSnapshot, CpuManager, ManagerConfig, SeqlockArena};
use busbw_sim::{AppId, Decision, LevelOutcome, MachineView, SimTime, StageSnapshot};
use busbw_trace::{validate_stream, TraceEvent};
use rand::{Rng, SeedableRng};

use crate::{Invariant, Violation};

/// Relative slack on the bus-capacity bound: the Λ solve works in `f64`
/// and the tick loop accumulates shares, so allow rounding noise but
/// nothing more.
const CAPACITY_REL_TOL: f64 = 1e-6;

/// The full built-in catalog, in the order the crate docs list it.
pub fn builtin_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(NoDoubleAllocation),
        Box::new(CpuBounds),
        Box::new(GangIntegrity),
        Box::new(StageCoherence),
        Box::new(BusCapacity),
        Box::new(MonotonicTrace),
        Box::new(EstimatorRange),
        Box::new(ManagerArenaCoherence),
        Box::new(ManagerLifecycle),
        Box::new(CacheConsistency),
        Box::new(ExecPathEquivalence),
        Box::new(TopologyCapacity),
        Box::new(OracleAdmissibility),
    ]
}

/// No processor double-allocation: a decision names each cpu at most once
/// and each thread at most once.
pub struct NoDoubleAllocation;

impl Invariant for NoDoubleAllocation {
    fn name(&self) -> &'static str {
        "no-double-allocation"
    }

    fn paper_ref(&self) -> &'static str {
        "machine model (§2): one hardware context runs one thread per quantum"
    }

    fn check_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        _snapshot: Option<&StageSnapshot>,
        out: &mut Vec<Violation>,
    ) {
        let mut cpus = BTreeSet::new();
        let mut threads = BTreeSet::new();
        for a in &decision.assignments {
            if !cpus.insert(a.cpu.0) {
                out.push(Violation {
                    invariant: self.name(),
                    at_us: view.now,
                    detail: format!("cpu {} assigned twice", a.cpu.0),
                });
            }
            if !threads.insert(a.thread.0) {
                out.push(Violation {
                    invariant: self.name(),
                    at_us: view.now,
                    detail: format!("thread {} assigned twice", a.thread.0),
                });
            }
        }
    }
}

/// Allocated CPUs stay within the machine: every cpu id is in range and
/// the total allocation cannot exceed the processor count.
pub struct CpuBounds;

impl Invariant for CpuBounds {
    fn name(&self) -> &'static str {
        "cpu-bounds"
    }

    fn paper_ref(&self) -> &'static str {
        "machine model (§2): the testbed has a fixed processor count"
    }

    fn check_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        _snapshot: Option<&StageSnapshot>,
        out: &mut Vec<Violation>,
    ) {
        for a in &decision.assignments {
            if a.cpu.0 >= view.num_cpus {
                out.push(Violation {
                    invariant: self.name(),
                    at_us: view.now,
                    detail: format!(
                        "cpu {} out of range (machine has {})",
                        a.cpu.0, view.num_cpus
                    ),
                });
            }
        }
        if decision.assignments.len() > view.num_cpus {
            out.push(Violation {
                invariant: self.name(),
                at_us: view.now,
                detail: format!(
                    "{} allocations exceed {} processors",
                    decision.assignments.len(),
                    view.num_cpus
                ),
            });
        }
    }
}

/// Gang integrity: every application the pipeline committed as a gang has
/// *all* of its runnable threads placed — admitted apps run whole, never
/// partially (the paper's co-scheduling premise).
///
/// Needs a [`StageSnapshot`] (introspection mode) and only applies to
/// gang selections; pinned schedules (the Linux baselines) deliberately
/// timeshare threads independently.
pub struct GangIntegrity;

impl Invariant for GangIntegrity {
    fn name(&self) -> &'static str {
        "gang-integrity"
    }

    fn paper_ref(&self) -> &'static str {
        "§3: gang scheduling — all threads of a scheduled application execute together"
    }

    fn check_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        snapshot: Option<&StageSnapshot>,
        out: &mut Vec<Violation>,
    ) {
        let Some(snap) = snapshot else { return };
        if snap.pinned {
            return;
        }
        let placed: BTreeSet<u64> = decision.assignments.iter().map(|a| a.thread.0).collect();
        for &app in &snap.committed {
            let Some(info) = view.app(app) else { continue };
            for &t in info.threads {
                let runnable = view.thread(t).is_some_and(|ti| ti.is_runnable());
                if runnable && !placed.contains(&t.0) {
                    out.push(Violation {
                        invariant: self.name(),
                        at_us: view.now,
                        detail: format!(
                            "app {} committed as a gang but runnable thread {} is not placed",
                            app.0, t.0
                        ),
                    });
                }
            }
        }
    }
}

/// Stage-pipeline coherence: the committed set is exactly
/// `admitted_head ∪ selected_extra` (in that order, duplicate-free), every
/// committed app was a candidate, the placed threads belong to committed
/// apps, and the committed widths fit the machine.
pub struct StageCoherence;

impl Invariant for StageCoherence {
    fn name(&self) -> &'static str {
        "stage-coherence"
    }

    fn paper_ref(&self) -> &'static str {
        "pipeline contract (DESIGN §11): selector output ⊆ admission output ⊆ candidates"
    }

    fn check_decision(
        &mut self,
        view: &MachineView<'_>,
        decision: &Decision,
        snapshot: Option<&StageSnapshot>,
        out: &mut Vec<Violation>,
    ) {
        let Some(snap) = snapshot else { return };
        let mut fail = |detail: String| {
            out.push(Violation {
                invariant: "stage-coherence",
                at_us: view.now,
                detail,
            });
        };
        let committed: BTreeSet<AppId> = snap.committed.iter().copied().collect();
        if committed.len() != snap.committed.len() {
            fail(format!(
                "committed set has duplicates: {:?}",
                snap.committed
            ));
        }
        let candidates: BTreeSet<AppId> = snap.candidates.iter().copied().collect();
        for app in &committed {
            if !candidates.contains(app) {
                fail(format!("app {} committed but was never a candidate", app.0));
            }
        }
        if !snap.pinned {
            let expected: Vec<AppId> = snap
                .admitted_head
                .iter()
                .chain(snap.selected_extra.iter())
                .copied()
                .collect();
            if snap.committed != expected {
                fail(format!(
                    "committed {:?} is not admitted head {:?} ++ selected extra {:?}",
                    snap.committed, snap.admitted_head, snap.selected_extra
                ));
            }
            let width: usize = committed
                .iter()
                .filter_map(|&a| view.app(a).map(|i| i.width()))
                .sum();
            if width > view.num_cpus {
                fail(format!(
                    "committed gang widths total {width} > {} processors",
                    view.num_cpus
                ));
            }
        }
        // Placed threads must belong to committed apps, gang or pinned.
        for a in &decision.assignments {
            let Some(t) = view.thread(a.thread) else {
                continue;
            };
            if !committed.contains(&t.app) {
                fail(format!(
                    "thread {} of uncommitted app {} was placed",
                    a.thread.0, t.app.0
                ));
            }
        }
    }
}

/// Bus-capacity conservation: traffic issued in a tick never exceeds the
/// sustained capacity × tick length (beyond `f64` rounding slack). The
/// Λ-dilation solve exists precisely to enforce this, so a violation
/// means the solve or the share accounting regressed.
pub struct BusCapacity;

impl Invariant for BusCapacity {
    fn name(&self) -> &'static str {
        "bus-capacity"
    }

    fn paper_ref(&self) -> &'static str {
        "§2: sustained bus bandwidth is 29.5 transactions/µs (STREAM-measured ceiling)"
    }

    fn check_tick(
        &mut self,
        now: SimTime,
        dt_us: u64,
        issued_tx: f64,
        capacity_tx_per_us: f64,
        out: &mut Vec<Violation>,
    ) {
        if !capacity_tx_per_us.is_finite() {
            return; // UnlimitedBus: nothing to conserve.
        }
        let budget = capacity_tx_per_us * dt_us as f64;
        if issued_tx > budget * (1.0 + CAPACITY_REL_TOL) + CAPACITY_REL_TOL {
            out.push(Violation {
                invariant: self.name(),
                at_us: now,
                detail: format!(
                    "issued {issued_tx:.3} tx in {dt_us}µs exceeds capacity budget {budget:.3} tx"
                ),
            });
        }
    }
}

/// Monotonic trace timestamps and balanced stage cycles, delegated to
/// [`busbw_trace::validate_stream`] (which documents why retrospective
/// `app_finished` timestamps are exempt).
pub struct MonotonicTrace;

impl Invariant for MonotonicTrace {
    fn name(&self) -> &'static str {
        "monotonic-trace"
    }

    fn paper_ref(&self) -> &'static str {
        "trace contract (DESIGN §9): deterministic, replayable event streams"
    }

    fn check_events(&mut self, events: &[TraceEvent], out: &mut Vec<Violation>) {
        for v in validate_stream(events) {
            out.push(Violation {
                invariant: self.name(),
                at_us: events.get(v.index).map_or(0, TraceEvent::at_us),
                detail: format!("event {}: {}", v.index, v.detail),
            });
        }
    }
}

/// Estimator range soundness: fed any sample stream, an estimator's
/// estimate stays within the min/max of the (sanitized) samples it
/// actually recorded — Equations 1 and 2 are selections/averages of
/// measurements, so they can never extrapolate beyond them.
pub struct EstimatorRange;

/// Drive `est` with `samples` (via both `record_sample` and
/// `record_quantum`, so quantum-fed and sample-fed estimators both see
/// the stream) and check the final estimate lies within the min/max of
/// the sanitized samples — the trailing `window` of them when
/// `window_hint` is set, the whole stream otherwise. Returns the
/// violation if the estimate escapes the range.
///
/// Public so seeded-fault tests can aim it at a deliberately broken
/// estimator.
pub fn check_estimator_range(
    est: &mut dyn BandwidthEstimator,
    samples: &[f64],
    window_hint: Option<usize>,
) -> Option<Violation> {
    let app = AppId(0);
    for &s in samples {
        est.record_sample(app, s);
        est.record_quantum(app, s);
    }
    // Mirror the production boundary: non-finite rates are dropped,
    // negatives clamp to zero (crate busbw-core, `sanitize_rate`).
    let clean: Vec<f64> = samples
        .iter()
        .filter(|s| s.is_finite())
        .map(|s| s.max(0.0))
        .collect();
    let got = est.estimate(app);
    if clean.is_empty() {
        return (got != 0.0).then(|| Violation {
            invariant: "estimator-range",
            at_us: 0,
            detail: format!(
                "{}: estimate {got} from zero recorded samples (expected 0.0)",
                est.label()
            ),
        });
    }
    let tail = window_hint.map_or(&clean[..], |w| &clean[clean.len().saturating_sub(w)..]);
    let (lo, hi) = tail
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
            (lo.min(s), hi.max(s))
        });
    let slack = 1e-9 * hi.max(1.0);
    (got < lo - slack || got > hi + slack).then(|| Violation {
        invariant: "estimator-range",
        at_us: 0,
        detail: format!(
            "{}: estimate {got} outside recorded sample range [{lo}, {hi}]",
            est.label()
        ),
    })
}

impl Invariant for EstimatorRange {
    fn name(&self) -> &'static str {
        "estimator-range"
    }

    fn paper_ref(&self) -> &'static str {
        "§4, Eq. 1–2: BBW estimates are selections/averages of counter measurements"
    }

    fn self_check(&mut self, seed: u64, out: &mut Vec<Violation>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for round in 0..16 {
            let len = rng.gen_range(1..40usize);
            let samples: Vec<f64> = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.1) {
                        // Poison injections: must be rejected at the
                        // recording boundary, not leak into estimates.
                        [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0][rng.gen_range(0..4usize)]
                    } else {
                        rng.gen_range(0.0..40.0)
                    }
                })
                .collect();
            let window = rng.gen_range(1..8usize);
            let cases: [(Box<dyn BandwidthEstimator>, Option<usize>); 4] = [
                (Box::new(LatestQuantumEstimator::new()), Some(1)),
                (Box::new(QuantaWindowEstimator::new()), Some(5)),
                (
                    Box::new(QuantaWindowEstimator::with_window(window)),
                    Some(window),
                ),
                (Box::new(EwmaEstimator::matching_window(window)), None),
            ];
            for (mut est, hint) in cases {
                if let Some(mut v) = check_estimator_range(est.as_mut(), &samples, hint) {
                    v.detail = format!("self-check round {round}: {}", v.detail);
                    out.push(v);
                }
            }
        }
    }
}

/// Check a sequence of arena reads for seqlock coherence: the publish
/// sequence must never rewind, two reads under the same sequence must be
/// field-identical (a changed field without a publish means a torn write
/// bypassed the seqlock bracket), and published rates must be finite and
/// non-negative.
///
/// Public so seeded-fault tests can aim it at reads taken around
/// `SeqlockArena::publish_torn_rate`.
pub fn check_arena_coherence(reads: &[ArenaSnapshot]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fail = |at_us: u64, detail: String| {
        out.push(Violation {
            invariant: "manager-arena-coherence",
            at_us,
            detail,
        });
    };
    for s in reads {
        if !s.rate_tx_per_us.is_finite() || s.rate_tx_per_us < 0.0 {
            fail(
                s.updated_at_us,
                format!("published rate {} is not a valid tx/µs", s.rate_tx_per_us),
            );
        }
    }
    for w in reads.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if b.seq < a.seq {
            fail(
                b.updated_at_us,
                format!("publish sequence rewound: {} after {}", b.seq, a.seq),
            );
        }
        if a.seq == b.seq && a != b {
            fail(
                b.updated_at_us,
                format!(
                    "fields changed under unchanged publish seq {}: torn write bypassed the \
                     seqlock (rate {} -> {}, total {} -> {})",
                    a.seq,
                    a.rate_tx_per_us,
                    b.rate_tx_per_us,
                    a.total_transactions,
                    b.total_transactions
                ),
            );
        }
    }
    out
}

/// Shared-arena coherence of the CPU manager's publish path (the daemon
/// side the simulator-facing invariants never touch). The self-check
/// drives the *real* `core::manager` stack — `AppRuntime::publish_sample`
/// through a live [`CpuManager`] — plus a raw seqlock publish/read
/// interleave, and runs [`check_arena_coherence`] over every snapshot
/// observed.
pub struct ManagerArenaCoherence;

impl Invariant for ManagerArenaCoherence {
    fn name(&self) -> &'static str {
        "manager-arena-coherence"
    }

    fn paper_ref(&self) -> &'static str {
        "§4: the shared arena is read without locks — the seqlock bracket makes torn rates impossible"
    }

    fn self_check(&mut self, seed: u64, out: &mut Vec<Violation>) {
        // Leg 1: raw seqlock publish/read interleave.
        let arena = SeqlockArena::new();
        let mut reads = vec![arena.read()];
        let base = (seed % 7 + 1) as f64;
        for i in 1..=16u64 {
            arena.publish(ArenaSnapshot {
                seq: i,
                threads: 2,
                total_transactions: i as f64 * base * 1000.0,
                rate_tx_per_us: base,
                updated_at_us: i * 50_000,
            });
            reads.push(arena.read());
            reads.push(arena.read()); // repeated read under one seq
        }
        out.extend(check_arena_coherence(&reads));

        // Leg 2: the real client publish path through a live manager.
        let (mut mgr, handle) = CpuManager::new(
            ManagerConfig::default(),
            Box::new(LatestQuantumEstimator::new()),
        );
        let pending =
            AppRuntime::request_connect(&handle, "audit-self-check").expect("manager alive");
        mgr.pump();
        let mut rt = pending.complete().expect("manager acked connect");
        let t = rt.register_thread().expect("manager alive");
        mgr.pump();
        let mut reads = Vec::new();
        for k in 1..=10u64 {
            t.count_transactions(1_000 * (seed % 5 + 1) * k);
            reads.push(rt.publish_sample(k * 100_000));
            reads.push(rt.publish_sample(k * 100_000)); // zero-dt republish
        }
        mgr.sample();
        mgr.quantum();
        out.extend(check_arena_coherence(&reads));
        rt.disconnect();
        mgr.pump();
    }
}

/// Open-system client lifecycle: in a `ClientArrived` / `ClientShed` /
/// `ClientDeparted` stream (the managerd serve trace), every departure
/// names a previously admitted client, no client arrives or departs
/// twice, and the reported turnaround equals departure minus arrival
/// time. Streams without client events pass vacuously.
pub struct ManagerLifecycle;

impl Invariant for ManagerLifecycle {
    fn name(&self) -> &'static str {
        "manager-lifecycle"
    }

    fn paper_ref(&self) -> &'static str {
        "open-system serve (DESIGN §14): each departure matches exactly one admitted arrival"
    }

    fn check_events(&mut self, events: &[TraceEvent], out: &mut Vec<Violation>) {
        let mut fail = |at_us: u64, detail: String| {
            out.push(Violation {
                invariant: "manager-lifecycle",
                at_us,
                detail,
            });
        };
        let mut arrived: BTreeMap<u64, u64> = BTreeMap::new();
        let mut departed: BTreeSet<u64> = BTreeSet::new();
        for ev in events {
            match *ev {
                TraceEvent::ClientArrived {
                    at_us,
                    client,
                    width,
                } => {
                    if width == 0 {
                        fail(at_us, format!("client {client} admitted with zero threads"));
                    }
                    if arrived.insert(client, at_us).is_some() {
                        fail(at_us, format!("client {client} arrived twice"));
                    }
                }
                TraceEvent::ClientDeparted {
                    at_us,
                    client,
                    turnaround_us,
                } => match arrived.get(&client) {
                    None => fail(
                        at_us,
                        format!("client {client} departed without ever arriving"),
                    ),
                    Some(&arr) => {
                        if !departed.insert(client) {
                            fail(at_us, format!("client {client} departed twice"));
                        } else if at_us.checked_sub(arr) != Some(turnaround_us) {
                            fail(
                                at_us,
                                format!(
                                    "client {client}: turnaround {turnaround_us}µs but arrived \
                                     at {arr}µs and departed at {at_us}µs"
                                ),
                            );
                        }
                    }
                },
                _ => {}
            }
        }
    }
}

/// Run-key / byte-equality consistency. This invariant has no live hook:
/// the differential fuzzer drives it through
/// [`crate::Auditor::check_byte_identity`], comparing artifacts from
/// executions that shared a run key (serial vs parallel vs cache-warm).
/// Installed in the catalog so audits report it alongside the others.
pub struct CacheConsistency;

impl Invariant for CacheConsistency {
    fn name(&self) -> &'static str {
        "cache-consistency"
    }

    fn paper_ref(&self) -> &'static str {
        "determinism contract (DESIGN §10): one run key ⇒ one byte-exact result"
    }
}

/// Execution-path equivalence: the machine's event-driven inner loop
/// (replay fast path + stepped/batched Λ solves) and the legacy per-tick
/// loop must produce byte-identical run-codec output for the same run
/// key. Like [`CacheConsistency`] this invariant has no live hook — the
/// differential fuzzer drives it through
/// [`crate::Auditor::check_byte_identity_as`], comparing a per-tick
/// re-execution and a batched-engine execution against the event-driven
/// baseline. Installed in the catalog so audits report it alongside the
/// others.
pub struct ExecPathEquivalence;

impl Invariant for ExecPathEquivalence {
    fn name(&self) -> &'static str {
        "exec-path-equivalence"
    }

    fn paper_ref(&self) -> &'static str {
        "event-driven engine (DESIGN §13): every execution mode ⇒ one byte-exact result"
    }
}

/// Per-level capacity conservation on hierarchical bus topologies: in
/// every tick, no bus level (socket-local bus or cross-socket
/// interconnect) issues more traffic than its own derated effective
/// capacity, and never more than was demanded of it. Flat single-bus
/// machines report no levels, so the check passes vacuously there (the
/// flat ceiling is [`BusCapacity`]'s job).
pub struct TopologyCapacity;

impl Invariant for TopologyCapacity {
    fn name(&self) -> &'static str {
        "topology-capacity"
    }

    fn paper_ref(&self) -> &'static str {
        "topology model (DESIGN §16): every bus level enforces its own Λ ceiling"
    }

    fn check_levels(
        &mut self,
        now: SimTime,
        _dt_us: u64,
        levels: &[LevelOutcome],
        out: &mut Vec<Violation>,
    ) {
        for (k, l) in levels.iter().enumerate() {
            if l.effective_capacity.is_finite()
                && l.issued > l.effective_capacity * (1.0 + CAPACITY_REL_TOL) + CAPACITY_REL_TOL
            {
                out.push(Violation {
                    invariant: self.name(),
                    at_us: now,
                    detail: format!(
                        "level {k}: issued {:.3} tx/µs exceeds effective capacity {:.3} tx/µs",
                        l.issued, l.effective_capacity
                    ),
                });
            }
            if l.issued > l.demand * (1.0 + CAPACITY_REL_TOL) + CAPACITY_REL_TOL {
                out.push(Violation {
                    invariant: self.name(),
                    at_us: now,
                    detail: format!(
                        "level {k}: issued {:.3} tx/µs exceeds the {:.3} tx/µs demanded of it",
                        l.issued, l.demand
                    ),
                });
            }
        }
    }
}

/// Offline-optimal admissibility: the branch-and-bound oracle
/// (`busbw_core::oracle::offline_optimal`) must never report a cost
/// worse than any heuristic stack evaluated on the same cell, and its
/// root lower bound must never exceed the cost it achieves. Like
/// [`CacheConsistency`] this invariant has no live hook — the
/// experiments audit command drives it differentially, replaying tiny
/// cells through the oracle and every preset and comparing turnarounds.
/// Installed in the catalog so audits report it alongside the others.
pub struct OracleAdmissibility;

impl Invariant for OracleAdmissibility {
    fn name(&self) -> &'static str {
        "oracle-admissibility"
    }

    fn paper_ref(&self) -> &'static str {
        "offline-optimal oracle (DESIGN §17): optimal ≤ every heuristic, bound ≤ achieved cost"
    }
}

/// Per-decision repetition guard used by negative tests: counts how many
/// decisions each invariant flagged, keyed by invariant name.
pub fn count_by_invariant(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for v in violations {
        *m.entry(v.invariant).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Auditor;
    use busbw_sim::{
        AppDescriptor, Assignment, AuditHook, ConstantDemand, CpuId, Machine, ThreadId, ThreadSpec,
        XEON_4WAY,
    };
    use busbw_trace::PipelineStage;

    /// A 4-cpu machine with two 2-thread gangs (apps 0 and 1; threads
    /// 0,1 and 2,3).
    fn two_gang_machine() -> Machine {
        let mut m = Machine::new(XEON_4WAY);
        for name in ["a", "b"] {
            m.add_app(AppDescriptor::new(
                name,
                (0..2)
                    .map(|_| ThreadSpec::new(50_000.0, Box::new(ConstantDemand::new(1.0, 0.2))))
                    .collect(),
            ));
        }
        m
    }

    fn assign(thread: u64, cpu: usize) -> Assignment {
        Assignment {
            thread: ThreadId(thread),
            cpu: CpuId(cpu),
        }
    }

    fn decision(assignments: Vec<Assignment>) -> Decision {
        Decision {
            assignments,
            next_resched_in_us: 200_000,
            sample_period_us: None,
        }
    }

    /// A snapshot for both gangs committed via head admission.
    fn both_committed() -> StageSnapshot {
        StageSnapshot {
            candidates: vec![AppId(0), AppId(1)],
            admitted_head: vec![AppId(0), AppId(1)],
            selected_extra: vec![],
            pinned: false,
            committed: vec![AppId(0), AppId(1)],
        }
    }

    #[test]
    fn clean_decision_passes_every_builtin() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        let d = decision(vec![assign(0, 0), assign(1, 1), assign(2, 2), assign(3, 3)]);
        aud.on_decision(&m.view(), &d, Some(&both_committed()));
        aud.on_tick(0, 100, 1000.0, XEON_4WAY.bus.capacity_tx_per_us);
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }

    #[test]
    fn double_booked_cpu_fires_no_double_allocation() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        // Threads 0 and 1 both pinned to cpu 0: the seeded double-booking
        // placer fault.
        let d = decision(vec![assign(0, 0), assign(1, 0)]);
        aud.on_decision(&m.view(), &d, None);
        let counts = count_by_invariant(aud.violations());
        assert_eq!(counts.get("no-double-allocation"), Some(&1));
    }

    #[test]
    fn repeated_thread_fires_no_double_allocation() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        let d = decision(vec![assign(0, 0), assign(0, 1)]);
        aud.on_decision(&m.view(), &d, None);
        assert!(count_by_invariant(aud.violations()).contains_key("no-double-allocation"));
    }

    #[test]
    fn out_of_range_cpu_fires_cpu_bounds() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        let d = decision(vec![assign(0, 7)]);
        aud.on_decision(&m.view(), &d, None);
        assert!(count_by_invariant(aud.violations()).contains_key("cpu-bounds"));
    }

    #[test]
    fn half_placed_gang_fires_gang_integrity() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        // App 1 committed but only thread 2 placed; thread 3 is runnable
        // and left off-cpu.
        let d = decision(vec![assign(0, 0), assign(1, 1), assign(2, 2)]);
        aud.on_decision(&m.view(), &d, Some(&both_committed()));
        let counts = count_by_invariant(aud.violations());
        assert_eq!(counts.get("gang-integrity"), Some(&1));
    }

    #[test]
    fn committed_set_mismatch_fires_stage_coherence() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        let snap = StageSnapshot {
            candidates: vec![AppId(0)],
            admitted_head: vec![AppId(0)],
            selected_extra: vec![],
            pinned: false,
            // App 1 committed without ever being admitted or a candidate.
            committed: vec![AppId(0), AppId(1)],
        };
        let d = decision(vec![assign(0, 0), assign(1, 1), assign(2, 2), assign(3, 3)]);
        aud.on_decision(&m.view(), &d, Some(&snap));
        let counts = count_by_invariant(aud.violations());
        assert!(counts.get("stage-coherence").is_some_and(|&n| n >= 2)); // not-a-candidate + head++extra mismatch
    }

    #[test]
    fn uncommitted_placement_fires_stage_coherence() {
        let m = two_gang_machine();
        let mut aud = Auditor::with_builtins();
        let snap = StageSnapshot {
            candidates: vec![AppId(0), AppId(1)],
            admitted_head: vec![AppId(0)],
            selected_extra: vec![],
            pinned: false,
            committed: vec![AppId(0)],
        };
        // Thread 2 belongs to app 1, which was not committed.
        let d = decision(vec![assign(0, 0), assign(1, 1), assign(2, 2)]);
        aud.on_decision(&m.view(), &d, Some(&snap));
        assert!(count_by_invariant(aud.violations()).contains_key("stage-coherence"));
    }

    #[test]
    fn oversubscribed_bus_fires_bus_capacity() {
        let mut aud = Auditor::with_builtins();
        let cap = XEON_4WAY.bus.capacity_tx_per_us;
        aud.on_tick(500, 100, cap * 100.0 * 1.01, cap);
        let counts = count_by_invariant(aud.violations());
        assert_eq!(counts.get("bus-capacity"), Some(&1));
        // Exactly at budget (within tolerance) is fine.
        let mut clean = Auditor::with_builtins();
        clean.on_tick(500, 100, cap * 100.0, cap);
        assert!(clean.is_clean());
    }

    #[test]
    fn unlimited_bus_is_exempt_from_bus_capacity() {
        let mut aud = Auditor::with_builtins();
        aud.on_tick(0, 100, 1e12, f64::INFINITY);
        assert!(aud.is_clean());
    }

    #[test]
    fn rewinding_trace_fires_monotonic_trace() {
        let mut aud = Auditor::with_builtins();
        let ev = vec![
            TraceEvent::StageDecision {
                at_us: 500,
                stage: PipelineStage::Estimate,
                items: 0,
            },
            TraceEvent::StageDecision {
                at_us: 400, // clock rewound
                stage: PipelineStage::Admit,
                items: 0,
            },
            TraceEvent::StageDecision {
                at_us: 500,
                stage: PipelineStage::Select,
                items: 0,
            },
            TraceEvent::StageDecision {
                at_us: 500,
                stage: PipelineStage::Place,
                items: 0,
            },
        ];
        aud.check_events(&ev);
        let counts = count_by_invariant(aud.violations());
        assert_eq!(counts.get("monotonic-trace"), Some(&1));
    }

    #[test]
    fn dangling_stage_cycle_fires_monotonic_trace() {
        let mut aud = Auditor::with_builtins();
        let ev = vec![TraceEvent::StageDecision {
            at_us: 0,
            stage: PipelineStage::Estimate,
            items: 0,
        }];
        aud.check_events(&ev);
        assert!(count_by_invariant(aud.violations()).contains_key("monotonic-trace"));
    }

    /// The seeded estimator fault: reports double the latest sample, so
    /// any nonzero stream escapes the recorded range.
    struct DoublingEstimator {
        latest: f64,
    }

    impl BandwidthEstimator for DoublingEstimator {
        fn record_sample(&mut self, _app: AppId, rate: f64) {
            if rate.is_finite() {
                self.latest = rate.max(0.0);
            }
        }

        fn record_quantum(&mut self, _app: AppId, _rate: f64) {}

        fn estimate(&self, _app: AppId) -> f64 {
            self.latest * 2.0
        }

        fn forget(&mut self, _app: AppId) {}

        fn label(&self) -> &'static str {
            "Doubling"
        }
    }

    #[test]
    fn broken_estimator_fires_estimator_range() {
        let mut est = DoublingEstimator { latest: 0.0 };
        let v = check_estimator_range(&mut est, &[4.0, 8.0], None)
            .expect("doubling estimator must escape the sample range");
        assert_eq!(v.invariant, "estimator-range");
        assert!(v.detail.contains("Doubling"), "{}", v.detail);
    }

    #[test]
    fn real_estimators_survive_the_self_check() {
        let mut aud = Auditor::with_builtins();
        for seed in [0, 42, 1234] {
            aud.self_check(seed);
        }
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }

    #[test]
    fn byte_divergence_fires_cache_consistency() {
        let mut aud = Auditor::with_builtins();
        aud.check_byte_identity("unit test artifact", b"same-prefix-A", b"same-prefix-B");
        let v = &aud.violations()[0];
        assert_eq!(v.invariant, "cache-consistency");
        assert!(v.detail.contains("offset 12"), "{}", v.detail);
        let mut clean = Auditor::with_builtins();
        clean.check_byte_identity("identical", b"x", b"x");
        assert!(clean.is_clean());
    }

    #[test]
    fn catalog_names_are_unique_and_complete() {
        let aud = Auditor::with_builtins();
        let names: Vec<_> = aud.catalog().iter().map(|(n, _)| *n).collect();
        let unique: BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        for n in [
            "no-double-allocation",
            "cpu-bounds",
            "gang-integrity",
            "stage-coherence",
            "bus-capacity",
            "monotonic-trace",
            "estimator-range",
            "manager-arena-coherence",
            "manager-lifecycle",
            "cache-consistency",
            "exec-path-equivalence",
            "topology-capacity",
            "oracle-admissibility",
        ] {
            assert!(names.contains(&n), "missing invariant {n}");
        }
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn oversubscribed_level_fires_topology_capacity() {
        let mut aud = Auditor::with_builtins();
        let levels = [
            LevelOutcome {
                demand: 40.0,
                issued: 30.0, // over the 28.0 ceiling
                effective_capacity: 28.0,
                dilation: 40.0 / 28.0,
                utilization: 1.0,
                saturated: true,
            },
            LevelOutcome {
                demand: 5.0,
                issued: 6.0, // issued more than was demanded
                effective_capacity: 44.25,
                dilation: 1.0,
                utilization: 0.14,
                saturated: false,
            },
        ];
        aud.on_levels(700, 100, &levels);
        let counts = count_by_invariant(aud.violations());
        assert_eq!(counts.get("topology-capacity"), Some(&2));
        assert!(aud.violations()[0].detail.contains("level 0"));
    }

    #[test]
    fn conserving_levels_pass_topology_capacity() {
        let mut aud = Auditor::with_builtins();
        let levels = [LevelOutcome {
            demand: 40.0,
            issued: 28.0,
            effective_capacity: 28.0,
            dilation: 40.0 / 28.0,
            utilization: 1.0,
            saturated: true,
        }];
        aud.on_levels(700, 100, &levels);
        // Empty level slices (flat buses) are vacuously clean too.
        aud.on_levels(800, 100, &[]);
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }

    #[test]
    fn live_multi_socket_run_passes_topology_capacity() {
        // Drive a real 2-socket machine hot enough to saturate a local
        // bus; the per-level accounting must still conserve capacity.
        use busbw_sim::TopologyConfig;
        let mut m = Machine::new(busbw_sim::MachineConfig {
            num_cpus: 8,
            topology: TopologyConfig::multi(2),
            ..XEON_4WAY
        });
        m.add_app(AppDescriptor::new(
            "hot",
            (0..4)
                .map(|_| ThreadSpec::new(400_000.0, Box::new(ConstantDemand::new(12.0, 0.9))))
                .collect(),
        ));
        let mut sched = busbw_sim::testkit::Replay::new(Decision {
            assignments: (0..4).map(|t| assign(t, t as usize)).collect(),
            next_resched_in_us: 1_000_000,
            sample_period_us: None,
        });
        let mut aud = Auditor::with_builtins();
        let out = m.run_audited(
            &mut sched,
            busbw_sim::StopCondition::At(100_000),
            Some(&mut aud),
        );
        assert!(
            out.stats.n_levels > 0,
            "hierarchical bus must report levels"
        );
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }

    #[test]
    fn torn_rate_write_fires_manager_arena_coherence() {
        // The seeded seqlock fault: mutate the published rate without the
        // odd/even bracket. Successive reads observe different fields
        // under one unchanged sequence — exactly what the coherence check
        // exists to catch.
        let arena = SeqlockArena::new();
        arena.publish(ArenaSnapshot {
            seq: 1,
            threads: 2,
            total_transactions: 1_000.0,
            rate_tx_per_us: 4.0,
            updated_at_us: 100_000,
        });
        let before = arena.read();
        arena.publish_torn_rate(99.0);
        let after = arena.read();
        assert_eq!(before.seq, after.seq, "torn write must not bump the seq");
        let violations = check_arena_coherence(&[before, after]);
        let counts = count_by_invariant(&violations);
        assert_eq!(counts.get("manager-arena-coherence"), Some(&1));
        assert!(
            violations[0].detail.contains("torn write"),
            "{}",
            violations[0].detail
        );
        // A bracketed publish of the same change is coherent.
        let clean_arena = SeqlockArena::new();
        clean_arena.publish(before);
        let a = clean_arena.read();
        clean_arena.publish(ArenaSnapshot {
            seq: 2,
            rate_tx_per_us: 99.0,
            ..before
        });
        let b = clean_arena.read();
        assert!(check_arena_coherence(&[a, b]).is_empty());
    }

    #[test]
    fn manager_publish_path_self_check_is_clean() {
        let mut inv = ManagerArenaCoherence;
        let mut out = Vec::new();
        for seed in [0, 3, 42] {
            inv.self_check(seed, &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ghost_and_double_departures_fire_manager_lifecycle() {
        let mut aud = Auditor::with_builtins();
        let ev = vec![
            TraceEvent::ClientArrived {
                at_us: 100,
                client: 0,
                width: 2,
            },
            // Ghost: client 7 never arrived.
            TraceEvent::ClientDeparted {
                at_us: 200,
                client: 7,
                turnaround_us: 100,
            },
            TraceEvent::ClientDeparted {
                at_us: 300,
                client: 0,
                turnaround_us: 200,
            },
            // Double departure of client 0.
            TraceEvent::ClientDeparted {
                at_us: 400,
                client: 0,
                turnaround_us: 300,
            },
        ];
        aud.check_events(&ev);
        let counts = count_by_invariant(aud.violations());
        assert_eq!(counts.get("manager-lifecycle"), Some(&2));
    }

    #[test]
    fn turnaround_mismatch_fires_manager_lifecycle() {
        let mut aud = Auditor::with_builtins();
        let ev = vec![
            TraceEvent::ClientArrived {
                at_us: 100,
                client: 3,
                width: 1,
            },
            TraceEvent::ClientDeparted {
                at_us: 500,
                client: 3,
                turnaround_us: 999, // should be 400
            },
        ];
        aud.check_events(&ev);
        assert!(count_by_invariant(aud.violations()).contains_key("manager-lifecycle"));
    }

    #[test]
    fn real_open_serve_stream_passes_the_lifecycle_check() {
        // Drive the actual managerd event loop and audit its trace: the
        // positive leg of the seeded-fault pair above.
        let cfg = busbw_managerd::OpenConfig {
            arrivals: busbw_managerd::ArrivalProcess::Poisson { rate_per_s: 60.0 },
            duration_us: 1_500_000,
            seed: 11,
            queue_capacity: 4,
            collect_events: true,
            ..busbw_managerd::OpenConfig::default()
        };
        let out = busbw_managerd::serve(&cfg, Box::new(LatestQuantumEstimator::new()));
        assert!(out.served > 0, "serve produced no departures to audit");
        let mut aud = Auditor::with_builtins();
        aud.check_events(&out.events);
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }
}
