//! Figure 1 benches: regenerate the §3 motivation cells.
//!
//! `fig1a/*` measures the four bus-rate configurations; `fig1b/*` the
//! slowdown measurements — each for a light (Volrend) and a heavy (CG)
//! application, which bound the behaviour of the other nine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use busbw_bench::bench_rc;
use busbw_experiments::runner::{run_spec, solo_turnaround_us, PolicyKind};
use busbw_workloads::mix;
use busbw_workloads::paper::PaperApp;

fn bench_fig1a(c: &mut Criterion) {
    let rc = bench_rc();
    let mut g = c.benchmark_group("fig1a");
    g.sample_size(10);
    for app in [PaperApp::Volrend, PaperApp::Cg] {
        g.bench_function(format!("solo/{}", app.name()), |b| {
            b.iter(|| black_box(run_spec(&mix::fig1_solo(app), PolicyKind::Linux, &rc)))
        });
        g.bench_function(format!("two_instances/{}", app.name()), |b| {
            b.iter(|| {
                black_box(run_spec(
                    &mix::fig1_two_instances(app),
                    PolicyKind::Linux,
                    &rc,
                ))
            })
        });
        g.bench_function(format!("with_bbma/{}", app.name()), |b| {
            b.iter(|| black_box(run_spec(&mix::fig1_with_bbma(app), PolicyKind::Linux, &rc)))
        });
        g.bench_function(format!("with_nbbma/{}", app.name()), |b| {
            b.iter(|| black_box(run_spec(&mix::fig1_with_nbbma(app), PolicyKind::Linux, &rc)))
        });
    }
    g.finish();
}

fn bench_fig1b(c: &mut Criterion) {
    let rc = bench_rc();
    let mut g = c.benchmark_group("fig1b");
    g.sample_size(10);
    for app in [PaperApp::Volrend, PaperApp::Cg] {
        g.bench_function(format!("slowdown_pipeline/{}", app.name()), |b| {
            b.iter(|| {
                let solo = solo_turnaround_us(app, &rc);
                let multi = run_spec(&mix::fig1_with_bbma(app), PolicyKind::Linux, &rc);
                black_box(multi.mean_turnaround_us / solo)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1a, bench_fig1b);
criterion_main!(benches);
