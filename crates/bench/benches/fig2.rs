//! Figure 2 benches: regenerate the §5 evaluation cells — one workload
//! set × policy per bench, for a representative heavy application (CG,
//! the paper's largest-effect case).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use busbw_bench::bench_rc;
use busbw_experiments::runner::{run_spec, PolicyKind};
use busbw_experiments::Fig2Set;
use busbw_workloads::paper::PaperApp;

fn bench_fig2(c: &mut Criterion) {
    let rc = bench_rc();
    for set in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
        let mut g = c.benchmark_group(set.id());
        g.sample_size(10);
        for policy in [PolicyKind::Linux, PolicyKind::Latest, PolicyKind::Window] {
            g.bench_function(format!("CG/{}", policy.label()), |b| {
                b.iter(|| black_box(run_spec(&set.spec(PaperApp::Cg), policy, &rc)))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
