//! Microbenchmarks of the hot kernels: per-tick bus arbitration, max-min
//! allocation, gang selection, cache dynamics, estimators, and whole-
//! machine tick throughput. These bound the simulator's own overhead and
//! the per-quantum cost of the scheduling policies (the user-level
//! manager's decision path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use busbw_core::estimator::{BandwidthEstimator, QuantaWindowEstimator};
use busbw_core::model::predict_set_value;
use busbw_core::{fitness, linux_like, select_gangs, Candidate, DemandTracker};
use busbw_metrics::MovingWindow;
use busbw_sim::{
    AppDescriptor, BusConfig, BusModel, BusRequest, CacheConfig, CacheState, ConstantDemand, CpuId,
    FsbBus, Machine, MaxMinFairBus, StopCondition, ThreadId, ThreadSpec, XEON_4WAY,
};

fn reqs(n: usize) -> Vec<BusRequest> {
    (0..n)
        .map(|i| BusRequest {
            thread: ThreadId(i as u64),
            rate: 3.0 + (i as f64) * 2.5,
            mu: 0.1 + 0.8 * (i as f64 / n as f64),
            socket: 0,
            remote: 0.0,
        })
        .collect()
}

fn bench_bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus_arbitration");
    let mut fsb = FsbBus::new(BusConfig::default());
    let mut mm = MaxMinFairBus::new(BusConfig::default());
    for n in [2usize, 4, 8, 16] {
        let r = reqs(n);
        // The steady-state fast path: the demand set is unchanged from the
        // previous tick, so the memoized Λ is reused and only the shares
        // are rebuilt.
        g.bench_with_input(BenchmarkId::new("fsb_memo_hit", n), &r, |b, r| {
            fsb.arbitrate(r); // prime the memo
            b.iter(|| black_box(fsb.arbitrate(r)))
        });
        // The full solve: two alternating demand sets defeat the memo, so
        // every call re-solves Λ (warm-started from the previous root).
        let r2: Vec<BusRequest> = r
            .iter()
            .map(|q| BusRequest {
                thread: q.thread,
                rate: q.rate * 1.07,
                mu: q.mu,
                socket: 0,
                remote: 0.0,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("fsb_full_solve", n), &r, |b, r| {
            b.iter(|| {
                black_box(fsb.arbitrate(r));
                black_box(fsb.arbitrate(&r2))
            })
        });
        g.bench_with_input(BenchmarkId::new("max_min", n), &r, |b, r| {
            b.iter(|| black_box(mm.arbitrate(r)))
        });
    }
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_selection");
    for n in [4usize, 8, 32, 128] {
        let cands: Vec<Candidate<u32>> = (0..n)
            .map(|i| Candidate {
                key: i as u32,
                width: 1 + (i % 3),
                bbw_per_thread: (i as f64 * 1.7) % 24.0,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("select_gangs", n), &cands, |b, cands| {
            b.iter(|| black_box(select_gangs(cands, 4, 29.5)))
        });
    }
    g.bench_function("fitness_eq1", |b| {
        b.iter(|| black_box(fitness(black_box(7.4), black_box(11.65))))
    });
    g.bench_function("demand_reconstruction", |b| {
        let mut t = DemandTracker::new();
        b.iter(|| black_box(t.observe(busbw_sim::AppId(1), black_box(4.87), black_box(2.63))))
    });
    g.bench_function("model_predict_4_jobs", |b| {
        let jobs = [(2usize, 11.65, 1.0), (1, 23.6, 1.0), (1, 23.6, 1.0)];
        b.iter(|| black_box(predict_set_value(black_box(&jobs), 29.5)))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_model");
    let mut cache = CacheState::new(4, CacheConfig::default());
    let placement = [
        Some(ThreadId(0)),
        Some(ThreadId(1)),
        Some(ThreadId(2)),
        Some(ThreadId(3)),
    ];
    // Warm some state in first.
    cache.advance(&placement, 50_000.0);
    g.bench_function("advance_4cpu_tick", |b| {
        b.iter(|| cache.advance(black_box(&placement), black_box(100.0)))
    });
    g.bench_function("warmth_lookup", |b| {
        b.iter(|| black_box(cache.warmth(CpuId(0), ThreadId(0))))
    });
    g.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimators");
    g.bench_function("quanta_window_record_estimate", |b| {
        let mut e = QuantaWindowEstimator::new();
        let app = busbw_sim::AppId(1);
        b.iter(|| {
            e.record_sample(app, black_box(11.65));
            black_box(e.estimate(app))
        })
    });
    g.bench_function("moving_window_push_mean", |b| {
        let mut w = MovingWindow::new(5);
        b.iter(|| {
            w.push(black_box(3.3));
            black_box(w.mean())
        })
    });
    g.finish();
}

fn bench_prof(c: &mut Criterion) {
    use busbw_sim::{solve_lambda, Phase, PhaseTimer};

    let mut g = c.benchmark_group("prof");
    // The cost the engine pays per phase when profiling is off: this must
    // stay at one predicted branch (single-digit ns for the whole
    // begin/end pair), because every production tick pays it eight times.
    g.bench_function("phase_timer_disabled_pair", |b| {
        let mut t = PhaseTimer::new();
        b.iter(|| {
            let tok = t.begin();
            t.end(black_box(Phase::Solve), tok);
        })
    });
    // The enabled cost: two clock reads plus a histogram bucket — the
    // constant every attributed phase carries, reported so profile tables
    // can be read with the skew in mind.
    g.bench_function("phase_timer_enabled_pair", |b| {
        let mut t = PhaseTimer::new();
        t.set_enabled(true);
        b.iter(|| {
            let tok = t.begin();
            t.end(black_box(Phase::Solve), tok);
        })
    });
    // The Newton Λ kernel alone (no bus wrapper, no memo): the floor under
    // every saturated tick the request memo cannot absorb. Cold start
    // (warm = NaN is never accepted) at the lane counts the tick engine
    // actually sees.
    for n in [2usize, 4, 8, 16] {
        let r = reqs(n);
        let cap: f64 = r.iter().map(|q| q.rate).sum::<f64>() * 0.6;
        g.bench_with_input(BenchmarkId::new("solve_lambda_cold", n), &r, |b, r| {
            b.iter(|| black_box(solve_lambda(black_box(r), black_box(cap), f64::NAN)))
        });
        // Warm-started from its own root: the one-eval acceptance path.
        let root = solve_lambda(&r, cap, f64::NAN);
        g.bench_with_input(BenchmarkId::new("solve_lambda_warm", n), &r, |b, r| {
            b.iter(|| black_box(solve_lambda(black_box(r), black_box(cap), black_box(root))))
        });
    }
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    // A second of simulated time, 8 threads, Linux baseline: measures raw
    // simulation throughput (ticks/sec).
    g.bench_function("one_simulated_second_8_threads", |b| {
        b.iter(|| {
            let mut m = Machine::new(XEON_4WAY);
            for i in 0..4 {
                let threads = (0..2)
                    .map(|_| {
                        ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(5.0, 0.6)))
                    })
                    .collect();
                m.add_app(AppDescriptor::new(format!("a{i}"), threads));
            }
            let mut s = linux_like();
            black_box(m.run(&mut s, StopCondition::At(1_000_000)))
        })
    });
    g.finish();
}

fn bench_manager(c: &mut Criterion) {
    use busbw_core::estimator::QuantaWindowEstimator as QW;
    use busbw_core::manager::{AppRuntime, CpuManager, ManagerConfig};

    // The manager's whole per-quantum decision path (pump + settle +
    // rotate + select + signal) with the paper's workload size (6 jobs):
    // this is the overhead the paper bounds at ≤ 4.5 % of a 200 ms
    // quantum — i.e. the decision must cost far less than 9 ms.
    let mut g = c.benchmark_group("cpu_manager");
    let (mut mgr, handle) = CpuManager::new(ManagerConfig::default(), Box::new(QW::new()));
    let mut apps = Vec::new();
    for i in 0..6 {
        let pending =
            AppRuntime::request_connect(&handle, format!("job{i}")).expect("manager alive");
        mgr.pump();
        let mut app = pending.complete().expect("manager alive");
        let w = if i < 2 { 2 } else { 1 };
        for _ in 0..w {
            let th = app.register_thread().expect("manager alive");
            th.count_transactions(1000);
        }
        mgr.pump();
        app.publish_sample(100_000 * (i as u64 + 1));
        apps.push(app);
    }
    g.bench_function("quantum_decision_6_jobs", |b| {
        b.iter(|| black_box(mgr.quantum()))
    });
    g.bench_function("sample_6_jobs", |b| {
        b.iter(|| {
            mgr.sample();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bus,
    bench_selection,
    bench_cache,
    bench_estimators,
    bench_prof,
    bench_machine,
    bench_manager
);
criterion_main!(benches);
