//! Ablation benches: the window-length tradeoff (§4), the quantum sweep
//! (§5), and the fitness-vs-oblivious-gang comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use busbw_bench::bench_rc;
use busbw_experiments::runner::{run_spec, PolicyKind};
use busbw_experiments::Fig2Set;
use busbw_metrics::MovingWindow;
use busbw_sim::DemandModel;
use busbw_workloads::burst::TwoStateBurst;
use busbw_workloads::paper::PaperApp;

fn bench_window_ablation(c: &mut Criterion) {
    let rc = bench_rc();
    let mut g = c.benchmark_group("ablation_window");
    g.sample_size(10);
    // Analytic criterion on a bursty trace.
    let mut burst = TwoStateBurst::raytrace(10.65, 0.82, 42);
    let trace: Vec<f64> = (0..600)
        .map(|i| burst.demand_at(0.0, i * 100_000).rate)
        .collect();
    for w in [1usize, 5, 15] {
        g.bench_function(format!("distance_criterion/W{w}"), |b| {
            b.iter(|| black_box(MovingWindow::mean_relative_distance(w, &trace)))
        });
    }
    // End-to-end Raytrace set-B cell per window length.
    for w in [1usize, 5, 15] {
        g.bench_function(format!("raytrace_setB/W{w}"), |b| {
            b.iter(|| {
                black_box(run_spec(
                    &Fig2Set::B.spec(PaperApp::Raytrace),
                    PolicyKind::WindowN(w),
                    &rc,
                ))
            })
        });
    }
    g.finish();
}

fn bench_quantum_ablation(c: &mut Criterion) {
    let rc = bench_rc();
    let mut g = c.benchmark_group("ablation_quantum");
    g.sample_size(10);
    for q in [100_000u64, 200_000, 400_000] {
        g.bench_function(format!("latest_setC_CG/{}ms", q / 1000), |b| {
            b.iter(|| {
                black_box(run_spec(
                    &Fig2Set::C.spec(PaperApp::Cg),
                    PolicyKind::LatestWithQuantum(q),
                    &rc,
                ))
            })
        });
    }
    g.finish();
}

fn bench_fitness_ablation(c: &mut Criterion) {
    let rc = bench_rc();
    let mut g = c.benchmark_group("ablation_fitness");
    g.sample_size(10);
    for p in [
        PolicyKind::Window,
        PolicyKind::RoundRobinGang,
        PolicyKind::RandomGang(42),
        PolicyKind::GreedyPack,
    ] {
        g.bench_function(format!("setC_MG/{}", p.label()), |b| {
            b.iter(|| black_box(run_spec(&Fig2Set::C.spec(PaperApp::Mg), p, &rc)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_window_ablation,
    bench_quantum_ablation,
    bench_fitness_ablation
);
criterion_main!(benches);
