//! Shared helpers for the Criterion benches (see `benches/`).
//!
//! Each paper figure has a bench that regenerates a representative cell at
//! reduced scale — `cargo bench` therefore exercises every experiment
//! path — and `benches/micro.rs` covers the hot kernels (bus arbitration,
//! gang selection, cache dynamics, estimators).

#![forbid(unsafe_code)]

use busbw_experiments::runner::RunnerConfig;

/// Runner configuration for benches: small enough to keep `cargo bench`
/// minutes-scale, big enough to span many quanta (1/20 of the paper's
/// 6-second solo work = 60+ ticks per quantum, ~6 quanta per solo run).
pub fn bench_rc() -> RunnerConfig {
    RunnerConfig {
        scale: 0.05,
        ..RunnerConfig::default()
    }
}
