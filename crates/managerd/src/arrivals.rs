//! Seeded arrival processes for the open-system manager server.
//!
//! Three inter-arrival families cover the qualitative regimes an open
//! scheduler faces: memoryless load ([`ArrivalProcess::Poisson`]), bursty
//! heavy-tailed load ([`ArrivalProcess::Pareto`]), and slowly modulated
//! trace-driven load ([`ArrivalProcess::Diurnal`]). All three are driven
//! by the same deterministic generator, so a fixed seed produces one
//! arrival schedule, byte-for-byte, on any machine.

/// A small deterministic PRNG (SplitMix64). The open server's whole
/// determinism contract hangs on the arrival stream, so the generator is
/// pinned here rather than borrowed from a library whose stream could
/// drift.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi]` (inclusive; `lo == hi` is fine).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        lo + self.next_u64() % span
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
}

/// The relative-rate profile [`ArrivalProcess::Diurnal`] cycles through:
/// one synthetic "day" of load, sampled at eight phases (night trough to
/// evening peak). Mean is 1.0 so the configured rate is the daily mean.
pub const DIURNAL_PROFILE: [f64; 8] = [0.30, 0.45, 0.85, 1.45, 1.90, 1.45, 1.00, 0.60];

/// Smallest admissible Pareto shape parameter. Below this the
/// distribution's mean diverges, so the sampler has always clamped to
/// it — and every edge that derives identity from the process (labels,
/// encoded run keys) must clamp the same way, or two processes that
/// sample identically would carry different keys.
pub const MIN_PARETO_ALPHA: f64 = 1.0 + 1e-6;

/// An open-system inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_s` clients per second
    /// (exponential inter-arrival gaps).
    Poisson {
        /// Mean arrival rate, clients per second.
        rate_per_s: f64,
    },
    /// Heavy-tailed gaps: Pareto with shape `alpha` (> 1) and the given
    /// mean rate. Small `alpha` (≈1.5) gives pronounced bursts separated
    /// by long lulls at the same average load.
    Pareto {
        /// Mean arrival rate, clients per second.
        rate_per_s: f64,
        /// Pareto shape parameter; must be > 1 for the mean to exist.
        alpha: f64,
    },
    /// Trace-driven diurnal load: Poisson gaps whose rate is modulated by
    /// [`DIURNAL_PROFILE`], one full cycle over `period_us`. `rate_per_s`
    /// is the cycle-mean rate.
    Diurnal {
        /// Mean arrival rate over one full cycle, clients per second.
        rate_per_s: f64,
        /// Length of one profile cycle, µs.
        period_us: u64,
    },
}

impl ArrivalProcess {
    /// Heavy-tailed arrivals with the shape already validated: `alpha`
    /// is clamped to [`MIN_PARETO_ALPHA`] at construction, so the stored
    /// parameter is exactly the one the sampler will use.
    pub fn pareto(rate_per_s: f64, alpha: f64) -> Self {
        ArrivalProcess::Pareto {
            rate_per_s,
            alpha: alpha.max(MIN_PARETO_ALPHA),
        }
    }

    /// The same process with every parameter in canonical form
    /// (currently: Pareto `alpha` clamped to [`MIN_PARETO_ALPHA`], the
    /// value the sampler actually uses). Anything that names or encodes
    /// a process must go through this, so that processes with identical
    /// arrival streams carry identical labels and run keys.
    pub fn normalized(self) -> Self {
        match self {
            ArrivalProcess::Pareto { rate_per_s, alpha } => ArrivalProcess::Pareto {
                rate_per_s,
                alpha: alpha.max(MIN_PARETO_ALPHA),
            },
            other => other,
        }
    }

    /// Short stable label (figure column headers, cache diagnostics).
    pub fn label(&self) -> String {
        match self.normalized() {
            ArrivalProcess::Poisson { rate_per_s } => format!("poisson:{rate_per_s}"),
            ArrivalProcess::Pareto { rate_per_s, alpha } => {
                format!("pareto:{rate_per_s}:{alpha}")
            }
            ArrivalProcess::Diurnal { rate_per_s, .. } => format!("diurnal:{rate_per_s}"),
        }
    }

    /// Mean offered arrival rate, clients per second.
    pub fn rate_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s }
            | ArrivalProcess::Pareto { rate_per_s, .. }
            | ArrivalProcess::Diurnal { rate_per_s, .. } => rate_per_s,
        }
    }

    /// The same process at a different mean rate (offered-load sweeps).
    pub fn with_rate(self, rate_per_s: f64) -> Self {
        match self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_per_s },
            ArrivalProcess::Pareto { alpha, .. } => ArrivalProcess::Pareto { rate_per_s, alpha },
            ArrivalProcess::Diurnal { period_us, .. } => ArrivalProcess::Diurnal {
                rate_per_s,
                period_us,
            },
        }
    }

    /// Draw the gap (µs, ≥ 1) from `now_us` to the next arrival.
    pub fn next_gap_us(&self, now_us: u64, rng: &mut Rng64) -> u64 {
        let gap = match *self {
            ArrivalProcess::Poisson { rate_per_s } => exp_gap_us(1e6 / rate_per_s.max(1e-9), rng),
            ArrivalProcess::Pareto { rate_per_s, alpha } => {
                let alpha = alpha.max(MIN_PARETO_ALPHA);
                let mean_us = 1e6 / rate_per_s.max(1e-9);
                // Scale x_m so the Pareto mean x_m·α/(α−1) equals mean_us.
                let xm = mean_us * (alpha - 1.0) / alpha;
                xm / (1.0 - rng.f64()).powf(1.0 / alpha)
            }
            ArrivalProcess::Diurnal {
                rate_per_s,
                period_us,
            } => {
                let phase_len = (period_us / DIURNAL_PROFILE.len() as u64).max(1);
                let phase = (now_us % period_us.max(1)) / phase_len;
                let mult = DIURNAL_PROFILE[(phase as usize).min(DIURNAL_PROFILE.len() - 1)];
                exp_gap_us(1e6 / (rate_per_s * mult).max(1e-9), rng)
            }
        };
        // Never stall the clock: a sub-µs gap rounds up to 1 µs.
        (gap as u64).max(1)
    }
}

/// Exponential gap with the given mean, µs.
fn exp_gap_us(mean_us: f64, rng: &mut Rng64) -> f64 {
    -mean_us * (1.0 - rng.f64()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_label_and_stream_agree_for_subcritical_alpha() {
        // A shape below the admissible floor samples exactly like the
        // floor — so it must also label (and therefore key) like it.
        let raw = ArrivalProcess::Pareto {
            rate_per_s: 20.0,
            alpha: 0.5,
        };
        let canon = ArrivalProcess::pareto(20.0, 0.5);
        assert_eq!(
            canon,
            ArrivalProcess::Pareto {
                rate_per_s: 20.0,
                alpha: MIN_PARETO_ALPHA,
            }
        );
        assert_eq!(raw.label(), canon.label());
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        let ga: Vec<u64> = (0..64).map(|i| raw.next_gap_us(i * 1000, &mut a)).collect();
        let gb: Vec<u64> = (0..64)
            .map(|i| canon.next_gap_us(i * 1000, &mut b))
            .collect();
        assert_eq!(ga, gb);
        // Above the floor the shape passes through untouched.
        let hot = ArrivalProcess::pareto(20.0, 1.5);
        assert_eq!(
            hot,
            ArrivalProcess::Pareto {
                rate_per_s: 20.0,
                alpha: 1.5,
            }
        );
        assert_eq!(hot.normalized(), hot);
        assert_eq!(hot.label(), "pareto:20:1.5");
    }

    #[test]
    fn rng_stream_is_stable_and_seed_sensitive() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        let mut c = Rng64::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        for _ in 0..1000 {
            let u = a.f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn poisson_gaps_have_roughly_the_configured_mean() {
        let p = ArrivalProcess::Poisson { rate_per_s: 100.0 }; // mean gap 10 ms
        let mut rng = Rng64::new(7);
        let n = 4000;
        let total: u64 = (0..n).map(|_| p.next_gap_us(0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((8_000.0..12_000.0).contains(&mean), "mean gap {mean} µs");
    }

    #[test]
    fn pareto_gaps_are_heavier_tailed_than_poisson_at_equal_mean() {
        let rate = 50.0;
        let mut rng = Rng64::new(11);
        let pareto = ArrivalProcess::Pareto {
            rate_per_s: rate,
            alpha: 1.5,
        };
        let poisson = ArrivalProcess::Poisson { rate_per_s: rate };
        let n = 20_000;
        let max_pareto = (0..n)
            .map(|_| pareto.next_gap_us(0, &mut rng))
            .max()
            .unwrap();
        let max_poisson = (0..n)
            .map(|_| poisson.next_gap_us(0, &mut rng))
            .max()
            .unwrap();
        assert!(
            max_pareto > 2 * max_poisson,
            "pareto max {max_pareto} vs poisson max {max_poisson}"
        );
    }

    #[test]
    fn diurnal_rate_tracks_the_profile() {
        let d = ArrivalProcess::Diurnal {
            rate_per_s: 100.0,
            period_us: 8_000_000,
        };
        let mut rng = Rng64::new(3);
        // Trough phase (index 0) vs peak phase (index 4): mean gaps must
        // differ by roughly the profile ratio.
        let mean_at = |at: u64, rng: &mut Rng64| -> f64 {
            let n = 3000;
            (0..n).map(|_| d.next_gap_us(at, rng)).sum::<u64>() as f64 / n as f64
        };
        let trough = mean_at(100, &mut rng);
        let peak = mean_at(4_100_000, &mut rng);
        assert!(
            trough > 3.0 * peak,
            "trough mean {trough} µs vs peak mean {peak} µs"
        );
    }

    #[test]
    fn gaps_never_stall_the_clock() {
        // An absurd rate still yields strictly positive gaps.
        let p = ArrivalProcess::Poisson { rate_per_s: 1e12 };
        let mut rng = Rng64::new(0);
        for _ in 0..100 {
            assert!(p.next_gap_us(0, &mut rng) >= 1);
        }
    }

    #[test]
    fn with_rate_preserves_the_family() {
        let p = ArrivalProcess::Pareto {
            rate_per_s: 10.0,
            alpha: 1.5,
        };
        match p.with_rate(40.0) {
            ArrivalProcess::Pareto { rate_per_s, alpha } => {
                assert_eq!(rate_per_s, 40.0);
                assert_eq!(alpha, 1.5);
            }
            other => panic!("family changed: {other:?}"),
        }
        assert_eq!(p.rate_per_s(), 10.0);
    }
}
